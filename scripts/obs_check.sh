#!/usr/bin/env bash
# Observability end-to-end check:
#   1. builds the obs test suite and the obs_e2e example,
#   2. runs the `obs`-labeled ctest suite (registry, trace, exporters),
#   3. runs the full pipeline (faulty web -> crawl -> analysis flow) with
#      tracing enabled, including the multiprocess leg: the flow re-runs on
#      8 forked socketpair workers, each ships its trace ring + metrics
#      snapshot back over the transport's obs channel, and obs_e2e
#      validates both the single-process Chrome trace and the stitched
#      multi-pid trace (balanced B/E per thread, monotone timestamps,
#      merged counters == per-shard sums) and fails on error,
#   4. greps the Prometheus dump against scripts/obs_required_metrics.txt
#      so no instrumented subsystem silently loses its metrics.
# Usage: scripts/obs_check.sh [build_dir]  (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="$BUILD_DIR/obs_check"
TRACE="$OUT_DIR/trace.json"
PROM="$OUT_DIR/metrics.prom"
MANIFEST="scripts/obs_required_metrics.txt"
FORK_SHARDS=8

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target obs_test obs_e2e
mkdir -p "$OUT_DIR"

echo "== obs-labeled unit suite =="
(cd "$BUILD_DIR" && ctest -L obs --output-on-failure)

echo "== end-to-end run with tracing ($FORK_SHARDS forked workers) =="
"$BUILD_DIR/examples/obs_e2e" "$TRACE" "$PROM" "$FORK_SHARDS"
[[ -s "$TRACE.stitched.json" ]] || {
  echo "obs check FAILED: stitched trace $TRACE.stitched.json missing"
  exit 1
}

echo "== required-metrics manifest =="
missing=0
while IFS= read -r pattern; do
  [[ -z "$pattern" || "$pattern" == \#* ]] && continue
  if ! grep -qF "$pattern" "$PROM"; then
    echo "MISSING metric: $pattern"
    missing=$((missing + 1))
  fi
done < "$MANIFEST"
if [[ "$missing" -gt 0 ]]; then
  echo "obs check FAILED: $missing metric(s) missing from $PROM"
  exit 1
fi
echo "all $(grep -cv '^\s*\(#\|$\)' "$MANIFEST") manifest metrics present"
echo "obs check passed (trace: $TRACE, stitched: $TRACE.stitched.json," \
     "metrics: $PROM)"
