#!/usr/bin/env bash
# Serving-layer end-to-end check:
#   1. builds the store test suite and the serve_e2e example,
#   2. runs the `store`-labeled ctest suite (codec, segments, snapshots,
#      query engine, concurrency stress),
#   3. runs serve_e2e twice against separate store directories — the
#      example crawls a seeded web, persists annotations through a
#      StoreSink, cold-reopens the store and answers a fixed query
#      script; it exits non-zero unless the served numbers are exactly
#      the in-memory analysis,
#   4. diffs the two transcripts: the whole pipeline-to-serving path must
#      be byte-for-byte deterministic,
#   5. runs the closed-loop load generator (bench/serve_loadgen) in its
#      fixed-ops smoke mode twice — a Zipfian query mix through the
#      admission queue — and diffs the two result digests: batching and
#      scheduling may reorder work but must never change an answer. The
#      second run's machine-readable summary lands in BENCH_serve.json.
# Usage: scripts/serve_check.sh [build_dir]  (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="$BUILD_DIR/serve_check"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target store_test epoch_test serve_test \
  serve_e2e serve_loadgen
mkdir -p "$OUT_DIR"

echo "== store-labeled unit suite =="
(cd "$BUILD_DIR" && ctest -L store --output-on-failure)

echo "== serve_e2e, run 1 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run1" | tee "$OUT_DIR/run1.txt"
echo "== serve_e2e, run 2 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run2" > "$OUT_DIR/run2.txt"

echo "== determinism =="
if ! diff -u "$OUT_DIR/run1.txt" "$OUT_DIR/run2.txt"; then
  echo "serve check FAILED: transcripts differ between runs"
  exit 1
fi
grep -q "store round-trip vs in-memory analysis: EXACT" "$OUT_DIR/run1.txt"

echo "== load generator smoke (Zipfian mix, fixed ops, run-twice diff) =="
LOADGEN_FLAGS="--clients=2 --ops=500 --terms=500 --batch=16"
"$BUILD_DIR/bench/serve_loadgen" $LOADGEN_FLAGS \
  | tee "$OUT_DIR/loadgen_run1.txt"
"$BUILD_DIR/bench/serve_loadgen" $LOADGEN_FLAGS --json="$OUT_DIR/BENCH_serve.json" \
  > "$OUT_DIR/loadgen_run2.txt"
digest1=$(grep '^digest:' "$OUT_DIR/loadgen_run1.txt")
digest2=$(grep '^digest:' "$OUT_DIR/loadgen_run2.txt")
if [[ "$digest1" != "$digest2" ]]; then
  echo "serve check FAILED: load-generator digests differ across runs"
  echo "  run 1: $digest1"
  echo "  run 2: $digest2"
  exit 1
fi
cp "$OUT_DIR/BENCH_serve.json" "$BUILD_DIR/BENCH_serve.json"
echo "load generator deterministic ($digest1); summary: $BUILD_DIR/BENCH_serve.json"
echo "serve check passed (transcripts identical, store round-trip exact)"
