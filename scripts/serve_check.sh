#!/usr/bin/env bash
# Serving-layer end-to-end check:
#   1. builds the store test suite and the serve_e2e example,
#   2. runs the `store`-labeled ctest suite (codec, segments, snapshots,
#      query engine, concurrency stress),
#   3. runs serve_e2e twice against separate store directories — the
#      example crawls a seeded web, persists annotations through a
#      StoreSink, cold-reopens the store and answers a fixed query
#      script; it exits non-zero unless the served numbers are exactly
#      the in-memory analysis,
#   4. diffs the two transcripts: the whole pipeline-to-serving path must
#      be byte-for-byte deterministic.
# Usage: scripts/serve_check.sh [build_dir]  (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="$BUILD_DIR/serve_check"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target store_test serve_e2e
mkdir -p "$OUT_DIR"

echo "== store-labeled unit suite =="
(cd "$BUILD_DIR" && ctest -L store --output-on-failure)

echo "== serve_e2e, run 1 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run1" | tee "$OUT_DIR/run1.txt"
echo "== serve_e2e, run 2 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run2" > "$OUT_DIR/run2.txt"

echo "== determinism =="
if ! diff -u "$OUT_DIR/run1.txt" "$OUT_DIR/run2.txt"; then
  echo "serve check FAILED: transcripts differ between runs"
  exit 1
fi
grep -q "store round-trip vs in-memory analysis: EXACT" "$OUT_DIR/run1.txt"
echo "serve check passed (transcripts identical, store round-trip exact)"
