#!/usr/bin/env bash
# Serving-layer end-to-end check:
#   1. builds the store/vec test suites and the serve_e2e example, failing
#      loudly (named step, non-zero exit) when a binary is missing,
#   2. runs the `store`- and `vec`-labeled ctest suites (codec, segments,
#      snapshots, query engine, ANN index, concurrency stress),
#   3. runs serve_e2e twice against separate store directories — the
#      example crawls a seeded web, persists annotations through a
#      StoreSink, cold-reopens the store and answers a fixed query
#      script; it exits non-zero unless the served numbers are exactly
#      the in-memory analysis,
#   4. diffs the two transcripts: the whole pipeline-to-serving path must
#      be byte-for-byte deterministic,
#   5. runs the closed-loop load generator (bench/serve_loadgen) in its
#      fixed-ops smoke mode twice — a Zipfian query mix through the
#      admission queue — and diffs the two result digests: batching and
#      scheduling may reorder work but must never change an answer. The
#      second run's machine-readable summary lands in BENCH_serve.json.
# Usage: scripts/serve_check.sh [build_dir]  (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="$BUILD_DIR/serve_check"

# Any failed step names itself on the way out: a missing binary or a
# missed transcript marker must read as "serve check FAILED: <step>",
# never as a bare grep miss with no context.
fail() {
  echo "serve check FAILED: $*" >&2
  exit 1
}

require_binary() {
  # $1 = step name, $2 = path
  [[ -x "$2" ]] || fail "$1: binary missing or not executable: $2 (build step did not produce it)"
}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target store_test epoch_test serve_test \
  vec_test serve_e2e serve_loadgen \
  || fail "build: cmake --build failed for the serve targets"
mkdir -p "$OUT_DIR"

require_binary "serve_e2e" "$BUILD_DIR/examples/serve_e2e"
require_binary "loadgen" "$BUILD_DIR/bench/serve_loadgen"

echo "== store-labeled unit suite =="
(cd "$BUILD_DIR" && ctest -L 'store|vec' --output-on-failure) \
  || fail "unit suite: store/vec-labeled ctest run failed"

echo "== serve_e2e, run 1 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run1" | tee "$OUT_DIR/run1.txt" \
  || fail "serve_e2e run 1: non-zero exit"
echo "== serve_e2e, run 2 =="
"$BUILD_DIR/examples/serve_e2e" "$OUT_DIR/store_run2" > "$OUT_DIR/run2.txt" \
  || fail "serve_e2e run 2: non-zero exit"

echo "== determinism =="
if ! diff -u "$OUT_DIR/run1.txt" "$OUT_DIR/run2.txt"; then
  fail "determinism: transcripts differ between runs"
fi
grep -q "store round-trip vs in-memory analysis: EXACT" "$OUT_DIR/run1.txt" \
  || fail "round-trip marker: serve_e2e transcript lacks 'store round-trip vs in-memory analysis: EXACT'"

echo "== load generator smoke (Zipfian mix, fixed ops, run-twice diff) =="
LOADGEN_FLAGS="--clients=2 --ops=500 --terms=500 --batch=16"
"$BUILD_DIR/bench/serve_loadgen" $LOADGEN_FLAGS \
  | tee "$OUT_DIR/loadgen_run1.txt"
"$BUILD_DIR/bench/serve_loadgen" $LOADGEN_FLAGS --json="$OUT_DIR/BENCH_serve.json" \
  > "$OUT_DIR/loadgen_run2.txt"
digest1=$(grep '^digest:' "$OUT_DIR/loadgen_run1.txt") \
  || fail "loadgen run 1: no 'digest:' line in transcript"
digest2=$(grep '^digest:' "$OUT_DIR/loadgen_run2.txt") \
  || fail "loadgen run 2: no 'digest:' line in transcript"
if [[ "$digest1" != "$digest2" ]]; then
  echo "  run 1: $digest1" >&2
  echo "  run 2: $digest2" >&2
  fail "loadgen determinism: result digests differ across runs"
fi
[[ -s "$OUT_DIR/BENCH_serve.json" ]] \
  || fail "loadgen summary: BENCH_serve.json missing or empty"
cp "$OUT_DIR/BENCH_serve.json" "$BUILD_DIR/BENCH_serve.json"
echo "load generator deterministic ($digest1); summary: $BUILD_DIR/BENCH_serve.json"
echo "serve check passed (transcripts identical, store round-trip exact)"
