#!/usr/bin/env bash
# AddressSanitizer check for the same suites tsan_check.sh covers: the
# dataflow executor, the thread pool, the fault subsystem, the crawler's
# checkpoint/resume path, and the annotation store. The checkpoint and
# segment decoders parse adversarial bytes (corrupt-file and bit-flip
# tests), so heap-safety coverage matters as much as race coverage here. Delegates to tsan_check.sh with the
# `address` sanitizer, building into build-asan.
set -euo pipefail
exec "$(dirname "$0")/tsan_check.sh" address
