#!/usr/bin/env bash
# One-shot benchmark sweep: builds every fig/micro bench in Release and
# runs them with --json summaries, collecting BENCH_<name>.json into
# bench/out/ (plus each bench's stdout as <name>.log). The JSON files are
# the same machine-readable summaries CI consumes one-by-one; this script
# exists so a perf investigation can regenerate the whole set with one
# command and diff against a prior bench/out/.
#
#   scripts/bench_all.sh [build_dir]     (default: build-bench)
#
# Knobs:
#   WSIE_BENCH_SCALE   corpus-size multiplier (default 1.0) — forwarded to
#                      every bench; use 0.2 for a quick smoke sweep.
#   WSIE_BENCH_ONLY    space-separated bench names to restrict the sweep,
#                      e.g. WSIE_BENCH_ONLY="fig5 micro_ingest".
#
# serve_loadgen is deliberately not here (scripts/serve_check.sh runs it
# with its determinism diff); micro_components is google-benchmark-based
# and emits no BENCH json, so it runs last and only logs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
OUT_DIR="bench/out"

fail() {
  echo "bench_all FAILED: $*" >&2
  exit 1
}

# Benches that speak --json (bench_util's ParseBenchFlags/JsonSummary).
JSON_BENCHES=(
  fig3_tool_runtimes
  fig4_scale_up
  fig5_scale_out
  fig6_linguistic_properties
  fig7_entity_incidence
  fig7_semantic
  fig8_annotation_overlap
  micro_ingest
)
# Benches with their own flag parsing; they write BENCH_<name>.json (or
# nothing) into the working directory, so they run from $OUT_DIR.
PLAIN_BENCHES=(
  micro_obs_overhead
  micro_store_qps
)

if [[ -n "${WSIE_BENCH_ONLY:-}" ]]; then
  filter() {
    local kept=()
    for b in "$@"; do
      for want in $WSIE_BENCH_ONLY; do
        [[ "$b" == "$want" ]] && kept+=("$b")
      done
    done
    echo "${kept[@]:-}"
  }
  read -r -a JSON_BENCHES <<<"$(filter "${JSON_BENCHES[@]}")"
  read -r -a PLAIN_BENCHES <<<"$(filter "${PLAIN_BENCHES[@]}")"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  ${JSON_BENCHES[@]+"${JSON_BENCHES[@]}"} \
  ${PLAIN_BENCHES[@]+"${PLAIN_BENCHES[@]}"} \
  || fail "build"

mkdir -p "$OUT_DIR"
ROOT="$(pwd)"

for bench in ${JSON_BENCHES[@]+"${JSON_BENCHES[@]}"}; do
  echo "== $bench =="
  "$BUILD_DIR/bench/$bench" --json="$OUT_DIR/BENCH_${bench}.json" \
    >"$OUT_DIR/${bench}.log" 2>&1 \
    || fail "$bench (see $OUT_DIR/${bench}.log)"
  [[ -s "$OUT_DIR/BENCH_${bench}.json" ]] \
    || fail "$bench: BENCH_${bench}.json missing or empty"
done

for bench in ${PLAIN_BENCHES[@]+"${PLAIN_BENCHES[@]}"}; do
  echo "== $bench =="
  (cd "$OUT_DIR" && "$ROOT/$BUILD_DIR/bench/$bench" \
    >"${bench}.log" 2>&1) \
    || fail "$bench (see $OUT_DIR/${bench}.log)"
done

echo
echo "bench sweep complete -> $OUT_DIR/"
ls -l "$OUT_DIR"/BENCH_*.json 2>/dev/null || true
