#!/usr/bin/env bash
# ThreadSanitizer check for the concurrency- and fault-sensitive suites:
# the dataflow executor (morsel scheduler, task retry, open cache), the
# thread pool, the fault subsystem, the crawler's checkpoint/resume path,
# the observability layer (sharded counters, trace ring buffers), and the
# annotation store / serving layer (epoch-based snapshot publication and
# reclamation under a compaction storm, the batched admission queue,
# adversarial segment decoding), and the allocation-free NLP/IE hot path
# (shared finalized taggers + thread-local scratch), and the sharded
# execution layer (exchange transports, forked socketpair workers, the
# split-correctness property suites). Builds into a dedicated build-tsan
# directory and runs the ctest targets labeled `tsan`, `fault`, `obs`,
# `store`, `perf`, `shard`, `vec` (the ANN index publication storm), or
# `ingest` (the parallel write path's byte-identity and delta suites).
# Usage: scripts/tsan_check.sh [address]  (default: thread)
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${1:-thread}"
BUILD_DIR="build-${SANITIZER//thread/tsan}"
BUILD_DIR="${BUILD_DIR//address/asan}"

# The shard suite's multiprocess transport tests fork workers; TSan kills
# forking programs by default, so keep it alive across the fork (the
# children are exec-free and exit via _exit).
export TSAN_OPTIONS="${TSAN_OPTIONS:+${TSAN_OPTIONS} }die_after_fork=0"

cmake -B "$BUILD_DIR" -S . -DWSIE_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  dataflow_test thread_pool_stress_test fault_test crawler_test obs_test \
  store_test epoch_test serve_test hotpath_test shard_test vec_test \
  ingest_test obs_e2e
(cd "$BUILD_DIR" && ctest -L 'tsan|fault|obs|store|perf|shard|vec|ingest' --output-on-failure)

# The multiprocess stitched-trace leg under the sanitizer: 4 forked workers
# ship obs bundles to the coordinator, which validates the stitched trace
# and the merged-counter invariant in-process. --stitch-only skips the
# crawl/serve legs, which the labeled suites above already cover.
echo "== multiprocess obs stitch (${SANITIZER}) =="
"$BUILD_DIR/examples/obs_e2e" "$BUILD_DIR/obs_stitch_trace.json" \
  "$BUILD_DIR/obs_stitch_metrics.prom" 4 --stitch-only
echo "${SANITIZER} sanitizer run passed"
