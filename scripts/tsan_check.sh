#!/usr/bin/env bash
# ThreadSanitizer check for the concurrency- and fault-sensitive suites:
# the dataflow executor (morsel scheduler, task retry, open cache), the
# thread pool, the fault subsystem, the crawler's checkpoint/resume path,
# the observability layer (sharded counters, trace ring buffers), and the
# annotation store / serving layer (epoch-based snapshot publication and
# reclamation under a compaction storm, the batched admission queue,
# adversarial segment decoding), and the allocation-free NLP/IE hot path
# (shared finalized taggers + thread-local scratch). Builds into a
# dedicated build-tsan directory and runs the ctest targets labeled
# `tsan`, `fault`, `obs`, `store`, or `perf`.
# Usage: scripts/tsan_check.sh [address]  (default: thread)
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${1:-thread}"
BUILD_DIR="build-${SANITIZER//thread/tsan}"
BUILD_DIR="${BUILD_DIR//address/asan}"

cmake -B "$BUILD_DIR" -S . -DWSIE_SANITIZE="$SANITIZER" >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  dataflow_test thread_pool_stress_test fault_test crawler_test obs_test \
  store_test epoch_test serve_test hotpath_test
(cd "$BUILD_DIR" && ctest -L 'tsan|fault|obs|store|perf' --output-on-failure)
echo "${SANITIZER} sanitizer run passed"
