#include "corpus/text_generator.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"
#include "ml/crf.h"

namespace wsie::corpus {
namespace {

// Register 0: scientific prose.
constexpr const char* kSciNouns[] = {
    "study",    "analysis", "results",  "patients", "expression", "treatment",
    "response", "levels",   "cells",    "samples",  "cohort",     "effect",
    "therapy",  "data",     "mutation", "pathway",  "receptor",   "protein"};
constexpr const char* kSciVerbs[] = {
    "showed",   "indicated", "demonstrated", "suggested", "revealed",
    "measured", "analyzed",  "observed",     "confirmed", "reported"};
constexpr const char* kSciAdjs[] = {
    "significant", "clinical", "molecular", "genetic",    "elevated",
    "therapeutic", "systemic", "cellular",  "functional", "novel"};

// Register 1: lay health web (patient portals, blogs, forums).
constexpr const char* kWebNouns[] = {
    "symptoms", "doctor",  "treatment", "patients", "side effects",
    "medicine", "health",  "pain",      "condition", "support group",
    "diagnosis", "recovery", "advice",   "story",     "information"};
constexpr const char* kWebVerbs[] = {
    "helps",  "causes", "reported", "experienced", "recommended",
    "started", "found",  "improved", "discussed",   "shared"};
constexpr const char* kWebAdjs[] = {"common", "severe", "mild",   "helpful",
                                    "chronic", "new",    "natural", "daily"};

// Register 2: off-domain web (shopping, sports, tech).
constexpr const char* kOffNouns[] = {
    "price",  "review", "game",    "team",   "season", "phone", "camera",
    "battery", "recipe", "weather", "travel", "hotel",  "movie", "album",
    "market", "player", "update",  "screen"};
constexpr const char* kOffVerbs[] = {
    "bought", "played", "released", "announced", "scored",
    "costs",  "offers", "reviewed", "compared",  "launched"};
constexpr const char* kOffAdjs[] = {"cheap", "fast",  "popular", "amazing",
                                    "late",  "early", "final",   "portable"};

constexpr const char* kDeterminers[] = {"the", "a", "an", "each"};
constexpr const char* kPreps[] = {"in", "of", "with", "for", "after", "during"};
constexpr const char* kConnectors[] = {"and", "but", "or"};
constexpr const char* kCorefPronouns[] = {"this", "that",  "which", "these",
                                          "them", "those", "it",    "who"};
constexpr const char* kOtherPronouns[] = {"we", "they", "he", "she", "you"};

constexpr const char* kDebrisWords[] = {
    "Home",    "About",   "Contact", "Login", "Register", "Search", "Menu",
    "Sitemap", "Privacy", "Terms",   "FAQ",   "Share",     "Tweet",  "Print"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&pool)[N]) {
  return pool[rng.Uniform(N)];
}

}  // namespace

TextGenerator::TextGenerator(const EntityLexicons* lexicons,
                             CorpusProfile profile, uint64_t seed)
    : lexicons_(lexicons), profile_(profile), rng_(seed) {}

const std::string& TextGenerator::SampleEntityName(ie::EntityType type) {
  // Name popularity is GLOBAL (one Zipf over the whole lexicon, shared by
  // all corpora) while each corpus covers only part of it (see the
  // CorpusProfile field comments): a shared famous core plus a salted-hash
  // tail subset. This produces the Fig. 8 overlap structure — biomedical
  // corpora share the core and nest in the tail, off-domain pages cover an
  // independent small subset.
  const auto& pool = lexicons_->ForType(type);
  const size_t core = static_cast<size_t>(profile_.core_fraction *
                                          static_cast<double>(pool.size()));
  const uint64_t salt = profile_.entity_group == 0 ? 0x62696fULL   // "bio"
                                                   : 0x6f7468ULL;  // "oth"
  const uint64_t cutoff =
      static_cast<uint64_t>(profile_.coverage * 10000.0);
  auto covered = [&](size_t rank) {
    if (profile_.use_core && rank < core) return true;
    uint64_t h = ml::HashFeature(pool[rank]) ^ (salt * 0x9e3779b97f4a7c15ULL);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return h % 10000 < cutoff;
  };
  for (int attempt = 0; attempt < 64; ++attempt) {
    size_t rank = rng_.Zipf(pool.size(), profile_.zipf_exponent);
    if (covered(rank)) return pool[rank];
  }
  // Coverage too sparse for rejection sampling: linear probe from a random
  // Zipf start.
  size_t rank = rng_.Zipf(pool.size(), profile_.zipf_exponent);
  for (size_t probe = 0; probe < pool.size(); ++probe) {
    size_t candidate = (rank + probe) % pool.size();
    if (covered(candidate)) return pool[candidate];
  }
  return pool[rank];
}

std::string TextGenerator::RandomAcronym() {
  // 3-4 uppercase letters; predominantly TLAs, as in real web text.
  size_t len = rng_.Bernoulli(0.8) ? 3 : 4;
  std::string acronym;
  for (size_t i = 0; i < len; ++i) {
    acronym.push_back(static_cast<char>('A' + rng_.Uniform(26)));
  }
  return acronym;
}

std::vector<TextGenerator::SentencePiece> TextGenerator::BuildSentencePieces() {
  std::vector<SentencePiece> pieces;
  auto word = [&](std::string w) {
    SentencePiece p;
    p.text = std::move(w);
    pieces.push_back(std::move(p));
  };
  auto entity = [&](ie::EntityType type, bool from_lexicon) {
    SentencePiece p;
    p.is_entity = true;
    p.entity.type = type;
    p.entity.from_lexicon = from_lexicon;
    p.entity.name = from_lexicon ? SampleEntityName(type) : RandomAcronym();
    p.text = p.entity.name;
    std::string name = p.entity.name;
    pieces.push_back(std::move(p));
    // Abbreviation definition right after the mention ("breast cancer
    // (BC)"), Schwartz-Hearst detectable. Scientific prose defines far more
    // abbreviations than lay or off-domain web text.
    double define_prob =
        profile_.parenthesis_rate * (profile_.register_id == 0 ? 0.8 : 0.3);
    if (rng_.Bernoulli(define_prob)) {
      std::string initials;
      bool word_start = true;
      for (char c : name) {
        if (c == ' ' || c == '-') {
          word_start = true;
        } else {
          if (word_start) {
            initials.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
          }
          word_start = false;
        }
      }
      if (initials.size() < 2) {
        initials = AsciiToUpper(name.substr(0, std::min<size_t>(3, name.size())));
      }
      SentencePiece paren;
      paren.text = "(" + initials + ")";
      pieces.push_back(std::move(paren));
    }
  };
  auto noun = [&] {
    switch (EffectiveRegister()) {
      case 1:
        return Pick(rng_, kWebNouns);
      case 2:
        return Pick(rng_, kOffNouns);
      default:
        return Pick(rng_, kSciNouns);
    }
  };
  auto verb = [&] {
    switch (EffectiveRegister()) {
      case 1:
        return Pick(rng_, kWebVerbs);
      case 2:
        return Pick(rng_, kOffVerbs);
      default:
        return Pick(rng_, kSciVerbs);
    }
  };
  auto adj = [&] {
    switch (EffectiveRegister()) {
      case 1:
        return Pick(rng_, kWebAdjs);
      case 2:
        return Pick(rng_, kOffAdjs);
      default:
        return Pick(rng_, kSciAdjs);
    }
  };

  const size_t target_tokens = static_cast<size_t>(std::max(
      4.0, rng_.Gaussian(profile_.mean_sentence_tokens,
                         profile_.mean_sentence_tokens *
                             profile_.sentence_tokens_spread)));

  // Subject.
  bool use_pronoun = rng_.Bernoulli(profile_.pronoun_rate);
  if (use_pronoun) {
    bool coref = rng_.Bernoulli(profile_.coref_pronoun_bias);
    word(coref ? Pick(rng_, kCorefPronouns) : Pick(rng_, kOtherPronouns));
  } else {
    word(Pick(rng_, kDeterminers));
    if (rng_.Bernoulli(0.5)) word(adj());
    word(noun());
  }
  // Optional negation attaches before the verb.
  if (rng_.Bernoulli(profile_.negation_rate)) {
    switch (rng_.Uniform(3)) {
      case 0:
        word("not");
        break;
      case 1:
        word("neither");
        break;
      default:
        word("nor");
        break;
    }
  }
  word(verb());
  // Object with optional entity mention per type.
  word(Pick(rng_, kDeterminers));
  if (rng_.Bernoulli(0.4)) word(adj());
  bool mentioned_entity = false;
  if (rng_.Bernoulli(profile_.disease_rate)) {
    entity(ie::EntityType::kDisease, true);
    mentioned_entity = true;
  }
  if (rng_.Bernoulli(profile_.drug_rate)) {
    if (mentioned_entity) word(Pick(rng_, kConnectors));
    entity(ie::EntityType::kDrug, true);
    mentioned_entity = true;
  }
  if (rng_.Bernoulli(profile_.gene_rate)) {
    if (mentioned_entity) word(Pick(rng_, kConnectors));
    entity(ie::EntityType::kGene, true);
    mentioned_entity = true;
  }
  if (!mentioned_entity) word(noun());

  // TLA noise (out-of-lexicon acronyms the ML gene tagger false-positives
  // on, Sect. 4.3.2).
  if (rng_.Bernoulli(profile_.tla_noise_rate)) {
    entity(ie::EntityType::kGene, false);
  }

  // Pad with prepositional phrases toward the target length.
  while (pieces.size() < target_tokens) {
    word(Pick(rng_, kPreps));
    word(Pick(rng_, kDeterminers));
    if (rng_.Bernoulli(0.3)) word(adj());
    word(noun());
  }

  // Parenthesized text: abbreviation or reference (Sect. 4.3.1).
  if (rng_.Bernoulli(profile_.parenthesis_rate)) {
    SentencePiece p;
    if (rng_.Bernoulli(0.5)) {
      p.text = "(" + RandomAcronym() + ")";
    } else {
      p.text = "(see Figure " + std::to_string(rng_.Uniform(9) + 1) + ")";
    }
    pieces.push_back(std::move(p));
  }
  return pieces;
}

size_t TextGenerator::AppendSentence(Document& doc) {
  std::vector<SentencePiece> pieces = BuildSentencePieces();
  std::string& text = doc.text;
  size_t tokens = 0;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0 || !text.empty()) text.push_back(' ');
    if (i == 0 && !pieces[i].is_entity && !pieces[i].text.empty()) {
      pieces[i].text[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(pieces[i].text[0])));
    }
    size_t begin = text.size();
    text += pieces[i].text;
    if (pieces[i].is_entity) {
      GoldEntity gold = pieces[i].entity;
      gold.begin = static_cast<uint32_t>(begin);
      gold.end = static_cast<uint32_t>(text.size());
      doc.gold_entities.push_back(std::move(gold));
    }
    ++tokens;
  }
  text.push_back('.');
  ++doc.gold_sentences;
  return tokens;
}

void TextGenerator::AppendDebris(Document& doc) {
  // Navigation fragments without sentence structure; they stress the
  // sentence splitter exactly as the paper describes (Sect. 4.2).
  std::string& text = doc.text;
  if (!text.empty()) text.push_back('\n');
  size_t items = 3 + rng_.Uniform(8);
  for (size_t i = 0; i < items; ++i) {
    if (i > 0) text += " | ";
    text += Pick(rng_, kDebrisWords);
  }
  text.push_back('\n');
}

int TextGenerator::EffectiveRegister() {
  if (doc_bleed_ > 0.0 && rng_.Bernoulli(doc_bleed_)) {
    return static_cast<int>(rng_.Uniform(3));
  }
  return profile_.register_id;
}

Document TextGenerator::GenerateDocument(uint64_t doc_id) {
  Document doc;
  doc.id = doc_id;
  doc.kind = profile_.kind;
  // Per-document register bleed: most documents are close to their
  // corpus's register, a minority mix heavily (the classifier's hard
  // cases, Sect. 4.1).
  doc_bleed_ = 2.0 * profile_.register_bleed * rng_.NextDouble();
  double spread = profile_.doc_chars_spread;
  double factor = 1.0 + spread * (2.0 * rng_.NextDouble() - 1.0);
  // Heavier right tail for the relevant web corpus (largest document-length
  // variance of the four corpora, Fig. 6a).
  if (spread > 0.8 && rng_.Bernoulli(0.08)) factor *= 3.0;
  size_t target_chars = static_cast<size_t>(
      std::max(120.0, static_cast<double>(profile_.mean_doc_chars) * factor));
  size_t sentences_in_paragraph = 0;
  while (doc.text.size() < target_chars) {
    if (profile_.debris_rate > 0 && rng_.Bernoulli(profile_.debris_rate)) {
      AppendDebris(doc);
      continue;
    }
    AppendSentence(doc);
    if (++sentences_in_paragraph >= 5) {
      doc.text += "\n\n";
      sentences_in_paragraph = 0;
    }
  }
  return doc;
}

std::vector<Document> TextGenerator::GenerateCorpus(uint64_t first_doc_id,
                                                    size_t num_docs) {
  std::vector<Document> docs;
  docs.reserve(num_docs);
  for (size_t i = 0; i < num_docs; ++i) {
    docs.push_back(GenerateDocument(first_doc_id + i));
  }
  return docs;
}

}  // namespace wsie::corpus
