#ifndef WSIE_CORPUS_LEXICON_H_
#define WSIE_CORPUS_LEXICON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ie/annotation.h"

namespace wsie::corpus {

/// Sizes of the generated entity-name lexicons. Paper-scale defaults are
/// genes > 700,000, diseases 61,438, drugs 51,188 (Sect. 3.2); the defaults
/// here are scaled 1:100 to keep experiments laptop-sized while preserving
/// the gene ≫ disease > drug ordering that drives the memory/start-up-cost
/// results.
struct LexiconConfig {
  size_t num_genes = 7000;
  size_t num_drugs = 512;
  size_t num_diseases = 614;
  uint64_t seed = 1234;
};

/// Deterministically generated biomedical entity-name lexicons.
///
/// These stand in for the paper's public resources (gene databases,
/// Drugbank, UMLS/MeSH): gene names follow symbol conventions (short
/// uppercase stems, optional digits and hyphens, including three-letter
/// acronyms); drug names use pharmacological suffixes (-ib, -mab, -statin,
/// ...); disease names are multi-word (stem + -oma/-itis/... or "X disease"
/// / "X syndrome").
class EntityLexicons {
 public:
  explicit EntityLexicons(LexiconConfig config = {});

  const std::vector<std::string>& genes() const { return genes_; }
  const std::vector<std::string>& drugs() const { return drugs_; }
  const std::vector<std::string>& diseases() const { return diseases_; }

  const std::vector<std::string>& ForType(ie::EntityType type) const;

  /// General biomedical glossary terms (the "general terms" category of
  /// Table 1: cancer, chronic pain, ...).
  const std::vector<std::string>& general_terms() const {
    return general_terms_;
  }

  const LexiconConfig& config() const { return config_; }

 private:
  void GenerateGenes(Rng& rng);
  void GenerateDrugs(Rng& rng);
  void GenerateDiseases(Rng& rng);
  void GenerateGeneralTerms(Rng& rng);

  LexiconConfig config_;
  std::vector<std::string> genes_;
  std::vector<std::string> drugs_;
  std::vector<std::string> diseases_;
  std::vector<std::string> general_terms_;
};

}  // namespace wsie::corpus

#endif  // WSIE_CORPUS_LEXICON_H_
