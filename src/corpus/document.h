#ifndef WSIE_CORPUS_DOCUMENT_H_
#define WSIE_CORPUS_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/profile.h"
#include "ie/annotation.h"

namespace wsie::corpus {

/// Gold entity mention recorded by the generator (character offsets).
struct GoldEntity {
  ie::EntityType type = ie::EntityType::kGene;
  uint32_t begin = 0;
  uint32_t end = 0;
  std::string name;
  bool from_lexicon = true;  ///< false for injected TLA/acronym noise
};

/// One generated document with its ground truth.
struct Document {
  uint64_t id = 0;
  CorpusKind kind = CorpusKind::kMedline;
  std::string url;   ///< empty for the scientific corpora
  std::string text;  ///< plain text (web docs get HTML wrapping later)
  std::vector<GoldEntity> gold_entities;
  uint32_t gold_sentences = 0;  ///< sentences the generator produced
};

/// In-memory document collection with corpus-level accounting (Table 3).
class DocumentStore {
 public:
  void Add(Document doc);

  const std::vector<Document>& documents() const { return documents_; }
  size_t size() const { return documents_.size(); }

  uint64_t total_chars() const { return total_chars_; }
  double mean_chars() const {
    return documents_.empty() ? 0.0
                              : static_cast<double>(total_chars_) /
                                    static_cast<double>(documents_.size());
  }

 private:
  std::vector<Document> documents_;
  uint64_t total_chars_ = 0;
};

}  // namespace wsie::corpus

#endif  // WSIE_CORPUS_DOCUMENT_H_
