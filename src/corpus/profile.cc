#include "corpus/profile.h"

namespace wsie::corpus {

const char* CorpusKindName(CorpusKind kind) {
  switch (kind) {
    case CorpusKind::kRelevantWeb:
      return "Relevant crawl";
    case CorpusKind::kIrrelevantWeb:
      return "Irrelevant crawl";
    case CorpusKind::kMedline:
      return "Medline";
    case CorpusKind::kPmc:
      return "PMC";
  }
  return "unknown";
}

bool CorpusKindFromName(std::string_view name, CorpusKind* kind) {
  for (CorpusKind candidate :
       {CorpusKind::kRelevantWeb, CorpusKind::kIrrelevantWeb,
        CorpusKind::kMedline, CorpusKind::kPmc}) {
    if (name == CorpusKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

CorpusProfile ProfileFor(CorpusKind kind) {
  CorpusProfile p;
  p.kind = kind;
  switch (kind) {
    case CorpusKind::kRelevantWeb:
      // Paper: mean 88,384 chars (scaled 1:10), largest length variance.
      p.mean_doc_chars = 8838;
      p.doc_chars_spread = 0.9;
      p.mean_sentence_tokens = 15.0;
      p.sentence_tokens_spread = 0.5;
      p.negation_rate = 0.12;
      p.pronoun_rate = 0.18;
      p.coref_pronoun_bias = 0.35;
      p.parenthesis_rate = 0.15;
      p.disease_rate = 0.128;   // Fig. 7: avg_rel = 128.49 / 1000 sentences
      p.drug_rate = 0.098;      // avg_rel = 97.83
      p.gene_rate = 0.128;      // avg_rel = 128.23 (dictionary)
      p.entity_group = 0;
      p.use_core = true;
      p.coverage = 0.50;
      p.tla_noise_rate = 0.06;
      p.debris_rate = 0.03;
      p.register_id = 1;
      p.register_bleed = 0.10;
      break;
    case CorpusKind::kIrrelevantWeb:
      // Paper: mean 37,625 chars (scaled 1:10), rare entity mentions.
      p.mean_doc_chars = 3762;
      p.doc_chars_spread = 0.7;
      p.mean_sentence_tokens = 11.0;
      p.sentence_tokens_spread = 0.45;
      p.negation_rate = 0.16;
      p.pronoun_rate = 0.20;
      p.coref_pronoun_bias = 0.35;
      p.parenthesis_rate = 0.04;
      p.disease_rate = 0.0046;  // avg_irrel = 4.57
      p.drug_rate = 0.0069;     // avg_irrel = 6.85
      p.gene_rate = 0.0044;     // avg_irrel = 4.39
      p.entity_group = 1;  // off-domain tail is independent of the bio one
      p.use_core = true;   // famous entities do reach off-domain pages
      p.coverage = 0.25;
      p.tla_noise_rate = 0.04;
      p.debris_rate = 0.05;
      p.register_id = 2;
      p.register_bleed = 0.05;
      break;
    case CorpusKind::kMedline:
      // Paper: mean 865 chars (unscaled), shortest sentences among the
      // scientific corpora, dense entity mentions.
      p.mean_doc_chars = 865;
      p.doc_chars_spread = 0.3;
      p.mean_sentence_tokens = 18.0;
      p.sentence_tokens_spread = 0.3;
      p.negation_rate = 0.07;
      p.pronoun_rate = 0.15;
      p.coref_pronoun_bias = 0.5;
      p.parenthesis_rate = 0.12;
      p.disease_rate = 0.205;  // avg_medl = 204.92
      p.drug_rate = 0.294;     // avg_medl = 293.95
      p.gene_rate = 0.416;     // avg_medl = 415.58
      p.entity_group = 0;
      p.use_core = true;
      p.coverage = 0.65;
      p.tla_noise_rate = 0.01;
      p.register_id = 0;
      p.register_bleed = 0.05;
      break;
    case CorpusKind::kPmc:
      // Paper: mean 55,704 chars (scaled 1:10), longest sentences, highest
      // incidence of parentheses and co-reference pronouns.
      p.mean_doc_chars = 5570;
      p.doc_chars_spread = 0.4;
      p.mean_sentence_tokens = 24.0;
      p.sentence_tokens_spread = 0.35;
      p.negation_rate = 0.20;
      p.pronoun_rate = 0.35;
      p.coref_pronoun_bias = 0.6;
      p.parenthesis_rate = 0.35;
      p.disease_rate = 0.118;  // avg_pmc = 117.51
      p.drug_rate = 0.276;     // avg_pmc = 275.95
      p.gene_rate = 0.074;     // avg_pmc = 74.12
      p.entity_group = 0;
      p.use_core = true;
      p.coverage = 0.60;
      p.tla_noise_rate = 0.02;
      p.register_id = 0;
      p.register_bleed = 0.03;
      break;
  }
  return p;
}

}  // namespace wsie::corpus
