#include "corpus/lexicon.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace wsie::corpus {
namespace {

constexpr const char* kGeneSyllables[] = {
    "BRC", "TP",  "KR",  "EGF", "MYC", "RAS", "CDK", "SMA", "NOT", "WNT",
    "FOX", "GAT", "SOX", "PAX", "HOX", "MAP", "JAK", "STA", "AKT", "PIK",
    "PTN", "RB",  "VHL", "MLH", "MSH", "APC", "NF",  "RET", "KIT", "ALK"};

constexpr const char* kDrugStems[] = {
    "ima",  "dasa", "nilo", "erlo", "gefi",  "sora", "suni", "vande",
    "pazo", "axi",  "ritu", "trastu", "beva", "cetu", "pani", "ofa",
    "ator", "rosu", "simva", "prava", "fluva", "amoxi", "ampi", "cefa",
    "doxy", "ery",  "azithro", "keto", "flu",  "itra", "vori", "metro"};

constexpr const char* kDrugSuffixes[] = {"tinib", "mab",    "statin",
                                         "cillin", "mycin", "azole",
                                         "pril",  "sartan", "olol"};

constexpr const char* kDiseaseStems[] = {
    "carcin", "lymph", "melan", "neur",  "hepat", "nephr", "derma", "arthr",
    "gastr",  "cardi", "pulmon", "oste",  "myel",  "thym",  "glia",  "aden",
    "fibr",   "angi",  "leuk",  "menin", "endo",  "bronch", "cyst",  "retin"};

constexpr const char* kDiseaseSuffixes[] = {"oma",   "itis", "osis",
                                            "opathy", "algia", "emia"};

constexpr const char* kDiseaseQualifiers[] = {
    "chronic", "acute", "malignant", "benign", "hereditary", "idiopathic",
    "juvenile", "systemic", "primary", "secondary"};

constexpr const char* kBodyParts[] = {
    "lung",  "breast", "colon", "skin",   "liver", "kidney", "brain",
    "bone",  "blood",  "heart", "stomach", "bladder", "thyroid", "ovarian",
    "prostate", "pancreatic", "gastric", "cervical"};

constexpr const char* kDiseaseHeads[] = {"cancer", "disease", "syndrome",
                                         "disorder", "deficiency", "failure"};

constexpr const char* kGeneralTermStems[] = {
    "cancer",      "chronic pain",  "diabetes",     "infection",
    "inflammation", "immunity",     "vaccination",  "metabolism",
    "nutrition",   "obesity",       "hypertension", "depression",
    "anxiety",     "allergy",       "asthma",       "arthritis",
    "migraine",    "insomnia",      "fatigue",      "nausea",
    "fever",       "cough",         "therapy",      "surgery",
    "screening",   "diagnosis",     "prognosis",    "remission",
    "relapse",     "biopsy",        "chemotherapy", "radiotherapy"};

}  // namespace

EntityLexicons::EntityLexicons(LexiconConfig config) : config_(config) {
  Rng rng(config_.seed);
  GenerateGenes(rng);
  GenerateDrugs(rng);
  GenerateDiseases(rng);
  GenerateGeneralTerms(rng);
}

const std::vector<std::string>& EntityLexicons::ForType(
    ie::EntityType type) const {
  switch (type) {
    case ie::EntityType::kGene:
      return genes_;
    case ie::EntityType::kDrug:
      return drugs_;
    case ie::EntityType::kDisease:
      return diseases_;
  }
  return genes_;
}

void EntityLexicons::GenerateGenes(Rng& rng) {
  std::unordered_set<std::string> seen;
  genes_.reserve(config_.num_genes);
  const size_t num_syllables =
      sizeof(kGeneSyllables) / sizeof(kGeneSyllables[0]);
  while (genes_.size() < config_.num_genes) {
    std::string name = kGeneSyllables[rng.Uniform(num_syllables)];
    switch (rng.Uniform(5)) {
      case 0:  // BRCA1-style: stem + letter + digit
        name.push_back(static_cast<char>('A' + rng.Uniform(26)));
        name += std::to_string(rng.Uniform(20) + 1);
        break;
      case 1:  // TP53-style: stem + number
        name += std::to_string(rng.Uniform(100) + 1);
        break;
      case 2:  // GAD-67-style: hyphenated numeric suffix
        name.push_back(static_cast<char>('A' + rng.Uniform(26)));
        name += "-" + std::to_string(rng.Uniform(90) + 10);
        break;
      case 3:  // Mixed-case symbol ("Cactin" style)
        name = std::string(1, name[0]) +
               [&] {
                 std::string tail;
                 const char* vowels = "aeiou";
                 const char* consonants = "bcdfgklmnprstv";
                 for (int s = 0; s < 3; ++s) {
                   tail.push_back(consonants[rng.Uniform(14)]);
                   tail.push_back(vowels[rng.Uniform(5)]);
                 }
                 return tail;
               }();
        break;
      default:  // plain acronym, 3-5 letters (includes TLAs)
        while (name.size() < 3 + rng.Uniform(3)) {
          name.push_back(static_cast<char>('A' + rng.Uniform(26)));
        }
        break;
    }
    if (seen.insert(name).second) genes_.push_back(std::move(name));
  }
}

void EntityLexicons::GenerateDrugs(Rng& rng) {
  std::unordered_set<std::string> seen;
  drugs_.reserve(config_.num_drugs);
  const size_t num_stems = sizeof(kDrugStems) / sizeof(kDrugStems[0]);
  const size_t num_suffixes = sizeof(kDrugSuffixes) / sizeof(kDrugSuffixes[0]);
  const char* vowels = "aeiou";
  const char* consonants = "bcdfglmnprstvz";
  while (drugs_.size() < config_.num_drugs) {
    std::string name = kDrugStems[rng.Uniform(num_stems)];
    if (rng.Bernoulli(0.5)) {
      name.push_back(consonants[rng.Uniform(14)]);
      name.push_back(vowels[rng.Uniform(5)]);
    }
    name += kDrugSuffixes[rng.Uniform(num_suffixes)];
    name[0] = static_cast<char>(std::toupper(name[0]));
    if (seen.insert(name).second) drugs_.push_back(std::move(name));
  }
}

void EntityLexicons::GenerateDiseases(Rng& rng) {
  std::unordered_set<std::string> seen;
  diseases_.reserve(config_.num_diseases);
  const size_t num_stems = sizeof(kDiseaseStems) / sizeof(kDiseaseStems[0]);
  const size_t num_suffixes =
      sizeof(kDiseaseSuffixes) / sizeof(kDiseaseSuffixes[0]);
  const size_t num_quals =
      sizeof(kDiseaseQualifiers) / sizeof(kDiseaseQualifiers[0]);
  const size_t num_parts = sizeof(kBodyParts) / sizeof(kBodyParts[0]);
  const size_t num_heads = sizeof(kDiseaseHeads) / sizeof(kDiseaseHeads[0]);
  while (diseases_.size() < config_.num_diseases) {
    std::string name;
    switch (rng.Uniform(3)) {
      case 0:  // "carcinoma", "nephritis"
        name = std::string(kDiseaseStems[rng.Uniform(num_stems)]) +
               kDiseaseSuffixes[rng.Uniform(num_suffixes)];
        break;
      case 1:  // "chronic lung disease"
        name = std::string(kDiseaseQualifiers[rng.Uniform(num_quals)]) + " " +
               kBodyParts[rng.Uniform(num_parts)] + " " +
               kDiseaseHeads[rng.Uniform(num_heads)];
        break;
      default:  // "breast cancer"
        name = std::string(kBodyParts[rng.Uniform(num_parts)]) + " " +
               kDiseaseHeads[rng.Uniform(num_heads)];
        break;
    }
    if (seen.insert(name).second) diseases_.push_back(std::move(name));
  }
}

void EntityLexicons::GenerateGeneralTerms(Rng& rng) {
  (void)rng;
  const size_t num_terms =
      sizeof(kGeneralTermStems) / sizeof(kGeneralTermStems[0]);
  general_terms_.assign(kGeneralTermStems, kGeneralTermStems + num_terms);
}

}  // namespace wsie::corpus
