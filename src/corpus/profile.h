#ifndef WSIE_CORPUS_PROFILE_H_
#define WSIE_CORPUS_PROFILE_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace wsie::corpus {

/// The four text collections compared in the study (Table 3).
enum class CorpusKind {
  kRelevantWeb,    ///< crawled pages classified biomedical
  kIrrelevantWeb,  ///< crawled pages classified out-of-domain
  kMedline,        ///< scientific abstracts
  kPmc,            ///< scientific full texts
};

const char* CorpusKindName(CorpusKind kind);

/// Inverse of CorpusKindName (the pipeline's "corpus" record field carries
/// the display name). False when `name` matches no corpus.
bool CorpusKindFromName(std::string_view name, CorpusKind* kind);

/// Linguistic and content parameters of one corpus generator.
///
/// Defaults per corpus (ProfileFor) are calibrated so that the *orderings*
/// the paper reports hold: document length rel > pmc > irrel > medline
/// (Table 3), sentence length pmc/medline style contrasts, negation
/// incidence pmc > irrel > rel > medline (Fig. 6c), parenthesis incidence
/// pmc > rel > medline > irrel, pronoun incidence pmc > web corpora
/// (Sect. 4.3.1), and per-1000-sentence entity densities echoing Fig. 7.
struct CorpusProfile {
  CorpusKind kind = CorpusKind::kMedline;

  // Document length in characters: log-normal-ish via mean + jitter.
  size_t mean_doc_chars = 865;
  double doc_chars_spread = 0.3;  ///< relative spread (0.3 = +-30% typical)

  // Sentence shape.
  double mean_sentence_tokens = 12.0;
  double sentence_tokens_spread = 0.35;

  // Per-sentence incidence probabilities of linguistic phenomena.
  double negation_rate = 0.08;
  double pronoun_rate = 0.10;       ///< any pronoun class
  double coref_pronoun_bias = 0.5;  ///< share of dem/rel/obj among pronouns
  double parenthesis_rate = 0.08;

  // Per-sentence probability of mentioning an entity of each type.
  double disease_rate = 0.20;
  double drug_rate = 0.29;
  double gene_rate = 0.40;

  // Entity-name sampling: name popularity is one global Zipf over the
  // lexicon, but each corpus only *covers* part of it, which shapes the
  // cross-corpus overlap structure of Fig. 8:
  //  - corpora with use_core see the globally famous head of the lexicon
  //    (top core_fraction of ranks) — the shared vocabulary of the
  //    biomedical literature and health web;
  //  - beyond the core, a name is covered iff a salted hash falls below
  //    `coverage`. Corpora in the same entity_group share the salt, so
  //    their tails nest (overlap ~ min coverage); different groups have
  //    independent tails (overlap ~ product of coverages).
  int entity_group = 0;       ///< 0 = biomedical, 1 = off-domain
  bool use_core = true;       ///< sees the famous head of the lexicon
  double coverage = 0.6;      ///< tail coverage fraction
  double core_fraction = 0.03;
  double zipf_exponent = 1.1;

  // Web noise: probability per sentence of injecting an out-of-lexicon
  // acronym (TLA) that Medline-trained ML taggers mistake for a gene
  // (Sect. 4.3.2), and of markup-ish debris surviving boilerplate removal.
  double tla_noise_rate = 0.02;
  double debris_rate = 0.0;

  // Vocabulary register: 0 = scientific, 1 = lay web, 2 = off-domain.
  int register_id = 0;
  // Mean fraction of content words drawn from a *different* register (per
  // document, the actual fraction is uniform in [0, 2*register_bleed]).
  // This is what makes the relevance classifier imperfect, as in the paper
  // ("pages at the fringe of what we consider biomedical", Sect. 4.1).
  double register_bleed = 0.0;
};

/// Returns the calibrated default profile for `kind`.
CorpusProfile ProfileFor(CorpusKind kind);

}  // namespace wsie::corpus

#endif  // WSIE_CORPUS_PROFILE_H_
