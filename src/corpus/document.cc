#include "corpus/document.h"

namespace wsie::corpus {

void DocumentStore::Add(Document doc) {
  total_chars_ += doc.text.size();
  documents_.push_back(std::move(doc));
}

}  // namespace wsie::corpus
