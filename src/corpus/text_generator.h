#ifndef WSIE_CORPUS_TEXT_GENERATOR_H_
#define WSIE_CORPUS_TEXT_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "corpus/lexicon.h"
#include "corpus/profile.h"

namespace wsie::corpus {

/// Generates documents of one corpus according to its CorpusProfile.
///
/// Sentences are assembled from register-specific word pools (scientific,
/// lay-web, off-domain); entity mentions, negation, pronouns, parentheses,
/// acronym noise, and navigation debris are injected at the profile's
/// rates, and every injected entity is recorded as ground truth. The
/// generator is deterministic given (lexicons, profile, seed).
class TextGenerator {
 public:
  /// `lexicons` must outlive the generator.
  TextGenerator(const EntityLexicons* lexicons, CorpusProfile profile,
                uint64_t seed);

  /// Generates one document with ground truth. Ids should be unique across
  /// corpora (the pipeline keys annotations by doc id).
  Document GenerateDocument(uint64_t doc_id);

  /// Generates a whole corpus of `num_docs` documents.
  std::vector<Document> GenerateCorpus(uint64_t first_doc_id, size_t num_docs);

  const CorpusProfile& profile() const { return profile_; }

  /// Samples an entity name of `type` from this corpus's covered lexicon
  /// subset (globally Zipf-weighted). Exposed for tests and seed generation.
  const std::string& SampleEntityName(ie::EntityType type);

 private:
  struct SentencePiece {
    std::string text;
    bool is_entity = false;
    GoldEntity entity;  // valid when is_entity
  };

  /// Appends one generated sentence to `doc`; returns tokens emitted.
  size_t AppendSentence(Document& doc);
  /// Appends a navigation-debris line (no sentence structure).
  void AppendDebris(Document& doc);

  std::string RandomAcronym();
  std::vector<SentencePiece> BuildSentencePieces();
  /// Register used for the next content word: usually the profile's, but
  /// with the document's bleed probability a random other register.
  int EffectiveRegister();

  const EntityLexicons* lexicons_;
  CorpusProfile profile_;
  Rng rng_;
  double doc_bleed_ = 0.0;  ///< per-document off-register word fraction
};

}  // namespace wsie::corpus

#endif  // WSIE_CORPUS_TEXT_GENERATOR_H_
