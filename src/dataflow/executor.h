#ifndef WSIE_DATAFLOW_EXECUTOR_H_
#define WSIE_DATAFLOW_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dataflow/plan.h"

namespace wsie::dataflow {

/// Execution parameters, modeling the cluster of Sect. 4.2.
struct ExecutorConfig {
  ExecutorConfig() = default;
  /// Positional shorthand for the three seed-era knobs; the newer fields
  /// keep their defaults and are set as members.
  ExecutorConfig(size_t dop_in, size_t budget, size_t min_partition)
      : dop(dop_in),
        memory_per_worker_budget(budget),
        min_partition_records(min_partition) {}

  /// Degree of parallelism: number of concurrent workers per operator.
  size_t dop = 4;
  /// Per-worker memory budget in bytes; 0 disables the check. When an
  /// operator's MemoryBytesPerWorker() exceeds this, execution fails with
  /// ResourceExhausted — the Sect. 4.2 war story ("the complete data flow
  /// needs roughly 60 GB main memory per worker thread, which clearly
  /// exceeds the RAM available on each node").
  size_t memory_per_worker_budget = 0;
  /// Smallest partition worth dispatching to a worker.
  size_t min_partition_records = 8;
  /// Fuse chains of record-at-a-time operators into single pipeline stages
  /// (records stream through without intermediate Dataset materialization).
  /// Off = every operator is its own stage; same engine, same outputs.
  bool fuse_pipelines = true;
  /// Target records per morsel pulled from the shared cursor. The effective
  /// size is max(morsel_records, min_partition_records, 1).
  size_t morsel_records = 8;
  /// Cache successful Open() calls process-wide, keyed by operator identity,
  /// so expensive start-up (dictionary automaton construction, the Fig. 5
  /// "hard lower bound") runs once per process instead of once per Run().
  /// Cached operators stay open until Executor::ClearOpenCache().
  bool cache_opens = true;
  /// Run the pre-fusion barrier-per-operator engine (static partitioning,
  /// per-Run thread pool, deep copies at union/slice/sink). Kept as a
  /// reproducible baseline for the fused-vs-unfused bench comparison.
  bool legacy_seed_path = false;
  /// Optional shared worker pool. When null the executor creates its own
  /// pool at construction and reuses it across Run() calls.
  std::shared_ptr<ThreadPool> pool;
  /// Task-level recovery: a morsel whose operator chain fails with a
  /// retryable Status (Status::IsRetryable() — time-outs, unavailability) is
  /// re-run from its pristine input span up to this many extra times before
  /// the run fails. Only the failed morsel's stage re-executes — completed
  /// morsels, other workers, and cached Open() state are untouched.
  /// Non-retryable failures still fail the run on the first occurrence.
  /// Enabling retries (> 0) disables destructive stage-head moves: the
  /// morsel's input must stay intact for a potential re-run.
  int max_task_retries = 0;
  /// Shard id when this executor is one worker of a shard::ShardRuntime
  /// (-1 = unsharded). Stage/morsel trace spans get an ":s<id>" suffix so
  /// per-shard timelines separate in the Chrome trace.
  int shard_id = -1;
};

/// Per-operator execution statistics.
struct OperatorRunStats {
  std::string name;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t bytes_out = 0;  ///< annotation-volume accounting (Sect. 4.2)
  double open_seconds = 0.0;
  double process_seconds = 0.0;
  uint64_t morsels = 0;      ///< morsels this operator processed
  bool open_cached = false;  ///< Open() satisfied from the process-wide cache
};

/// Per-pipeline-stage statistics. A stage is one fusion group: a maximal
/// chain of record-at-a-time operators executed morsel-at-a-time, whose
/// interior outputs are never materialized as Datasets.
struct StageRunStats {
  std::string name;  ///< operator names joined with '+'
  size_t operators = 0;
  bool fused = false;
  uint64_t morsels = 0;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Bytes the stage tail materialized (its output Dataset).
  uint64_t bytes_materialized = 0;
  /// Bytes that flowed through fused interior operators without ever being
  /// materialized — the savings fusion buys (Sect. 4.2 annotation blow-up).
  uint64_t bytes_not_materialized = 0;
  double wall_seconds = 0.0;
};

/// Result of executing a plan.
struct ExecutionResult {
  std::map<std::string, Dataset> sink_outputs;
  std::vector<OperatorRunStats> operator_stats;
  std::vector<StageRunStats> stage_stats;
  double total_seconds = 0.0;
  uint64_t total_bytes_materialized = 0;
  /// Bytes processed by fused interior operators without materialization.
  uint64_t total_bytes_streamed = 0;
  /// Open() calls actually executed this run vs. served from the cache.
  uint64_t open_cold = 0;
  uint64_t open_cached = 0;
  /// Morsel re-executions after retryable operator failures
  /// (ExecutorConfig::max_task_retries).
  uint64_t task_retries = 0;
};

/// The pipelined plan executor.
///
/// The plan is partitioned into pipeline stages (fusion groups emitted by
/// the optimizer); stages run in topological order. Within a stage, workers
/// pull fixed-size morsels from a shared atomic cursor over zero-copy
/// `std::span` views of the upstream output, stream each morsel through the
/// fused operator chain (moving records between operators), and materialize
/// only at the stage tail, in morsel order — so sink outputs are
/// byte-identical across DoP. Operator Open() runs once per stage before
/// the parallel phase and is timed separately — start-up cost is *not*
/// amortized by DoP, which is exactly what bounded the paper's scale-out
/// (Fig. 5: the ~20-minute dictionary load is "a hard lower bound for the
/// runtime of this task, regardless of the number of nodes"); the
/// process-wide Open() cache amortizes it across Run() calls instead.
class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});

  /// Runs `plan` with the given named source datasets.
  Result<ExecutionResult> Run(const Plan& plan,
                              const std::map<std::string, Dataset>& sources) const;

  const ExecutorConfig& config() const { return config_; }

  /// Closes and discards every cached operator Open(). Subsequent runs
  /// re-open cold. For tests and process teardown.
  static void ClearOpenCache();

 private:
  Status CheckMemoryBudget(const Plan& plan) const;
  Result<ExecutionResult> RunMorselEngine(
      const Plan& plan, const std::map<std::string, Dataset>& sources) const;
  Result<ExecutionResult> RunLegacy(
      const Plan& plan, const std::map<std::string, Dataset>& sources) const;

  ExecutorConfig config_;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_EXECUTOR_H_
