#ifndef WSIE_DATAFLOW_EXECUTOR_H_
#define WSIE_DATAFLOW_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/plan.h"

namespace wsie::dataflow {

/// Execution parameters, modeling the cluster of Sect. 4.2.
struct ExecutorConfig {
  /// Degree of parallelism: number of concurrent workers per operator.
  size_t dop = 4;
  /// Per-worker memory budget in bytes; 0 disables the check. When an
  /// operator's MemoryBytesPerWorker() exceeds this, execution fails with
  /// ResourceExhausted — the Sect. 4.2 war story ("the complete data flow
  /// needs roughly 60 GB main memory per worker thread, which clearly
  /// exceeds the RAM available on each node").
  size_t memory_per_worker_budget = 0;
  /// Smallest partition worth dispatching to a worker.
  size_t min_partition_records = 8;
};

/// Per-operator execution statistics.
struct OperatorRunStats {
  std::string name;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t bytes_out = 0;  ///< annotation-volume accounting (Sect. 4.2)
  double open_seconds = 0.0;
  double process_seconds = 0.0;
};

/// Result of executing a plan.
struct ExecutionResult {
  std::map<std::string, Dataset> sink_outputs;
  std::vector<OperatorRunStats> operator_stats;
  double total_seconds = 0.0;
  uint64_t total_bytes_materialized = 0;
};

/// The parallel plan executor.
///
/// Nodes run in topological order; each operator's batch work is partitioned
/// across a thread pool at the configured DoP. Operator Open() runs once per
/// node before the parallel phase and is timed separately — start-up cost is
/// *not* amortized by DoP, which is exactly what bounded the paper's
/// scale-out (Fig. 5: the ~20-minute dictionary load is "a hard lower bound
/// for the runtime of this task, regardless of the number of nodes").
class Executor {
 public:
  explicit Executor(ExecutorConfig config = {}) : config_(config) {}

  /// Runs `plan` with the given named source datasets.
  Result<ExecutionResult> Run(const Plan& plan,
                              const std::map<std::string, Dataset>& sources) const;

  const ExecutorConfig& config() const { return config_; }

 private:
  ExecutorConfig config_;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_EXECUTOR_H_
