#include "dataflow/fault_injection.h"

#include "common/rng.h"
#include "fault/wire_format.h"

namespace wsie::dataflow {

namespace {
/// The morsel key most recently failed by this worker thread. A transient
/// fault "clears" once the same worker immediately re-runs the same morsel —
/// the executor's retry contract — while a fresh morsel that happens to
/// share content on another thread still draws its own (identical, by
/// determinism) decision.
thread_local uint64_t t_last_failed_key = 0;
thread_local bool t_has_failed_key = false;
}  // namespace

uint64_t FaultInjectingOperator::KeyFor(std::span<const Record> input) {
  uint64_t key = fault::wire::Mix(0x1ef7ULL, input.size());
  for (const Record& r : input) {
    key = fault::wire::Mix(key, fault::wire::Fnv1a(r.ToJson()));
  }
  return key;
}

Status FaultInjectingOperator::Decide(uint64_t key) const {
  Rng rng(fault::wire::Mix(options_.seed, key));
  double draw = rng.NextDouble();
  if (draw < options_.permanent_prob) {
    permanent_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("injected permanent fault");
  }
  if (draw < options_.permanent_prob + options_.transient_prob) {
    if (t_has_failed_key && t_last_failed_key == key) {
      // The retry of the morsel we just failed: the transient fault has
      // passed.
      t_has_failed_key = false;
      return Status::OK();
    }
    t_last_failed_key = key;
    t_has_failed_key = true;
    transient_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected transient fault");
  }
  return Status::OK();
}

Status FaultInjectingOperator::ProcessSpan(std::span<const Record> input,
                                           Dataset* output) const {
  Status injected = Decide(KeyFor(input));
  if (!injected.ok()) return injected;
  return inner_->ProcessSpan(input, output);
}

Status FaultInjectingOperator::ProcessOwned(std::span<Record> input,
                                            Dataset* output) const {
  Status injected =
      Decide(KeyFor(std::span<const Record>(input.data(), input.size())));
  if (!injected.ok()) return injected;
  return inner_->ProcessOwned(input, output);
}

}  // namespace wsie::dataflow
