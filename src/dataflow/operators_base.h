#ifndef WSIE_DATAFLOW_OPERATORS_BASE_H_
#define WSIE_DATAFLOW_OPERATORS_BASE_H_

#include <functional>
#include <span>
#include <string>
#include <utility>

#include "dataflow/operator.h"

namespace wsie::dataflow {

/// BASE package: filter — keeps records where `predicate` holds.
class FilterOperator : public Operator {
 public:
  FilterOperator(std::string name, std::function<bool(const Record&)> predicate,
                 OperatorTraits traits = {})
      : name_(std::move(name)),
        predicate_(std::move(predicate)),
        traits_(traits) {}

  std::string name() const override { return name_; }
  OperatorTraits traits() const override { return traits_; }

  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const override {
    for (const Record& r : input) {
      if (predicate_(r)) output->push_back(r);
    }
    return Status::OK();
  }

  Status ProcessOwned(std::span<Record> input, Dataset* output) const override {
    for (Record& r : input) {
      if (predicate_(r)) output->push_back(std::move(r));
    }
    return Status::OK();
  }

 private:
  std::string name_;
  std::function<bool(const Record&)> predicate_;
  OperatorTraits traits_;
};

/// BASE package: transformation (map) — 1:1 record rewrite.
class MapOperator : public Operator {
 public:
  MapOperator(std::string name, std::function<Record(const Record&)> fn,
              OperatorTraits traits = {})
      : name_(std::move(name)), fn_(std::move(fn)), traits_(traits) {}

  std::string name() const override { return name_; }
  OperatorTraits traits() const override { return traits_; }

  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const override {
    output->reserve(output->size() + input.size());
    for (const Record& r : input) output->push_back(fn_(r));
    return Status::OK();
  }

 private:
  std::string name_;
  std::function<Record(const Record&)> fn_;
  OperatorTraits traits_;
};

/// BASE package: flat map — 0..n output records per input.
class FlatMapOperator : public Operator {
 public:
  FlatMapOperator(std::string name,
                  std::function<void(const Record&, Dataset*)> fn,
                  OperatorTraits traits = {})
      : name_(std::move(name)), fn_(std::move(fn)), traits_(traits) {}

  std::string name() const override { return name_; }
  OperatorTraits traits() const override { return traits_; }

  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const override {
    for (const Record& r : input) fn_(r, output);
    return Status::OK();
  }

 private:
  std::string name_;
  std::function<void(const Record&, Dataset*)> fn_;
  OperatorTraits traits_;
};

/// BASE package: projection — keeps only the listed fields.
class ProjectionOperator : public Operator {
 public:
  ProjectionOperator(std::string name, std::vector<std::string> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  std::string name() const override { return name_; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads.insert(fields_.begin(), fields_.end());
    t.preserves_unknown_fields = false;  // drops everything not projected
    return t;
  }

  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const override {
    for (const Record& r : input) {
      Record projected;
      for (const std::string& f : fields_) {
        if (r.HasField(f)) projected.SetField(f, r.Field(f));
      }
      output->push_back(std::move(projected));
    }
    return Status::OK();
  }

 private:
  std::string name_;
  std::vector<std::string> fields_;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_OPERATORS_BASE_H_
