#ifndef WSIE_DATAFLOW_VALUE_H_
#define WSIE_DATAFLOW_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace wsie::dataflow {

/// A JSON-like record value, the unit of data flowing between operators
/// (Stratosphere's Sopremo data model is JSON-based; Meteor scripts
/// manipulate such records).
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;
  Value(bool b) : repr_(b) {}                   // NOLINT(runtime/explicit)
  Value(int64_t i) : repr_(i) {}                // NOLINT(runtime/explicit)
  Value(int i) : repr_(static_cast<int64_t>(i)) {}  // NOLINT
  Value(double d) : repr_(d) {}                 // NOLINT(runtime/explicit)
  Value(const char* s) : repr_(std::string(s)) {}   // NOLINT
  Value(std::string s) : repr_(std::move(s)) {}     // NOLINT
  Value(Array a) : repr_(std::move(a)) {}       // NOLINT(runtime/explicit)
  Value(Object o) : repr_(std::move(o)) {}      // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_array() const { return std::holds_alternative<Array>(repr_); }
  bool is_object() const { return std::holds_alternative<Object>(repr_); }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(repr_) : fallback;
  }
  int64_t AsInt(int64_t fallback = 0) const {
    if (is_int()) return std::get<int64_t>(repr_);
    if (is_double()) return static_cast<int64_t>(std::get<double>(repr_));
    return fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    if (is_double()) return std::get<double>(repr_);
    if (is_int()) return static_cast<double>(std::get<int64_t>(repr_));
    return fallback;
  }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(repr_) : kEmpty;
  }
  const Array& AsArray() const {
    static const Array kEmpty;
    return is_array() ? std::get<Array>(repr_) : kEmpty;
  }
  Array& MutableArray() {
    if (!is_array()) repr_ = Array{};
    return std::get<Array>(repr_);
  }
  const Object& AsObject() const {
    static const Object kEmpty;
    return is_object() ? std::get<Object>(repr_) : kEmpty;
  }
  Object& MutableObject() {
    if (!is_object()) repr_ = Object{};
    return std::get<Object>(repr_);
  }

  /// Object field access; returns a null value for missing fields/non-objects.
  const Value& Field(const std::string& key) const;
  /// Sets an object field (converts this value to an object if needed).
  void SetField(const std::string& key, Value value);
  bool HasField(const std::string& key) const;

  /// Approximate in-memory footprint in bytes (for the Sect. 4.2
  /// annotation-volume accounting).
  size_t ByteSize() const;

  /// Compact JSON-ish rendering (diagnostics; strings are escaped minimally).
  std::string ToJson() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      repr_;
};

/// A record is an object-valued Value; a dataset is a vector of records.
using Record = Value;
using Dataset = std::vector<Record>;

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_VALUE_H_
