#ifndef WSIE_DATAFLOW_OPERATOR_H_
#define WSIE_DATAFLOW_OPERATOR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/value.h"

namespace wsie::dataflow {

/// Operator package, mirroring the four Sopremo packages of Sect. 3.1:
/// general purpose (BASE), information extraction (IE), web analytics (WA),
/// and data cleansing (DC).
enum class OperatorPackage { kBase, kIe, kWa, kDc };

const char* OperatorPackageName(OperatorPackage package);

/// Static properties the optimizer reasons about (SOFA [23] reorders
/// UDF-heavy operators based on such read/write/selectivity annotations).
struct OperatorTraits {
  /// Fields of the record the operator reads.
  std::set<std::string> reads;
  /// Fields the operator writes or creates.
  std::set<std::string> writes;
  /// Expected output/input record ratio (<1 for filters).
  double selectivity = 1.0;
  /// Relative CPU cost per record (1.0 = trivial map).
  double cost_per_record = 1.0;
  /// True if the operator is a record-at-a-time map/filter (reorderable);
  /// false for aggregations and sinks.
  bool record_at_a_time = true;
};

/// A dataflow operator. Implementations are record-at-a-time UDFs or
/// partition-level transforms.
///
/// Lifecycle per worker: Open() once (start-up cost — e.g. dictionary
/// automaton construction, the Sect. 4.2 bottleneck), then ProcessBatch()
/// on each partition slice, then Close(). Operators must be thread-safe
/// after Open(): ProcessBatch() is called concurrently from many workers.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;
  virtual OperatorPackage package() const { return OperatorPackage::kBase; }
  virtual OperatorTraits traits() const { return OperatorTraits{}; }

  /// Per-worker start-up. Default: no-op.
  virtual Status Open() { return Status::OK(); }
  /// Per-worker tear-down. Default: no-op.
  virtual void Close() {}

  /// Transforms a batch of records. May emit 0..n output records per input.
  virtual Status ProcessBatch(const Dataset& input, Dataset* output) const = 0;

  /// Per-worker resident memory in bytes while running (the scheduler
  /// constraint of Sect. 4.2). Default: negligible.
  virtual size_t MemoryBytesPerWorker() const { return 1 << 12; }
};

using OperatorPtr = std::shared_ptr<Operator>;

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_OPERATOR_H_
