#ifndef WSIE_DATAFLOW_OPERATOR_H_
#define WSIE_DATAFLOW_OPERATOR_H_

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/value.h"

namespace wsie::dataflow {

/// Operator package, mirroring the four Sopremo packages of Sect. 3.1:
/// general purpose (BASE), information extraction (IE), web analytics (WA),
/// and data cleansing (DC).
enum class OperatorPackage { kBase, kIe, kWa, kDc };

const char* OperatorPackageName(OperatorPackage package);

/// Static properties the optimizer reasons about (SOFA [23] reorders
/// UDF-heavy operators based on such read/write/selectivity annotations).
struct OperatorTraits {
  /// Fields of the record the operator reads.
  std::set<std::string> reads;
  /// Fields the operator writes or creates.
  std::set<std::string> writes;
  /// Expected output/input record ratio (<1 for filters).
  double selectivity = 1.0;
  /// Relative CPU cost per record (1.0 = trivial map).
  double cost_per_record = 1.0;
  /// True if the operator is a record-at-a-time map/filter: reorderable by
  /// the optimizer AND fusable into a pipeline stage (its output for a
  /// record depends only on that record). False for aggregations,
  /// cross-record stateful transforms (dedup), multi-input unions, sinks.
  bool record_at_a_time = true;
  /// Field records must be co-located by when the plan runs sharded
  /// (shard::ShardRuntime): non-empty for operators whose per-key state
  /// must stay on one shard (e.g. a per-host accumulator keyed "host").
  /// Empty = any record split is correct (pure record-at-a-time UDFs).
  /// The shard planner re-hashes at a fusion-group boundary when the
  /// group's required key differs from the stream's current partition key.
  std::string partition_key;
  /// False for operators that rebuild records and drop fields they do not
  /// recognize (e.g. projection). The shard planner pins fragments with
  /// such operators to the coordinator: the exchange layer's hidden
  /// serial-order tags must flow through sharded fragments intact.
  bool preserves_unknown_fields = true;
  /// True when the operator keeps cross-record state whose per-shard
  /// results merge associatively — a distributive accumulator, e.g. the
  /// store::StoreSink tap whose per-shard segments the compactor folds
  /// into one SegmentSet. Such an operator may run shard-local even
  /// though it is not record-at-a-time.
  bool shard_local_state = false;
};

/// A dataflow operator. Implementations are record-at-a-time UDFs or
/// partition-level transforms.
///
/// Lifecycle: Open() once (start-up cost — e.g. dictionary automaton
/// construction, the Sect. 4.2 bottleneck; the executor may cache opens
/// process-wide), then ProcessSpan()/ProcessOwned() on each morsel, then
/// Close(). Operators must be thread-safe after Open(): the process entry
/// points are called concurrently from many workers.
///
/// Implementations must override at least one of ProcessSpan() or
/// ProcessBatch() (their defaults bridge to each other). ProcessOwned() is
/// an optional third entry point that lets fused pipeline stages move
/// records through without deep copies.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual std::string name() const = 0;
  virtual OperatorPackage package() const { return OperatorPackage::kBase; }
  virtual OperatorTraits traits() const { return OperatorTraits{}; }

  /// Start-up. Default: no-op.
  virtual Status Open() { return Status::OK(); }
  /// Tear-down. Default: no-op.
  virtual void Close() {}

  /// Transforms a borrowed, zero-copy view of records — the executor's
  /// morsel-level entry point. May emit 0..n output records per input.
  /// Default bridges to ProcessBatch() by materializing the span once.
  virtual Status ProcessSpan(std::span<const Record> input,
                             Dataset* output) const {
    Dataset copy(input.begin(), input.end());
    return ProcessBatch(copy, output);
  }

  /// Transforms records the caller relinquishes: the operator may move
  /// pieces (or whole records) from `input` into its output instead of
  /// deep-copying. Used for the interior of fused pipeline stages, where
  /// the upstream morsel buffer is dead after this call. Default: treats
  /// the input as borrowed (safe, one record copy per output record for
  /// copy-through operators).
  virtual Status ProcessOwned(std::span<Record> input, Dataset* output) const {
    return ProcessSpan(std::span<const Record>(input.data(), input.size()),
                       output);
  }

  /// Batch variant retained for existing operators and direct callers;
  /// default forwards to ProcessSpan().
  virtual Status ProcessBatch(const Dataset& input, Dataset* output) const {
    return ProcessSpan(std::span<const Record>(input.data(), input.size()),
                       output);
  }

  /// Per-worker resident memory in bytes while running (the scheduler
  /// constraint of Sect. 4.2). Default: negligible.
  virtual size_t MemoryBytesPerWorker() const { return 1 << 12; }
};

using OperatorPtr = std::shared_ptr<Operator>;

/// Helper base for record-at-a-time operators: override TransformRecord()
/// once and both span entry points fall out, with the owned path moving
/// records through the fused pipeline without deep copies. `record` is
/// passed by value — mutate it and push it (or derived records) into
/// `output`.
class RecordOperator : public Operator {
 public:
  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const final {
    for (const Record& r : input) {
      Status status = TransformRecord(Record(r), output);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  Status ProcessOwned(std::span<Record> input, Dataset* output) const final {
    for (Record& r : input) {
      Status status = TransformRecord(std::move(r), output);
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

 protected:
  /// Emits 0..n output records for one input record.
  virtual Status TransformRecord(Record record, Dataset* output) const = 0;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_OPERATOR_H_
