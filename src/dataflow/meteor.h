#ifndef WSIE_DATAFLOW_METEOR_H_
#define WSIE_DATAFLOW_METEOR_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "dataflow/plan.h"

namespace wsie::dataflow {

/// Named-operator factory: builds an operator from string arguments.
using OperatorFactory =
    std::function<Result<OperatorPtr>(const std::map<std::string, std::string>&)>;

/// Registry of script-visible operators, the analogue of Sopremo's
/// domain-specific operator packages (Sect. 3.1). Core pipelines register
/// IE/WA operators here; BASE operators can be registered by tests.
class OperatorRegistry {
 public:
  void Register(const std::string& name, OperatorFactory factory);
  bool Contains(const std::string& name) const;
  Result<OperatorPtr> Create(const std::string& name,
                             const std::map<std::string, std::string>& args) const;

  /// Number of registered operators.
  size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, OperatorFactory> factories_;
};

/// Parser for a small Meteor-like declarative script language [13]:
///
///   $pages   = read 'crawl';
///   $clean   = repair_markup $pages;
///   $net     = remove_boilerplate $clean;
///   $short   = filter_length $net max '1000000';
///   $both    = union $net $short;
///   write $both 'out';
///
/// Statements end with ';'. `#` starts a line comment. Operator arguments
/// are `key 'value'` pairs after the input variable. The script compiles to
/// a logical Plan whose sources/sinks carry the quoted names.
class MeteorParser {
 public:
  explicit MeteorParser(const OperatorRegistry* registry)
      : registry_(registry) {}

  /// Parses `script` into a plan. Errors carry 1-based line numbers.
  Result<Plan> Parse(std::string_view script) const;

 private:
  const OperatorRegistry* registry_;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_METEOR_H_
