#ifndef WSIE_DATAFLOW_JSON_H_
#define WSIE_DATAFLOW_JSON_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dataflow/value.h"

namespace wsie::dataflow {

/// Parses one JSON value (the inverse of Value::ToJson). Supports objects,
/// arrays, strings with \" \\ \n \t \uXXXX (ASCII range) escapes, integers,
/// doubles, booleans, and null. Errors carry the byte offset.
Result<Value> ParseJson(std::string_view json);

/// Writes `records` to `path` as JSON Lines (one record per line).
Status WriteJsonl(const std::string& path, const Dataset& records);

/// Reads a JSON Lines file into a dataset. Blank lines are skipped;
/// a malformed line fails the whole read (with its line number).
Result<Dataset> ReadJsonl(const std::string& path);

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_JSON_H_
