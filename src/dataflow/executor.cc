#include "dataflow/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.h"
#include "dataflow/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsie::dataflow {
namespace {

/// Registry handles for the executor's run-level metrics, resolved once.
struct ExecMetrics {
  obs::Counter* open_cold;
  obs::Counter* open_cached;
  obs::Counter* task_retries;
  obs::Counter* runs;
  obs::Gauge* morsel_queue_depth;
  obs::Histogram* run_wall_ns;
  obs::Histogram* stage_wall_ns;
};

ExecMetrics& GetExecMetrics() {
  static ExecMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    auto* m = new ExecMetrics();
    m->open_cold = registry.GetCounter("wsie.dataflow.open.cold");
    m->open_cached = registry.GetCounter("wsie.dataflow.open.cached");
    m->task_retries = registry.GetCounter("wsie.dataflow.task.retries");
    m->runs = registry.GetCounter("wsie.dataflow.runs");
    m->morsel_queue_depth =
        registry.GetGauge("wsie.dataflow.morsel.queue_depth");
    m->run_wall_ns = registry.GetHistogram("wsie.dataflow.run.wall_ns");
    m->stage_wall_ns = registry.GetHistogram("wsie.dataflow.stage.wall_ns");
    return m;
  }();
  return *metrics;
}

/// Mirrors one operator's per-run stats into labeled registry counters.
/// Called once per operator per Run() — the hot loop only touches the
/// OpState atomics, never the registry.
void PublishOperatorStats(const OperatorRunStats& stats) {
  if (!obs::MetricsEnabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  auto counter = [&](std::string_view field, uint64_t value) {
    registry
        .GetCounter(obs::WithLabel(
            std::string("wsie.dataflow.operator.") + std::string(field), "op",
            stats.name))
        ->Add(value);
  };
  counter("records_in", stats.records_in);
  counter("records_out", stats.records_out);
  counter("bytes_out", stats.bytes_out);
  counter("process_ns",
          static_cast<uint64_t>(stats.process_seconds * 1e9));
  counter("morsels", stats.morsels);
}

/// Process-wide cache of successful operator Open() calls, keyed by operator
/// identity. Entries hold a shared_ptr to the operator, so a cached operator
/// can never be destroyed and re-allocated at the same address (no ABA).
/// Failed opens are not cached — the next run retries.
class OpenCache {
 public:
  static OpenCache& Instance() {
    static OpenCache* cache = new OpenCache();  // never destroyed
    return *cache;
  }

  /// Opens `op` exactly once process-wide. On a cache hit sets *cached and
  /// leaves *seconds at 0. Concurrent callers for the same operator
  /// serialize on a per-entry mutex, so Open() never runs twice.
  Status OpenOnce(const OperatorPtr& op, bool* cached, double* seconds) {
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = entries_.try_emplace(op.get());
      if (inserted) it->second = std::make_shared<Entry>();
      entry = it->second;
      entry->op = op;
    }
    std::unique_lock<std::mutex> entry_lock(entry->mu);
    if (entry->opened) {
      *cached = true;
      return Status::OK();
    }
    Stopwatch timer;
    Status status = op->Open();
    *seconds = timer.ElapsedSeconds();
    *cached = false;
    if (status.ok()) {
      entry->opened = true;
      return status;
    }
    entry_lock.unlock();
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(op.get());
    return status;
  }

  void Clear() {
    std::unordered_map<const Operator*, std::shared_ptr<Entry>> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.swap(entries_);
    }
    for (auto& [ptr, entry] : drained) {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      if (entry->opened) entry->op->Close();
    }
  }

 private:
  struct Entry {
    OperatorPtr op;
    std::mutex mu;
    bool opened = false;
  };

  std::mutex mu_;
  std::unordered_map<const Operator*, std::shared_ptr<Entry>> entries_;
};

/// Per-operator accumulators shared by the morsel workers.
struct OpState {
  OperatorPtr op;
  std::atomic<uint64_t> records_in{0};
  std::atomic<uint64_t> records_out{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> process_nanos{0};
  std::atomic<uint64_t> morsels{0};
  double open_seconds = 0.0;
  bool open_cached = false;
};

}  // namespace

Executor::Executor(ExecutorConfig config)
    : config_(std::move(config)),
      pool_(config_.pool ? config_.pool
                         : std::make_shared<ThreadPool>(config_.dop)) {}

void Executor::ClearOpenCache() { OpenCache::Instance().Clear(); }

Status Executor::CheckMemoryBudget(const Plan& plan) const {
  // Admission control: verify the memory budget before running anything.
  // All operators of one flow are co-resident per worker (the paper's
  // scheduler "does not consider memory consumption per worker node",
  // Sect. 4.2 — this check is what it lacked), so both each operator and
  // the flow-wide sum must fit.
  if (config_.memory_per_worker_budget == 0) return Status::OK();
  size_t flow_total = 0;
  for (const Plan::Node& node : plan.nodes()) {
    if (node.is_source()) continue;
    size_t need = node.op->MemoryBytesPerWorker();
    flow_total += need;
    if (need > config_.memory_per_worker_budget) {
      return Status::ResourceExhausted(
          "operator '" + node.op->name() + "' needs " + std::to_string(need) +
          " bytes/worker, budget is " +
          std::to_string(config_.memory_per_worker_budget));
    }
  }
  if (flow_total > config_.memory_per_worker_budget) {
    return Status::ResourceExhausted(
        "flow needs " + std::to_string(flow_total) +
        " bytes/worker in total, budget is " +
        std::to_string(config_.memory_per_worker_budget) +
        "; split the flow (Sect. 4.2)");
  }
  return Status::OK();
}

Result<ExecutionResult> Executor::Run(
    const Plan& plan, const std::map<std::string, Dataset>& sources) const {
  Status admitted = CheckMemoryBudget(plan);
  if (!admitted.ok()) return admitted;
  if (config_.legacy_seed_path) return RunLegacy(plan, sources);
  return RunMorselEngine(plan, sources);
}

Result<ExecutionResult> Executor::RunMorselEngine(
    const Plan& plan, const std::map<std::string, Dataset>& sources) const {
  Stopwatch total_timer;
  WSIE_TRACE_SPAN("dataflow.run");
  ExecutionResult result;
  const std::vector<Plan::Node>& nodes = plan.nodes();

  // Each node's output is either borrowed (sources — zero copy) or owned
  // (stage tails). Fused interior nodes never materialize anything.
  struct NodeData {
    const Dataset* borrowed = nullptr;
    Dataset owned;
    std::span<const Record> view() const {
      if (borrowed != nullptr) return {borrowed->data(), borrowed->size()};
      return {owned.data(), owned.size()};
    }
  };
  std::vector<NodeData> data(nodes.size());

  // Consumer counts for early release of intermediates.
  std::vector<int> remaining(nodes.size(), 0);
  {
    std::vector<std::vector<int>> consumers = plan.Consumers();
    for (size_t i = 0; i < nodes.size(); ++i) {
      remaining[i] = static_cast<int>(consumers[i].size());
    }
  }

  // Bind sources as borrowed views — no copy (the seed copied here).
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].is_source()) continue;
    auto it = sources.find(nodes[i].source_name);
    if (it == sources.end()) {
      return Status::NotFound("source '" + nodes[i].source_name +
                              "' not bound");
    }
    data[i].borrowed = &it->second;
  }

  const std::vector<FusionGroup> groups =
      Optimizer::ComputeFusionGroups(plan, config_.fuse_pipelines);
  size_t morsel_size =
      std::max({config_.morsel_records, config_.min_partition_records,
                static_cast<size_t>(1)});

  for (const FusionGroup& group : groups) {
    const Plan::Node& head = nodes[static_cast<size_t>(group.nodes[0])];
    const int tail_id = group.nodes.back();

    // Zero-copy union of the head's inputs: a list of chunk views, never a
    // concatenated Dataset (the seed deep-copied the union here). A chunk
    // whose upstream Dataset is owned by this run, is not a sink output, and
    // has no other consumer left is dead after this stage — the head may
    // consume it destructively, moving records instead of copying them.
    struct Chunk {
      std::span<const Record> view;
      Record* movable = nullptr;  // non-null: exclusively owned, may move
    };
    std::vector<Chunk> chunks;
    uint64_t stage_records_in = 0;
    for (int in : head.inputs) {
      auto idx = static_cast<size_t>(in);
      std::span<const Record> view = data[idx].view();
      stage_records_in += view.size();
      if (view.empty()) continue;
      Chunk chunk;
      chunk.view = view;
      // Destructive head moves are off under task retries: a re-run needs
      // the morsel's input records intact.
      if (config_.max_task_retries == 0 && data[idx].borrowed == nullptr &&
          nodes[idx].sink_name.empty() && remaining[idx] == 1) {
        chunk.movable = data[idx].owned.data();
      }
      chunks.push_back(chunk);
    }

    // Start-up phase: serial, not amortized by DoP (Fig. 5), but amortized
    // across Run() calls by the process-wide cache.
    std::vector<std::unique_ptr<OpState>> ops;
    ops.reserve(group.nodes.size());
    for (int id : group.nodes) {
      auto state = std::make_unique<OpState>();
      state->op = nodes[static_cast<size_t>(id)].op;
      Status open_status;
      if (config_.cache_opens) {
        open_status = OpenCache::Instance().OpenOnce(
            state->op, &state->open_cached, &state->open_seconds);
      } else {
        Stopwatch open_timer;
        open_status = state->op->Open();
        state->open_seconds = open_timer.ElapsedSeconds();
      }
      if (!open_status.ok()) return open_status;
      // ExecutionResult keeps the authoritative per-run tallies (tests
      // assert on them); the registry mirrors the same increment so there
      // is exactly one counting site.
      if (state->open_cached) {
        ++result.open_cached;
        GetExecMetrics().open_cached->Increment();
      } else {
        ++result.open_cold;
        GetExecMetrics().open_cold->Increment();
      }
      ops.push_back(std::move(state));
    }
    const size_t num_ops = ops.size();

    // Morsel descriptors: fixed-size index ranges over the input chunks.
    // Workers claim them from a shared cursor, so a skewed chunk (one long
    // PMC full text among short Medline abstracts, Fig. 6) cannot straggle
    // a static pre-split.
    struct Morsel {
      size_t chunk;
      size_t begin;
      size_t end;
    };
    std::vector<Morsel> morsels;
    for (size_t c = 0; c < chunks.size(); ++c) {
      size_t n = chunks[c].view.size();
      for (size_t begin = 0; begin < n; begin += morsel_size) {
        morsels.push_back({c, begin, std::min(begin + morsel_size, n)});
      }
    }

    std::vector<Dataset> morsel_outputs(morsels.size());
    std::mutex error_mu;
    Status first_error;
    std::atomic<uint64_t> stage_task_retries{0};
    std::atomic<size_t> morsels_left{morsels.size()};
    // Sharded workers (shard::ShardRuntime) tag their spans with the shard
    // id so per-shard timelines separate in the Chrome trace.
    const std::string span_suffix =
        config_.shard_id >= 0
            ? head.op->name() + ":s" + std::to_string(config_.shard_id)
            : head.op->name();
    const std::string stage_span_name = "dataflow.stage:" + span_suffix;
    const std::string morsel_span_name = "dataflow.morsel:" + span_suffix;
    WSIE_TRACE_SPAN(stage_span_name);
    Stopwatch stage_timer;

    pool_->MorselFor(
        morsels.size(), config_.dop, [&](size_t m) -> bool {
          WSIE_TRACE_SPAN(morsel_span_name);
          GetExecMetrics().morsel_queue_depth->Set(static_cast<double>(
              morsels_left.fetch_sub(1, std::memory_order_relaxed) - 1));
          const Morsel& mo = morsels[m];
          const Chunk& chunk = chunks[mo.chunk];
          std::span<const Record> input =
              chunk.view.subspan(mo.begin, mo.end - mo.begin);
          // Task-level recovery loop: each attempt streams the pristine
          // input span through the whole chain with fresh scratch buffers,
          // so a retry observes exactly the state the first attempt did.
          // Open() state (including process-wide cached opens) is reused.
          for (int attempt = 0;; ++attempt) {
            // Ping-pong scratch buffers: op k reads one, writes the other.
            Dataset scratch[2];
            int cur = -1;  // -1: the borrowed input span
            Status chain_status;
            for (size_t k = 0; k < num_ops; ++k) {
              OpState& os = *ops[k];
              int dst_idx = cur == 0 ? 1 : 0;
              Dataset* dst = &scratch[dst_idx];
              dst->clear();
              Stopwatch op_timer;
              Status status;
              uint64_t in_count;
              if (cur < 0) {
                in_count = input.size();
                if (chunk.movable != nullptr) {
                  // Stage head over a dying intermediate: workers own
                  // disjoint subranges, so moving records out is race-free
                  // (never taken when retries are enabled).
                  status = os.op->ProcessOwned(
                      std::span<Record>(chunk.movable + mo.begin,
                                        mo.end - mo.begin),
                      dst);
                } else {
                  // Stage head over borrowed/shared upstream data: zero-copy
                  // read-only view.
                  status = os.op->ProcessSpan(input, dst);
                }
              } else {
                // Fused interior: the previous scratch buffer is dead after
                // this call, so the operator may move records through.
                Dataset& src = scratch[cur];
                in_count = src.size();
                status = os.op->ProcessOwned(
                    std::span<Record>(src.data(), src.size()), dst);
              }
              if (!status.ok()) {
                chain_status = status;
                break;
              }
              uint64_t bytes = 0;
              for (const Record& r : *dst) bytes += r.ByteSize();
              os.records_in.fetch_add(in_count, std::memory_order_relaxed);
              os.records_out.fetch_add(dst->size(), std::memory_order_relaxed);
              os.bytes_out.fetch_add(bytes, std::memory_order_relaxed);
              os.process_nanos.fetch_add(
                  static_cast<uint64_t>(op_timer.ElapsedSeconds() * 1e9),
                  std::memory_order_relaxed);
              os.morsels.fetch_add(1, std::memory_order_relaxed);
              cur = dst_idx;
            }
            if (chain_status.ok()) {
              morsel_outputs[m] = std::move(scratch[cur]);
              return true;
            }
            if (chain_status.IsRetryable() &&
                attempt < config_.max_task_retries) {
              stage_task_retries.fetch_add(1, std::memory_order_relaxed);
              continue;  // re-run only this morsel's stage
            }
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = chain_status;
            return false;  // cancels: unclaimed morsels never run
          }
        });
    result.task_retries += stage_task_retries.load();
    GetExecMetrics().task_retries->Add(stage_task_retries.load());
    if (!config_.cache_opens) {
      for (auto& os : ops) os->op->Close();
    }
    if (!first_error.ok()) return first_error;

    // Materialize the stage tail in morsel order: output is deterministic
    // across DoP and morsel size for record-at-a-time chains.
    Dataset& output = data[static_cast<size_t>(tail_id)].owned;
    size_t total_out = 0;
    for (const Dataset& part : morsel_outputs) total_out += part.size();
    output.reserve(total_out);
    for (Dataset& part : morsel_outputs) {
      for (Record& r : part) output.push_back(std::move(r));
    }
    double stage_wall = stage_timer.ElapsedSeconds();
    GetExecMetrics().stage_wall_ns->Observe(stage_wall * 1e9);

    // Per-operator stats (the pre-fusion contract the benches consume).
    StageRunStats stage;
    stage.operators = num_ops;
    stage.fused = num_ops > 1;
    stage.morsels = morsels.size();
    stage.records_in = stage_records_in;
    stage.records_out = output.size();
    stage.wall_seconds = stage_wall;
    for (size_t k = 0; k < num_ops; ++k) {
      const OpState& os = *ops[k];
      OperatorRunStats stats;
      stats.name = os.op->name();
      stats.records_in = os.records_in.load();
      stats.records_out = os.records_out.load();
      stats.bytes_out = os.bytes_out.load();
      stats.open_seconds = os.open_seconds;
      stats.process_seconds = static_cast<double>(os.process_nanos.load()) / 1e9;
      stats.morsels = os.morsels.load();
      stats.open_cached = os.open_cached;
      if (!stage.name.empty()) stage.name += '+';
      stage.name += stats.name;
      if (k + 1 == num_ops) {
        stage.bytes_materialized = stats.bytes_out;
        result.total_bytes_materialized += stats.bytes_out;
      } else {
        stage.bytes_not_materialized += stats.bytes_out;
        result.total_bytes_streamed += stats.bytes_out;
      }
      PublishOperatorStats(stats);
      result.operator_stats.push_back(std::move(stats));
    }
    result.stage_stats.push_back(std::move(stage));

    // Early release: drop an upstream output once every consuming stage has
    // run. Sink outputs and borrowed sources are kept.
    for (int in : head.inputs) {
      auto idx = static_cast<size_t>(in);
      if (--remaining[idx] == 0 && nodes[idx].sink_name.empty() &&
          data[idx].borrowed == nullptr) {
        Dataset().swap(data[idx].owned);
      }
    }
  }

  // Fill sinks last so downstream consumers saw the data first; owned
  // outputs are moved, not copied (the seed deep-copied every sink).
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].sink_name.empty()) continue;
    if (data[i].borrowed != nullptr) {
      result.sink_outputs[nodes[i].sink_name] = *data[i].borrowed;
    } else {
      result.sink_outputs[nodes[i].sink_name] = std::move(data[i].owned);
    }
  }

  result.total_seconds = total_timer.ElapsedSeconds();
  GetExecMetrics().runs->Increment();
  GetExecMetrics().run_wall_ns->Observe(result.total_seconds * 1e9);
  return result;
}

// The seed engine, verbatim: barrier per operator, static partitioning,
// per-Run thread pool, deep copies at union/slice/sink. Kept as a
// reproducible baseline (`ExecutorConfig::legacy_seed_path`) so the benches
// can report the fused-vs-seed speedup on identical hardware.
Result<ExecutionResult> Executor::RunLegacy(
    const Plan& plan, const std::map<std::string, Dataset>& sources) const {
  Stopwatch total_timer;
  ExecutionResult result;
  std::vector<Dataset> node_outputs(plan.size());
  ThreadPool pool(config_.dop);

  for (int node_id : plan.TopologicalOrder()) {
    const Plan::Node& node = plan.nodes()[static_cast<size_t>(node_id)];
    if (node.is_source()) {
      auto it = sources.find(node.source_name);
      if (it == sources.end()) {
        return Status::NotFound("source '" + node.source_name + "' not bound");
      }
      node_outputs[static_cast<size_t>(node_id)] = it->second;
      if (!node.sink_name.empty()) {
        result.sink_outputs[node.sink_name] = it->second;
      }
      continue;
    }
    // Union of all inputs.
    Dataset input;
    for (int in : node.inputs) {
      const Dataset& upstream = node_outputs[static_cast<size_t>(in)];
      input.insert(input.end(), upstream.begin(), upstream.end());
    }

    OperatorRunStats stats;
    stats.name = node.op->name();
    stats.records_in = input.size();

    // Start-up phase: serial, not amortized by DoP.
    Stopwatch open_timer;
    Status open_status = node.op->Open();
    stats.open_seconds = open_timer.ElapsedSeconds();
    if (!open_status.ok()) return open_status;

    // Parallel batch phase.
    Stopwatch process_timer;
    size_t partitions = config_.dop;
    size_t per_partition = (input.size() + partitions - 1) / partitions;
    if (per_partition < config_.min_partition_records) {
      per_partition = config_.min_partition_records;
    }
    if (per_partition == 0) per_partition = 1;
    partitions = (input.size() + per_partition - 1) / per_partition;

    std::vector<Dataset> partition_outputs(partitions);
    std::mutex error_mu;
    Status first_error;
    for (size_t p = 0; p < partitions; ++p) {
      pool.Submit([&, p] {
        size_t begin = p * per_partition;
        size_t end = std::min(begin + per_partition, input.size());
        Dataset slice(input.begin() + static_cast<long>(begin),
                      input.begin() + static_cast<long>(end));
        Dataset out;
        Status st = node.op->ProcessBatch(slice, &out);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
          return;
        }
        partition_outputs[p] = std::move(out);
      });
    }
    pool.Wait();
    node.op->Close();
    if (!first_error.ok()) return first_error;

    Dataset& output = node_outputs[static_cast<size_t>(node_id)];
    for (Dataset& part : partition_outputs) {
      for (Record& r : part) output.push_back(std::move(r));
    }
    stats.process_seconds = process_timer.ElapsedSeconds();
    stats.records_out = output.size();
    for (const Record& r : output) stats.bytes_out += r.ByteSize();
    result.total_bytes_materialized += stats.bytes_out;
    PublishOperatorStats(stats);
    result.operator_stats.push_back(std::move(stats));

    if (!node.sink_name.empty()) {
      result.sink_outputs[node.sink_name] = output;
    }
  }
  // Freeing the materialized per-operator datasets is part of this
  // engine's cost (the morsel engine never allocates them); release them
  // inside the timed region so run.wall_ns charges it.
  node_outputs.clear();
  result.total_seconds = total_timer.ElapsedSeconds();
  GetExecMetrics().runs->Increment();
  GetExecMetrics().run_wall_ns->Observe(result.total_seconds * 1e9);
  return result;
}

}  // namespace wsie::dataflow
