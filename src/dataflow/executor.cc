#include "dataflow/executor.h"

#include <atomic>
#include <mutex>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace wsie::dataflow {

Result<ExecutionResult> Executor::Run(
    const Plan& plan, const std::map<std::string, Dataset>& sources) const {
  // Admission control: verify the memory budget before running anything.
  // All operators of one flow are co-resident per worker (the paper's
  // scheduler "does not consider memory consumption per worker node",
  // Sect. 4.2 — this check is what it lacked), so both each operator and
  // the flow-wide sum must fit.
  if (config_.memory_per_worker_budget > 0) {
    size_t flow_total = 0;
    for (const Plan::Node& node : plan.nodes()) {
      if (node.is_source()) continue;
      size_t need = node.op->MemoryBytesPerWorker();
      flow_total += need;
      if (need > config_.memory_per_worker_budget) {
        return Status::ResourceExhausted(
            "operator '" + node.op->name() + "' needs " +
            std::to_string(need) + " bytes/worker, budget is " +
            std::to_string(config_.memory_per_worker_budget));
      }
    }
    if (flow_total > config_.memory_per_worker_budget) {
      return Status::ResourceExhausted(
          "flow needs " + std::to_string(flow_total) +
          " bytes/worker in total, budget is " +
          std::to_string(config_.memory_per_worker_budget) +
          "; split the flow (Sect. 4.2)");
    }
  }

  Stopwatch total_timer;
  ExecutionResult result;
  std::vector<Dataset> node_outputs(plan.size());
  ThreadPool pool(config_.dop);

  for (int node_id : plan.TopologicalOrder()) {
    const Plan::Node& node = plan.nodes()[static_cast<size_t>(node_id)];
    if (node.is_source()) {
      auto it = sources.find(node.source_name);
      if (it == sources.end()) {
        return Status::NotFound("source '" + node.source_name + "' not bound");
      }
      node_outputs[static_cast<size_t>(node_id)] = it->second;
      if (!node.sink_name.empty()) {
        result.sink_outputs[node.sink_name] = it->second;
      }
      continue;
    }
    // Union of all inputs.
    Dataset input;
    for (int in : node.inputs) {
      const Dataset& upstream = node_outputs[static_cast<size_t>(in)];
      input.insert(input.end(), upstream.begin(), upstream.end());
    }

    OperatorRunStats stats;
    stats.name = node.op->name();
    stats.records_in = input.size();

    // Start-up phase: serial, not amortized by DoP.
    Stopwatch open_timer;
    Status open_status = node.op->Open();
    stats.open_seconds = open_timer.ElapsedSeconds();
    if (!open_status.ok()) return open_status;

    // Parallel batch phase.
    Stopwatch process_timer;
    size_t partitions = config_.dop;
    size_t per_partition = (input.size() + partitions - 1) / partitions;
    if (per_partition < config_.min_partition_records) {
      per_partition = config_.min_partition_records;
    }
    if (per_partition == 0) per_partition = 1;
    partitions = (input.size() + per_partition - 1) / per_partition;

    std::vector<Dataset> partition_outputs(partitions);
    std::mutex error_mu;
    Status first_error;
    for (size_t p = 0; p < partitions; ++p) {
      pool.Submit([&, p] {
        size_t begin = p * per_partition;
        size_t end = std::min(begin + per_partition, input.size());
        Dataset slice(input.begin() + static_cast<long>(begin),
                      input.begin() + static_cast<long>(end));
        Dataset out;
        Status st = node.op->ProcessBatch(slice, &out);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
          return;
        }
        partition_outputs[p] = std::move(out);
      });
    }
    pool.Wait();
    node.op->Close();
    if (!first_error.ok()) return first_error;

    Dataset& output = node_outputs[static_cast<size_t>(node_id)];
    for (Dataset& part : partition_outputs) {
      for (Record& r : part) output.push_back(std::move(r));
    }
    stats.process_seconds = process_timer.ElapsedSeconds();
    stats.records_out = output.size();
    for (const Record& r : output) stats.bytes_out += r.ByteSize();
    result.total_bytes_materialized += stats.bytes_out;
    result.operator_stats.push_back(std::move(stats));

    if (!node.sink_name.empty()) {
      result.sink_outputs[node.sink_name] = output;
    }
    // Free inputs no longer needed: a node's output is dropped once all its
    // consumers have run. Simple policy: drop inputs of this node if this
    // was their only consumer (append-only plans make this safe).
  }
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace wsie::dataflow
