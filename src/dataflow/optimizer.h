#ifndef WSIE_DATAFLOW_OPTIMIZER_H_
#define WSIE_DATAFLOW_OPTIMIZER_H_

#include <string>
#include <vector>

#include "dataflow/plan.h"

namespace wsie::dataflow {

/// One reordering decision made by the optimizer (for logging/tests).
struct OptimizationStep {
  std::string moved_earlier;
  std::string moved_later;
};

/// Report of an optimization pass.
struct OptimizationReport {
  std::vector<OptimizationStep> steps;
  double estimated_cost_before = 0.0;
  double estimated_cost_after = 0.0;
};

/// SOFA-style logical optimizer [23] for UDF-heavy flows.
///
/// Within each linear chain of record-at-a-time operators, adjacent
/// operators A→B are swapped when (a) their read/write field sets commute
/// (neither reads what the other writes, and they write disjoint fields) and
/// (b) the swap lowers the estimated chain cost — i.e., selective cheap
/// operators (filters) migrate ahead of expensive UDFs. The plan shape
/// (sources, sinks, fan-in/fan-out points) is preserved.
class Optimizer {
 public:
  /// Optimizes `plan` in place; returns what was done.
  OptimizationReport Optimize(Plan* plan) const;

  /// True if adjacent operators a→b may be swapped (field-commutation test).
  static bool Commutes(const OperatorTraits& a, const OperatorTraits& b);

  /// Estimated cost of a chain of operators applied to `input_records`
  /// records: sum of per-operator cost × records reaching that operator.
  static double EstimateChainCost(const std::vector<OperatorTraits>& chain,
                                  double input_records = 1000.0);
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_OPTIMIZER_H_
