#ifndef WSIE_DATAFLOW_OPTIMIZER_H_
#define WSIE_DATAFLOW_OPTIMIZER_H_

#include <string>
#include <vector>

#include "dataflow/plan.h"

namespace wsie::dataflow {

/// One reordering decision made by the optimizer (for logging/tests).
struct OptimizationStep {
  std::string moved_earlier;
  std::string moved_later;
};

/// Report of an optimization pass.
struct OptimizationReport {
  std::vector<OptimizationStep> steps;
  double estimated_cost_before = 0.0;
  double estimated_cost_after = 0.0;
};

/// A pipeline stage emitted by the optimizer: operator node ids in chain
/// order. Records stream through interior nodes morsel-at-a-time without
/// `Dataset` materialization; only the group tail materializes (pipeline
/// breakers — aggregations, multi-input unions, sinks — are always group
/// boundaries).
struct FusionGroup {
  std::vector<int> nodes;
  bool fused() const { return nodes.size() > 1; }
};

/// A fusion group annotated for sharded execution (shard::ShardPlanner):
/// `record_parallel` groups may run on every shard over a record split of
/// their input; the rest are pipeline breakers pinned to the coordinator.
struct PlanFragment {
  std::vector<int> nodes;  ///< plan node ids, chain order
  bool record_parallel = false;
};

/// SOFA-style logical optimizer [23] for UDF-heavy flows.
///
/// Within each linear chain of record-at-a-time operators, adjacent
/// operators A→B are swapped when (a) their read/write field sets commute
/// (neither reads what the other writes, and they write disjoint fields) and
/// (b) the swap lowers the estimated chain cost — i.e., selective cheap
/// operators (filters) migrate ahead of expensive UDFs. The plan shape
/// (sources, sinks, fan-in/fan-out points) is preserved.
class Optimizer {
 public:
  /// Optimizes `plan` in place; returns what was done.
  OptimizationReport Optimize(Plan* plan) const;

  /// True if adjacent operators a→b may be swapped (field-commutation test).
  static bool Commutes(const OperatorTraits& a, const OperatorTraits& b);

  /// Estimated cost of a chain of operators applied to `input_records`
  /// records: sum of per-operator cost × records reaching that operator.
  static double EstimateChainCost(const std::vector<OperatorTraits>& chain,
                                  double input_records = 1000.0);

  /// Partitions the plan's operator nodes into pipeline stages. A maximal
  /// run of record-at-a-time operators along a linear single-consumer path
  /// forms one fused group (Split-Correctness: a per-record extractor may
  /// run independently on any split of its input); everything else is a
  /// singleton. With `fuse_record_chains` false every operator is its own
  /// stage (the unfused baseline toggle). Groups are in topological order;
  /// sources are not included.
  static std::vector<FusionGroup> ComputeFusionGroups(
      const Plan& plan, bool fuse_record_chains = true);

  /// The fusion groups annotated for sharded execution. A group is
  /// record-parallel when every operator is record-at-a-time (its output
  /// for any input split is the concatenation of per-record outputs —
  /// Split-Correctness), or when it is a lone operator with mergeable
  /// shard-local state (OperatorTraits::shard_local_state).
  static std::vector<PlanFragment> ComputeShardFragments(
      const Plan& plan, bool fuse_record_chains = true);
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_OPTIMIZER_H_
