#ifndef WSIE_DATAFLOW_PLAN_H_
#define WSIE_DATAFLOW_PLAN_H_

#include <string>
#include <vector>

#include "dataflow/operator.h"

namespace wsie::dataflow {

/// A logical data-flow plan: a DAG of operator nodes over named sources.
///
/// Nodes with multiple inputs see the concatenation of their inputs (union
/// semantics); the consolidated Fig. 2 flow is expressed this way. The plan
/// is purely logical — the Executor handles parallelization.
class Plan {
 public:
  static constexpr int kInvalidNode = -1;

  /// Adds a named source; data is bound at execution time. Returns node id.
  int AddSource(std::string name);

  /// Adds an operator node consuming `inputs`. Returns node id.
  int AddNode(OperatorPtr op, std::vector<int> inputs);

  /// Marks a node as a named sink (its output is returned by the executor).
  void MarkSink(int node, std::string name);

  struct Node {
    OperatorPtr op;           ///< null for sources
    std::string source_name;  ///< set for sources
    std::vector<int> inputs;
    std::string sink_name;    ///< non-empty for sinks
    bool is_source() const { return op == nullptr; }
  };

  const std::vector<Node>& nodes() const { return nodes_; }
  std::vector<Node>& mutable_nodes() { return nodes_; }
  size_t size() const { return nodes_.size(); }

  /// Number of operator (non-source) nodes — the paper counts its
  /// consolidated flow at 38 elementary operators.
  size_t num_operators() const;

  /// Nodes in a valid topological order (sources first). The plan is built
  /// append-only with backward edges, so node order is already topological.
  std::vector<int> TopologicalOrder() const;

  /// Returns consumers of each node (for optimizer chain detection).
  std::vector<std::vector<int>> Consumers() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_PLAN_H_
