#include "dataflow/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>

namespace wsie::dataflow {
namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view src) : src_(src) {}

  Result<Value> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != src_.size()) {
      return Error("trailing characters");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json offset " + std::to_string(pos_) +
                                   ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (src_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= src_.size()) return Error("unexpected end of input");
    char c = src_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return Value(std::move(s).value());
    }
    if (ConsumeLiteral("true")) return Value(true);
    if (ConsumeLiteral("false")) return Value(false);
    if (ConsumeLiteral("null")) return Value();
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value::Object object;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(object));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= src_.size() || src_[pos_] != '"') {
        return Error("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value;
      object[std::move(key).value()] = std::move(value).value();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(object));
      return Error("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value::Array array;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(array));
    for (;;) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      array.push_back(std::move(value).value());
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(array));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= src_.size()) return Error("bad escape");
        char e = src_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > src_.size()) return Error("bad \\u escape");
            std::string hex(src_.substr(pos_, 4));
            pos_ += 4;
            long code = std::strtol(hex.c_str(), nullptr, 16);
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              out.push_back('?');  // non-ASCII folded (corpus is ASCII)
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < src_.size() && (src_[pos_] == '-' || src_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(src_.substr(start, pos_ - start));
    if (is_double) {
      return Value(std::strtod(token.c_str(), nullptr));
    }
    return Value(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
  }

  std::string_view src_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> ParseJson(std::string_view json) {
  return JsonParser(json).Parse();
}

Status WriteJsonl(const std::string& path, const Dataset& records) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  for (const Record& r : records) {
    out << r.ToJson() << '\n';
  }
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  Dataset records;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto value = ParseJson(line);
    if (!value.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": " + value.status().message());
    }
    records.push_back(std::move(value).value());
  }
  return records;
}

}  // namespace wsie::dataflow
