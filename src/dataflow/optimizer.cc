#include "dataflow/optimizer.h"

#include <algorithm>

namespace wsie::dataflow {
namespace {

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

}  // namespace

bool Optimizer::Commutes(const OperatorTraits& a, const OperatorTraits& b) {
  if (!a.record_at_a_time || !b.record_at_a_time) return false;
  if (Intersects(a.writes, b.reads)) return false;
  if (Intersects(b.writes, a.reads)) return false;
  if (Intersects(a.writes, b.writes)) return false;
  return true;
}

double Optimizer::EstimateChainCost(const std::vector<OperatorTraits>& chain,
                                    double input_records) {
  double records = input_records;
  double cost = 0.0;
  for (const OperatorTraits& t : chain) {
    cost += records * t.cost_per_record;
    records *= t.selectivity;
  }
  return cost;
}

std::vector<FusionGroup> Optimizer::ComputeFusionGroups(
    const Plan& plan, bool fuse_record_chains) {
  const auto& nodes = plan.nodes();
  std::vector<std::vector<int>> consumers = plan.Consumers();
  std::vector<FusionGroup> groups;
  std::vector<bool> grouped(nodes.size(), false);
  // Plans are append-only with backward edges, so ascending id order is
  // topological and a chain's head is visited before its interior nodes.
  for (size_t id = 0; id < nodes.size(); ++id) {
    if (grouped[id] || nodes[id].is_source()) continue;
    FusionGroup group;
    group.nodes.push_back(static_cast<int>(id));
    grouped[id] = true;
    if (fuse_record_chains && nodes[id].op->traits().record_at_a_time) {
      int cur = static_cast<int>(id);
      for (;;) {
        // A sink must materialize its output; a fan-out point feeds several
        // consumers; both end the stage here.
        if (!nodes[static_cast<size_t>(cur)].sink_name.empty()) break;
        const auto& outs = consumers[static_cast<size_t>(cur)];
        if (outs.size() != 1) break;
        int next = outs[0];
        const Plan::Node& next_node = nodes[static_cast<size_t>(next)];
        if (next_node.inputs.size() != 1) break;  // union: pipeline breaker
        if (!next_node.op->traits().record_at_a_time) break;
        group.nodes.push_back(next);
        grouped[static_cast<size_t>(next)] = true;
        cur = next;
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<PlanFragment> Optimizer::ComputeShardFragments(
    const Plan& plan, bool fuse_record_chains) {
  const auto& nodes = plan.nodes();
  std::vector<FusionGroup> groups =
      ComputeFusionGroups(plan, fuse_record_chains);
  std::vector<PlanFragment> fragments;
  fragments.reserve(groups.size());
  for (FusionGroup& group : groups) {
    PlanFragment fragment;
    fragment.nodes = std::move(group.nodes);
    bool record_parallel = true;
    for (int id : fragment.nodes) {
      const OperatorTraits t = nodes[static_cast<size_t>(id)].op->traits();
      // Sharded fragments carry the exchange layer's hidden order tags
      // through the chain, so every operator must also pass through fields
      // it does not recognize.
      if (!t.record_at_a_time || !t.preserves_unknown_fields) {
        record_parallel = false;
        break;
      }
    }
    if (!record_parallel && fragment.nodes.size() == 1 &&
        nodes[static_cast<size_t>(fragment.nodes[0])]
            .op->traits()
            .shard_local_state) {
      record_parallel = true;
    }
    fragment.record_parallel = record_parallel;
    fragments.push_back(std::move(fragment));
  }
  return fragments;
}

OptimizationReport Optimizer::Optimize(Plan* plan) const {
  OptimizationReport report;
  auto& nodes = plan->mutable_nodes();
  std::vector<std::vector<int>> consumers = plan->Consumers();

  // Identify maximal linear chains: runs of operator nodes where each node
  // has exactly one input, that input has exactly one consumer, and neither
  // end is a source/sink boundary violation.
  std::vector<bool> visited(nodes.size(), false);
  for (size_t start = 0; start < nodes.size(); ++start) {
    if (visited[start] || nodes[start].is_source()) continue;
    const auto& n = nodes[start];
    if (n.inputs.size() != 1) continue;
    int input = n.inputs[0];
    // Chain start: predecessor is a source, a fan-out point, or non-linear.
    bool is_chain_start =
        nodes[static_cast<size_t>(input)].is_source() ||
        consumers[static_cast<size_t>(input)].size() != 1 ||
        nodes[static_cast<size_t>(input)].inputs.size() != 1;
    if (!is_chain_start) continue;
    // Walk the chain.
    std::vector<int> chain;
    int cur = static_cast<int>(start);
    for (;;) {
      chain.push_back(cur);
      visited[static_cast<size_t>(cur)] = true;
      if (consumers[static_cast<size_t>(cur)].size() != 1) break;
      int next = consumers[static_cast<size_t>(cur)][0];
      if (nodes[static_cast<size_t>(next)].is_source() ||
          nodes[static_cast<size_t>(next)].inputs.size() != 1)
        break;
      // Sinks terminate a movable region but may continue the chain; keep
      // sink nodes fixed by stopping at them.
      if (!nodes[static_cast<size_t>(cur)].sink_name.empty()) break;
      cur = next;
    }
    if (chain.size() < 2) continue;

    // Cost before.
    std::vector<OperatorTraits> traits;
    traits.reserve(chain.size());
    for (int id : chain) traits.push_back(nodes[static_cast<size_t>(id)].op->traits());
    report.estimated_cost_before += EstimateChainCost(traits);

    // Bubble-swap: move cheap selective operators earlier when commutable.
    std::vector<OperatorPtr> ops;
    ops.reserve(chain.size());
    for (int id : chain) ops.push_back(nodes[static_cast<size_t>(id)].op);
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i + 1 < ops.size(); ++i) {
        OperatorTraits ta = ops[i]->traits();
        OperatorTraits tb = ops[i + 1]->traits();
        if (!Commutes(ta, tb)) continue;
        // Swap improves iff c_b + s_b*c_a < c_a + s_a*c_b.
        double keep = ta.cost_per_record + ta.selectivity * tb.cost_per_record;
        double swap = tb.cost_per_record + tb.selectivity * ta.cost_per_record;
        if (swap + 1e-12 < keep) {
          report.steps.push_back(
              OptimizationStep{ops[i + 1]->name(), ops[i]->name()});
          std::swap(ops[i], ops[i + 1]);
          changed = true;
        }
      }
    }
    // Write the reordered operators back into the same node slots (the DAG
    // wiring is unchanged; only which operator sits at which position moves).
    for (size_t i = 0; i < chain.size(); ++i) {
      nodes[static_cast<size_t>(chain[i])].op = ops[i];
    }
    traits.clear();
    for (int id : chain) traits.push_back(nodes[static_cast<size_t>(id)].op->traits());
    report.estimated_cost_after += EstimateChainCost(traits);
  }
  if (report.steps.empty()) {
    report.estimated_cost_after = report.estimated_cost_before;
  }
  return report;
}

}  // namespace wsie::dataflow
