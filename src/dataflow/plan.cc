#include "dataflow/plan.h"

namespace wsie::dataflow {

int Plan::AddSource(std::string name) {
  Node node;
  node.source_name = std::move(name);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int Plan::AddNode(OperatorPtr op, std::vector<int> inputs) {
  Node node;
  node.op = std::move(op);
  node.inputs = std::move(inputs);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void Plan::MarkSink(int node, std::string name) {
  nodes_[static_cast<size_t>(node)].sink_name = std::move(name);
}

size_t Plan::num_operators() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (!node.is_source()) ++count;
  }
  return count;
}

std::vector<int> Plan::TopologicalOrder() const {
  std::vector<int> order(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

std::vector<std::vector<int>> Plan::Consumers() const {
  std::vector<std::vector<int>> consumers(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (int input : nodes_[i].inputs) {
      consumers[static_cast<size_t>(input)].push_back(static_cast<int>(i));
    }
  }
  return consumers;
}

}  // namespace wsie::dataflow
