#include "dataflow/value.h"

namespace wsie::dataflow {

const Value& Value::Field(const std::string& key) const {
  static const Value kNull;
  if (!is_object()) return kNull;
  const Object& obj = std::get<Object>(repr_);
  auto it = obj.find(key);
  return it == obj.end() ? kNull : it->second;
}

void Value::SetField(const std::string& key, Value value) {
  MutableObject()[key] = std::move(value);
}

bool Value::HasField(const std::string& key) const {
  return is_object() && std::get<Object>(repr_).count(key) > 0;
}

size_t Value::ByteSize() const {
  size_t bytes = sizeof(Value);
  if (is_string()) {
    bytes += std::get<std::string>(repr_).size();
  } else if (is_array()) {
    for (const Value& v : std::get<Array>(repr_)) bytes += v.ByteSize();
  } else if (is_object()) {
    for (const auto& [key, v] : std::get<Object>(repr_)) {
      bytes += key.size() + v.ByteSize();
    }
  }
  return bytes;
}

namespace {

void EscapeInto(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = AsBool() ? "true" : "false";
  } else if (is_int()) {
    out = std::to_string(AsInt());
  } else if (is_double()) {
    out = std::to_string(AsDouble());
  } else if (is_string()) {
    EscapeInto(AsString(), out);
  } else if (is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Value& v : AsArray()) {
      if (!first) out.push_back(',');
      first = false;
      out += v.ToJson();
    }
    out.push_back(']');
  } else if (is_object()) {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, v] : AsObject()) {
      if (!first) out.push_back(',');
      first = false;
      EscapeInto(key, out);
      out.push_back(':');
      out += v.ToJson();
    }
    out.push_back('}');
  }
  return out;
}

}  // namespace wsie::dataflow
