#include "dataflow/meteor.h"

#include <cctype>
#include <vector>

namespace wsie::dataflow {
namespace {

/// Token kinds of the script language.
enum class TokKind { kVar, kIdent, kString, kEquals, kSemicolon, kEnd };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Tok>> Lex() {
    std::vector<Tok> toks;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '=') {
        toks.push_back({TokKind::kEquals, "=", line_});
        ++pos_;
        continue;
      }
      if (c == ';') {
        toks.push_back({TokKind::kSemicolon, ";", line_});
        ++pos_;
        continue;
      }
      if (c == '\'') {
        size_t close = src_.find('\'', pos_ + 1);
        if (close == std::string_view::npos) {
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": unterminated string");
        }
        toks.push_back({TokKind::kString,
                        std::string(src_.substr(pos_ + 1, close - pos_ - 1)),
                        line_});
        pos_ = close + 1;
        continue;
      }
      if (c == '$') {
        size_t start = ++pos_;
        while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(
                                          src_[pos_])) ||
                                      src_[pos_] == '_'))
          ++pos_;
        if (pos_ == start) {
          return Status::InvalidArgument("line " + std::to_string(line_) +
                                         ": bare '$'");
        }
        toks.push_back(
            {TokKind::kVar, std::string(src_.substr(start, pos_ - start)),
             line_});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(
                                          src_[pos_])) ||
                                      src_[pos_] == '_'))
          ++pos_;
        toks.push_back(
            {TokKind::kIdent, std::string(src_.substr(start, pos_ - start)),
             line_});
        continue;
      }
      return Status::InvalidArgument("line " + std::to_string(line_) +
                                     ": unexpected character '" +
                                     std::string(1, c) + "'");
    }
    toks.push_back({TokKind::kEnd, "", line_});
    return toks;
  }

 private:
  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

void OperatorRegistry::Register(const std::string& name,
                                OperatorFactory factory) {
  factories_[name] = std::move(factory);
}

bool OperatorRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

Result<OperatorPtr> OperatorRegistry::Create(
    const std::string& name,
    const std::map<std::string, std::string>& args) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("unknown operator '" + name + "'");
  }
  return it->second(args);
}

Result<Plan> MeteorParser::Parse(std::string_view script) const {
  Lexer lexer(script);
  auto toks_result = lexer.Lex();
  if (!toks_result.ok()) return toks_result.status();
  const std::vector<Tok>& toks = toks_result.value();

  Plan plan;
  std::map<std::string, int> vars;  // $var -> node id
  size_t i = 0;

  auto error = [&](int line, const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line) + ": " + msg);
  };
  auto expect = [&](TokKind kind, const char* what) -> Result<Tok> {
    if (toks[i].kind != kind) {
      return Status::InvalidArgument("line " + std::to_string(toks[i].line) +
                                     ": expected " + what);
    }
    return toks[i++];
  };

  while (toks[i].kind != TokKind::kEnd) {
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "write") {
      int line = toks[i].line;
      ++i;
      auto var = expect(TokKind::kVar, "variable after 'write'");
      if (!var.ok()) return var.status();
      auto name = expect(TokKind::kString, "sink name");
      if (!name.ok()) return name.status();
      auto semi = expect(TokKind::kSemicolon, "';'");
      if (!semi.ok()) return semi.status();
      auto it = vars.find(var->text);
      if (it == vars.end()) return error(line, "undefined $" + var->text);
      plan.MarkSink(it->second, name->text);
      continue;
    }
    // Assignment: $var = ...
    auto lhs = expect(TokKind::kVar, "assignment or 'write'");
    if (!lhs.ok()) return lhs.status();
    auto eq = expect(TokKind::kEquals, "'='");
    if (!eq.ok()) return eq.status();
    if (toks[i].kind != TokKind::kIdent) {
      return error(toks[i].line, "expected operator name, 'read', or 'union'");
    }
    Tok head = toks[i++];
    int node = Plan::kInvalidNode;
    if (head.text == "read") {
      auto src = expect(TokKind::kString, "source name after 'read'");
      if (!src.ok()) return src.status();
      node = plan.AddSource(src->text);
    } else if (head.text == "union") {
      std::vector<int> inputs;
      while (toks[i].kind == TokKind::kVar) {
        auto it = vars.find(toks[i].text);
        if (it == vars.end())
          return error(toks[i].line, "undefined $" + toks[i].text);
        inputs.push_back(it->second);
        ++i;
      }
      if (inputs.size() < 2) {
        return error(head.line, "'union' needs at least two inputs");
      }
      // Identity pass-through operator implementing the union.
      class UnionOp : public Operator {
       public:
        std::string name() const override { return "union"; }
        OperatorTraits traits() const override {
          OperatorTraits t;
          t.record_at_a_time = false;
          return t;
        }
        Status ProcessBatch(const Dataset& in, Dataset* out) const override {
          out->insert(out->end(), in.begin(), in.end());
          return Status::OK();
        }
      };
      node = plan.AddNode(std::make_shared<UnionOp>(), inputs);
    } else {
      // Operator call: name $input [key 'value']*
      auto input = expect(TokKind::kVar, "input variable");
      if (!input.ok()) return input.status();
      auto it = vars.find(input->text);
      if (it == vars.end()) return error(head.line, "undefined $" + input->text);
      std::map<std::string, std::string> args;
      while (toks[i].kind == TokKind::kIdent) {
        std::string key = toks[i++].text;
        auto value = expect(TokKind::kString, "argument value");
        if (!value.ok()) return value.status();
        args[key] = value->text;
      }
      auto op = registry_->Create(head.text, args);
      if (!op.ok()) {
        return error(head.line, op.status().message());
      }
      node = plan.AddNode(op.value(), {it->second});
    }
    auto semi = expect(TokKind::kSemicolon, "';'");
    if (!semi.ok()) return semi.status();
    vars[lhs->text] = node;
  }
  return plan;
}

}  // namespace wsie::dataflow
