#ifndef WSIE_DATAFLOW_FAULT_INJECTION_H_
#define WSIE_DATAFLOW_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "dataflow/operator.h"

namespace wsie::dataflow {

/// Failure knobs for FaultInjectingOperator.
struct FaultInjectionOptions {
  uint64_t seed = 99;
  /// Probability that a morsel's first pass through this operator fails
  /// with a retryable Status (Unavailable) — the Sect. 4.2 failure mode of
  /// annotator crashes and network-induced time-outs inside a flow.
  double transient_prob = 0.05;
  /// Probability of a permanent (non-retryable) failure; such morsels fail
  /// the run no matter how many retries the executor grants.
  double permanent_prob = 0.0;
};

/// Wraps an operator and deterministically injects failures, for testing
/// and benchmarking the executor's task-level recovery.
///
/// Every decision is a pure function of the morsel's record content and the
/// seed — no shared RNG, no wall clock — so two runs at any DoP fail on the
/// same morsels. Transient failures model crash-once-then-work components:
/// the first pass over a morsel fails, the immediate re-run of that morsel
/// (same worker, same content) succeeds, which is exactly the contract of
/// the executor's retry loop. Decisions are made before the inner operator
/// runs, so a failing call never consumes or moves its input records.
class FaultInjectingOperator : public Operator {
 public:
  FaultInjectingOperator(OperatorPtr inner, FaultInjectionOptions options = {})
      : inner_(std::move(inner)), options_(options) {}

  std::string name() const override { return inner_->name() + "!fault"; }
  OperatorPackage package() const override { return inner_->package(); }
  OperatorTraits traits() const override { return inner_->traits(); }
  Status Open() override { return inner_->Open(); }
  void Close() override { inner_->Close(); }
  size_t MemoryBytesPerWorker() const override {
    return inner_->MemoryBytesPerWorker();
  }

  Status ProcessSpan(std::span<const Record> input,
                     Dataset* output) const override;
  Status ProcessOwned(std::span<Record> input, Dataset* output) const override;

  uint64_t transient_failures() const { return transient_failures_.load(); }
  uint64_t permanent_failures() const { return permanent_failures_.load(); }

 private:
  /// Returns OK, or the injected failure for a morsel with this content key.
  Status Decide(uint64_t key) const;
  static uint64_t KeyFor(std::span<const Record> input);

  OperatorPtr inner_;
  FaultInjectionOptions options_;
  mutable std::atomic<uint64_t> transient_failures_{0};
  mutable std::atomic<uint64_t> permanent_failures_{0};
};

}  // namespace wsie::dataflow

#endif  // WSIE_DATAFLOW_FAULT_INJECTION_H_
