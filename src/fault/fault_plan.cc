#include "fault/fault_plan.h"

#include <algorithm>

#include "common/rng.h"
#include "fault/wire_format.h"
#include "obs/metrics.h"

namespace wsie::fault {
namespace {

/// One registry counter per fault kind, labeled by the kind name; resolved
/// once so Decide() pays a single indexed Add per injected fault.
obs::Counter* InjectedCounterFor(FaultKind kind) {
  static std::array<obs::Counter*, kNumFaultKinds>* counters = [] {
    auto* c = new std::array<obs::Counter*, kNumFaultKinds>();
    for (int k = 0; k < kNumFaultKinds; ++k) {
      (*c)[static_cast<size_t>(k)] = obs::MetricsRegistry::Global().GetCounter(
          obs::WithLabel("wsie.fault.injected", "kind",
                         FaultKindName(static_cast<FaultKind>(k))));
    }
    return c;
  }();
  return (*counters)[static_cast<size_t>(kind)];
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kDnsError:
      return "dns-error";
    case FaultKind::kHttp5xx:
      return "http-5xx";
    case FaultKind::kSlowResponse:
      return "slow-response";
    case FaultKind::kTruncatedBody:
      return "truncated-body";
    case FaultKind::kGarbledBody:
      return "garbled-body";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config) {}

bool FaultPlan::HostIsFlaky(std::string_view host) const {
  // One seeded draw per host name; independent of everything else the plan
  // decides, so adding fault kinds never reshuffles host assignment.
  uint64_t h = wire::Mix(config_.seed, wire::Fnv1a(host));
  Rng rng(wire::Mix(h, 0xf1ab7ULL));
  return rng.NextDouble() < config_.flaky_host_frac;
}

const HostFaultProfile& FaultPlan::ProfileFor(std::string_view host) const {
  return HostIsFlaky(host) ? config_.flaky : config_.stable;
}

FaultDecision FaultPlan::Decide(std::string_view host, std::string_view path,
                                int attempt) const {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  FaultDecision decision;
  if (attempt >= config_.max_faulty_attempts) return decision;
  const HostFaultProfile& profile = ProfileFor(host);
  if (profile.TotalFaultProb() <= 0.0) return decision;

  // The decision RNG is derived from (seed, host, path, attempt) only:
  // replayable from any checkpoint, identical across thread schedules.
  Rng rng(wire::Mix(wire::Mix(config_.seed, wire::Fnv1a(host)),
                    wire::Mix(wire::Fnv1a(path),
                              static_cast<uint64_t>(attempt))));
  double u = rng.NextDouble();
  double cum = 0.0;
  auto hit = [&](double p) {
    cum += p;
    return u < cum;
  };
  if (hit(profile.timeout_prob)) {
    decision.kind = FaultKind::kTimeout;
    decision.extra_latency_ms = profile.timeout_latency_ms;
  } else if (hit(profile.dns_prob)) {
    decision.kind = FaultKind::kDnsError;
    decision.extra_latency_ms = profile.timeout_latency_ms * 0.25;
  } else if (hit(profile.http5xx_prob)) {
    decision.kind = FaultKind::kHttp5xx;
  } else if (hit(profile.slow_prob)) {
    decision.kind = FaultKind::kSlowResponse;
    decision.slow_factor = profile.slow_factor;
  } else if (hit(profile.truncate_prob)) {
    decision.kind = FaultKind::kTruncatedBody;
    decision.keep_frac = 0.2 + 0.6 * rng.NextDouble();
  } else if (hit(profile.garble_prob)) {
    decision.kind = FaultKind::kGarbledBody;
    decision.mangle_seed = rng.Next();
  }
  if (decision.kind == FaultKind::kNone) return decision;

  counts_[static_cast<size_t>(decision.kind)].fetch_add(
      1, std::memory_order_relaxed);
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  InjectedCounterFor(decision.kind)->Increment();
  if (config_.record_trace) {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace_.push_back(FaultEvent{std::string(host), std::string(path), attempt,
                                decision.kind});
  }
  return decision;
}

bool FaultPlan::RobotsAvailable(std::string_view host, int attempt) const {
  if (attempt >= config_.max_faulty_attempts) return true;
  const HostFaultProfile& profile = ProfileFor(host);
  if (profile.robots_flap_prob <= 0.0) return true;
  Rng rng(wire::Mix(wire::Mix(config_.seed, wire::Fnv1a(host)),
                    wire::Mix(0x0b075ULL, static_cast<uint64_t>(attempt))));
  return rng.NextDouble() >= profile.robots_flap_prob;
}

std::vector<FaultEvent> FaultPlan::SortedTrace() const {
  std::vector<FaultEvent> trace;
  {
    std::lock_guard<std::mutex> lock(trace_mu_);
    trace = trace_;
  }
  std::sort(trace.begin(), trace.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.host != b.host) return a.host < b.host;
              if (a.path != b.path) return a.path < b.path;
              if (a.attempt != b.attempt) return a.attempt < b.attempt;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return trace;
}

void FaultPlan::ClearTrace() {
  std::lock_guard<std::mutex> lock(trace_mu_);
  trace_.clear();
}

}  // namespace wsie::fault
