#ifndef WSIE_FAULT_FAULT_PLAN_H_
#define WSIE_FAULT_FAULT_PLAN_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wsie::fault {

/// The web-scale failure catalogue of Sect. 4.2, as injectable fault kinds.
enum class FaultKind : int {
  kNone = 0,
  kTimeout,        ///< fetch never returns; retryable (Status::Timeout)
  kDnsError,       ///< transient resolution failure; retryable (Unavailable)
  kHttp5xx,        ///< 503 from an overloaded server; retryable (Unavailable)
  kSlowResponse,   ///< response arrives, latency multiplied
  kTruncatedBody,  ///< connection dropped mid-body: 200 with a cut body
  kGarbledBody,    ///< bytes corrupted in flight: 200 with mangled markup
};

constexpr int kNumFaultKinds = static_cast<int>(FaultKind::kGarbledBody) + 1;

const char* FaultKindName(FaultKind kind);

/// Per-host failure probabilities, drawn once per (host, path, attempt).
/// All probabilities are independent of wall clock and thread schedule.
struct HostFaultProfile {
  double timeout_prob = 0.0;
  double dns_prob = 0.0;
  double http5xx_prob = 0.0;
  double slow_prob = 0.0;
  double truncate_prob = 0.0;
  double garble_prob = 0.0;
  /// Probability one robots.txt consultation attempt fails transiently
  /// (the flapping-robots failure mode).
  double robots_flap_prob = 0.0;
  double timeout_latency_ms = 1500.0;  ///< cost of a timed-out attempt
  double slow_factor = 8.0;            ///< latency multiplier when slow

  /// Sum of the body-level fault probabilities (diagnostics).
  double TotalFaultProb() const {
    return timeout_prob + dns_prob + http5xx_prob + slow_prob +
           truncate_prob + garble_prob;
  }
};

/// Plan parameters. The default flaky profile injects roughly a 5% fault
/// mix on flaky hosts — the acceptance bar of the fault-recovery bench.
struct FaultPlanConfig {
  uint64_t seed = 17;
  /// Fraction of hosts assigned the flaky profile (chosen by seeded hash of
  /// the host name); the rest get `stable` (default: no faults).
  double flaky_host_frac = 0.35;
  HostFaultProfile flaky = MakeDefaultFlakyProfile();
  HostFaultProfile stable;
  /// Attempts >= this index are always served clean: the simulated network
  /// is flaky, never permanently dead, so a bounded retry policy converges.
  /// Set above the retry budget to model permanently failing hosts.
  int max_faulty_attempts = 2;
  /// Record every non-kNone decision in the trace (determinism guard,
  /// bench reporting).
  bool record_trace = true;

  static HostFaultProfile MakeDefaultFlakyProfile() {
    HostFaultProfile p;
    p.timeout_prob = 0.02;
    p.dns_prob = 0.01;
    p.http5xx_prob = 0.02;
    p.slow_prob = 0.01;
    p.truncate_prob = 0.005;
    p.garble_prob = 0.005;
    p.robots_flap_prob = 0.10;
    return p;
  }
};

/// One fault verdict for a fetch attempt.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double extra_latency_ms = 0.0;  ///< added to the modeled latency
  double slow_factor = 1.0;       ///< multiplies the modeled latency
  double keep_frac = 1.0;         ///< body fraction kept when truncated
  uint64_t mangle_seed = 0;       ///< garbling RNG seed when garbled
};

/// One recorded injection (for the determinism guard and bench reports).
struct FaultEvent {
  std::string host;
  std::string path;
  int attempt = 0;
  FaultKind kind = FaultKind::kNone;

  friend bool operator==(const FaultEvent& a, const FaultEvent& b) {
    return a.host == b.host && a.path == b.path && a.attempt == b.attempt &&
           a.kind == b.kind;
  }
};

/// A deterministic, seeded fault-injection plan.
///
/// Every decision is a pure function of (plan seed, host, path, attempt):
/// no shared mutable RNG, no wall clock — so concurrent fetcher threads see
/// identical faults across runs and a killed-and-resumed crawl replays the
/// exact failure schedule it would have seen uninterrupted. Thread-safe.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config = {});

  const FaultPlanConfig& config() const { return config_; }

  /// True if `host` drew the flaky profile (seeded hash of the name).
  bool HostIsFlaky(std::string_view host) const;

  const HostFaultProfile& ProfileFor(std::string_view host) const;

  /// Decides the fault (if any) for fetch attempt `attempt` of
  /// host+path. Deterministic; records the decision when tracing is on.
  FaultDecision Decide(std::string_view host, std::string_view path,
                       int attempt) const;

  /// Whether robots.txt answers on this consultation attempt.
  bool RobotsAvailable(std::string_view host, int attempt) const;

  /// Total Decide() calls / non-kNone verdicts.
  uint64_t decisions() const { return decisions_.load(); }
  uint64_t faults_injected() const { return faults_injected_.load(); }
  uint64_t CountOf(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)].load();
  }

  /// Trace in (host, path, attempt) order — insertion order depends on
  /// thread scheduling, so comparisons use this stable ordering.
  std::vector<FaultEvent> SortedTrace() const;
  void ClearTrace();

 private:
  FaultPlanConfig config_;
  mutable std::array<std::atomic<uint64_t>, kNumFaultKinds> counts_{};
  mutable std::atomic<uint64_t> decisions_{0};
  mutable std::atomic<uint64_t> faults_injected_{0};
  mutable std::mutex trace_mu_;
  mutable std::vector<FaultEvent> trace_;
};

}  // namespace wsie::fault

#endif  // WSIE_FAULT_FAULT_PLAN_H_
