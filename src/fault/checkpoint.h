#ifndef WSIE_FAULT_CHECKPOINT_H_
#define WSIE_FAULT_CHECKPOINT_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace wsie::fault {

/// A durable, checksummed, multi-section snapshot container.
///
/// Components (CrawlDb, LinkDb, stats, breaker, corpora) each encode their
/// state into one named section; the container owns the framing: a magic
/// header, a version, length-prefixed sections in sorted name order (the
/// serialized bytes are a pure function of the logical state — the
/// byte-identical-resume guarantee rests on this), and a trailing FNV-1a
/// checksum. Deserialize rejects anything with a bad magic, a bad frame,
/// or a checksum mismatch, so a torn or bit-flipped file can never be
/// half-loaded into a crawl.
class Checkpoint {
 public:
  void SetSection(const std::string& name, std::string bytes) {
    sections_[name] = std::move(bytes);
  }

  /// nullptr when the section is absent.
  const std::string* FindSection(const std::string& name) const {
    auto it = sections_.find(name);
    return it == sections_.end() ? nullptr : &it->second;
  }

  size_t num_sections() const { return sections_.size(); }

  std::string Serialize() const;
  static Result<Checkpoint> Deserialize(std::string_view bytes);

  /// Writes atomically: serialize to `path`.tmp, then rename over `path`,
  /// so a crash mid-write leaves the previous checkpoint intact.
  Status WriteFile(const std::string& path) const;
  static Result<Checkpoint> ReadFile(const std::string& path);

 private:
  std::map<std::string, std::string> sections_;
};

}  // namespace wsie::fault

#endif  // WSIE_FAULT_CHECKPOINT_H_
