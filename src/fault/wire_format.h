#ifndef WSIE_FAULT_WIRE_FORMAT_H_
#define WSIE_FAULT_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wsie::fault::wire {

/// Minimal deterministic wire format shared by every checkpoint section
/// (CrawlDb, LinkDb, stats, breaker state, corpora). Integers are written
/// as decimal text, doubles as hexfloat (exact round-trip, so a resumed
/// crawl accumulates from bit-identical values), strings length-prefixed
/// (URLs and net text may contain any byte). Every Put appends a trailing
/// '\n' delimiter; Gets consume it and fail (return false) on malformed
/// input instead of crashing, which is what the corrupt-checkpoint
/// rejection path relies on.
void PutU64(std::string* out, uint64_t v);
void PutDouble(std::string* out, double v);
void PutString(std::string* out, std::string_view s);

bool GetU64(std::string_view* in, uint64_t* v);
bool GetDouble(std::string_view* in, double* v);
bool GetString(std::string_view* in, std::string* s);

/// FNV-1a over `bytes`; the checkpoint trailer checksum.
uint64_t Fnv1a(std::string_view bytes);

/// splitmix64-style combiner for deriving per-(host,path,attempt) fault
/// decision seeds from the plan seed.
uint64_t Mix(uint64_t a, uint64_t b);

}  // namespace wsie::fault::wire

#endif  // WSIE_FAULT_WIRE_FORMAT_H_
