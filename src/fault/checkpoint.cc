#include "fault/checkpoint.h"

#include <cstdio>
#include <fstream>

#include "fault/wire_format.h"

namespace wsie::fault {
namespace {

constexpr std::string_view kMagic = "WSIECKPT\n";
constexpr uint64_t kVersion = 1;

}  // namespace

std::string Checkpoint::Serialize() const {
  std::string out(kMagic);
  wire::PutU64(&out, kVersion);
  wire::PutU64(&out, sections_.size());
  for (const auto& [name, payload] : sections_) {
    wire::PutString(&out, name);
    wire::PutString(&out, payload);
  }
  wire::PutU64(&out, wire::Fnv1a(out));
  return out;
}

Result<Checkpoint> Checkpoint::Deserialize(std::string_view bytes) {
  if (bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::InvalidArgument("checkpoint: bad magic");
  }
  // The checksum line is the last token; everything before it is covered.
  if (bytes.empty() || bytes.back() != '\n') {
    return Status::InvalidArgument("checkpoint: truncated");
  }
  size_t checksum_start = bytes.find_last_of('\n', bytes.size() - 2);
  if (checksum_start == std::string_view::npos) {
    return Status::InvalidArgument("checkpoint: truncated");
  }
  ++checksum_start;
  std::string_view checksum_line = bytes.substr(checksum_start);
  uint64_t stored_checksum = 0;
  if (!wire::GetU64(&checksum_line, &stored_checksum)) {
    return Status::InvalidArgument("checkpoint: malformed checksum");
  }
  std::string_view covered = bytes.substr(0, checksum_start);
  if (wire::Fnv1a(covered) != stored_checksum) {
    return Status::InvalidArgument("checkpoint: checksum mismatch");
  }

  std::string_view in = covered;
  in.remove_prefix(kMagic.size());
  uint64_t version = 0;
  uint64_t count = 0;
  if (!wire::GetU64(&in, &version) || version != kVersion ||
      !wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("checkpoint: malformed header");
  }
  Checkpoint checkpoint;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::string payload;
    if (!wire::GetString(&in, &name) || !wire::GetString(&in, &payload)) {
      return Status::InvalidArgument("checkpoint: malformed section");
    }
    checkpoint.sections_[std::move(name)] = std::move(payload);
  }
  return checkpoint;
}

Status Checkpoint::WriteFile(const std::string& path) const {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("checkpoint: cannot open " + tmp);
    std::string bytes = Serialize();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::Internal("checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("checkpoint: rename to " + path + " failed");
  }
  return Status::OK();
}

Result<Checkpoint> Checkpoint::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("checkpoint: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return Deserialize(bytes);
}

}  // namespace wsie::fault
