#ifndef WSIE_FAULT_RETRY_POLICY_H_
#define WSIE_FAULT_RETRY_POLICY_H_

#include <cstdint>

#include "common/status.h"

namespace wsie::fault {

/// Exponential backoff with deterministic jitter.
///
/// Backoff is virtual time (it feeds the crawl's modeled latency; nothing
/// sleeps), and the jitter is drawn from an Rng seeded by (jitter_seed,
/// key, attempt) — so two runs, or a killed run and its resumption, charge
/// bit-identical backoff for the same URL. Retry eligibility delegates to
/// Status::IsRetryable(): time-outs and unavailability retry, permanent
/// errors (404s, bad input, exhausted budgets) do not.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 4;
  double base_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 5000.0;
  /// Jitter amplitude as a fraction of the exponential term; the jittered
  /// backoff lies in [term * (1 - f), term * (1 + f)].
  double jitter_frac = 0.2;
  uint64_t jitter_seed = 0xbac0ffULL;

  /// True when `status` is worth another attempt (attempt is 0-based: the
  /// attempt that just failed).
  bool ShouldRetry(const Status& status, int attempt) const {
    return status.IsRetryable() && attempt + 1 < max_attempts;
  }

  /// Virtual backoff before attempt `attempt + 1`, jittered by `key`
  /// (typically a hash of the URL). Deterministic.
  double BackoffMs(int attempt, uint64_t key) const;
};

}  // namespace wsie::fault

#endif  // WSIE_FAULT_RETRY_POLICY_H_
