#include "fault/retry_policy.h"

#include <algorithm>

#include "common/rng.h"
#include "fault/wire_format.h"

namespace wsie::fault {

double RetryPolicy::BackoffMs(int attempt, uint64_t key) const {
  double term = base_backoff_ms;
  for (int i = 0; i < attempt; ++i) term *= backoff_multiplier;
  term = std::min(term, max_backoff_ms);
  if (jitter_frac <= 0.0) return term;
  Rng rng(wire::Mix(jitter_seed,
                    wire::Mix(key, static_cast<uint64_t>(attempt))));
  double u = rng.NextDouble();  // [0, 1)
  return term * (1.0 - jitter_frac + 2.0 * jitter_frac * u);
}

}  // namespace wsie::fault
