#include "fault/circuit_breaker.h"

#include "fault/wire_format.h"
#include "obs/metrics.h"

namespace wsie::fault {

bool HostCircuitBreaker::Allow(const std::string& host, uint64_t tick) const {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(host);
  if (it == states_.end()) return true;
  return tick >= it->second.open_until_tick;
}

void HostCircuitBreaker::RecordBatch(const std::string& host,
                                     uint64_t failures, uint64_t successes,
                                     uint64_t tick) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  HostState& state = states_[host];
  if (successes > 0) {
    state.consecutive_failures = 0;
    return;
  }
  state.consecutive_failures += failures;
  if (state.consecutive_failures >= config_.failure_threshold) {
    state.open_until_tick = tick + config_.open_ticks;
    state.consecutive_failures = 0;
    ++times_opened_;
    static obs::Counter* opened = obs::MetricsRegistry::Global().GetCounter(
        "wsie.fault.breaker.opened");
    opened->Increment();
  }
}

uint64_t HostCircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

void HostCircuitBreaker::EncodeTo(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  wire::PutU64(out, times_opened_);
  wire::PutU64(out, states_.size());
  for (const auto& [host, state] : states_) {
    wire::PutString(out, host);
    wire::PutU64(out, state.consecutive_failures);
    wire::PutU64(out, state.open_until_tick);
  }
}

Status HostCircuitBreaker::DecodeFrom(std::string_view* in) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.clear();
  uint64_t count = 0;
  if (!wire::GetU64(in, &times_opened_) || !wire::GetU64(in, &count)) {
    return Status::InvalidArgument("breaker: malformed header");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string host;
    HostState state;
    if (!wire::GetString(in, &host) ||
        !wire::GetU64(in, &state.consecutive_failures) ||
        !wire::GetU64(in, &state.open_until_tick)) {
      return Status::InvalidArgument("breaker: malformed host entry");
    }
    states_[std::move(host)] = state;
  }
  return Status::OK();
}

}  // namespace wsie::fault
