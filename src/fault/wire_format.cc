#include "fault/wire_format.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace wsie::fault::wire {
namespace {

/// Consumes characters up to the next '\n' (which is also consumed) and
/// returns them in `token`. Fails when no delimiter is present.
bool NextToken(std::string_view* in, std::string_view* token) {
  size_t nl = in->find('\n');
  if (nl == std::string_view::npos) return false;
  *token = in->substr(0, nl);
  in->remove_prefix(nl + 1);
  return true;
}

}  // namespace

void PutU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
  out->push_back('\n');
}

void PutDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out->append(buf);
  out->push_back('\n');
}

void PutString(std::string* out, std::string_view s) {
  PutU64(out, s.size());
  out->append(s);
  out->push_back('\n');
}

bool GetU64(std::string_view* in, uint64_t* v) {
  std::string_view token;
  if (!NextToken(in, &token) || token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    uint64_t next = value * 10 + static_cast<uint64_t>(c - '0');
    if (next < value) return false;  // overflow
    value = next;
  }
  *v = value;
  return true;
}

bool GetDouble(std::string_view* in, double* v) {
  std::string_view token;
  if (!NextToken(in, &token) || token.empty()) return false;
  std::string buf(token);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *v = value;
  return true;
}

bool GetString(std::string_view* in, std::string* s) {
  uint64_t len = 0;
  if (!GetU64(in, &len)) return false;
  if (in->size() < len + 1) return false;  // payload + trailing '\n'
  s->assign(in->data(), len);
  if ((*in)[len] != '\n') return false;
  in->remove_prefix(len + 1);
  return true;
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace wsie::fault::wire
