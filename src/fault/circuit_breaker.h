#ifndef WSIE_FAULT_CIRCUIT_BREAKER_H_
#define WSIE_FAULT_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wsie::fault {

/// Breaker parameters. The breaker lives in the crawler's politeness layer:
/// it is consulted when a fetch batch is assembled and updated once per
/// batch, so its decisions are independent of fetcher-thread scheduling
/// (time is measured in batch ticks, not wall clock).
struct CircuitBreakerConfig {
  /// Consecutive failed fetches that trip a host's circuit; 0 disables the
  /// breaker entirely.
  uint64_t failure_threshold = 0;
  /// Batch ticks a tripped circuit stays open; URLs of that host are
  /// deferred, not fetched. After the cooldown the circuit closes with a
  /// clean failure count (half-open probing collapses to one clean batch).
  uint64_t open_ticks = 3;
};

/// Per-host circuit breaker. Thread-safe, though the crawler drives it
/// serially at batch boundaries; state serializes deterministically for
/// checkpoints (hosts in sorted order).
class HostCircuitBreaker {
 public:
  explicit HostCircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config) {}

  bool enabled() const { return config_.failure_threshold > 0; }
  const CircuitBreakerConfig& config() const { return config_; }

  /// True when `host` may be fetched at batch tick `tick`.
  bool Allow(const std::string& host, uint64_t tick) const;

  /// Folds one batch's outcome for `host` into the breaker: any success
  /// resets the streak, otherwise failures extend it; crossing the
  /// threshold opens the circuit until `tick + open_ticks`.
  void RecordBatch(const std::string& host, uint64_t failures,
                   uint64_t successes, uint64_t tick);

  uint64_t times_opened() const;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view* in);

 private:
  struct HostState {
    uint64_t consecutive_failures = 0;
    uint64_t open_until_tick = 0;  ///< circuit open while tick < this
  };

  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, HostState> states_;  // ordered: deterministic encode
  uint64_t times_opened_ = 0;
};

}  // namespace wsie::fault

#endif  // WSIE_FAULT_CIRCUIT_BREAKER_H_
