#include "shard/exchange.h"

#include <utility>

#include "obs/trace.h"

namespace wsie::shard {

const char* ExchangeKindName(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kForward:
      return "forward";
    case ExchangeKind::kHash:
      return "hash";
    case ExchangeKind::kBroadcast:
      return "broadcast";
    case ExchangeKind::kGather:
      return "gather";
  }
  return "unknown";
}

RecordPartitioner::RecordPartitioner(size_t num_shards, std::string key_field,
                                     HashRingOptions ring_options)
    : ring_(num_shards, ring_options), key_field_(std::move(key_field)) {}

std::string RecordPartitioner::KeyBytes(const dataflow::Record& record,
                                        const std::string& field) {
  const dataflow::Value& key = record.Field(field);
  if (key.is_string()) return key.AsString();
  if (key.is_int()) return std::to_string(key.AsInt());
  if (key.is_null()) return std::string();
  return key.ToJson();
}

int RecordPartitioner::ShardFor(const dataflow::Record& record) const {
  return ring_.ShardForKey(KeyBytes(record, key_field_));
}

void TagSerialOrder(dataflow::Dataset* records, int64_t* next_seq) {
  for (dataflow::Record& record : *records) {
    dataflow::Value::Array tag;
    tag.push_back(dataflow::Value((*next_seq)++));
    record.SetField(kSeqField, dataflow::Value(std::move(tag)));
  }
}

void MarkBroadcast(dataflow::Dataset* records) {
  for (dataflow::Record& record : *records) {
    record.SetField(kBcastField, dataflow::Value(true));
  }
}

void ExtendSeqTags(dataflow::Dataset* records) {
  // Records emitted from the same input record carry equal tags and are
  // adjacent (operators emit per input record, in input order), so a run
  // scan suffices to assign emission indices.
  size_t i = 0;
  while (i < records->size()) {
    size_t j = i;
    while (j + 1 < records->size() && !SeqLess((*records)[i], (*records)[j + 1]) &&
           !SeqLess((*records)[j + 1], (*records)[i])) {
      ++j;
    }
    for (size_t k = i; k <= j; ++k) {
      dataflow::Record& record = (*records)[k];
      dataflow::Value tag = record.Field(kSeqField);
      tag.MutableArray().push_back(
          dataflow::Value(static_cast<int64_t>(k - i)));
      record.SetField(kSeqField, std::move(tag));
    }
    i = j + 1;
  }
}

std::vector<dataflow::Dataset> PartitionDataset(
    dataflow::Dataset records, const RecordPartitioner& partitioner) {
  WSIE_TRACE_SPAN("exchange.partition");
  std::vector<dataflow::Dataset> shards(partitioner.num_shards());
  for (dataflow::Record& record : records) {
    const int shard = partitioner.ShardFor(record);
    shards[static_cast<size_t>(shard)].push_back(std::move(record));
  }
  return shards;
}

bool SeqLess(const dataflow::Record& a, const dataflow::Record& b) {
  const auto& ta = a.Field(kSeqField).AsArray();
  const auto& tb = b.Field(kSeqField).AsArray();
  const size_t n = ta.size() < tb.size() ? ta.size() : tb.size();
  for (size_t i = 0; i < n; ++i) {
    const int64_t va = ta[i].AsInt();
    const int64_t vb = tb[i].AsInt();
    if (va != vb) return va < vb;
  }
  return ta.size() < tb.size();
}

dataflow::Dataset MergeBySeq(std::vector<dataflow::Dataset> chunks) {
  WSIE_TRACE_SPAN("exchange.merge_by_seq");
  size_t total = 0;
  for (const dataflow::Dataset& chunk : chunks) total += chunk.size();
  dataflow::Dataset merged;
  merged.reserve(total);
  std::vector<size_t> cursor(chunks.size(), 0);
  for (;;) {
    int best = -1;
    for (size_t c = 0; c < chunks.size(); ++c) {
      if (cursor[c] >= chunks[c].size()) continue;
      if (best < 0 || SeqLess(chunks[c][cursor[c]],
                              chunks[static_cast<size_t>(best)]
                                    [cursor[static_cast<size_t>(best)]])) {
        best = static_cast<int>(c);
      }
      // Ties keep the lowest shard index: equal tags can only be broadcast
      // copies (identical derived records on every shard), and broadcast
      // dedup below keeps shard 0's copy.
    }
    if (best < 0) break;
    const size_t b = static_cast<size_t>(best);
    dataflow::Record& record = chunks[b][cursor[b]++];
    if (b != 0 && record.HasField(kBcastField)) continue;  // duplicate copy
    merged.push_back(std::move(record));
  }
  return merged;
}

void StripShardTags(dataflow::Dataset* records) {
  for (dataflow::Record& record : *records) {
    if (record.is_object()) {
      record.MutableObject().erase(kSeqField);
      record.MutableObject().erase(kBcastField);
    }
  }
}

}  // namespace wsie::shard
