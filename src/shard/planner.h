#ifndef WSIE_SHARD_PLANNER_H_
#define WSIE_SHARD_PLANNER_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/plan.h"
#include "shard/exchange.h"

namespace wsie::shard {

/// How one input edge of a fragment head is fed.
struct ExchangeEdge {
  ExchangeKind kind = ExchangeKind::kForward;
  /// Producing fragment index, or -1 when the edge reads a plan source.
  int producer_fragment = -1;
  std::string source_name;  ///< set when the edge reads a plan source
  std::string key;          ///< hash partition key (kHash edges)
  int channel = -1;         ///< transport channel (kHash/kBroadcast/kGather)
};

/// One pipeline fragment of a sharded plan: a fusion group that runs either
/// on every shard (`sharded`) or only on the coordinator (pipeline breakers
/// — unions, aggregations, plain sinks — whose cross-record state cannot be
/// split).
struct Fragment {
  std::vector<int> nodes;  ///< plan node ids, chain order
  bool sharded = false;
  std::vector<ExchangeEdge> inputs;  ///< in the head's declared input order
  std::string sink_name;             ///< non-empty when the tail is a sink
  /// Sharded sink fragments also gather their output to the coordinator so
  /// the execution result carries the sink dataset.
  int sink_gather_channel = -1;
  /// Field the fragment's output is still partitioned by ("" = unknown —
  /// the key was rewritten inside the fragment or inputs were mixed).
  std::string partition_field;
};

/// A plan partitioned into fragments joined by exchange edges.
struct ShardedPlan {
  std::vector<Fragment> fragments;  ///< topological order
  int num_channels = 0;
  size_t sharded_fragments = 0;
  /// True when any edge ships records shard-to-shard (a re-hash); such
  /// plans need all workers live concurrently.
  bool has_worker_exchange = false;
};

/// Decides where exchanges go. The rules, in the order applied per
/// fragment (see DESIGN.md "Sharded execution & exchange"):
///
///  1. A fusion group is shard-eligible when every operator is
///     record-at-a-time, or it is a lone operator with mergeable
///     shard-local state (`OperatorTraits::shard_local_state`, e.g. the
///     StoreSink tap). Everything else runs on the coordinator.
///  2. A shard-eligible group whose head has several inputs stays sharded
///     only if every input comes from the coordinator side (plan sources
///     or coordinator fragments) — the coordinator then controls the
///     serial tag order across all edges with one running counter.
///  3. An operator may declare `OperatorTraits::partition_key`: its group
///     then requires records co-located by that field. Conflicting
///     requirements inside one group demote it to the coordinator.
///  4. Edges: coordinator→shard is a hash scatter (or broadcast, for
///     sources named in `broadcast_sources`); shard→shard re-hashes only
///     when the required key differs from the key the stream is already
///     partitioned by, otherwise records stay put (forward);
///     shard→coordinator is a gather with the deterministic ordered merge.
class ShardPlanner {
 public:
  struct Options {
    /// Key used when a sharded fragment declares no requirement of its own.
    std::string default_partition_key = "id";
    /// Sources replicated to every shard instead of hash-partitioned
    /// (small dictionary-side inputs).
    std::set<std::string> broadcast_sources;
    bool fuse_pipelines = true;
  };

  static Result<ShardedPlan> Partition(const dataflow::Plan& plan,
                                       const Options& options);
};

}  // namespace wsie::shard

#endif  // WSIE_SHARD_PLANNER_H_
