#ifndef WSIE_SHARD_EXCHANGE_H_
#define WSIE_SHARD_EXCHANGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/value.h"
#include "shard/partitioner.h"

namespace wsie::shard {

/// Hidden lineage fields the exchange layer rides on records while they are
/// on the shard side of the runtime. Record-at-a-time operators in this
/// repo transform the fields they declare and pass everything else through,
/// so the tags survive a fused chain; they are stripped at every gather
/// point, before any record reaches a sink or a coordinator fragment —
/// sink output is byte-identical to the serial run.
inline constexpr char kSeqField[] = "__shard_seq";
inline constexpr char kBcastField[] = "__shard_bcast";

/// How records cross a fragment boundary in a sharded plan.
enum class ExchangeKind {
  kForward,    ///< stays where it is (shard-local or coordinator-local)
  kHash,       ///< repartition by key over the consistent-hash ring
  kBroadcast,  ///< replicate to every shard (small dictionary-side inputs)
  kGather,     ///< collect all shards' chunks into one ordered stream
};

const char* ExchangeKindName(ExchangeKind kind);

/// Routes records to shards: FNV-1a over the declared partition key field,
/// then a consistent-hash ring lookup. Missing or null keys hash the empty
/// string (all land on one shard — degenerate but deterministic).
class RecordPartitioner {
 public:
  RecordPartitioner(size_t num_shards, std::string key_field,
                    HashRingOptions ring_options = {});

  int ShardFor(const dataflow::Record& record) const;
  const std::string& key_field() const { return key_field_; }
  size_t num_shards() const { return ring_.num_shards(); }

  /// The byte string hashed for a record: strings verbatim, ints/doubles
  /// in canonical text form, anything else its JSON rendering.
  static std::string KeyBytes(const dataflow::Record& record,
                              const std::string& field);

 private:
  HashRing ring_;
  std::string key_field_;
};

/// Stamps each record with the next sequence tag `[*next_seq++]`. Called at
/// scatter points, in serial concatenation order, so the tag total-orders
/// every record of the scattered stream.
void TagSerialOrder(dataflow::Dataset* records, int64_t* next_seq);

/// Flags records as broadcast copies: every shard gets one, and the gather
/// merge keeps only shard 0's derived outputs.
void MarkBroadcast(dataflow::Dataset* records);

/// Extends each record's sequence tag with its local emission index before
/// a re-hash: a fan-out operator may have emitted several records with the
/// same tag, and after repartitioning by a different key those siblings can
/// land on different shards. The extra lexicographic level preserves their
/// relative emission order across the shuffle.
void ExtendSeqTags(dataflow::Dataset* records);

/// Splits `records` by partition key, preserving relative order per shard.
std::vector<dataflow::Dataset> PartitionDataset(
    dataflow::Dataset records, const RecordPartitioner& partitioner);

/// Lexicographic order on the hidden sequence tags.
bool SeqLess(const dataflow::Record& a, const dataflow::Record& b);

/// The deterministic ordered merge at a gather point: k-way merges chunks
/// (one per shard, each already tag-ordered) by sequence tag, tie-breaking
/// on the lower shard index, and dropping broadcast-derived records from
/// every shard but shard 0. The result is exactly the serial-run order
/// regardless of shard count or scheduling.
dataflow::Dataset MergeBySeq(std::vector<dataflow::Dataset> chunks);

/// Removes the hidden lineage fields.
void StripShardTags(dataflow::Dataset* records);

}  // namespace wsie::shard

#endif  // WSIE_SHARD_EXCHANGE_H_
