#ifndef WSIE_SHARD_WIRE_H_
#define WSIE_SHARD_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/value.h"

namespace wsie::shard {

/// Binary codec for `dataflow::Value` used by the multi-process transport.
///
/// JSON would not round-trip doubles exactly; this codec bit-casts them to
/// 8 little-endian bytes, so a record survives the wire byte-identical —
/// the split-correctness proofs compare serialized sink output across
/// transports, which only works with an exact codec (same discipline as
/// the fault::Checkpoint wire format).
///
/// Layout: one tag byte, then
///   null               -> (nothing)
///   bool               -> folded into the tag (kFalse / kTrue)
///   int64              -> zigzag LEB128 varint
///   double             -> 8 fixed little-endian bytes (bit pattern)
///   string             -> varint length + raw bytes
///   array              -> varint count + elements
///   object             -> varint count + (string key, value) pairs

void AppendVarint(uint64_t v, std::string* out);
bool ReadVarint(std::string_view* in, uint64_t* out);

void EncodeValue(const dataflow::Value& value, std::string* out);
/// Decodes one value from the front of `*in`, advancing it past the
/// consumed bytes. Rejects truncated or malformed input with a Status.
Status DecodeValue(std::string_view* in, dataflow::Value* out);

void EncodeDataset(const dataflow::Dataset& records, std::string* out);
Result<dataflow::Dataset> DecodeDataset(std::string_view bytes);

/// Control-channel record carrying one opaque binary blob (the CollectRemote
/// obs bundle rides the dataset framing this way — checksummed end to end by
/// the frame trailer plus the blob's own container checksum).
dataflow::Record BlobRecord(std::string bytes);
Result<std::string> BlobFromRecord(const dataflow::Record& record);

}  // namespace wsie::shard

#endif  // WSIE_SHARD_WIRE_H_
