#ifndef WSIE_SHARD_RUNTIME_H_
#define WSIE_SHARD_RUNTIME_H_

#include <chrono>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/plan.h"
#include "dataflow/value.h"
#include "obs/remote.h"
#include "shard/planner.h"
#include "shard/transport.h"

namespace wsie::shard {

/// Builds one plan instance per endpoint: shard ids 0..num_shards-1 are
/// workers, id == num_shards is the coordinator. Every instance must have
/// the same topology and deterministic operators (same inputs -> same
/// outputs); distinct instances give each shard its own operator state and
/// its own Open() cache entries — per-shard morsel schedulers, dictionaries,
/// and store segment directories fall out of this.
using PlanFactory = std::function<dataflow::Plan(int shard)>;

struct ShardOptions {
  size_t num_shards = 2;
  /// Field hash-partitioned at scatter points when no operator declares a
  /// key of its own (`OperatorTraits::partition_key`).
  std::string partition_key = "id";
  HashRingOptions ring;
  /// Sources replicated to every shard (small dictionary-side inputs).
  std::set<std::string> broadcast_sources;
  bool fuse_pipelines = true;
  /// Morsel-level parallelism inside each shard's own scheduler.
  size_t dop_per_shard = 1;
  /// Per-shard executor task retries (split-correctness under faults).
  int max_task_retries = 0;
  /// Per-shard plan instances are fresh objects each Run(), so the
  /// process-wide Open() cache cannot amortize anything across runs;
  /// default off to keep per-run start-up measurable (and bounded).
  bool cache_opens = false;
  /// Fork one process per shard and exchange over local socketpairs
  /// instead of running worker threads in-process.
  bool multiprocess = false;
  /// Run the worker loops one after another on the calling thread instead
  /// of concurrently — the documented single-core measurement mode: each
  /// shard's processing time is then uncontended wall time, so
  /// work-division speedup can be gated on a 1-core runner. Only valid for
  /// plans without shard-to-shard exchanges (the planner's
  /// `has_worker_exchange`); the coordinator still runs concurrently.
  bool sequential_workers = false;
  std::chrono::milliseconds transport_timeout{120000};
  /// Runs on each worker (in the worker's process) after its last
  /// fragment, before stats are reported — e.g. flushing a per-shard
  /// StoreSink into that shard's segment directory. In multiprocess mode
  /// this executes in the child, so it must communicate via the
  /// filesystem, not captured memory.
  std::function<Status(int shard)> per_shard_finish;
  /// Collect each worker's ObsBundle (metrics snapshot + trace streams)
  /// over the obs control channel after its last fragment, and merge/stitch
  /// them coordinator-side. Multiprocess mode only — in-process workers
  /// already share the global registry and recorder.
  bool collect_obs = true;
};

struct ShardWorkerStats {
  int shard = -1;
  double wall_seconds = 0.0;
  double open_seconds = 0.0;     ///< summed operator Open() time
  double process_seconds = 0.0;  ///< summed operator processing time
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  uint64_t task_retries = 0;
  Status status;

  /// Wire form for the stats control channel (multiprocess workers).
  dataflow::Record ToRecord() const;
  static ShardWorkerStats FromRecord(const dataflow::Record& record);
};

/// One row of the per-shard skew report: how much of the run's input each
/// shard processed (the fig5 per-shard load table).
struct ShardSkewRow {
  int shard = -1;
  uint64_t records_in = 0;
  double process_seconds = 0.0;
  double share = 0.0;  ///< records_in / total records_in across shards
};

/// The distributed-observability output of one sharded run.
struct ShardObsReport {
  /// True when worker bundles were collected (multiprocess + collect_obs).
  bool collected = false;
  std::vector<obs::ObsBundle> per_shard;  ///< one bundle per worker shard
  std::vector<int64_t> offsets_ns;        ///< clock re-base per worker
  uint64_t bundle_bytes = 0;              ///< encoded bundle bytes shipped
  obs::MetricsSnapshot merged;            ///< workers' snapshots, merged
  std::string stitched_trace_json;        ///< one Chrome trace, all pids
  obs::StitchReport stitch;
  std::vector<ShardSkewRow> skew;  ///< both modes, from worker stats
};

struct ShardExecutionResult {
  std::map<std::string, dataflow::Dataset> sink_outputs;
  std::vector<ShardWorkerStats> workers;
  size_t fragments = 0;
  size_t sharded_fragments = 0;
  uint64_t rows_shuffled = 0;
  uint64_t bytes_moved = 0;
  uint64_t exchange_messages = 0;
  double max_hash_skew = 0.0;
  double total_seconds = 0.0;
  uint64_t trace_id = 0;  ///< the run's distributed trace id
  ShardObsReport obs;
};

/// Executes a plan across N shards. The planner splits the plan into
/// fragments at fusion-group boundaries; record-parallel fragments run on
/// every shard over their hash partition, pipeline breakers run on the
/// coordinator, and the exchange layer moves records between them with
/// hidden serial-order tags so every gather reproduces the exact serial
/// order — sink outputs are byte-identical to a plain Executor run
/// regardless of shard count, scheduling, or transport.
class ShardRuntime {
 public:
  explicit ShardRuntime(ShardOptions options);

  Result<ShardExecutionResult> Run(
      const PlanFactory& factory,
      const std::map<std::string, dataflow::Dataset>& sources) const;

  const ShardOptions& options() const { return options_; }

 private:
  Result<ShardExecutionResult> RunInProcess(
      const PlanFactory& factory, const ShardedPlan& splan,
      const dataflow::Plan& coordinator_plan,
      const std::map<std::string, dataflow::Dataset>& sources) const;
  Result<ShardExecutionResult> RunMultiProcess(
      const PlanFactory& factory, const ShardedPlan& splan,
      const dataflow::Plan& coordinator_plan,
      const std::map<std::string, dataflow::Dataset>& sources) const;

  ShardOptions options_;
};

}  // namespace wsie::shard

#endif  // WSIE_SHARD_RUNTIME_H_
