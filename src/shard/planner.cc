#include "shard/planner.h"

#include <map>

#include "dataflow/optimizer.h"

namespace wsie::shard {
namespace {

/// The partition key a fragment's operators require ("" = none). Returns
/// false on conflicting requirements.
bool RequiredKey(const dataflow::Plan& plan, const std::vector<int>& nodes,
                 std::string* key) {
  key->clear();
  for (int id : nodes) {
    const auto& op = plan.nodes()[static_cast<size_t>(id)].op;
    if (op == nullptr) continue;
    const std::string required = op->traits().partition_key;
    if (required.empty()) continue;
    if (!key->empty() && *key != required) return false;
    *key = required;
  }
  return true;
}

bool WritesField(const dataflow::Plan& plan, const std::vector<int>& nodes,
                 const std::string& field) {
  if (field.empty()) return false;
  for (int id : nodes) {
    const auto& op = plan.nodes()[static_cast<size_t>(id)].op;
    if (op != nullptr && op->traits().writes.count(field) > 0) return true;
  }
  return false;
}

}  // namespace

Result<ShardedPlan> ShardPlanner::Partition(const dataflow::Plan& plan,
                                            const Options& options) {
  const auto& nodes = plan.nodes();
  std::vector<dataflow::PlanFragment> groups =
      dataflow::Optimizer::ComputeShardFragments(plan, options.fuse_pipelines);

  ShardedPlan sharded;
  sharded.fragments.reserve(groups.size());
  std::map<int, int> node_to_fragment;
  for (size_t g = 0; g < groups.size(); ++g) {
    Fragment fragment;
    fragment.nodes = groups[g].nodes;
    fragment.sharded = groups[g].record_parallel;
    fragment.sink_name =
        nodes[static_cast<size_t>(fragment.nodes.back())].sink_name;
    for (int id : fragment.nodes) node_to_fragment[id] = static_cast<int>(g);
    sharded.fragments.push_back(std::move(fragment));
  }

  // Pass 1: demote shard-eligible fragments that cannot run split. Fragments
  // are in topological order, so producers are decided before consumers.
  std::vector<std::string> required(sharded.fragments.size());
  for (size_t f = 0; f < sharded.fragments.size(); ++f) {
    Fragment& fragment = sharded.fragments[f];
    if (!fragment.sharded) continue;
    if (!RequiredKey(plan, fragment.nodes, &required[f])) {
      fragment.sharded = false;  // conflicting co-location requirements
      continue;
    }
    const auto& head_inputs =
        nodes[static_cast<size_t>(fragment.nodes.front())].inputs;
    if (head_inputs.size() > 1) {
      for (int input : head_inputs) {
        const auto& producer = nodes[static_cast<size_t>(input)];
        if (producer.is_source()) continue;
        const int pf = node_to_fragment.at(input);
        if (sharded.fragments[static_cast<size_t>(pf)].sharded) {
          // Rule 2: a multi-input head fed from the shard side has no
          // single serial tag order; run it on the coordinator instead.
          fragment.sharded = false;
          break;
        }
      }
    }
  }

  // Pass 2: assign exchange kinds, keys, and channels per head input edge.
  for (size_t f = 0; f < sharded.fragments.size(); ++f) {
    Fragment& fragment = sharded.fragments[f];
    const auto& head_inputs =
        nodes[static_cast<size_t>(fragment.nodes.front())].inputs;
    std::string scatter_key =
        required[f].empty() ? options.default_partition_key : required[f];
    bool uniform_partition = true;
    for (int input : head_inputs) {
      ExchangeEdge edge;
      const auto& producer = nodes[static_cast<size_t>(input)];
      if (producer.is_source()) {
        edge.source_name = producer.source_name;
        if (fragment.sharded) {
          edge.kind = options.broadcast_sources.count(producer.source_name)
                          ? ExchangeKind::kBroadcast
                          : ExchangeKind::kHash;
          if (edge.kind == ExchangeKind::kHash) edge.key = scatter_key;
          edge.channel = sharded.num_channels++;
        }
        if (edge.kind != ExchangeKind::kHash) uniform_partition = false;
      } else {
        edge.producer_fragment = node_to_fragment.at(input);
        const Fragment& from =
            sharded.fragments[static_cast<size_t>(edge.producer_fragment)];
        if (fragment.sharded && from.sharded) {
          if (!required[f].empty() && required[f] != from.partition_field) {
            // Key requirements differ across the boundary: re-hash.
            edge.kind = ExchangeKind::kHash;
            edge.key = required[f];
            edge.channel = sharded.num_channels++;
            sharded.has_worker_exchange = true;
          } else {
            edge.kind = ExchangeKind::kForward;
            scatter_key = from.partition_field;
          }
        } else if (fragment.sharded) {
          edge.kind = ExchangeKind::kHash;
          edge.key = scatter_key;
          edge.channel = sharded.num_channels++;
        } else if (from.sharded) {
          edge.kind = ExchangeKind::kGather;
          edge.channel = sharded.num_channels++;
        }
      }
      fragment.inputs.push_back(std::move(edge));
    }
    if (fragment.sharded) {
      fragment.partition_field = uniform_partition ? scatter_key : "";
      if (WritesField(plan, fragment.nodes, fragment.partition_field)) {
        fragment.partition_field.clear();
      }
      if (!fragment.sink_name.empty()) {
        fragment.sink_gather_channel = sharded.num_channels++;
      }
      ++sharded.sharded_fragments;
    }
  }
  return sharded;
}

}  // namespace wsie::shard
