#include "shard/wire.h"

#include <cstring>

namespace wsie::shard {
namespace {

enum Tag : uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kInt = 3,
  kDouble = 4,
  kString = 5,
  kArray = 6,
  kObject = 7,
};

// Nesting guard: real records are a handful of levels deep; a decode that
// recurses past this is malformed (or adversarial) input.
constexpr int kMaxDepth = 128;

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

Status Truncated() { return Status::InvalidArgument("wire: truncated input"); }

Status DecodeValueImpl(std::string_view* in, dataflow::Value* out, int depth) {
  if (depth > kMaxDepth) {
    return Status::InvalidArgument("wire: nesting too deep");
  }
  if (in->empty()) return Truncated();
  const uint8_t tag = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  switch (tag) {
    case kNull:
      *out = dataflow::Value();
      return Status::OK();
    case kFalse:
      *out = dataflow::Value(false);
      return Status::OK();
    case kTrue:
      *out = dataflow::Value(true);
      return Status::OK();
    case kInt: {
      uint64_t raw = 0;
      if (!ReadVarint(in, &raw)) return Truncated();
      *out = dataflow::Value(UnZigZag(raw));
      return Status::OK();
    }
    case kDouble: {
      if (in->size() < 8) return Truncated();
      uint64_t bits = 0;
      for (int i = 7; i >= 0; --i) {
        bits = (bits << 8) | static_cast<unsigned char>((*in)[i]);
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      in->remove_prefix(8);
      *out = dataflow::Value(d);
      return Status::OK();
    }
    case kString: {
      uint64_t len = 0;
      if (!ReadVarint(in, &len)) return Truncated();
      if (len > in->size()) return Truncated();
      *out = dataflow::Value(std::string(in->substr(0, len)));
      in->remove_prefix(len);
      return Status::OK();
    }
    case kArray: {
      uint64_t count = 0;
      if (!ReadVarint(in, &count)) return Truncated();
      if (count > in->size()) return Truncated();  // >= 1 byte per element
      dataflow::Value::Array array;
      array.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        dataflow::Value element;
        WSIE_RETURN_NOT_OK(DecodeValueImpl(in, &element, depth + 1));
        array.push_back(std::move(element));
      }
      *out = dataflow::Value(std::move(array));
      return Status::OK();
    }
    case kObject: {
      uint64_t count = 0;
      if (!ReadVarint(in, &count)) return Truncated();
      if (count > in->size()) return Truncated();
      dataflow::Value::Object object;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t len = 0;
        if (!ReadVarint(in, &len)) return Truncated();
        if (len > in->size()) return Truncated();
        std::string key(in->substr(0, len));
        in->remove_prefix(len);
        dataflow::Value value;
        WSIE_RETURN_NOT_OK(DecodeValueImpl(in, &value, depth + 1));
        object.emplace(std::move(key), std::move(value));
      }
      *out = dataflow::Value(std::move(object));
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("wire: unknown tag " +
                                     std::to_string(tag));
  }
}

}  // namespace

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool ReadVarint(std::string_view* in, uint64_t* out) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (in->empty()) return false;
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // varint longer than 64 bits
}

void EncodeValue(const dataflow::Value& value, std::string* out) {
  if (value.is_null()) {
    out->push_back(static_cast<char>(kNull));
  } else if (value.is_bool()) {
    out->push_back(static_cast<char>(value.AsBool() ? kTrue : kFalse));
  } else if (value.is_int()) {
    out->push_back(static_cast<char>(kInt));
    AppendVarint(ZigZag(value.AsInt()), out);
  } else if (value.is_double()) {
    out->push_back(static_cast<char>(kDouble));
    uint64_t bits = 0;
    const double d = value.AsDouble();
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
    }
  } else if (value.is_string()) {
    out->push_back(static_cast<char>(kString));
    const std::string& s = value.AsString();
    AppendVarint(s.size(), out);
    out->append(s);
  } else if (value.is_array()) {
    out->push_back(static_cast<char>(kArray));
    const auto& array = value.AsArray();
    AppendVarint(array.size(), out);
    for (const dataflow::Value& element : array) EncodeValue(element, out);
  } else {
    out->push_back(static_cast<char>(kObject));
    const auto& object = value.AsObject();
    AppendVarint(object.size(), out);
    for (const auto& [key, field] : object) {
      AppendVarint(key.size(), out);
      out->append(key);
      EncodeValue(field, out);
    }
  }
}

Status DecodeValue(std::string_view* in, dataflow::Value* out) {
  return DecodeValueImpl(in, out, 0);
}

void EncodeDataset(const dataflow::Dataset& records, std::string* out) {
  AppendVarint(records.size(), out);
  for (const dataflow::Record& record : records) EncodeValue(record, out);
}

Result<dataflow::Dataset> DecodeDataset(std::string_view bytes) {
  uint64_t count = 0;
  if (!ReadVarint(&bytes, &count)) return Truncated();
  if (count > bytes.size()) {  // every record takes >= 1 byte
    return Status::InvalidArgument("wire: record count exceeds payload");
  }
  dataflow::Dataset records;
  records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    dataflow::Record record;
    WSIE_RETURN_NOT_OK(DecodeValue(&bytes, &record));
    records.push_back(std::move(record));
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("wire: trailing bytes after dataset");
  }
  return records;
}

dataflow::Record BlobRecord(std::string bytes) {
  dataflow::Record record;
  record.SetField("blob", dataflow::Value(std::move(bytes)));
  return record;
}

Result<std::string> BlobFromRecord(const dataflow::Record& record) {
  const dataflow::Value& blob = record.Field("blob");
  if (!blob.is_string()) {
    return Status::InvalidArgument("wire: record carries no blob field");
  }
  return blob.AsString();
}

}  // namespace wsie::shard
