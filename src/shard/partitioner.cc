#include "shard/partitioner.h"

#include <algorithm>
#include <string>

namespace wsie::shard {

HashRing::HashRing(size_t num_shards, HashRingOptions options)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  const size_t vnodes = std::max<size_t>(1, options.vnodes_per_shard);
  points_.reserve(num_shards_ * vnodes);
  std::string label;
  for (size_t shard = 0; shard < num_shards_; ++shard) {
    for (size_t vnode = 0; vnode < vnodes; ++vnode) {
      // The point position depends only on (shard, vnode): adding shards
      // appends new points without moving existing ones.
      label.assign("shard-");
      label += std::to_string(shard);
      label += '#';
      label += std::to_string(vnode);
      points_.push_back(
          Point{Mix64(Fnv1a64(label)), static_cast<int>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.shard < b.shard;  // deterministic tie-break on collisions
  });
}

int HashRing::ShardForHash(uint64_t hash) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, uint64_t h) { return p.position < h; });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->shard;
}

}  // namespace wsie::shard
