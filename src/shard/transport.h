#ifndef WSIE_SHARD_TRANSPORT_H_
#define WSIE_SHARD_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/value.h"
#include "shard/wire.h"

namespace wsie::shard {

/// Stats channel: workers report their ShardWorkerStats here after the last
/// fragment; negative so it can never collide with a planner channel.
inline constexpr int kStatsChannel = -1;

/// Obs channel: workers ship their encoded ObsBundle (TraceRecorder ring +
/// MetricsSnapshot) here after the stats frame — the CollectRemote hop.
/// Negative, so excluded from traffic/skew stats like all control traffic.
inline constexpr int kObsChannel = -2;

/// Aggregate traffic seen by a transport. `max_hash_skew` is the worst
/// max/mean row ratio across destinations of any single channel — the skew
/// a bad partition key produces.
struct TransportStats {
  uint64_t messages = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  double max_hash_skew = 0.0;
};

/// Point-to-point dataset channels between the coordinator (endpoint id ==
/// num_shards) and the worker shards (ids 0..num_shards-1). A message is
/// addressed by (channel, from, to); Recv blocks until the matching message
/// arrives, the deadline passes, or the transport is aborted. Messages on
/// the same address are delivered in send order.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status Send(int channel, int from, int to,
                      dataflow::Dataset records) = 0;
  virtual Result<dataflow::Dataset> Recv(int channel, int from, int to) = 0;

  /// Fails all current and future Recv calls with `status` — called when a
  /// worker dies so its peers unblock instead of waiting out the deadline.
  virtual void Abort(Status status) = 0;

  TransportStats Stats() const;

 protected:
  /// Records one message for the stats/skew accounting. Channels < 0
  /// (control traffic) are not counted.
  void RecordTraffic(int channel, int to, size_t num_shards, size_t rows,
                     size_t bytes);

 private:
  mutable std::mutex stats_mu_;
  TransportStats stats_;
  /// rows per (channel, destination shard) — skew is computed per channel.
  std::map<std::pair<int, int>, uint64_t> channel_dest_rows_;
  std::map<int, size_t> channel_width_;
};

/// The in-process transport: one mailbox per (channel, from, to) behind a
/// mutex. Datasets move through without serialization; `bytes` counts
/// their in-memory footprint so skew/bytes metrics stay comparable with
/// the socket transport.
class InProcessTransport : public Transport {
 public:
  InProcessTransport(size_t num_shards, std::chrono::milliseconds timeout);

  Status Send(int channel, int from, int to,
              dataflow::Dataset records) override;
  Result<dataflow::Dataset> Recv(int channel, int from, int to) override;
  void Abort(Status status) override;

 private:
  const size_t num_shards_;
  const std::chrono::milliseconds timeout_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::tuple<int, int, int>, std::deque<dataflow::Dataset>> boxes_;
  Status abort_status_;
  bool aborted_ = false;
};

/// Framed messages over a stream socket:
///   u32 magic | i32 channel | i32 from | i32 to | u32 rows |
///   u64 trace_id | u64 parent_span | u64 payload length |
///   payload (wire-codec dataset) | u64 FNV-1a(payload)
/// WriteFrame/ReadFrame handle short reads/writes; ReadFrame verifies the
/// checksum and rejects malformed headers. The (trace_id, parent_span)
/// pair is the distributed trace context: every frame a transport sends is
/// stamped with the process's current context, and a worker whose context
/// is still empty adopts the pair from the first frame it receives — so
/// shard-fragment spans carry causal parents even when the worker did not
/// inherit the context across fork.
struct Frame {
  int channel = 0;
  int from = 0;
  int to = 0;
  uint32_t rows = 0;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  std::string payload;
};

Status WriteFrame(int fd, const Frame& frame);
Result<Frame> ReadFrame(int fd);

/// Worker-side endpoint of the socketpair transport: one full-duplex fd to
/// the coordinator hub, which relays shard-to-shard frames. Out-of-order
/// arrivals (another channel's frame first) are parked until asked for.
class SocketTransport : public Transport {
 public:
  SocketTransport(int fd, size_t num_shards);

  Status Send(int channel, int from, int to,
              dataflow::Dataset records) override;
  Result<dataflow::Dataset> Recv(int channel, int from, int to) override;
  void Abort(Status status) override;

 private:
  const int fd_;
  const size_t num_shards_;
  std::map<std::tuple<int, int, int>, std::deque<dataflow::Dataset>> parked_;
  Status abort_status_;
};

/// Coordinator-side hub over one socketpair per worker: owns all fds,
/// relays worker→worker frames, and parks worker→coordinator frames until
/// Recv asks for them. Single-threaded — the coordinator loop drives it —
/// with non-blocking fds and per-worker outbound queues so a relay never
/// deadlocks against a worker that is itself mid-send.
class HubTransport : public Transport {
 public:
  HubTransport(std::vector<int> worker_fds,
               std::chrono::milliseconds timeout);
  ~HubTransport() override;

  Status Send(int channel, int from, int to,
              dataflow::Dataset records) override;
  Result<dataflow::Dataset> Recv(int channel, int from, int to) override;
  void Abort(Status status) override;

 private:
  /// One poll round: flush pending outbound bytes, read whatever arrived,
  /// park or relay complete frames. `wait` bounds the poll blocking time.
  Status Pump(std::chrono::milliseconds wait);

  std::vector<int> fds_;
  const size_t num_shards_;
  const std::chrono::milliseconds timeout_;
  std::vector<std::string> inbuf_;   ///< partial inbound frame per worker
  std::vector<std::string> outbuf_;  ///< pending outbound bytes per worker
  std::vector<bool> closed_;
  std::map<std::tuple<int, int, int>, std::deque<dataflow::Dataset>> parked_;
  Status abort_status_;
};

}  // namespace wsie::shard

#endif  // WSIE_SHARD_TRANSPORT_H_
