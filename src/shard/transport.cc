#include "shard/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/trace.h"
#include "shard/partitioner.h"

namespace wsie::shard {
namespace {

constexpr uint32_t kFrameMagic = 0x57535846;  // "WSXF"
// magic, channel, from, to, rows, trace_id, parent_span, payload length.
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 4 + 8 + 8 + 8;
constexpr size_t kPayloadLenOffset = 36;
constexpr size_t kTrailerBytes = 8;
constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderBytes + frame.payload.size() + kTrailerBytes);
  PutU32(kFrameMagic, &out);
  PutU32(static_cast<uint32_t>(frame.channel), &out);
  PutU32(static_cast<uint32_t>(frame.from), &out);
  PutU32(static_cast<uint32_t>(frame.to), &out);
  PutU32(frame.rows, &out);
  PutU64(frame.trace_id, &out);
  PutU64(frame.parent_span, &out);
  PutU64(frame.payload.size(), &out);
  out.append(frame.payload);
  PutU64(Fnv1a64(frame.payload), &out);
  return out;
}

/// Parses one complete frame from the front of `buf`, erasing its bytes.
/// Returns true when a frame was extracted; `*error` is set on corruption.
bool ExtractFrame(std::string* buf, Frame* frame, Status* error) {
  if (buf->size() < kHeaderBytes) return false;
  const char* p = buf->data();
  if (GetU32(p) != kFrameMagic) {
    *error = Status::InvalidArgument("transport: bad frame magic");
    return false;
  }
  const uint64_t payload_len = GetU64(p + kPayloadLenOffset);
  if (payload_len > kMaxPayloadBytes) {
    *error = Status::InvalidArgument("transport: oversized frame");
    return false;
  }
  const size_t total = kHeaderBytes + payload_len + kTrailerBytes;
  if (buf->size() < total) return false;
  frame->channel = static_cast<int32_t>(GetU32(p + 4));
  frame->from = static_cast<int32_t>(GetU32(p + 8));
  frame->to = static_cast<int32_t>(GetU32(p + 12));
  frame->rows = GetU32(p + 16);
  frame->trace_id = GetU64(p + 20);
  frame->parent_span = GetU64(p + 28);
  frame->payload.assign(p + kHeaderBytes, payload_len);
  if (GetU64(p + kHeaderBytes + payload_len) != Fnv1a64(frame->payload)) {
    *error = Status::InvalidArgument("transport: frame checksum mismatch");
    return false;
  }
  buf->erase(0, total);
  return true;
}

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("transport: send failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvExact(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("transport: recv failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) return Status::Unavailable("transport: peer closed");
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

size_t DatasetBytes(const dataflow::Dataset& records) {
  size_t bytes = 0;
  for (const dataflow::Record& record : records) bytes += record.ByteSize();
  return bytes;
}

}  // namespace

TransportStats Transport::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TransportStats stats = stats_;
  for (const auto& [channel, width] : channel_width_) {
    uint64_t total = 0;
    uint64_t max_rows = 0;
    for (size_t dest = 0; dest < width; ++dest) {
      auto it = channel_dest_rows_.find({channel, static_cast<int>(dest)});
      const uint64_t rows = it == channel_dest_rows_.end() ? 0 : it->second;
      total += rows;
      max_rows = std::max(max_rows, rows);
    }
    if (total == 0) continue;
    const double mean =
        static_cast<double>(total) / static_cast<double>(width);
    stats.max_hash_skew =
        std::max(stats.max_hash_skew, static_cast<double>(max_rows) / mean);
  }
  return stats;
}

void Transport::RecordTraffic(int channel, int to, size_t num_shards,
                              size_t rows, size_t bytes) {
  if (channel < 0) return;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.messages;
  stats_.rows += rows;
  stats_.bytes += bytes;
  if (to >= 0 && static_cast<size_t>(to) < num_shards) {
    channel_dest_rows_[{channel, to}] += rows;
    channel_width_[channel] = num_shards;
  }
}

InProcessTransport::InProcessTransport(size_t num_shards,
                                       std::chrono::milliseconds timeout)
    : num_shards_(num_shards), timeout_(timeout) {}

Status InProcessTransport::Send(int channel, int from, int to,
                                dataflow::Dataset records) {
  RecordTraffic(channel, to, num_shards_, records.size(),
                DatasetBytes(records));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return abort_status_;
    boxes_[{channel, from, to}].push_back(std::move(records));
  }
  cv_.notify_all();
  return Status::OK();
}

Result<dataflow::Dataset> InProcessTransport::Recv(int channel, int from,
                                                   int to) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  const auto key = std::make_tuple(channel, from, to);
  for (;;) {
    if (aborted_) return abort_status_;
    auto it = boxes_.find(key);
    if (it != boxes_.end() && !it->second.empty()) {
      dataflow::Dataset records = std::move(it->second.front());
      it->second.pop_front();
      return records;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Timeout("transport: recv timed out on channel " +
                             std::to_string(channel));
    }
  }
}

void InProcessTransport::Abort(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (aborted_) return;
    aborted_ = true;
    abort_status_ = std::move(status);
  }
  cv_.notify_all();
}

Status WriteFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  return SendAll(fd, bytes.data(), bytes.size());
}

Result<Frame> ReadFrame(int fd) {
  char header[kHeaderBytes];
  WSIE_RETURN_NOT_OK(RecvExact(fd, header, sizeof(header)));
  if (GetU32(header) != kFrameMagic) {
    return Status::InvalidArgument("transport: bad frame magic");
  }
  const uint64_t payload_len = GetU64(header + kPayloadLenOffset);
  if (payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("transport: oversized frame");
  }
  Frame frame;
  frame.channel = static_cast<int32_t>(GetU32(header + 4));
  frame.from = static_cast<int32_t>(GetU32(header + 8));
  frame.to = static_cast<int32_t>(GetU32(header + 12));
  frame.rows = GetU32(header + 16);
  frame.trace_id = GetU64(header + 20);
  frame.parent_span = GetU64(header + 28);
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    WSIE_RETURN_NOT_OK(RecvExact(fd, frame.payload.data(), payload_len));
  }
  char trailer[kTrailerBytes];
  WSIE_RETURN_NOT_OK(RecvExact(fd, trailer, sizeof(trailer)));
  if (GetU64(trailer) != Fnv1a64(frame.payload)) {
    return Status::InvalidArgument("transport: frame checksum mismatch");
  }
  return frame;
}

SocketTransport::SocketTransport(int fd, size_t num_shards)
    : fd_(fd), num_shards_(num_shards) {}

Status SocketTransport::Send(int channel, int from, int to,
                             dataflow::Dataset records) {
  if (!abort_status_.ok()) return abort_status_;
  Frame frame;
  frame.channel = channel;
  frame.from = from;
  frame.to = to;
  frame.rows = static_cast<uint32_t>(records.size());
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  frame.trace_id = ctx.trace_id;
  frame.parent_span = ctx.span_id;
  EncodeDataset(records, &frame.payload);
  RecordTraffic(channel, to, num_shards_, records.size(),
                frame.payload.size());
  return WriteFrame(fd_, frame);
}

Result<dataflow::Dataset> SocketTransport::Recv(int channel, int from,
                                                int to) {
  const auto key = std::make_tuple(channel, from, to);
  for (;;) {
    if (!abort_status_.ok()) return abort_status_;
    auto it = parked_.find(key);
    if (it != parked_.end() && !it->second.empty()) {
      dataflow::Dataset records = std::move(it->second.front());
      it->second.pop_front();
      return records;
    }
    WSIE_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    // First stamped frame seen by a context-less worker parents its spans.
    if (frame.trace_id != 0 && obs::CurrentTraceContext().trace_id == 0) {
      obs::SetTraceContext({frame.trace_id, frame.parent_span});
    }
    WSIE_ASSIGN_OR_RETURN(dataflow::Dataset records,
                          DecodeDataset(frame.payload));
    parked_[{frame.channel, frame.from, frame.to}].push_back(
        std::move(records));
  }
}

void SocketTransport::Abort(Status status) {
  if (abort_status_.ok()) abort_status_ = std::move(status);
}

HubTransport::HubTransport(std::vector<int> worker_fds,
                           std::chrono::milliseconds timeout)
    : fds_(std::move(worker_fds)),
      num_shards_(fds_.size()),
      timeout_(timeout),
      inbuf_(fds_.size()),
      outbuf_(fds_.size()),
      closed_(fds_.size(), false) {
  for (int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

HubTransport::~HubTransport() {
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (fds_[i] >= 0) ::close(fds_[i]);
  }
}

Status HubTransport::Send(int channel, int from, int to,
                          dataflow::Dataset records) {
  if (!abort_status_.ok()) return abort_status_;
  if (to < 0 || static_cast<size_t>(to) >= num_shards_) {
    return Status::InvalidArgument("hub: bad destination shard");
  }
  if (closed_[static_cast<size_t>(to)]) {
    return Status::Unavailable("hub: shard " + std::to_string(to) +
                               " closed its transport");
  }
  Frame frame;
  frame.channel = channel;
  frame.from = from;
  frame.to = to;
  frame.rows = static_cast<uint32_t>(records.size());
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  frame.trace_id = ctx.trace_id;
  frame.parent_span = ctx.span_id;
  EncodeDataset(records, &frame.payload);
  RecordTraffic(channel, to, num_shards_, records.size(),
                frame.payload.size());
  outbuf_[static_cast<size_t>(to)].append(EncodeFrame(frame));
  return Pump(std::chrono::milliseconds(0));
}

Result<dataflow::Dataset> HubTransport::Recv(int channel, int from, int to) {
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  const auto key = std::make_tuple(channel, from, to);
  for (;;) {
    if (!abort_status_.ok()) return abort_status_;
    auto it = parked_.find(key);
    if (it != parked_.end() && !it->second.empty()) {
      dataflow::Dataset records = std::move(it->second.front());
      it->second.pop_front();
      return records;
    }
    if (from >= 0 && static_cast<size_t>(from) < num_shards_ &&
        closed_[static_cast<size_t>(from)]) {
      return Status::Unavailable("hub: shard " + std::to_string(from) +
                                 " closed before sending channel " +
                                 std::to_string(channel));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Timeout("hub: recv timed out on channel " +
                             std::to_string(channel));
    }
    WSIE_RETURN_NOT_OK(Pump(std::chrono::milliseconds(50)));
  }
}

void HubTransport::Abort(Status status) {
  if (abort_status_.ok()) abort_status_ = std::move(status);
}

Status HubTransport::Pump(std::chrono::milliseconds wait) {
  std::vector<pollfd> polls;
  std::vector<size_t> owners;
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (closed_[i]) continue;
    pollfd p{};
    p.fd = fds_[i];
    p.events = POLLIN;
    if (!outbuf_[i].empty()) p.events |= POLLOUT;
    polls.push_back(p);
    owners.push_back(i);
  }
  if (polls.empty()) return Status::OK();
  const int ready = ::poll(polls.data(), polls.size(),
                           static_cast<int>(wait.count()));
  if (ready < 0 && errno != EINTR) {
    return Status::Unavailable(std::string("hub: poll failed: ") +
                               std::strerror(errno));
  }
  if (ready <= 0) return Status::OK();
  char buf[1 << 16];
  for (size_t p = 0; p < polls.size(); ++p) {
    const size_t i = owners[p];
    if (polls[p].revents & POLLOUT) {
      while (!outbuf_[i].empty()) {
        const ssize_t n = ::send(fds_[i], outbuf_[i].data(),
                                 outbuf_[i].size(), MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          closed_[i] = true;
          break;
        }
        outbuf_[i].erase(0, static_cast<size_t>(n));
      }
    }
    if (polls[p].revents & (POLLIN | POLLHUP | POLLERR)) {
      for (;;) {
        const ssize_t n = ::recv(fds_[i], buf, sizeof(buf), 0);
        if (n > 0) {
          inbuf_[i].append(buf, static_cast<size_t>(n));
          continue;
        }
        if (n == 0) closed_[i] = true;
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN (drained) or closed
      }
      Frame frame;
      Status error;
      while (ExtractFrame(&inbuf_[i], &frame, &error)) {
        if (frame.to >= 0 && static_cast<size_t>(frame.to) < num_shards_) {
          // Worker-to-worker traffic: relay the frame verbatim.
          RecordTraffic(frame.channel, frame.to, num_shards_, frame.rows,
                        frame.payload.size());
          outbuf_[static_cast<size_t>(frame.to)].append(EncodeFrame(frame));
        } else {
          RecordTraffic(frame.channel, frame.to, num_shards_, frame.rows,
                        frame.payload.size());
          auto records = DecodeDataset(frame.payload);
          if (!records.ok()) return records.status();
          parked_[{frame.channel, frame.from, frame.to}].push_back(
              std::move(records).value());
        }
      }
      if (!error.ok()) return error;
    }
  }
  return Status::OK();
}

}  // namespace wsie::shard
