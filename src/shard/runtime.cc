#include "shard/runtime.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <utility>

#include "dataflow/executor.h"
#include "obs/metrics.h"
#include "obs/remote.h"
#include "obs/trace.h"

namespace wsie::shard {
namespace {

using dataflow::Dataset;
using dataflow::Plan;
using dataflow::Record;

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

/// Builds the executable sub-plan of one fragment against a shard's plan
/// instance: one source per head input edge (named "in0", "in1", ... in
/// declared order, so the executor's union preserves the serial
/// concatenation order), the fragment's operator chain, and an "out" sink
/// at the tail.
Plan BuildFragmentPlan(const Plan& full, const Fragment& fragment) {
  Plan sub;
  std::vector<int> head_sources;
  const size_t num_edges = std::max<size_t>(1, fragment.inputs.size());
  for (size_t e = 0; e < num_edges; ++e) {
    head_sources.push_back(sub.AddSource("in" + std::to_string(e)));
  }
  int prev = Plan::kInvalidNode;
  for (size_t i = 0; i < fragment.nodes.size(); ++i) {
    const auto& node = full.nodes()[static_cast<size_t>(fragment.nodes[i])];
    prev = i == 0 ? sub.AddNode(node.op, head_sources)
                  : sub.AddNode(node.op, {prev});
  }
  sub.MarkSink(prev, "out");
  return sub;
}

/// For each fragment, its outgoing edges: (consumer fragment, edge index).
std::vector<std::vector<std::pair<int, int>>> ConsumerEdges(
    const ShardedPlan& splan) {
  std::vector<std::vector<std::pair<int, int>>> consumers(
      splan.fragments.size());
  for (size_t f = 0; f < splan.fragments.size(); ++f) {
    const Fragment& fragment = splan.fragments[f];
    for (size_t e = 0; e < fragment.inputs.size(); ++e) {
      const int producer = fragment.inputs[e].producer_fragment;
      if (producer >= 0) {
        consumers[static_cast<size_t>(producer)].push_back(
            {static_cast<int>(f), static_cast<int>(e)});
      }
    }
  }
  return consumers;
}

struct WorkerEnv {
  int shard = 0;
  const ShardedPlan* splan = nullptr;
  const Plan* plan = nullptr;  ///< this shard's plan instance
  Transport* transport = nullptr;
  const ShardOptions* options = nullptr;
};

/// The per-shard worker loop: walks fragments in topological order, runs
/// the sharded ones on this shard's partition with this shard's own
/// executor (morsel scheduler), and drives the exchange protocol on both
/// the inbound and outbound side of each fragment.
ShardWorkerStats RunShardWorker(const WorkerEnv& env) {
  const ShardedPlan& splan = *env.splan;
  const ShardOptions& options = *env.options;
  const int num_shards = static_cast<int>(options.num_shards);
  const int coordinator = num_shards;
  const auto started = std::chrono::steady_clock::now();

  ShardWorkerStats stats;
  stats.shard = env.shard;

  // The worker's root span carries the distributed trace context in its
  // args ("trace=... parent=..."): the stitched multi-pid trace links this
  // span to the coordinator's run span through it.
  char span_name[32];
  std::snprintf(span_name, sizeof(span_name), "shard.worker.%d", env.shard);
  obs::ScopedSpan worker_span(
      span_name, obs::TraceContextArgs(obs::CurrentTraceContext()));

  dataflow::ExecutorConfig config;
  config.dop = std::max<size_t>(1, options.dop_per_shard);
  config.fuse_pipelines = options.fuse_pipelines;
  config.cache_opens = options.cache_opens;
  config.max_task_retries = options.max_task_retries;
  config.shard_id = env.shard;
  dataflow::Executor executor(config);

  auto fail = [&](Status status) {
    stats.status = std::move(status);
    stats.wall_seconds = Seconds(started);
    env.transport->Abort(stats.status);
    return stats;
  };

  const auto consumers = ConsumerEdges(splan);
  std::vector<Dataset> stash(splan.fragments.size());
  // Remaining reads of each fragment's stashed output (forward consumers).
  std::vector<int> forward_refs(splan.fragments.size(), 0);
  for (const Fragment& fragment : splan.fragments) {
    if (!fragment.sharded) continue;
    for (const ExchangeEdge& edge : fragment.inputs) {
      if (edge.kind == ExchangeKind::kForward && edge.producer_fragment >= 0) {
        ++forward_refs[static_cast<size_t>(edge.producer_fragment)];
      }
    }
  }

  for (size_t fi = 0; fi < splan.fragments.size(); ++fi) {
    const Fragment& fragment = splan.fragments[fi];
    if (!fragment.sharded) continue;

    std::map<std::string, Dataset> sub_sources;
    for (size_t e = 0; e < fragment.inputs.size(); ++e) {
      const ExchangeEdge& edge = fragment.inputs[e];
      Dataset input;
      switch (edge.kind) {
        case ExchangeKind::kForward: {
          const size_t producer =
              static_cast<size_t>(edge.producer_fragment);
          if (--forward_refs[producer] == 0) {
            input = std::move(stash[producer]);
            stash[producer].clear();
          } else {
            input = stash[producer];
          }
          break;
        }
        case ExchangeKind::kHash: {
          const bool from_worker =
              edge.producer_fragment >= 0 &&
              splan.fragments[static_cast<size_t>(edge.producer_fragment)]
                  .sharded;
          if (from_worker) {
            // Re-hash: one chunk from every worker, restored to serial
            // order by the tag merge.
            std::vector<Dataset> chunks(static_cast<size_t>(num_shards));
            for (int s = 0; s < num_shards; ++s) {
              auto chunk = env.transport->Recv(edge.channel, s, env.shard);
              if (!chunk.ok()) return fail(chunk.status());
              chunks[static_cast<size_t>(s)] = std::move(chunk).value();
            }
            input = MergeBySeq(std::move(chunks));
          } else {
            auto chunk =
                env.transport->Recv(edge.channel, coordinator, env.shard);
            if (!chunk.ok()) return fail(chunk.status());
            input = std::move(chunk).value();
          }
          break;
        }
        case ExchangeKind::kBroadcast: {
          auto chunk =
              env.transport->Recv(edge.channel, coordinator, env.shard);
          if (!chunk.ok()) return fail(chunk.status());
          input = std::move(chunk).value();
          break;
        }
        case ExchangeKind::kGather:
          return fail(Status::Internal(
              "shard worker saw a gather input on a sharded fragment"));
      }
      stats.records_in += input.size();
      sub_sources["in" + std::to_string(e)] = std::move(input);
    }
    if (fragment.inputs.empty()) sub_sources["in0"] = Dataset();

    Plan sub_plan = BuildFragmentPlan(*env.plan, fragment);
    auto run = executor.Run(sub_plan, sub_sources);
    if (!run.ok()) return fail(run.status());
    for (const auto& op : run->operator_stats) {
      stats.open_seconds += op.open_seconds;
      stats.process_seconds += op.process_seconds;
    }
    stats.task_retries += run->task_retries;
    Dataset output = std::move(run->sink_outputs["out"]);
    stats.records_out += output.size();

    // Outbound side: re-hash and gather sends, then the local stash for
    // forward consumers. `uses` counts hand-offs so only the last moves.
    int uses = forward_refs[fi] > 0 ? 1 : 0;
    for (const auto& [cf, ce] : consumers[fi]) {
      const ExchangeEdge& edge =
          splan.fragments[static_cast<size_t>(cf)].inputs[static_cast<size_t>(ce)];
      if (edge.kind == ExchangeKind::kHash ||
          edge.kind == ExchangeKind::kGather) {
        ++uses;
      }
    }
    if (fragment.sink_gather_channel >= 0) ++uses;
    auto take = [&]() {
      return --uses == 0 ? std::move(output) : Dataset(output);
    };
    for (const auto& [cf, ce] : consumers[fi]) {
      const Fragment& consumer = splan.fragments[static_cast<size_t>(cf)];
      const ExchangeEdge& edge = consumer.inputs[static_cast<size_t>(ce)];
      if (edge.kind == ExchangeKind::kHash && consumer.sharded) {
        Dataset outbound = take();
        // Siblings with equal tags may now split across shards; extend
        // the tag with the emission index so the merge keeps their order.
        ExtendSeqTags(&outbound);
        RecordPartitioner partitioner(options.num_shards, edge.key,
                                      options.ring);
        std::vector<Dataset> parts =
            PartitionDataset(std::move(outbound), partitioner);
        for (int t = 0; t < num_shards; ++t) {
          Status sent = env.transport->Send(edge.channel, env.shard, t,
                                            std::move(parts[static_cast<size_t>(t)]));
          if (!sent.ok()) return fail(sent);
        }
      } else if (edge.kind == ExchangeKind::kGather) {
        Status sent = env.transport->Send(edge.channel, env.shard,
                                          coordinator, take());
        if (!sent.ok()) return fail(sent);
      }
    }
    if (fragment.sink_gather_channel >= 0) {
      Status sent = env.transport->Send(fragment.sink_gather_channel,
                                        env.shard, coordinator, take());
      if (!sent.ok()) return fail(sent);
    }
    if (forward_refs[fi] > 0) stash[fi] = take();
  }

  if (options.per_shard_finish) {
    Status finish = options.per_shard_finish(env.shard);
    if (!finish.ok()) return fail(finish);
  }
  stats.wall_seconds = Seconds(started);
  return stats;
}

/// The coordinator loop: scatters sources and coordinator-fragment outputs
/// to the workers (assigning the serial-order tags), runs the pipeline
/// breakers locally, and merges every gather back into serial order.
Result<std::map<std::string, Dataset>> RunCoordinator(
    const ShardedPlan& splan, const Plan& plan, Transport* transport,
    const ShardOptions& options,
    const std::map<std::string, Dataset>& sources) {
  const int num_shards = static_cast<int>(options.num_shards);
  const int coordinator = num_shards;
  std::map<std::string, Dataset> sink_outputs;

  dataflow::ExecutorConfig config;
  config.dop = std::max<size_t>(1, options.dop_per_shard);
  config.fuse_pipelines = options.fuse_pipelines;
  config.cache_opens = options.cache_opens;
  config.max_task_retries = options.max_task_retries;
  config.shard_id = coordinator;
  dataflow::Executor executor(config);

  auto fail = [&](Status status) -> Status {
    transport->Abort(status);
    return status;
  };

  auto bind_source = [&](const std::string& name) -> Result<Dataset> {
    auto it = sources.find(name);
    if (it == sources.end()) {
      return Status::InvalidArgument("sharded run: unbound source '" + name +
                                     "'");
    }
    return Dataset(it->second);
  };

  // Remaining coordinator-side reads of each coordinator fragment's output:
  // forwards into other coordinator fragments, plus scatters (hash or
  // broadcast) into sharded consumers.
  std::vector<Dataset> stash(splan.fragments.size());
  std::vector<int> forward_refs(splan.fragments.size(), 0);
  for (const Fragment& fragment : splan.fragments) {
    for (const ExchangeEdge& edge : fragment.inputs) {
      if (edge.producer_fragment < 0) continue;
      const Fragment& from =
          splan.fragments[static_cast<size_t>(edge.producer_fragment)];
      if (from.sharded) continue;  // lives in the workers' stash
      const bool reads_stash =
          fragment.sharded
              ? (edge.kind == ExchangeKind::kHash ||
                 edge.kind == ExchangeKind::kBroadcast)
              : edge.kind == ExchangeKind::kForward;
      if (reads_stash) {
        ++forward_refs[static_cast<size_t>(edge.producer_fragment)];
      }
    }
  }

  for (size_t fi = 0; fi < splan.fragments.size(); ++fi) {
    const Fragment& fragment = splan.fragments[fi];
    if (fragment.sharded) {
      // Scatter this fragment's coordinator-side inputs. One running
      // counter across all edges: the tag order is the serial
      // concatenation order the head would see unsharded.
      int64_t next_seq = 0;
      for (const ExchangeEdge& edge : fragment.inputs) {
        if (edge.channel < 0) continue;  // worker-side forward/re-hash
        Dataset outbound;
        if (edge.producer_fragment < 0) {
          auto bound = bind_source(edge.source_name);
          if (!bound.ok()) return fail(bound.status());
          outbound = std::move(bound).value();
        } else {
          const size_t producer =
              static_cast<size_t>(edge.producer_fragment);
          if (splan.fragments[producer].sharded) continue;  // worker side
          if (--forward_refs[producer] == 0) {
            outbound = std::move(stash[producer]);
            stash[producer].clear();
          } else {
            outbound = stash[producer];
          }
        }
        if (edge.kind == ExchangeKind::kHash) {
          TagSerialOrder(&outbound, &next_seq);
          RecordPartitioner partitioner(options.num_shards, edge.key,
                                        options.ring);
          std::vector<Dataset> parts =
              PartitionDataset(std::move(outbound), partitioner);
          for (int t = 0; t < num_shards; ++t) {
            Status sent = transport->Send(edge.channel, coordinator, t,
                                          std::move(parts[static_cast<size_t>(t)]));
            if (!sent.ok()) return fail(sent);
          }
        } else if (edge.kind == ExchangeKind::kBroadcast) {
          TagSerialOrder(&outbound, &next_seq);
          MarkBroadcast(&outbound);
          for (int t = 0; t < num_shards; ++t) {
            Dataset copy =
                t + 1 < num_shards ? Dataset(outbound) : std::move(outbound);
            Status sent =
                transport->Send(edge.channel, coordinator, t, std::move(copy));
            if (!sent.ok()) return fail(sent);
          }
        }
      }
      if (fragment.sink_gather_channel >= 0) {
        std::vector<Dataset> chunks(static_cast<size_t>(num_shards));
        for (int s = 0; s < num_shards; ++s) {
          auto chunk =
              transport->Recv(fragment.sink_gather_channel, s, coordinator);
          if (!chunk.ok()) return fail(chunk.status());
          chunks[static_cast<size_t>(s)] = std::move(chunk).value();
        }
        Dataset merged = MergeBySeq(std::move(chunks));
        StripShardTags(&merged);
        sink_outputs[fragment.sink_name] = std::move(merged);
      }
      continue;
    }

    // Coordinator fragment: gather its shard-side inputs, bind the rest.
    std::map<std::string, Dataset> sub_sources;
    for (size_t e = 0; e < fragment.inputs.size(); ++e) {
      const ExchangeEdge& edge = fragment.inputs[e];
      Dataset input;
      if (edge.kind == ExchangeKind::kGather) {
        std::vector<Dataset> chunks(static_cast<size_t>(num_shards));
        for (int s = 0; s < num_shards; ++s) {
          auto chunk = transport->Recv(edge.channel, s, coordinator);
          if (!chunk.ok()) return fail(chunk.status());
          chunks[static_cast<size_t>(s)] = std::move(chunk).value();
        }
        input = MergeBySeq(std::move(chunks));
        StripShardTags(&input);
      } else if (edge.producer_fragment < 0) {
        auto bound = bind_source(edge.source_name);
        if (!bound.ok()) return fail(bound.status());
        input = std::move(bound).value();
      } else {
        const size_t producer = static_cast<size_t>(edge.producer_fragment);
        if (--forward_refs[producer] == 0) {
          input = std::move(stash[producer]);
          stash[producer].clear();
        } else {
          input = stash[producer];
        }
      }
      sub_sources["in" + std::to_string(e)] = std::move(input);
    }
    if (fragment.inputs.empty()) sub_sources["in0"] = Dataset();
    Plan sub_plan = BuildFragmentPlan(plan, fragment);
    auto run = executor.Run(sub_plan, sub_sources);
    if (!run.ok()) return fail(run.status());
    Dataset output = std::move(run->sink_outputs["out"]);
    if (!fragment.sink_name.empty()) {
      sink_outputs[fragment.sink_name] =
          forward_refs[fi] > 0 ? Dataset(output) : std::move(output);
      if (forward_refs[fi] > 0) stash[fi] = std::move(output);
    } else if (forward_refs[fi] > 0) {
      stash[fi] = std::move(output);
    }
  }

  // Sources marked directly as sinks pass through untouched.
  for (const auto& node : plan.nodes()) {
    if (node.is_source() && !node.sink_name.empty()) {
      auto bound = bind_source(node.source_name);
      if (!bound.ok()) return fail(bound.status());
      sink_outputs[node.sink_name] = std::move(bound).value();
    }
  }
  return sink_outputs;
}

}  // namespace

Record ShardWorkerStats::ToRecord() const {
  Record record;
  record.SetField("shard", dataflow::Value(static_cast<int64_t>(shard)));
  record.SetField("wall_seconds", dataflow::Value(wall_seconds));
  record.SetField("open_seconds", dataflow::Value(open_seconds));
  record.SetField("process_seconds", dataflow::Value(process_seconds));
  record.SetField("records_in",
                  dataflow::Value(static_cast<int64_t>(records_in)));
  record.SetField("records_out",
                  dataflow::Value(static_cast<int64_t>(records_out)));
  record.SetField("task_retries",
                  dataflow::Value(static_cast<int64_t>(task_retries)));
  record.SetField("status_code",
                  dataflow::Value(static_cast<int64_t>(status.code())));
  record.SetField("status_message", dataflow::Value(status.message()));
  return record;
}

ShardWorkerStats ShardWorkerStats::FromRecord(const Record& record) {
  ShardWorkerStats stats;
  stats.shard = static_cast<int>(record.Field("shard").AsInt());
  stats.wall_seconds = record.Field("wall_seconds").AsDouble();
  stats.open_seconds = record.Field("open_seconds").AsDouble();
  stats.process_seconds = record.Field("process_seconds").AsDouble();
  stats.records_in =
      static_cast<uint64_t>(record.Field("records_in").AsInt());
  stats.records_out =
      static_cast<uint64_t>(record.Field("records_out").AsInt());
  stats.task_retries =
      static_cast<uint64_t>(record.Field("task_retries").AsInt());
  const auto code = static_cast<StatusCode>(record.Field("status_code").AsInt());
  if (code != StatusCode::kOk) {
    stats.status = Status(code, record.Field("status_message").AsString());
  }
  return stats;
}

ShardRuntime::ShardRuntime(ShardOptions options)
    : options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
}

Result<ShardExecutionResult> ShardRuntime::Run(
    const PlanFactory& factory,
    const std::map<std::string, Dataset>& sources) const {
  Plan coordinator_plan = factory(static_cast<int>(options_.num_shards));
  ShardPlanner::Options planner_options;
  planner_options.default_partition_key = options_.partition_key;
  planner_options.broadcast_sources = options_.broadcast_sources;
  planner_options.fuse_pipelines = options_.fuse_pipelines;
  WSIE_ASSIGN_OR_RETURN(
      ShardedPlan splan,
      ShardPlanner::Partition(coordinator_plan, planner_options));
  if (options_.sequential_workers && splan.has_worker_exchange) {
    return Status::InvalidArgument(
        "sequential_workers cannot execute shard-to-shard exchanges; run "
        "workers concurrently");
  }
  if (options_.sequential_workers && options_.multiprocess) {
    return Status::InvalidArgument(
        "sequential_workers is an in-process measurement mode");
  }

  const auto started = std::chrono::steady_clock::now();
  // One distributed trace per run: keep an inherited trace id (a nested run
  // stays inside its caller's trace), mint a fresh root span id, and make
  // the pair current so workers inherit it across fork — or adopt it from
  // the first stamped frame they receive.
  const obs::TraceContext parent_ctx = obs::CurrentTraceContext();
  obs::TraceContext run_ctx;
  run_ctx.trace_id =
      parent_ctx.trace_id != 0 ? parent_ctx.trace_id : obs::NewTraceId();
  run_ctx.span_id = obs::NewSpanId();
  obs::SetTraceContext(run_ctx);

  Result<ShardExecutionResult> result = Status::Internal("run did not start");
  {
    // Scoped so the run span is closed before the stitcher exports the
    // coordinator's stream below.
    obs::ScopedSpan run_span(
        "shard.run",
        obs::TraceContextArgs({run_ctx.trace_id, parent_ctx.span_id}));
    result = options_.multiprocess
                 ? RunMultiProcess(factory, splan, coordinator_plan, sources)
                 : RunInProcess(factory, splan, coordinator_plan, sources);
  }
  obs::SetTraceContext(parent_ctx);
  if (!result.ok()) return result;

  result->trace_id = run_ctx.trace_id;
  result->fragments = splan.fragments.size();
  result->sharded_fragments = splan.sharded_fragments;
  result->total_seconds = Seconds(started);

  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("wsie.shard.runs")->Increment();
  registry.GetGauge("wsie.shard.workers")
      ->Set(static_cast<double>(options_.num_shards));
  registry.GetCounter("wsie.shard.fragments")->Add(splan.fragments.size());
  registry.GetGauge("wsie.shard.skew")->Set(result->max_hash_skew);
  uint64_t worker_records = 0;
  for (const ShardWorkerStats& w : result->workers) {
    worker_records += w.records_in;
    registry.GetHistogram("wsie.shard.worker.wall_ns")
        ->Observe(w.wall_seconds * 1e9);
  }
  registry.GetCounter("wsie.shard.worker.records")->Add(worker_records);
  registry.GetCounter("wsie.exchange.rows_shuffled")
      ->Add(result->rows_shuffled);
  registry.GetCounter("wsie.exchange.bytes_moved")->Add(result->bytes_moved);
  registry.GetCounter("wsie.exchange.messages")
      ->Add(result->exchange_messages);
  uint64_t hash_edges = 0, broadcast_edges = 0, gather_edges = 0;
  for (const Fragment& fragment : splan.fragments) {
    if (fragment.sink_gather_channel >= 0) ++gather_edges;
    for (const ExchangeEdge& edge : fragment.inputs) {
      if (edge.kind == ExchangeKind::kHash) ++hash_edges;
      if (edge.kind == ExchangeKind::kBroadcast) ++broadcast_edges;
      if (edge.kind == ExchangeKind::kGather) ++gather_edges;
    }
  }
  registry.GetCounter("wsie.exchange.hash")->Add(hash_edges);
  registry.GetCounter("wsie.exchange.broadcast")->Add(broadcast_edges);
  registry.GetCounter("wsie.exchange.gather")->Add(gather_edges);

  // Per-shard skew report (both execution modes): each worker's share of
  // the records, the fig5 load-balance table.
  uint64_t total_in = 0, max_in = 0;
  for (const ShardWorkerStats& w : result->workers) {
    total_in += w.records_in;
    max_in = std::max(max_in, w.records_in);
  }
  for (const ShardWorkerStats& w : result->workers) {
    ShardSkewRow row;
    row.shard = w.shard;
    row.records_in = w.records_in;
    row.process_seconds = w.process_seconds;
    row.share = total_in == 0
                    ? 0.0
                    : static_cast<double>(w.records_in) /
                          static_cast<double>(total_in);
    result->obs.skew.push_back(row);
  }
  std::sort(result->obs.skew.begin(), result->obs.skew.end(),
            [](const ShardSkewRow& a, const ShardSkewRow& b) {
              return a.shard < b.shard;
            });
  const double mean_in =
      result->workers.empty()
          ? 0.0
          : static_cast<double>(total_in) /
                static_cast<double>(result->workers.size());
  registry.GetGauge("wsie.shard.skew.records")
      ->Set(mean_in == 0.0 ? 0.0
                           : static_cast<double>(max_in) / mean_in);

  // Register the remote-collection family even on runs that collect
  // nothing, so the metric manifest always sees it.
  obs::Counter* bundles_counter =
      registry.GetCounter("wsie.obs.remote.bundles");
  obs::Counter* bundle_bytes_counter =
      registry.GetCounter("wsie.obs.remote.bytes");
  if (result->obs.collected) {
    bundles_counter->Add(result->obs.per_shard.size());
    bundle_bytes_counter->Add(result->obs.bundle_bytes);
    result->obs.merged = obs::MergeSnapshots(result->obs.per_shard);

    // Stitch: coordinator as Chrome pid 1 at offset 0, worker k as pid 2+k
    // re-based into the coordinator's clock domain.
    std::vector<obs::ProcessTrace> processes;
    obs::ProcessTrace coordinator;
    coordinator.pid = 1;
    coordinator.offset_ns = 0;
    coordinator.streams = obs::TraceRecorder::Global().ExportBalanced();
    coordinator.dropped = obs::TraceRecorder::Global().dropped();
    processes.push_back(std::move(coordinator));
    for (size_t i = 0; i < result->obs.per_shard.size(); ++i) {
      const obs::ObsBundle& bundle = result->obs.per_shard[i];
      obs::ProcessTrace worker;
      worker.pid = 2 + bundle.shard;
      worker.offset_ns = result->obs.offsets_ns[i];
      worker.streams = bundle.streams;
      worker.dropped = bundle.trace_dropped;
      processes.push_back(std::move(worker));
    }
    result->obs.stitched_trace_json =
        obs::StitchChromeTrace(processes, &result->obs.stitch);
  }
  return result;
}

Result<ShardExecutionResult> ShardRuntime::RunInProcess(
    const PlanFactory& factory, const ShardedPlan& splan,
    const Plan& coordinator_plan,
    const std::map<std::string, Dataset>& sources) const {
  const size_t num_shards = options_.num_shards;
  InProcessTransport transport(num_shards, options_.transport_timeout);

  std::vector<Plan> worker_plans;
  worker_plans.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    worker_plans.push_back(factory(static_cast<int>(s)));
  }

  ShardExecutionResult result;
  result.workers.resize(num_shards);
  Result<std::map<std::string, Dataset>> coordinator_result =
      Status::Internal("coordinator did not run");

  auto worker_body = [&](size_t s) {
    WorkerEnv env;
    env.shard = static_cast<int>(s);
    env.splan = &splan;
    env.plan = &worker_plans[s];
    env.transport = &transport;
    env.options = &options_;
    result.workers[s] = RunShardWorker(env);
  };
  auto coordinator_body = [&]() {
    coordinator_result = RunCoordinator(splan, coordinator_plan, &transport,
                                        options_, sources);
  };

  if (options_.sequential_workers) {
    // Measurement mode: workers run one at a time, uncontended, while the
    // coordinator (which mostly waits) runs on a helper thread.
    std::thread coordinator_thread(coordinator_body);
    for (size_t s = 0; s < num_shards; ++s) worker_body(s);
    coordinator_thread.join();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      workers.emplace_back(worker_body, s);
    }
    coordinator_body();
    for (std::thread& t : workers) t.join();
  }

  // Prefer a concrete worker failure over the knock-on Abort the
  // coordinator (or its peers) observed.
  for (const ShardWorkerStats& w : result.workers) {
    if (!w.status.ok()) return w.status;
  }
  if (!coordinator_result.ok()) return coordinator_result.status();
  result.sink_outputs = std::move(coordinator_result).value();

  const TransportStats tstats = transport.Stats();
  result.rows_shuffled = tstats.rows;
  result.bytes_moved = tstats.bytes;
  result.exchange_messages = tstats.messages;
  result.max_hash_skew = tstats.max_hash_skew;
  return result;
}

Result<ShardExecutionResult> ShardRuntime::RunMultiProcess(
    const PlanFactory& factory, const ShardedPlan& splan,
    const Plan& coordinator_plan,
    const std::map<std::string, Dataset>& sources) const {
  const size_t num_shards = options_.num_shards;
  std::vector<int> parent_fds(num_shards, -1);
  std::vector<int> child_fds(num_shards, -1);
  std::vector<pid_t> children(num_shards, -1);

  for (size_t s = 0; s < num_shards; ++s) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      for (size_t i = 0; i < s; ++i) {
        ::close(parent_fds[i]);
        ::close(child_fds[i]);
      }
      return Status::Unavailable("socketpair failed");
    }
    parent_fds[s] = sv[0];
    child_fds[s] = sv[1];
  }

  // Flush inherited stdio buffers: a worker exiting through exit() would
  // otherwise re-flush the parent's buffered output (visible as duplicated
  // lines when stdout is a file, where stdio is block-buffered).
  std::fflush(nullptr);
  for (size_t s = 0; s < num_shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (size_t i = 0; i < num_shards; ++i) {
        ::close(parent_fds[i]);
        ::close(child_fds[i]);
      }
      for (size_t i = 0; i < s; ++i) ::kill(children[i], SIGKILL);
      return Status::Unavailable("fork failed");
    }
    if (pid == 0) {
      // Worker child: keep only this shard's endpoint.
      for (size_t i = 0; i < num_shards; ++i) {
        ::close(parent_fds[i]);
        if (i != s) ::close(child_fds[i]);
      }
      // Shed the parent's inherited counts and trace rings before any work
      // of our own; the inherited trace context stays — it is the causal
      // link back to the coordinator's run span.
      obs::ResetForkedProcessObs();
      SocketTransport child_transport(child_fds[s], num_shards);
      Plan child_plan = factory(static_cast<int>(s));
      WorkerEnv env;
      env.shard = static_cast<int>(s);
      env.splan = &splan;
      env.plan = &child_plan;
      env.transport = &child_transport;
      env.options = &options_;
      ShardWorkerStats stats = RunShardWorker(env);
      Frame frame;
      frame.channel = kStatsChannel;
      frame.from = static_cast<int>(s);
      frame.to = static_cast<int>(num_shards);
      EncodeDataset({stats.ToRecord()}, &frame.payload);
      frame.rows = 1;
      WriteFrame(child_fds[s], frame);
      if (options_.collect_obs) {
        // The CollectRemote hop: this worker's metrics snapshot and trace
        // streams, captured after the worker span closed, shipped as one
        // checksummed blob on the obs control channel.
        Frame obs_frame;
        obs_frame.channel = kObsChannel;
        obs_frame.from = static_cast<int>(s);
        obs_frame.to = static_cast<int>(num_shards);
        EncodeDataset({BlobRecord(obs::EncodeObsBundle(
                          obs::CaptureObsBundle(static_cast<int>(s))))},
                      &obs_frame.payload);
        obs_frame.rows = 1;
        WriteFrame(child_fds[s], obs_frame);
      }
      ::close(child_fds[s]);
      ::_exit(stats.status.ok() ? 0 : 1);
    }
    children[s] = pid;
  }
  for (size_t s = 0; s < num_shards; ++s) ::close(child_fds[s]);

  ShardExecutionResult result;
  Status failure;
  {
    HubTransport hub(parent_fds, options_.transport_timeout);  // owns fds
    auto coordinator_result =
        RunCoordinator(splan, coordinator_plan, &hub, options_, sources);
    if (coordinator_result.ok()) {
      result.sink_outputs = std::move(coordinator_result).value();
      for (size_t s = 0; s < num_shards; ++s) {
        auto stats_chunk =
            hub.Recv(kStatsChannel, static_cast<int>(s),
                     static_cast<int>(num_shards));
        if (!stats_chunk.ok()) {
          failure = stats_chunk.status();
          break;
        }
        if (stats_chunk->size() != 1) {
          failure = Status::Internal("malformed worker stats frame");
          break;
        }
        ShardWorkerStats stats =
            ShardWorkerStats::FromRecord(stats_chunk->front());
        if (!stats.status.ok() && failure.ok()) failure = stats.status;
        result.workers.push_back(std::move(stats));
      }
      if (failure.ok() && options_.collect_obs) {
        for (size_t s = 0; s < num_shards; ++s) {
          auto obs_chunk = hub.Recv(kObsChannel, static_cast<int>(s),
                                    static_cast<int>(num_shards));
          if (!obs_chunk.ok()) {
            failure = obs_chunk.status();
            break;
          }
          if (obs_chunk->size() != 1) {
            failure = Status::Internal("malformed obs bundle frame");
            break;
          }
          auto blob = BlobFromRecord(obs_chunk->front());
          if (!blob.ok()) {
            failure = blob.status();
            break;
          }
          result.obs.bundle_bytes += blob->size();
          auto bundle = obs::DecodeObsBundle(*blob);
          if (!bundle.ok()) {
            failure = bundle.status();
            break;
          }
          // Clock re-base handshake: the bundle carries the sender's
          // NowNs() at encode time; the receiver-side offset maps the
          // worker's timestamps into the coordinator's domain (error is
          // bounded by the transfer latency).
          const int64_t offset =
              static_cast<int64_t>(obs::TraceRecorder::Global().NowNs()) -
              static_cast<int64_t>(bundle->now_ns);
          result.obs.offsets_ns.push_back(offset);
          result.obs.per_shard.push_back(std::move(bundle).value());
        }
        if (failure.ok()) result.obs.collected = true;
      }
    } else {
      failure = coordinator_result.status();
    }
    const TransportStats tstats = hub.Stats();
    result.rows_shuffled = tstats.rows;
    result.bytes_moved = tstats.bytes;
    result.exchange_messages = tstats.messages;
    result.max_hash_skew = tstats.max_hash_skew;
    // HubTransport's destructor closes every fd here, which unblocks any
    // child still waiting in Recv so the reap below cannot hang.
  }
  for (size_t s = 0; s < num_shards; ++s) {
    int wstatus = 0;
    ::waitpid(children[s], &wstatus, 0);
  }
  if (!failure.ok()) return failure;
  return result;
}

}  // namespace wsie::shard
