#ifndef WSIE_SHARD_PARTITIONER_H_
#define WSIE_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace wsie::shard {

inline constexpr uint64_t kFnv64Offset = 1469598103934665603ull;
inline constexpr uint64_t kFnv64Prime = 1099511628211ull;

/// 64-bit FNV-1a over `bytes`, optionally continuing from a prior hash
/// (the same streaming-continuation idiom as the CRF feature hasher).
constexpr uint64_t Fnv1a64(std::string_view bytes,
                           uint64_t seed = kFnv64Offset) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv64Prime;
  }
  return hash;
}

/// Murmur3 finalizer: full-avalanche bit mix. FNV-1a alone diffuses low
/// bits well but high bits poorly for short keys, and ring placement
/// compares full 64-bit positions — without this mix, point positions for
/// "shard-N#V" labels cluster and shard loads skew several-fold.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

struct HashRingOptions {
  /// Virtual nodes per shard. More vnodes tighten the balance bound
  /// (relative spread ~ 1/sqrt(vnodes)) at the cost of a larger ring;
  /// 512 points/shard keeps max/min load within ~1.3 on 10k keys.
  size_t vnodes_per_shard = 512;
};

/// A consistent-hash ring over shard ids.
///
/// Each shard owns a fixed set of virtual-node points whose positions
/// depend only on (shard id, vnode index) — NOT on the shard count — so
/// growing the ring from N to N+1 shards moves only the keys that fall
/// into the new shard's arcs (expected fraction 1/(N+1)); every other
/// key keeps its owner. Lookups walk clockwise to the first point at or
/// after the key's hash.
class HashRing {
 public:
  explicit HashRing(size_t num_shards, HashRingOptions options = {});

  /// `hash` should already be well-mixed; ShardForKey applies Mix64.
  int ShardForHash(uint64_t hash) const;
  int ShardForKey(std::string_view key) const {
    return ShardForHash(Mix64(Fnv1a64(key)));
  }

  size_t num_shards() const { return num_shards_; }
  size_t num_points() const { return points_.size(); }

 private:
  struct Point {
    uint64_t position;
    int shard;
  };
  std::vector<Point> points_;  ///< sorted by (position, shard)
  size_t num_shards_;
};

}  // namespace wsie::shard

#endif  // WSIE_SHARD_PARTITIONER_H_
