#include "store/shard_merge.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "store/segment.h"

namespace wsie::store {

namespace fs = std::filesystem;

Result<size_t> AbsorbShardStores(AnnotationStore* target,
                                 const std::string& shards_dir) {
  if (target == nullptr) {
    return Status::InvalidArgument("AbsorbShardStores: null target");
  }
  std::error_code ec;
  if (!fs::is_directory(shards_dir, ec)) {
    return Status::NotFound("AbsorbShardStores: no such directory: " +
                            shards_dir);
  }
  std::vector<std::string> shard_dirs;
  for (const auto& entry : fs::directory_iterator(shards_dir, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0) {
      shard_dirs.push_back(entry.path().string());
    }
  }
  // Deterministic absorb order regardless of directory enumeration order.
  std::sort(shard_dirs.begin(), shard_dirs.end());

  size_t absorbed = 0;
  for (const std::string& dir : shard_dirs) {
    WSIE_ASSIGN_OR_RETURN(std::shared_ptr<AnnotationStore> shard_store,
                          AnnotationStore::Open(dir));
    AnnotationStore::Snapshot snap = shard_store->snapshot();
    SegmentBuilder builder;
    for (const auto& segment : snap.segments) {
      builder.MergeSegment(*segment);
    }
    if (!builder.empty()) {
      WSIE_RETURN_NOT_OK(target->Append(std::move(builder)));
    }
    ++absorbed;
  }
  return absorbed;
}

}  // namespace wsie::store
