#ifndef WSIE_STORE_POSTING_CODEC_H_
#define WSIE_STORE_POSTING_CODEC_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wsie::store {

/// One entity occurrence: which document, which sentence of it, and the
/// exact character span. Type/method/corpus are not part of the posting —
/// lists are grouped by (term, corpus, type, method) at the segment level,
/// so per-posting bytes stay small.
struct Posting {
  uint64_t doc_id = 0;
  uint32_t sentence = 0;  ///< index into the document's sentence array
  uint32_t begin = 0;     ///< character span in the document text
  uint32_t end = 0;

  friend auto operator<=>(const Posting&, const Posting&) = default;
};

/// LEB128 varint. Up to 10 bytes for a full uint64.
void PutVarint(std::string* out, uint64_t v);
/// Consumes one varint from `*in`; false on truncation or a value that
/// does not fit 64 bits (overlong encodings past byte 10).
bool GetVarint(std::string_view* in, uint64_t* v);

/// Appends the delta/varint encoding of `postings` to `*out`. The list
/// must be sorted (operator<=> order): doc ids are gap-encoded against the
/// previous posting, spans as (begin, length). Returns InvalidArgument on
/// unsorted input or a span with end < begin.
Status EncodePostingList(const std::vector<Posting>& postings,
                         std::string* out);

/// Decodes one posting list from `*in` (consuming it), appending to
/// `*out`. Rejects truncated input, doc-id accumulator overflow, and spans
/// overflowing uint32 — corrupt bytes yield a Status error, never UB.
Status DecodePostingList(std::string_view* in, std::vector<Posting>* out);

/// Group-varint posting codec (segment format v2). Each posting flattens
/// to four little-endian values (doc gap, sentence, begin, length) packed
/// behind one control byte whose 2-bit fields give each value's byte
/// length (1-4) — so the whole posting decodes with a single table-driven
/// shuffle instead of four byte-at-a-time varint loops. Layout:
///   varint count | flag byte | postings
/// flag 0x01 = group-varint lanes; 0x00 = scalar delta/varint fallback,
/// chosen automatically when a doc gap (or the first doc id) exceeds
/// uint32. Same input validation and sortedness contract as the scalar
/// codec; the two codecs decode to identical Posting vectors (the scalar
/// codec stays as the golden reference, property-tested against this one).
Status EncodePostingListGrouped(const std::vector<Posting>& postings,
                                std::string* out);
/// Consuming decode; truncated or structurally corrupt bytes yield a
/// Status error, never UB. Uses the SSSE3 (x86) or NEON (aarch64) shuffle
/// kernel when the host supports it, with a scalar fallback that is
/// bit-compatible.
Status DecodePostingListGrouped(std::string_view* in,
                                std::vector<Posting>* out);

/// True when the SIMD group-varint decode kernel is in use on this host.
bool GroupVarintSimdActive();

}  // namespace wsie::store

#endif  // WSIE_STORE_POSTING_CODEC_H_
