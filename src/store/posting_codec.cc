#include "store/posting_codec.h"

#include <array>
#include <cstring>

namespace wsie::store {
namespace {

// --------------------------------------------------------------- scalar

/// Decodes `count` delta/varint postings (the scalar v1 body) from `*in`.
/// Shared by the v1 decoder and the v2 scalar-fallback payload.
Status DecodeScalarPostings(std::string_view* in, uint64_t count,
                            std::vector<Posting>* out) {
  uint64_t doc = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0, sentence = 0, begin = 0, length = 0;
    if (!GetVarint(in, &delta) || !GetVarint(in, &sentence) ||
        !GetVarint(in, &begin) || !GetVarint(in, &length)) {
      return Status::InvalidArgument("posting list: truncated posting");
    }
    if (i > 0 && doc + delta < doc) {
      return Status::InvalidArgument("posting list: doc id overflow");
    }
    doc = i == 0 ? delta : doc + delta;
    if (sentence > UINT32_MAX || begin > UINT32_MAX || length > UINT32_MAX ||
        begin + length > UINT32_MAX) {
      return Status::InvalidArgument("posting list: field overflow");
    }
    Posting p;
    p.doc_id = doc;
    p.sentence = static_cast<uint32_t>(sentence);
    p.begin = static_cast<uint32_t>(begin);
    p.end = static_cast<uint32_t>(begin + length);
    out->push_back(p);
  }
  return Status::OK();
}

/// Validates sortedness/spans exactly like the scalar encoder does.
Status ValidatePostingOrder(const std::vector<Posting>& postings) {
  Posting prev;
  bool first = true;
  for (const Posting& p : postings) {
    if (!first && p < prev) {
      return Status::InvalidArgument("posting list not sorted");
    }
    if (p.end < p.begin) {
      return Status::InvalidArgument("posting span end < begin");
    }
    prev = p;
    first = false;
  }
  return Status::OK();
}

// --------------------------------------------------------- group varint

constexpr uint8_t kGvFlagScalar = 0x00;
constexpr uint8_t kGvFlagGrouped = 0x01;

/// Byte length (1..4) of a uint32 value.
constexpr uint32_t GvByteLen(uint32_t v) {
  return v < (1u << 8) ? 1 : v < (1u << 16) ? 2 : v < (1u << 24) ? 3 : 4;
}

/// Per-control-byte decode tables: the pshufb/tbl mask scattering the
/// packed value bytes into four little-endian uint32 lanes (0xff lanes
/// shuffle in zero), plus the packed payload length.
struct GvTables {
  uint8_t shuffle[256][16] = {};
  uint8_t length[256] = {};
};

constexpr GvTables BuildGvTables() {
  GvTables tables;
  for (int control = 0; control < 256; ++control) {
    uint8_t offset = 0;
    for (int value = 0; value < 4; ++value) {
      const uint8_t len = static_cast<uint8_t>(((control >> (2 * value)) & 3) + 1);
      for (int byte = 0; byte < 4; ++byte) {
        tables.shuffle[control][4 * value + byte] =
            byte < len ? static_cast<uint8_t>(offset + byte) : 0xff;
      }
      offset = static_cast<uint8_t>(offset + len);
    }
    tables.length[control] = offset;
  }
  return tables;
}

constexpr GvTables kGv = BuildGvTables();

/// Appends one group-varint posting: control byte + packed value bytes.
void PutGvGroup(std::string* out, const uint32_t values[4]) {
  uint8_t control = 0;
  char packed[16];
  size_t n = 0;
  for (int i = 0; i < 4; ++i) {
    const uint32_t len = GvByteLen(values[i]);
    control |= static_cast<uint8_t>((len - 1) << (2 * i));
    uint32_t v = values[i];
    for (uint32_t b = 0; b < len; ++b) {
      packed[n++] = static_cast<char>(v & 0xff);
      v >>= 8;
    }
  }
  out->push_back(static_cast<char>(control));
  out->append(packed, n);
}

/// Scalar decode of one group: bounds-checked byte loads. Used for the
/// input tail (fewer than 16 readable payload bytes) and as the full
/// fallback on hosts without a shuffle unit.
bool GetGvGroup(std::string_view* in, uint32_t values[4]) {
  if (in->empty()) return false;
  const uint8_t control = static_cast<uint8_t>((*in)[0]);
  const size_t payload = kGv.length[control];
  if (in->size() < 1 + payload) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(in->data()) + 1;
  for (int i = 0; i < 4; ++i) {
    const uint32_t len = ((control >> (2 * i)) & 3) + 1;
    uint32_t v = 0;
    for (uint32_t b = 0; b < len; ++b) {
      v |= static_cast<uint32_t>(p[b]) << (8 * b);
    }
    values[i] = v;
    p += len;
  }
  in->remove_prefix(1 + payload);
  return true;
}

/// Folds four decoded lanes into the posting stream with the same checks
/// the scalar decoder applies. `index` is the posting's position.
Status AppendDecodedPosting(const uint32_t values[4], uint64_t index,
                            uint64_t* doc, std::vector<Posting>* out) {
  const uint64_t delta = values[0];
  if (index > 0 && *doc + delta < *doc) {
    return Status::InvalidArgument("posting list: doc id overflow");
  }
  *doc = index == 0 ? delta : *doc + delta;
  const uint64_t begin = values[2];
  const uint64_t length = values[3];
  if (begin + length > UINT32_MAX) {
    return Status::InvalidArgument("posting list: field overflow");
  }
  Posting p;
  p.doc_id = *doc;
  p.sentence = values[1];
  p.begin = static_cast<uint32_t>(begin);
  p.end = static_cast<uint32_t>(begin + length);
  out->push_back(p);
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------ SIMD kernels
//
// The SIMD path decodes groups while at least 16 payload bytes are
// readable past the control byte (one unaligned 16-byte load covers any
// group), then hands the tail to the bounds-checked scalar group decoder.
// Each kernel consumes as many full postings as it safely can and reports
// how many, leaving `*in` advanced past them.

#if defined(__x86_64__) || defined(__i386__)
#define WSIE_GV_X86 1
#include <immintrin.h>

namespace {

__attribute__((target("ssse3"))) Status DecodeGroupsSsse3(
    std::string_view* in, uint64_t count, uint64_t* index, uint64_t* doc,
    std::vector<Posting>* out) {
  const char* p = in->data();
  const char* end = p + in->size();
  while (*index < count && end - p >= 17) {
    const uint8_t control = static_cast<uint8_t>(*p);
    __m128i data =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
    __m128i mask = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kGv.shuffle[control]));
    alignas(16) uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                    _mm_shuffle_epi8(data, mask));
    p += 1 + kGv.length[control];
    Status status = AppendDecodedPosting(lanes, *index, doc, out);
    if (!status.ok()) {
      in->remove_prefix(static_cast<size_t>(p - in->data()));
      return status;
    }
    ++*index;
  }
  in->remove_prefix(static_cast<size_t>(p - in->data()));
  return Status::OK();
}

bool HostHasSsse3() {
  static const bool has = __builtin_cpu_supports("ssse3");
  return has;
}

}  // namespace

#elif defined(__aarch64__)
#define WSIE_GV_NEON 1
#include <arm_neon.h>

namespace {

Status DecodeGroupsNeon(std::string_view* in, uint64_t count, uint64_t* index,
                        uint64_t* doc, std::vector<Posting>* out) {
  const char* p = in->data();
  const char* end = p + in->size();
  while (*index < count && end - p >= 17) {
    const uint8_t control = static_cast<uint8_t>(*p);
    uint8x16_t data = vld1q_u8(reinterpret_cast<const uint8_t*>(p + 1));
    uint8x16_t mask = vld1q_u8(kGv.shuffle[control]);
    alignas(16) uint32_t lanes[4];
    // Out-of-range mask bytes (0xff) yield zero, matching pshufb.
    vst1q_u8(reinterpret_cast<uint8_t*>(lanes), vqtbl1q_u8(data, mask));
    p += 1 + kGv.length[control];
    Status status = AppendDecodedPosting(lanes, *index, doc, out);
    if (!status.ok()) {
      in->remove_prefix(static_cast<size_t>(p - in->data()));
      return status;
    }
    ++*index;
  }
  in->remove_prefix(static_cast<size_t>(p - in->data()));
  return Status::OK();
}

}  // namespace
#endif

bool GroupVarintSimdActive() {
#if defined(WSIE_GV_X86)
  return HostHasSsse3();
#elif defined(WSIE_GV_NEON)
  return true;
#else
  return false;
#endif
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  uint64_t result = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (i >= in->size()) return false;
    uint64_t byte = static_cast<unsigned char>((*in)[i]);
    // Byte 10 may only contribute the final bit of a 64-bit value.
    if (i == 9 && (byte & 0xfe) != 0) return false;
    result |= (byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      in->remove_prefix(i + 1);
      *v = result;
      return true;
    }
  }
  return false;
}

Status EncodePostingList(const std::vector<Posting>& postings,
                         std::string* out) {
  PutVarint(out, postings.size());
  Posting prev;
  bool first = true;
  for (const Posting& p : postings) {
    if (!first && p < prev) {
      return Status::InvalidArgument("posting list not sorted");
    }
    if (p.end < p.begin) {
      return Status::InvalidArgument("posting span end < begin");
    }
    PutVarint(out, p.doc_id - (first ? 0 : prev.doc_id));
    PutVarint(out, p.sentence);
    PutVarint(out, p.begin);
    PutVarint(out, p.end - p.begin);
    prev = p;
    first = false;
  }
  return Status::OK();
}

Status DecodePostingList(std::string_view* in, std::vector<Posting>* out) {
  uint64_t count = 0;
  if (!GetVarint(in, &count)) {
    return Status::InvalidArgument("posting list: bad count");
  }
  // Each posting takes at least 4 encoded bytes; a count beyond that bound
  // is corruption — reject before reserving memory for it.
  if (count > in->size()) {
    return Status::InvalidArgument("posting list: count exceeds input");
  }
  out->reserve(out->size() + static_cast<size_t>(count));
  return DecodeScalarPostings(in, count, out);
}

Status EncodePostingListGrouped(const std::vector<Posting>& postings,
                                std::string* out) {
  WSIE_RETURN_NOT_OK(ValidatePostingOrder(postings));
  PutVarint(out, postings.size());
  if (postings.empty()) return Status::OK();

  // Group-varint lanes are uint32; a doc gap past that (or a first id past
  // it) routes the whole list to the scalar-varint fallback payload.
  bool fits_u32 = postings.front().doc_id <= UINT32_MAX;
  for (size_t i = 1; fits_u32 && i < postings.size(); ++i) {
    fits_u32 = postings[i].doc_id - postings[i - 1].doc_id <= UINT32_MAX;
  }
  out->push_back(static_cast<char>(fits_u32 ? kGvFlagGrouped : kGvFlagScalar));

  uint64_t prev_doc = 0;
  bool first = true;
  for (const Posting& p : postings) {
    const uint64_t delta = p.doc_id - (first ? 0 : prev_doc);
    if (fits_u32) {
      const uint32_t values[4] = {static_cast<uint32_t>(delta), p.sentence,
                                  p.begin, p.end - p.begin};
      PutGvGroup(out, values);
    } else {
      PutVarint(out, delta);
      PutVarint(out, p.sentence);
      PutVarint(out, p.begin);
      PutVarint(out, p.end - p.begin);
    }
    prev_doc = p.doc_id;
    first = false;
  }
  return Status::OK();
}

Status DecodePostingListGrouped(std::string_view* in,
                                std::vector<Posting>* out) {
  uint64_t count = 0;
  if (!GetVarint(in, &count)) {
    return Status::InvalidArgument("posting list: bad count");
  }
  if (count == 0) return Status::OK();
  if (in->empty()) {
    return Status::InvalidArgument("posting list: missing codec flag");
  }
  const uint8_t flag = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  if (flag != kGvFlagGrouped && flag != kGvFlagScalar) {
    return Status::InvalidArgument("posting list: unknown codec flag");
  }
  // Every posting occupies >= 4 bytes in either payload; a count beyond
  // the remaining bytes is corruption — reject before reserving.
  if (count > in->size()) {
    return Status::InvalidArgument("posting list: count exceeds input");
  }
  out->reserve(out->size() + static_cast<size_t>(count));
  if (flag == kGvFlagScalar) {
    return DecodeScalarPostings(in, count, out);
  }

  uint64_t index = 0;
  uint64_t doc = 0;
#if defined(WSIE_GV_X86)
  if (HostHasSsse3()) {
    WSIE_RETURN_NOT_OK(DecodeGroupsSsse3(in, count, &index, &doc, out));
  }
#elif defined(WSIE_GV_NEON)
  WSIE_RETURN_NOT_OK(DecodeGroupsNeon(in, count, &index, &doc, out));
#endif
  while (index < count) {
    uint32_t values[4];
    if (!GetGvGroup(in, values)) {
      return Status::InvalidArgument("posting list: truncated posting");
    }
    WSIE_RETURN_NOT_OK(AppendDecodedPosting(values, index, &doc, out));
    ++index;
  }
  return Status::OK();
}

}  // namespace wsie::store
