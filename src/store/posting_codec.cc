#include "store/posting_codec.h"

namespace wsie::store {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  uint64_t result = 0;
  for (size_t i = 0; i < 10; ++i) {
    if (i >= in->size()) return false;
    uint64_t byte = static_cast<unsigned char>((*in)[i]);
    // Byte 10 may only contribute the final bit of a 64-bit value.
    if (i == 9 && (byte & 0xfe) != 0) return false;
    result |= (byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      in->remove_prefix(i + 1);
      *v = result;
      return true;
    }
  }
  return false;
}

Status EncodePostingList(const std::vector<Posting>& postings,
                         std::string* out) {
  PutVarint(out, postings.size());
  Posting prev;
  bool first = true;
  for (const Posting& p : postings) {
    if (!first && p < prev) {
      return Status::InvalidArgument("posting list not sorted");
    }
    if (p.end < p.begin) {
      return Status::InvalidArgument("posting span end < begin");
    }
    PutVarint(out, p.doc_id - (first ? 0 : prev.doc_id));
    PutVarint(out, p.sentence);
    PutVarint(out, p.begin);
    PutVarint(out, p.end - p.begin);
    prev = p;
    first = false;
  }
  return Status::OK();
}

Status DecodePostingList(std::string_view* in, std::vector<Posting>* out) {
  uint64_t count = 0;
  if (!GetVarint(in, &count)) {
    return Status::InvalidArgument("posting list: bad count");
  }
  // Each posting takes at least 4 encoded bytes; a count beyond that bound
  // is corruption — reject before reserving memory for it.
  if (count > in->size()) {
    return Status::InvalidArgument("posting list: count exceeds input");
  }
  out->reserve(out->size() + static_cast<size_t>(count));
  uint64_t doc = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0, sentence = 0, begin = 0, length = 0;
    if (!GetVarint(in, &delta) || !GetVarint(in, &sentence) ||
        !GetVarint(in, &begin) || !GetVarint(in, &length)) {
      return Status::InvalidArgument("posting list: truncated posting");
    }
    if (i > 0 && doc + delta < doc) {
      return Status::InvalidArgument("posting list: doc id overflow");
    }
    doc = i == 0 ? delta : doc + delta;
    if (sentence > UINT32_MAX || begin > UINT32_MAX || length > UINT32_MAX ||
        begin + length > UINT32_MAX) {
      return Status::InvalidArgument("posting list: field overflow");
    }
    Posting p;
    p.doc_id = doc;
    p.sentence = static_cast<uint32_t>(sentence);
    p.begin = static_cast<uint32_t>(begin);
    p.end = static_cast<uint32_t>(begin + length);
    out->push_back(p);
  }
  return Status::OK();
}

}  // namespace wsie::store
