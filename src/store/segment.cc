#include "store/segment.h"

#include <algorithm>
#include <tuple>

#include "fault/checkpoint.h"
#include "fault/wire_format.h"

namespace wsie::store {
namespace {

// v1: scalar delta/varint posting lists. v2: group-varint posting lists.
// Encode always writes v2; decode accepts both so pre-switch stores open.
constexpr uint64_t kSegmentVersionScalar = 1;
constexpr uint64_t kSegmentVersion = 2;

using wsie::fault::Checkpoint;
namespace wire = wsie::fault::wire;

}  // namespace

int EntityTypeIndexFromName(std::string_view name) {
  if (name == "gene") return 0;
  if (name == "drug") return 1;
  if (name == "disease") return 2;
  return -1;
}

int MethodIndexFromName(std::string_view name) {
  if (name == "dict") return 0;
  if (name == "ml") return 1;
  return -1;
}

int Segment::FindTerm(std::string_view term) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), term);
  if (it == terms_.end() || *it != term) return -1;
  return static_cast<int>(it - terms_.begin());
}

std::span<const PostingGroup> Segment::GroupsForTerm(uint32_t term_id) const {
  auto lo = std::lower_bound(
      groups_.begin(), groups_.end(), term_id,
      [](const PostingGroup& g, uint32_t id) { return g.term_id < id; });
  auto hi = lo;
  while (hi != groups_.end() && hi->term_id == term_id) ++hi;
  if (lo == hi) return {};
  return {&*lo, static_cast<size_t>(hi - lo)};
}

std::pair<size_t, size_t> Segment::PrefixRange(std::string_view prefix) const {
  auto lo = std::lower_bound(terms_.begin(), terms_.end(), prefix);
  auto hi = lo;
  while (hi != terms_.end() && hi->compare(0, prefix.size(), prefix) == 0) {
    ++hi;
  }
  return {static_cast<size_t>(lo - terms_.begin()),
          static_cast<size_t>(hi - terms_.begin())};
}

std::span<const DocKey> Segment::DocKeysForTerm(uint32_t term_id) const {
  if (term_id + 1 >= doc_key_offsets_.size()) return {};
  const uint64_t first = doc_key_offsets_[term_id];
  const uint64_t last = doc_key_offsets_[term_id + 1];
  return {doc_keys_.data() + first, static_cast<size_t>(last - first)};
}

void Segment::BuildDocKeyCache() {
  doc_keys_.clear();
  doc_key_offsets_.assign(terms_.size() + 1, 0);
  // Groups are contiguous per term, and each group's postings are sorted
  // by doc id — so per term we merge a handful of sorted runs. Collect,
  // sort, dedupe; runs are short and this only happens at build/decode.
  size_t g = 0;
  for (uint32_t t = 0; t < terms_.size(); ++t) {
    const size_t run_start = doc_keys_.size();
    for (; g < groups_.size() && groups_[g].term_id == t; ++g) {
      const PostingGroup& group = groups_[g];
      uint64_t prev = UINT64_MAX;
      for (const Posting& p : group.postings) {
        if (p.doc_id != prev) {
          doc_keys_.push_back(DocKey{group.corpus, p.doc_id});
          prev = p.doc_id;
        }
      }
    }
    auto begin = doc_keys_.begin() + static_cast<ptrdiff_t>(run_start);
    std::sort(begin, doc_keys_.end());
    doc_keys_.erase(std::unique(begin, doc_keys_.end()), doc_keys_.end());
    doc_key_offsets_[t + 1] = doc_keys_.size();
  }
}

Checkpoint Segment::ToContainer() const {
  Checkpoint container;

  std::string meta;
  wire::PutU64(&meta, kSegmentVersion);
  wire::PutU64(&meta, id_);
  for (const CorpusStats& stats : corpus_stats_) {
    wire::PutU64(&meta, stats.docs);
    wire::PutU64(&meta, stats.sentences);
    wire::PutU64(&meta, stats.chars);
  }
  wire::PutU64(&meta, terms_.size());
  wire::PutU64(&meta, groups_.size());
  wire::PutU64(&meta, num_postings_);
  container.SetSection("meta", std::move(meta));

  std::string dict;
  for (const std::string& term : terms_) wire::PutString(&dict, term);
  container.SetSection("dict", std::move(dict));

  std::string postings;
  for (const PostingGroup& group : groups_) {
    PutVarint(&postings, group.term_id);
    PutVarint(&postings, group.corpus);
    PutVarint(&postings, group.type);
    PutVarint(&postings, group.method);
    // Groups are built sorted, so the checked encoder cannot fail here.
    EncodePostingListGrouped(group.postings, &postings);
  }
  container.SetSection("postings", std::move(postings));

  return container;
}

std::string Segment::Encode() const { return ToContainer().Serialize(); }

Result<Segment> Segment::Decode(std::string_view bytes) {
  WSIE_ASSIGN_OR_RETURN(Checkpoint container, Checkpoint::Deserialize(bytes));
  return FromContainer(container, bytes.size());
}

Result<Segment> Segment::FromContainer(const Checkpoint& container,
                                       size_t encoded_bytes) {
  const std::string* meta = container.FindSection("meta");
  const std::string* dict = container.FindSection("dict");
  const std::string* postings = container.FindSection("postings");
  if (meta == nullptr || dict == nullptr || postings == nullptr) {
    return Status::InvalidArgument("segment: missing section");
  }

  Segment segment;
  segment.encoded_bytes_ = encoded_bytes;

  std::string_view in = *meta;
  uint64_t version = 0;
  if (!wire::GetU64(&in, &version) ||
      (version != kSegmentVersionScalar && version != kSegmentVersion)) {
    return Status::InvalidArgument("segment: bad version");
  }
  uint64_t num_terms = 0, num_groups = 0;
  if (!wire::GetU64(&in, &segment.id_)) {
    return Status::InvalidArgument("segment: malformed meta");
  }
  for (CorpusStats& stats : segment.corpus_stats_) {
    if (!wire::GetU64(&in, &stats.docs) ||
        !wire::GetU64(&in, &stats.sentences) ||
        !wire::GetU64(&in, &stats.chars)) {
      return Status::InvalidArgument("segment: malformed corpus stats");
    }
  }
  if (!wire::GetU64(&in, &num_terms) || !wire::GetU64(&in, &num_groups) ||
      !wire::GetU64(&in, &segment.num_postings_)) {
    return Status::InvalidArgument("segment: malformed meta counts");
  }
  if (num_terms > dict->size() || num_groups > postings->size()) {
    return Status::InvalidArgument("segment: counts exceed section sizes");
  }

  segment.terms_.reserve(num_terms);
  std::string_view din = *dict;
  for (uint64_t i = 0; i < num_terms; ++i) {
    std::string term;
    if (!wire::GetString(&din, &term)) {
      return Status::InvalidArgument("segment: malformed dictionary");
    }
    if (i > 0 && term <= segment.terms_.back()) {
      return Status::InvalidArgument("segment: dictionary not sorted/unique");
    }
    segment.terms_.push_back(std::move(term));
  }
  if (!din.empty()) {
    return Status::InvalidArgument("segment: trailing dictionary bytes");
  }

  segment.groups_.reserve(num_groups);
  std::string_view pin = *postings;
  uint64_t total_postings = 0;
  for (uint64_t i = 0; i < num_groups; ++i) {
    uint64_t term_id = 0, corpus = 0, type = 0, method = 0;
    if (!GetVarint(&pin, &term_id) || !GetVarint(&pin, &corpus) ||
        !GetVarint(&pin, &type) || !GetVarint(&pin, &method)) {
      return Status::InvalidArgument("segment: malformed group header");
    }
    if (term_id >= num_terms || corpus >= kNumCorpora || type >= kNumTypes ||
        method >= kNumMethods) {
      return Status::InvalidArgument("segment: group key out of range");
    }
    PostingGroup group;
    group.term_id = static_cast<uint32_t>(term_id);
    group.corpus = static_cast<uint8_t>(corpus);
    group.type = static_cast<uint8_t>(type);
    group.method = static_cast<uint8_t>(method);
    WSIE_RETURN_NOT_OK(version == kSegmentVersionScalar
                           ? DecodePostingList(&pin, &group.postings)
                           : DecodePostingListGrouped(&pin, &group.postings));
    if (group.postings.empty()) {
      return Status::InvalidArgument("segment: empty posting group");
    }
    if (!segment.groups_.empty()) {
      const PostingGroup& prev = segment.groups_.back();
      auto key = [](const PostingGroup& g) {
        return std::tuple(g.term_id, g.corpus, g.type, g.method);
      };
      if (key(group) <= key(prev)) {
        return Status::InvalidArgument("segment: groups not sorted");
      }
    }
    total_postings += group.postings.size();
    segment.groups_.push_back(std::move(group));
  }
  if (!pin.empty()) {
    return Status::InvalidArgument("segment: trailing posting bytes");
  }
  if (total_postings != segment.num_postings_) {
    return Status::InvalidArgument("segment: posting count mismatch");
  }
  segment.BuildDocKeyCache();
  return segment;
}

Status Segment::WriteFile(const std::string& path) const {
  // The checkpoint container owns durability: serialize-to-tmp + rename,
  // magic header, FNV-1a trailer.
  return ToContainer().WriteFile(path);
}

Result<Segment> Segment::ReadFile(const std::string& path) {
  WSIE_ASSIGN_OR_RETURN(Checkpoint container, Checkpoint::ReadFile(path));
  // Re-serialize once to recover the container's byte footprint (the store
  // reports per-segment bytes from it).
  return FromContainer(container, container.Serialize().size());
}

void SegmentBuilder::Add(std::string_view name, uint8_t corpus, uint8_t type,
                         uint8_t method, Posting posting) {
  GroupKey key{std::string(name), corpus, type, method};
  entries_[std::move(key)].push_back(posting);
  ++num_postings_;
}

void SegmentBuilder::AddCorpusStats(uint8_t corpus, uint64_t docs,
                                    uint64_t sentences, uint64_t chars) {
  if (corpus >= kNumCorpora) return;
  corpus_stats_[corpus].docs += docs;
  corpus_stats_[corpus].sentences += sentences;
  corpus_stats_[corpus].chars += chars;
  has_stats_ = true;
}

void SegmentBuilder::MergeSegment(const Segment& segment) {
  for (const PostingGroup& group : segment.groups()) {
    const std::string& name = segment.terms()[group.term_id];
    GroupKey key{name, group.corpus, group.type, group.method};
    std::vector<Posting>& dst = entries_[key];
    dst.insert(dst.end(), group.postings.begin(), group.postings.end());
    num_postings_ += group.postings.size();
  }
  for (size_t c = 0; c < kNumCorpora; ++c) {
    const CorpusStats& stats = segment.corpus_stats()[c];
    if (stats.docs != 0 || stats.sentences != 0 || stats.chars != 0) {
      AddCorpusStats(static_cast<uint8_t>(c), stats.docs, stats.sentences,
                     stats.chars);
    }
  }
}

Result<Segment> SegmentBuilder::Finish(uint64_t id) {
  Segment segment;
  segment.id_ = id;
  segment.corpus_stats_ = corpus_stats_;
  segment.num_postings_ = num_postings_;

  // Dictionary: sorted unique term strings. entries_ is keyed by
  // (name, corpus, type, method) in lexicographic order, so names come out
  // sorted already; dedupe consecutive.
  for (const auto& [key, postings] : entries_) {
    if (segment.terms_.empty() || segment.terms_.back() != key.name) {
      segment.terms_.push_back(key.name);
    }
  }

  uint32_t term_id = 0;
  for (auto& [key, postings] : entries_) {
    while (segment.terms_[term_id] != key.name) ++term_id;
    PostingGroup group;
    group.term_id = term_id;
    group.corpus = key.corpus;
    group.type = key.type;
    group.method = key.method;
    std::sort(postings.begin(), postings.end());
    group.postings = std::move(postings);
    segment.groups_.push_back(std::move(group));
  }

  entries_.clear();
  corpus_stats_ = {};
  has_stats_ = false;
  num_postings_ = 0;

  segment.BuildDocKeyCache();
  segment.encoded_bytes_ = segment.Encode().size();
  return segment;
}

}  // namespace wsie::store
