#ifndef WSIE_STORE_SEGMENT_H_
#define WSIE_STORE_SEGMENT_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "common/status.h"
#include "store/posting_codec.h"

namespace wsie {
class ThreadPool;
}  // namespace wsie

namespace wsie::fault {
class Checkpoint;
}  // namespace wsie::fault

namespace wsie::store {

inline constexpr size_t kNumCorpora = 4;   ///< corpus::CorpusKind values
inline constexpr size_t kNumTypes = 3;     ///< gene, drug, disease
inline constexpr size_t kNumMethods = 2;   ///< dict, ml

/// Maps the pipeline's annotation field strings to store indices; -1 for
/// anything unknown (mirrors the mapping AnalyzeRecords applies, so store
/// counts and in-memory analytics counts agree exactly).
int EntityTypeIndexFromName(std::string_view name);
int MethodIndexFromName(std::string_view name);

/// Per-corpus document totals carried in every segment so frequency
/// queries (Fig. 7's per-1000-sentence incidence) need no re-aggregation.
struct CorpusStats {
  uint64_t docs = 0;
  uint64_t sentences = 0;
  uint64_t chars = 0;

  friend bool operator==(const CorpusStats&, const CorpusStats&) = default;
};

/// A (corpus, doc) pair — doc ids are only unique within a corpus, so
/// distinct-document accounting always keys on both.
struct DocKey {
  uint8_t corpus = 0;
  uint64_t doc = 0;

  friend auto operator<=>(const DocKey&, const DocKey&) = default;
};

/// One posting list: every occurrence of term `term_id` with a fixed
/// (corpus, type, method). Groups are stored sorted by
/// (term_id, corpus, type, method), so a term's groups are contiguous.
struct PostingGroup {
  uint32_t term_id = 0;
  uint8_t corpus = 0;
  uint8_t type = 0;
  uint8_t method = 0;
  std::vector<Posting> postings;

  friend bool operator==(const PostingGroup&, const PostingGroup&) = default;
};

/// An immutable, checksummed, sorted annotation segment.
///
/// On disk a segment is a fault::Checkpoint container (magic + FNV-1a
/// trailer + atomic tmp/rename writes — the same durable-write machinery
/// the crawl checkpoints use) with three sections:
///   "meta"     — version, segment id, per-corpus totals, element counts
///   "dict"     — the sorted, deduplicated term dictionary (term id =
///                position), length-prefixed strings
///   "postings" — per group: varint header + posting list. Format v2
///                writes group-varint lists (EncodePostingListGrouped);
///                decode still accepts v1 segments with scalar
///                delta/varint lists, so stores written before the codec
///                switch keep opening.
/// Decode rejects bad magic, bad checksums, and any structural
/// inconsistency (unsorted dictionary, out-of-range ids, count mismatches)
/// with a Status error — a corrupt file can never be half-served.
class Segment {
 public:
  uint64_t id() const { return id_; }
  const std::vector<std::string>& terms() const { return terms_; }
  const std::vector<PostingGroup>& groups() const { return groups_; }
  const std::array<CorpusStats, kNumCorpora>& corpus_stats() const {
    return corpus_stats_;
  }
  uint64_t num_postings() const { return num_postings_; }
  /// Size of the encoded container (what the file occupies).
  size_t encoded_bytes() const { return encoded_bytes_; }

  /// Binary search over the sorted dictionary; -1 when absent.
  int FindTerm(std::string_view term) const;
  /// The contiguous run of groups for `term_id` (empty for unknown ids).
  std::span<const PostingGroup> GroupsForTerm(uint32_t term_id) const;
  /// Dictionary range [first, last) of terms starting with `prefix`.
  std::pair<size_t, size_t> PrefixRange(std::string_view prefix) const;

  /// Sorted, deduplicated (corpus, doc) pairs containing `term_id` under
  /// ANY (corpus, type, method) — the distinct-document cache the serving
  /// index merges across segments so unfiltered lookups never walk
  /// postings. Derived at build/decode time, not serialized.
  std::span<const DocKey> DocKeysForTerm(uint32_t term_id) const;

  std::string Encode() const;
  static Result<Segment> Decode(std::string_view bytes);

  /// Atomic write (tmp + rename) via the checkpoint container.
  Status WriteFile(const std::string& path) const;
  static Result<Segment> ReadFile(const std::string& path);

 private:
  friend class SegmentBuilder;
  /// The partitioned compaction merge (store/parallel_merge.cc) stitches
  /// per-term-range parts directly into a Segment's private state; its
  /// output is gated byte-identical to the serial SegmentBuilder path.
  friend Result<Segment> MergeSegmentsParallel(
      const std::vector<std::shared_ptr<const Segment>>& segments,
      uint64_t id, ThreadPool* pool, size_t workers, size_t partitions);

  fault::Checkpoint ToContainer() const;
  static Result<Segment> FromContainer(const fault::Checkpoint& container,
                                       size_t encoded_bytes);
  void BuildDocKeyCache();

  uint64_t id_ = 0;
  std::vector<std::string> terms_;            ///< sorted, unique
  std::vector<PostingGroup> groups_;          ///< sorted by group key
  std::array<CorpusStats, kNumCorpora> corpus_stats_{};
  uint64_t num_postings_ = 0;
  size_t encoded_bytes_ = 0;

  /// Flattened per-term DocKey runs: term t owns doc_keys_[offsets[t]
  /// .. offsets[t+1]). Cache-line aligned — the index build scans these
  /// sequentially for every publish.
  CacheAlignedVector<DocKey> doc_keys_;
  std::vector<uint64_t> doc_key_offsets_;  ///< terms_.size() + 1 entries
};

/// Accumulates annotations and corpus totals, then freezes them into a
/// sorted immutable Segment. Also the merge engine: compaction feeds whole
/// segments back through a builder to fold many small segments into one.
class SegmentBuilder {
 public:
  /// Records one annotation occurrence. `name` should already be
  /// normalized (the sink lowercases, matching AnalyzeRecords).
  void Add(std::string_view name, uint8_t corpus, uint8_t type,
           uint8_t method, Posting posting);

  /// Accumulates per-corpus document totals (summed across calls).
  void AddCorpusStats(uint8_t corpus, uint64_t docs, uint64_t sentences,
                      uint64_t chars);

  /// Folds an existing segment's contents into this builder.
  void MergeSegment(const Segment& segment);

  bool empty() const { return entries_.empty() && !has_stats_; }
  uint64_t num_postings() const { return num_postings_; }

  /// Sorts everything and produces the immutable segment. The builder is
  /// left empty. Fails only on internal inconsistency.
  Result<Segment> Finish(uint64_t id);

 private:
  struct GroupKey {
    std::string name;
    uint8_t corpus, type, method;
    auto operator<=>(const GroupKey&) const = default;
  };

  std::map<GroupKey, std::vector<Posting>> entries_;
  std::array<CorpusStats, kNumCorpora> corpus_stats_{};
  bool has_stats_ = false;
  uint64_t num_postings_ = 0;
};

}  // namespace wsie::store

#endif  // WSIE_STORE_SEGMENT_H_
