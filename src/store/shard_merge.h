#ifndef WSIE_STORE_SHARD_MERGE_H_
#define WSIE_STORE_SHARD_MERGE_H_

#include <string>

#include "common/result.h"
#include "store/annotation_store.h"

namespace wsie::store {

/// Folds per-shard annotation stores into `target`.
///
/// `shards_dir` is scanned for subdirectories named "shard-<i>"; each is
/// opened as an AnnotationStore and ALL its live segments are merged (via
/// SegmentBuilder::MergeSegment) into one segment appended to `target` —
/// one append per shard store, in sorted directory order, so the result is
/// deterministic regardless of how the shards raced while writing. The
/// shard stores are read-only inputs here; callers delete or reuse the
/// directories as they wish. Segment ids are reassigned by `target`.
///
/// This is the gather step for sharded StoreSink runs: every shard flushes
/// its tap into its own segment directory (no cross-process write
/// contention), then the coordinator absorbs them and the regular
/// BackgroundCompactor folds the per-shard segments down to one.
///
/// Returns the number of shard stores absorbed (empty stores are skipped
/// but still counted). NotFound when `shards_dir` does not exist.
Result<size_t> AbsorbShardStores(AnnotationStore* target,
                                 const std::string& shards_dir);

}  // namespace wsie::store

#endif  // WSIE_STORE_SHARD_MERGE_H_
