#include "store/parallel_merge.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace wsie::store {
namespace {

/// One partition's merged output: a local sorted term dictionary and the
/// group runs over it (term ids are partition-local until the stitch
/// re-bases them).
struct MergedPart {
  std::vector<std::string> terms;
  std::vector<PostingGroup> groups;
  uint64_t num_postings = 0;
};

/// Group key ordered exactly like SegmentBuilder's private GroupKey —
/// (name, corpus, type, method) lexicographically — but on views into the
/// immutable input segments, so the merge never copies a term string until
/// the part is emitted.
struct ViewKey {
  std::string_view name;
  uint8_t corpus = 0, type = 0, method = 0;

  friend bool operator<(const ViewKey& a, const ViewKey& b) {
    if (int c = a.name.compare(b.name); c != 0) return c < 0;
    return std::tuple(a.corpus, a.type, a.method) <
           std::tuple(b.corpus, b.type, b.method);
  }
};

/// Merges every input's groups whose terms fall in [range_lo, range_hi)
/// (range_hi empty + `open_end` = unbounded). Pure function of the inputs
/// and the range: a retried task recomputes the identical part.
MergedPart MergeTermRange(
    const std::vector<std::shared_ptr<const Segment>>& segments,
    std::string_view range_lo, std::string_view range_hi, bool open_end) {
  // Accumulate postings per key in segment order — the exact order the
  // serial SegmentBuilder::MergeSegment loop appends them in.
  std::map<ViewKey, std::vector<Posting>> entries;
  for (const auto& segment : segments) {
    const std::vector<std::string>& terms = segment->terms();
    const auto t_lo = static_cast<uint32_t>(
        std::lower_bound(terms.begin(), terms.end(), range_lo) -
        terms.begin());
    const auto t_hi =
        open_end ? static_cast<uint32_t>(terms.size())
                 : static_cast<uint32_t>(
                       std::lower_bound(terms.begin(), terms.end(), range_hi) -
                       terms.begin());
    if (t_lo >= t_hi) continue;
    const std::vector<PostingGroup>& groups = segment->groups();
    auto group_at = std::lower_bound(
        groups.begin(), groups.end(), t_lo,
        [](const PostingGroup& g, uint32_t id) { return g.term_id < id; });
    for (; group_at != groups.end() && group_at->term_id < t_hi; ++group_at) {
      const PostingGroup& group = *group_at;
      ViewKey key{terms[group.term_id], group.corpus, group.type,
                  group.method};
      std::vector<Posting>& dst = entries[key];
      dst.insert(dst.end(), group.postings.begin(), group.postings.end());
    }
  }

  MergedPart part;
  part.groups.reserve(entries.size());
  for (auto& [key, postings] : entries) {
    if (part.terms.empty() || part.terms.back() != key.name) {
      part.terms.emplace_back(key.name);
    }
    PostingGroup group;
    group.term_id = static_cast<uint32_t>(part.terms.size() - 1);
    group.corpus = key.corpus;
    group.type = key.type;
    group.method = key.method;
    std::sort(postings.begin(), postings.end());
    part.num_postings += postings.size();
    group.postings = std::move(postings);
    part.groups.push_back(std::move(group));
  }
  return part;
}

}  // namespace

Result<Segment> MergeSegmentsParallel(
    const std::vector<std::shared_ptr<const Segment>>& segments, uint64_t id,
    ThreadPool* pool, size_t workers, size_t partitions) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Gauge* partitions_gauge =
      registry.GetGauge("wsie.store.compact.partitions");
  obs::Histogram* partition_wall_ns =
      registry.GetHistogram("wsie.store.compact.partition_wall_ns");
  obs::Histogram* stitch_wall_ns =
      registry.GetHistogram("wsie.store.compact.stitch_wall_ns");

  if (pool == nullptr) pool = &SharedThreadPool();
  if (workers == 0) workers = pool->num_threads() + 1;  // + the caller

  // Term universe: the sorted union of every input dictionary. Boundary
  // terms come from here alone, so the partitioning — and therefore every
  // part — is a pure function of the pinned segments.
  std::vector<std::string_view> universe;
  for (const auto& segment : segments) {
    for (const std::string& term : segment->terms()) universe.push_back(term);
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  if (partitions == 0) partitions = workers * 4;
  if (partitions > universe.size()) partitions = universe.size();
  if (partitions == 0) partitions = 1;
  partitions_gauge->Set(static_cast<double>(partitions));

  // Partition p covers union terms [p*T/P, (p+1)*T/P) — contiguous ranges,
  // so no (term, corpus, type, method) key straddles two parts.
  std::vector<MergedPart> parts(partitions);
  const size_t total = universe.size();
  pool->MorselForWithCaller(
      partitions, workers, [&](size_t p) {
        Stopwatch watch;
        const size_t lo_at = p * total / partitions;
        const size_t hi_at = (p + 1) * total / partitions;
        const std::string_view lo =
            lo_at < total ? universe[lo_at] : std::string_view{};
        const bool open_end = p + 1 == partitions;
        const std::string_view hi =
            open_end || hi_at >= total ? std::string_view{} : universe[hi_at];
        parts[p] = MergeTermRange(segments, p == 0 ? std::string_view{} : lo,
                                  hi, open_end);
        partition_wall_ns->Observe(static_cast<double>(watch.ElapsedNs()));
        return true;
      });

  // Stitch the ordered parts into one segment: re-base term ids by prefix
  // sum, concatenate group runs, and sum the per-corpus totals exactly as
  // serial MergeSegment accumulation would.
  Stopwatch stitch_watch;
  Segment merged;
  merged.id_ = id;
  for (const auto& segment : segments) {
    for (size_t c = 0; c < kNumCorpora; ++c) {
      const CorpusStats& stats = segment->corpus_stats()[c];
      merged.corpus_stats_[c].docs += stats.docs;
      merged.corpus_stats_[c].sentences += stats.sentences;
      merged.corpus_stats_[c].chars += stats.chars;
    }
  }
  size_t total_terms = 0, total_groups = 0;
  for (const MergedPart& part : parts) {
    total_terms += part.terms.size();
    total_groups += part.groups.size();
  }
  merged.terms_.reserve(total_terms);
  merged.groups_.reserve(total_groups);
  for (MergedPart& part : parts) {
    const auto base = static_cast<uint32_t>(merged.terms_.size());
    for (std::string& term : part.terms) {
      merged.terms_.push_back(std::move(term));
    }
    for (PostingGroup& group : part.groups) {
      group.term_id += base;
      merged.num_postings_ += group.postings.size();
      merged.groups_.push_back(std::move(group));
    }
  }
  merged.BuildDocKeyCache();
  merged.encoded_bytes_ = merged.Encode().size();
  stitch_wall_ns->Observe(static_cast<double>(stitch_watch.ElapsedNs()));
  return merged;
}

}  // namespace wsie::store
