#include "store/store_sink.h"

#include <algorithm>

#include "common/string_util.h"
#include "corpus/profile.h"

namespace wsie::store {
namespace {

/// Index of the sentence containing character offset `begin`: the last
/// sentence whose start is at or before it.
uint32_t SentenceIndexFor(const dataflow::Value::Array& sentences,
                          int64_t begin) {
  uint32_t index = 0;
  for (size_t i = 0; i < sentences.size(); ++i) {
    if (sentences[i].Field("b").AsInt() <= begin) {
      index = static_cast<uint32_t>(i);
    } else {
      break;
    }
  }
  return index;
}

}  // namespace

Status StoreSink::ProcessSpan(std::span<const dataflow::Record> input,
                              dataflow::Dataset* /*output*/) const {
  for (const dataflow::Record& r : input) {
    corpus::CorpusKind kind;
    if (!corpus::CorpusKindFromName(r.Field("corpus").AsString(), &kind)) {
      return Status::InvalidArgument("store_sink: record without a corpus");
    }
    uint8_t corpus = static_cast<uint8_t>(kind);
    uint64_t doc_id = static_cast<uint64_t>(r.Field("id").AsInt());
    const auto& sentences = r.Field("sentences").AsArray();

    std::lock_guard<std::mutex> lock(mu_);
    if (seen_docs_.emplace(corpus, doc_id).second) {
      builder_.AddCorpusStats(corpus, /*docs=*/1, sentences.size(),
                              r.Field("text").AsString().size());
    }
    for (const dataflow::Value& ev : r.Field("entities").AsArray()) {
      int type = EntityTypeIndexFromName(ev.Field("type").AsString());
      int method = MethodIndexFromName(ev.Field("method").AsString());
      if (type < 0 || method < 0) continue;  // same skip as AnalyzeRecords
      Posting posting;
      posting.doc_id = doc_id;
      int64_t begin = ev.Field("b").AsInt();
      int64_t end = ev.Field("e").AsInt();
      posting.begin = static_cast<uint32_t>(std::max<int64_t>(0, begin));
      posting.end = static_cast<uint32_t>(std::max<int64_t>(begin, end));
      posting.sentence = SentenceIndexFor(sentences, begin);
      builder_.Add(AsciiToLower(ev.Field("surface").AsString()), corpus,
                   static_cast<uint8_t>(type), static_cast<uint8_t>(method),
                   posting);
    }
  }
  return Status::OK();
}

SegmentBuilder StoreSink::TakeBuilder() const {
  std::lock_guard<std::mutex> lock(mu_);
  seen_docs_.clear();
  return std::exchange(builder_, SegmentBuilder{});
}

Status StoreSink::FlushTo(AnnotationStore* store) const {
  return store->Append(TakeBuilder());
}

uint64_t StoreSink::postings_accumulated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return builder_.num_postings();
}

int AttachStoreSink(dataflow::Plan* plan, std::shared_ptr<StoreSink> sink,
                    const std::string& upstream_sink) {
  int upstream = dataflow::Plan::kInvalidNode;
  for (size_t i = 0; i < plan->nodes().size(); ++i) {
    if (plan->nodes()[i].sink_name == upstream_sink) {
      upstream = static_cast<int>(i);
      break;
    }
  }
  if (upstream == dataflow::Plan::kInvalidNode) {
    return dataflow::Plan::kInvalidNode;
  }
  int node = plan->AddNode(std::move(sink), {upstream});
  plan->MarkSink(node, "stored");
  return node;
}

}  // namespace wsie::store
