#include "store/annotation_store.h"

#include <filesystem>
#include <set>
#include <utility>

#include "common/stopwatch.h"
#include "fault/checkpoint.h"
#include "fault/wire_format.h"

namespace wsie::store {
namespace {

constexpr uint64_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";

namespace wire = wsie::fault::wire;

}  // namespace

AnnotationStore::AnnotationStore(std::string dir)
    : dir_(std::move(dir)), current_(new SegmentSet) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  segments_gauge_ = registry.GetGauge("wsie.store.segments");
  bytes_gauge_ = registry.GetGauge("wsie.store.bytes");
  segments_written_ = registry.GetCounter("wsie.store.segments_written");
  postings_written_ = registry.GetCounter("wsie.store.postings_written");
  compactions_ = registry.GetCounter("wsie.store.compactions");
  merge_wall_ns_ = registry.GetHistogram("wsie.store.merge.wall_ns");
  segment_write_ns_ = registry.GetHistogram("wsie.store.segment.write_ns");
  epoch_retired_gauge_ = registry.GetGauge("wsie.store.epoch.retired");
  epoch_reclaimed_gauge_ = registry.GetGauge("wsie.store.epoch.reclaimed");
}

AnnotationStore::~AnnotationStore() {
  // Retired sets belong to the epoch manager; only the live one is ours.
  // By contract no reader pin outlives the store.
  delete current_.load(std::memory_order_acquire);
}

std::string AnnotationStore::SegmentPath(uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".wseg";
}

Result<std::shared_ptr<AnnotationStore>> AnnotationStore::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("store: cannot create directory " + dir + ": " +
                            ec.message());
  }
  std::shared_ptr<AnnotationStore> store(new AnnotationStore(dir));

  const std::string manifest_path = dir + "/" + kManifestName;
  if (!std::filesystem::exists(manifest_path)) {
    std::lock_guard<std::mutex> lock(store->publish_mu_);
    const SegmentSet& set = *store->current_.load(std::memory_order_relaxed);
    WSIE_RETURN_NOT_OK(store->WriteManifestLocked(set));
    store->PublishMetricsLocked(set);
    return store;
  }

  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint manifest,
                        fault::Checkpoint::ReadFile(manifest_path));
  const std::string* section = manifest.FindSection("store");
  if (section == nullptr) {
    return Status::InvalidArgument("store: manifest missing 'store' section");
  }
  std::string_view in = *section;
  uint64_t version = 0, next_id = 0, count = 0;
  if (!wire::GetU64(&in, &version) || version != kManifestVersion ||
      !wire::GetU64(&in, &next_id) || !wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("store: malformed manifest");
  }
  std::vector<std::shared_ptr<const Segment>> segments;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!wire::GetU64(&in, &id)) {
      return Status::InvalidArgument("store: malformed manifest entry");
    }
    WSIE_ASSIGN_OR_RETURN(Segment segment,
                          Segment::ReadFile(store->SegmentPath(id)));
    if (segment.id() != id) {
      return Status::InvalidArgument("store: segment id mismatch for " +
                                     store->SegmentPath(id));
    }
    segments.push_back(std::make_shared<const Segment>(std::move(segment)));
  }

  std::lock_guard<std::mutex> lock(store->publish_mu_);
  store->next_id_ = next_id;
  // Install the loaded set in place of the empty one published by the
  // constructor; nobody can hold a pin yet, so replace it directly.
  auto* initial = new SegmentSet;
  initial->segments = std::move(segments);
  initial->epoch = 0;
  initial->index = ServingIndex::Build(initial->segments);
  delete store->current_.exchange(initial, std::memory_order_acq_rel);
  store->PublishMetricsLocked(*initial);
  return store;
}

Status AnnotationStore::WriteManifestLocked(const SegmentSet& set) {
  std::string section;
  wire::PutU64(&section, kManifestVersion);
  wire::PutU64(&section, next_id_);
  wire::PutU64(&section, set.segments.size());
  for (const auto& segment : set.segments) wire::PutU64(&section, segment->id());
  fault::Checkpoint manifest;
  manifest.SetSection("store", std::move(section));
  return manifest.WriteFile(dir_ + "/" + kManifestName);
}

void AnnotationStore::PublishMetricsLocked(const SegmentSet& set) {
  segments_gauge_->Set(static_cast<double>(set.segments.size()));
  uint64_t bytes = 0;
  for (const auto& segment : set.segments) bytes += segment->encoded_bytes();
  bytes_gauge_->Set(static_cast<double>(bytes));
  EpochManager& epochs = EpochManager::Global();
  epoch_retired_gauge_->Set(static_cast<double>(epochs.retired_total()));
  epoch_reclaimed_gauge_->Set(static_cast<double>(epochs.reclaimed_total()));
}

Status AnnotationStore::PublishLocked(
    std::vector<std::shared_ptr<const Segment>> segments) {
  const SegmentSet* previous = current_.load(std::memory_order_relaxed);
  auto* next = new SegmentSet;
  next->segments = std::move(segments);
  next->epoch = previous->epoch + 1;
  next->index = ServingIndex::Build(next->segments);

  // One release store makes the whole generation visible; readers pinned
  // at or before the current epoch keep the previous set alive until
  // their pins drop.
  current_.store(next, std::memory_order_release);
  EpochManager& epochs = EpochManager::Global();
  epochs.Retire(previous);
  epochs.AdvanceEpoch();

  Status manifest_status = WriteManifestLocked(*next);
  PublishMetricsLocked(*next);
  return manifest_status;
}

Status AnnotationStore::Append(SegmentBuilder&& builder) {
  if (builder.empty()) return Status::OK();
  uint64_t id;
  {
    // Ids are claimed up front so concurrent appenders never share a file
    // name; the encode + durable write then happen outside the lock.
    std::lock_guard<std::mutex> lock(publish_mu_);
    id = next_id_++;
  }
  WSIE_ASSIGN_OR_RETURN(Segment segment, builder.Finish(id));
  Stopwatch watch;
  WSIE_RETURN_NOT_OK(segment.WriteFile(SegmentPath(id)));
  segment_write_ns_->Observe(static_cast<double>(watch.ElapsedNs()));

  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    postings_written_->Add(segment.num_postings());
    segments_written_->Increment();
    std::vector<std::shared_ptr<const Segment>> next =
        current_.load(std::memory_order_relaxed)->segments;
    next.push_back(std::make_shared<const Segment>(std::move(segment)));
    WSIE_RETURN_NOT_OK(PublishLocked(std::move(next)));
  }
  EpochManager::Global().TryReclaim();
  return Status::OK();
}

Status AnnotationStore::Compact() {
  // One compaction at a time: overlapping merges of the same inputs would
  // each re-publish the full input set, double-counting postings.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  Snapshot before = snapshot();
  if (before.segments.size() < 2) return Status::OK();

  Stopwatch watch;
  SegmentBuilder builder;
  std::set<uint64_t> merged_ids;
  for (const auto& segment : before.segments) {
    builder.MergeSegment(*segment);
    merged_ids.insert(segment->id());
  }
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    id = next_id_++;
  }
  WSIE_ASSIGN_OR_RETURN(Segment merged, builder.Finish(id));
  WSIE_RETURN_NOT_OK(merged.WriteFile(SegmentPath(id)));

  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    // Replace exactly the segments that were merged; segments appended
    // concurrently (not in `merged_ids`) stay live.
    std::vector<std::shared_ptr<const Segment>> next;
    next.push_back(std::make_shared<const Segment>(std::move(merged)));
    for (const auto& segment :
         current_.load(std::memory_order_relaxed)->segments) {
      if (merged_ids.count(segment->id()) == 0) next.push_back(segment);
    }
    WSIE_RETURN_NOT_OK(PublishLocked(std::move(next)));
  }

  // The manifest no longer references the merged inputs; unlink them.
  // Readers holding pre-compaction pins keep the decoded segments in
  // memory, so the files are dead weight.
  for (uint64_t old_id : merged_ids) {
    std::error_code ec;
    std::filesystem::remove(SegmentPath(old_id), ec);
  }

  compactions_->Increment();
  merge_wall_ns_->Observe(static_cast<double>(watch.ElapsedNs()));
  EpochManager::Global().TryReclaim();
  return Status::OK();
}

AnnotationStore::Snapshot AnnotationStore::snapshot() const {
  PinnedSet pin(*this);
  return Snapshot{pin->segments, pin->epoch};
}

size_t AnnotationStore::num_segments() const {
  PinnedSet pin(*this);
  return pin->segments.size();
}

uint64_t AnnotationStore::total_bytes() const {
  PinnedSet pin(*this);
  uint64_t bytes = 0;
  for (const auto& segment : pin->segments) bytes += segment->encoded_bytes();
  return bytes;
}

uint64_t AnnotationStore::epoch() const {
  PinnedSet pin(*this);
  return pin->epoch;
}

BackgroundCompactor::BackgroundCompactor(
    std::shared_ptr<AnnotationStore> store, size_t min_segments,
    std::chrono::milliseconds period)
    : store_(std::move(store)),
      min_segments_(min_segments),
      period_(period),
      thread_([this] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
          cv_.wait_for(lock, period_, [this] { return stop_; });
          if (stop_) break;
          if (store_->num_segments() >= min_segments_) {
            lock.unlock();
            if (store_->Compact().ok()) {
              compactions_run_.fetch_add(1, std::memory_order_relaxed);
            }
            lock.lock();
          }
        }
      }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace wsie::store
