#include "store/annotation_store.h"

#include <filesystem>
#include <set>
#include <utility>

#include "common/stopwatch.h"
#include "fault/checkpoint.h"
#include "fault/wire_format.h"
#include "store/parallel_merge.h"

namespace wsie::store {
namespace {

constexpr uint64_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";

namespace wire = wsie::fault::wire;

}  // namespace

AnnotationStore::AnnotationStore(std::string dir)
    : dir_(std::move(dir)), current_(new SegmentSet) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  segments_gauge_ = registry.GetGauge("wsie.store.segments");
  bytes_gauge_ = registry.GetGauge("wsie.store.bytes");
  segments_written_ = registry.GetCounter("wsie.store.segments_written");
  postings_written_ = registry.GetCounter("wsie.store.postings_written");
  compactions_ = registry.GetCounter("wsie.store.compactions");
  merge_wall_ns_ = registry.GetHistogram("wsie.store.merge.wall_ns");
  segment_write_ns_ = registry.GetHistogram("wsie.store.segment.write_ns");
  epoch_retired_gauge_ = registry.GetGauge("wsie.store.epoch.retired");
  epoch_reclaimed_gauge_ = registry.GetGauge("wsie.store.epoch.reclaimed");
  vec_vectors_gauge_ = registry.GetGauge("wsie.vec.index.vectors");
  vec_bytes_gauge_ = registry.GetGauge("wsie.vec.index.bytes");
  vec_builds_ = registry.GetCounter("wsie.vec.index.builds");
  vec_build_wall_ns_ = registry.GetHistogram("wsie.vec.build.wall_ns");
  vec_stale_terms_gauge_ = registry.GetGauge("wsie.vec.index.stale_terms");
  // The partitioned-merge families (observed inside MergeSegmentsParallel)
  // register here too, so they export even before the first compaction.
  registry.GetGauge("wsie.store.compact.partitions");
  registry.GetHistogram("wsie.store.compact.partition_wall_ns");
  registry.GetHistogram("wsie.store.compact.stitch_wall_ns");
}

AnnotationStore::~AnnotationStore() {
  // Retired sets belong to the epoch manager; only the live one is ours.
  // By contract no reader pin outlives the store.
  delete current_.load(std::memory_order_acquire);
}

std::string AnnotationStore::SegmentPath(uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".wseg";
}

std::string AnnotationStore::VecPath(uint64_t id) const {
  return dir_ + "/vec-" + std::to_string(id) + ".wvec";
}

Result<std::shared_ptr<AnnotationStore>> AnnotationStore::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("store: cannot create directory " + dir + ": " +
                            ec.message());
  }
  std::shared_ptr<AnnotationStore> store(new AnnotationStore(dir));

  const std::string manifest_path = dir + "/" + kManifestName;
  if (!std::filesystem::exists(manifest_path)) {
    std::lock_guard<std::mutex> lock(store->publish_mu_);
    const SegmentSet& set = *store->current_.load(std::memory_order_relaxed);
    WSIE_RETURN_NOT_OK(store->WriteManifestLocked(set));
    store->PublishMetricsLocked(set);
    return store;
  }

  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint manifest,
                        fault::Checkpoint::ReadFile(manifest_path));
  const std::string* section = manifest.FindSection("store");
  if (section == nullptr) {
    return Status::InvalidArgument("store: manifest missing 'store' section");
  }
  std::string_view in = *section;
  uint64_t version = 0, next_id = 0, count = 0;
  if (!wire::GetU64(&in, &version) || version != kManifestVersion ||
      !wire::GetU64(&in, &next_id) || !wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("store: malformed manifest");
  }
  std::vector<std::shared_ptr<const Segment>> segments;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!wire::GetU64(&in, &id)) {
      return Status::InvalidArgument("store: malformed manifest entry");
    }
    WSIE_ASSIGN_OR_RETURN(Segment segment,
                          Segment::ReadFile(store->SegmentPath(id)));
    if (segment.id() != id) {
      return Status::InvalidArgument("store: segment id mismatch for " +
                                     store->SegmentPath(id));
    }
    segments.push_back(std::make_shared<const Segment>(std::move(segment)));
  }

  // A "vec" section names the published vector index; its absence (older
  // manifests) simply means similarity search is not yet built.
  std::shared_ptr<const vec::VecIndex> vectors;
  if (const std::string* vec_section = manifest.FindSection("vec")) {
    std::string_view vec_in = *vec_section;
    uint64_t vec_id = 0;
    if (!wire::GetU64(&vec_in, &vec_id)) {
      return Status::InvalidArgument("store: malformed manifest vec section");
    }
    WSIE_ASSIGN_OR_RETURN(vec::VecIndex index,
                          vec::VecIndex::ReadFile(store->VecPath(vec_id)));
    if (index.id() != vec_id) {
      return Status::InvalidArgument("store: vec index id mismatch for " +
                                     store->VecPath(vec_id));
    }
    vectors = std::make_shared<const vec::VecIndex>(std::move(index));
  }

  std::lock_guard<std::mutex> lock(store->publish_mu_);
  store->next_id_ = next_id;
  // Install the loaded set in place of the empty one published by the
  // constructor; nobody can hold a pin yet, so replace it directly.
  auto* initial = new SegmentSet;
  initial->segments = std::move(segments);
  initial->epoch = 0;
  initial->index = ServingIndex::Build(initial->segments);
  initial->vectors = std::move(vectors);
  // The delta is never persisted; derive it from what the manifest loaded
  // (segments appended after the last vector build reopen as stale terms).
  initial->delta =
      ComputeDelta(initial->index, initial->vectors.get(), nullptr);
  delete store->current_.exchange(initial, std::memory_order_acq_rel);
  store->PublishMetricsLocked(*initial);
  return store;
}

Status AnnotationStore::WriteManifestLocked(const SegmentSet& set) {
  std::string section;
  wire::PutU64(&section, kManifestVersion);
  wire::PutU64(&section, next_id_);
  wire::PutU64(&section, set.segments.size());
  for (const auto& segment : set.segments) wire::PutU64(&section, segment->id());
  fault::Checkpoint manifest;
  manifest.SetSection("store", std::move(section));
  if (set.vectors != nullptr) {
    std::string vec_section;
    wire::PutU64(&vec_section, set.vectors->id());
    manifest.SetSection("vec", std::move(vec_section));
  }
  return manifest.WriteFile(dir_ + "/" + kManifestName);
}

void AnnotationStore::PublishMetricsLocked(const SegmentSet& set) {
  segments_gauge_->Set(static_cast<double>(set.segments.size()));
  uint64_t bytes = 0;
  for (const auto& segment : set.segments) bytes += segment->encoded_bytes();
  bytes_gauge_->Set(static_cast<double>(bytes));
  EpochManager& epochs = EpochManager::Global();
  epoch_retired_gauge_->Set(static_cast<double>(epochs.retired_total()));
  epoch_reclaimed_gauge_->Set(static_cast<double>(epochs.reclaimed_total()));
  vec_vectors_gauge_->Set(
      set.vectors ? static_cast<double>(set.vectors->size()) : 0.0);
  vec_bytes_gauge_->Set(
      set.vectors ? static_cast<double>(set.vectors->encoded_bytes()) : 0.0);
  vec_stale_terms_gauge_->Set(
      set.delta ? static_cast<double>(set.delta->size()) : 0.0);
}

std::shared_ptr<const vec::DeltaIndex> AnnotationStore::ComputeDelta(
    const ServingIndex& index, const vec::VecIndex* vectors,
    const vec::DeltaIndex* previous) {
  if (vectors == nullptr) return nullptr;
  std::vector<std::string> stale;
  for (size_t i = 0; i < index.num_terms(); ++i) {
    const std::string_view term = index.term(i);
    if (vectors->FindName(term) < 0) stale.emplace_back(term);
  }
  if (stale.empty()) return nullptr;
  return std::make_shared<const vec::DeltaIndex>(vec::DeltaIndex::Build(
      std::move(stale), vectors->config().embedder, previous));
}

Status AnnotationStore::PublishLocked(
    std::vector<std::shared_ptr<const Segment>> segments,
    std::shared_ptr<const vec::VecIndex> vectors) {
  const SegmentSet* previous = current_.load(std::memory_order_relaxed);
  auto* next = new SegmentSet;
  next->segments = std::move(segments);
  next->epoch = previous->epoch + 1;
  next->index = ServingIndex::Build(next->segments);
  next->vectors = std::move(vectors);
  // Every publish re-derives the append-delta from the invariant
  // delta = (live terms) ∖ (vector-index names): appends grow it,
  // compaction rebuilds and full builds collapse it back to null.
  // Embeddings are pure functions of the name bytes, so reusing the
  // predecessor's rows changes nothing but the cost.
  next->delta = ComputeDelta(next->index, next->vectors.get(),
                             previous->delta.get());

  // One release store makes the whole generation visible; readers pinned
  // at or before the current epoch keep the previous set alive until
  // their pins drop.
  current_.store(next, std::memory_order_release);
  EpochManager& epochs = EpochManager::Global();
  epochs.Retire(previous);
  epochs.AdvanceEpoch();

  Status manifest_status = WriteManifestLocked(*next);
  PublishMetricsLocked(*next);
  return manifest_status;
}

Status AnnotationStore::Append(SegmentBuilder&& builder) {
  if (builder.empty()) return Status::OK();
  uint64_t id;
  {
    // Ids are claimed up front so concurrent appenders never share a file
    // name; the encode + durable write then happen outside the lock.
    std::lock_guard<std::mutex> lock(publish_mu_);
    id = next_id_++;
  }
  WSIE_ASSIGN_OR_RETURN(Segment segment, builder.Finish(id));
  Stopwatch watch;
  WSIE_RETURN_NOT_OK(segment.WriteFile(SegmentPath(id)));
  segment_write_ns_->Observe(static_cast<double>(watch.ElapsedNs()));

  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    postings_written_->Add(segment.num_postings());
    segments_written_->Increment();
    const SegmentSet* live = current_.load(std::memory_order_relaxed);
    std::vector<std::shared_ptr<const Segment>> next = live->segments;
    next.push_back(std::make_shared<const Segment>(std::move(segment)));
    // The vector index rides along unchanged — its graph is immutable — but
    // PublishLocked recomputes the delta companion, so any terms this
    // append introduced become similarity-searchable in the same epoch.
    // The next BuildVectorIndex or compactor rebuild folds them into the
    // graph and the delta collapses back to null.
    WSIE_RETURN_NOT_OK(PublishLocked(std::move(next), live->vectors));
  }
  EpochManager::Global().TryReclaim();
  return Status::OK();
}

Status AnnotationStore::Compact() {
  // One compaction at a time: overlapping merges of the same inputs would
  // each re-publish the full input set, double-counting postings.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  Stopwatch watch;
  std::vector<std::shared_ptr<const Segment>> inputs;
  std::set<uint64_t> merged_ids;
  // When the pre-merge set serves a vector index, capture its config and
  // term union so the merged set gets a freshly built index covering the
  // merged terms. Both come from one pin, so they are mutually consistent.
  bool rebuild_vectors = false;
  vec::VecIndexConfig vec_config;
  uint64_t old_vec_id = 0;
  std::vector<std::string> vec_names;
  {
    PinnedSet pin(*this);
    if (pin->segments.size() < 2) return Status::OK();
    inputs = pin->segments;
    for (const auto& segment : inputs) {
      merged_ids.insert(segment->id());
    }
    if (pin->vectors != nullptr) {
      rebuild_vectors = true;
      vec_config = pin->vectors->config();
      old_vec_id = pin->vectors->id();
      vec_names.reserve(pin->index.num_terms());
      for (size_t i = 0; i < pin->index.num_terms(); ++i) {
        vec_names.emplace_back(pin->index.term(i));
      }
    }
  }
  uint64_t id;
  uint64_t vec_id = 0;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    id = next_id_++;
    if (rebuild_vectors) vec_id = next_id_++;
  }
  // Partitioned parallel merge: contiguous term ranges k-way-merged on the
  // shared pool and stitched — byte-identical to the serial SegmentBuilder
  // MergeSegment/Finish path at every thread count (gated by
  // tests/ingest_test.cc), released after the pin since the inputs are
  // immutable shared_ptr segments.
  WSIE_ASSIGN_OR_RETURN(Segment merged, MergeSegmentsParallel(inputs, id));
  inputs.clear();
  WSIE_RETURN_NOT_OK(merged.WriteFile(SegmentPath(id)));

  // Rebuild the vector index outside every lock, over the pinned set's
  // full term union — including any terms only the delta companion was
  // serving — so the post-compaction graph folds the appends in and the
  // delta collapses to null. When the union is unchanged the rebuilt
  // graph is byte-identical to the one being replaced — the epoch flip
  // swaps files and ids, never answers.
  std::shared_ptr<const vec::VecIndex> rebuilt;
  if (rebuild_vectors) {
    Stopwatch vec_watch;
    WSIE_ASSIGN_OR_RETURN(
        vec::VecIndex index,
        vec::VecIndex::Build(std::move(vec_names), vec_config, vec_id));
    WSIE_RETURN_NOT_OK(index.WriteFile(VecPath(vec_id)));
    vec_build_wall_ns_->Observe(static_cast<double>(vec_watch.ElapsedNs()));
    vec_builds_->Increment();
    rebuilt = std::make_shared<const vec::VecIndex>(std::move(index));
  }

  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    // Replace exactly the segments that were merged; segments appended
    // concurrently (not in `merged_ids`) stay live.
    const SegmentSet* live = current_.load(std::memory_order_relaxed);
    std::vector<std::shared_ptr<const Segment>> next;
    next.push_back(std::make_shared<const Segment>(std::move(merged)));
    for (const auto& segment : live->segments) {
      if (merged_ids.count(segment->id()) == 0) next.push_back(segment);
    }
    WSIE_RETURN_NOT_OK(PublishLocked(
        std::move(next), rebuilt != nullptr ? rebuilt : live->vectors));
  }

  // The manifest no longer references the merged inputs; unlink them.
  // Readers holding pre-compaction pins keep the decoded segments in
  // memory, so the files are dead weight.
  for (uint64_t old_id : merged_ids) {
    std::error_code ec;
    std::filesystem::remove(SegmentPath(old_id), ec);
  }
  if (rebuilt != nullptr) {
    std::error_code ec;
    std::filesystem::remove(VecPath(old_vec_id), ec);
  }

  compactions_->Increment();
  merge_wall_ns_->Observe(static_cast<double>(watch.ElapsedNs()));
  EpochManager::Global().TryReclaim();
  return Status::OK();
}

Status AnnotationStore::BuildVectorIndex(const vec::VecIndexConfig& config) {
  // Builds serialize with compaction: both are expensive whole-set passes,
  // and sharing compact_mu_ keeps their file claims and rebuilds ordered.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  std::vector<std::string> names;
  uint64_t old_vec_id = 0;
  bool had_old = false;
  {
    PinnedSet pin(*this);
    names.reserve(pin->index.num_terms());
    for (size_t i = 0; i < pin->index.num_terms(); ++i) {
      names.emplace_back(pin->index.term(i));
    }
    if (pin->vectors != nullptr) {
      had_old = true;
      old_vec_id = pin->vectors->id();
    }
  }
  uint64_t vec_id;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    vec_id = next_id_++;
  }
  Stopwatch watch;
  WSIE_ASSIGN_OR_RETURN(vec::VecIndex index,
                        vec::VecIndex::Build(std::move(names), config, vec_id));
  WSIE_RETURN_NOT_OK(index.WriteFile(VecPath(vec_id)));
  vec_build_wall_ns_->Observe(static_cast<double>(watch.ElapsedNs()));
  vec_builds_->Increment();
  auto built = std::make_shared<const vec::VecIndex>(std::move(index));

  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    WSIE_RETURN_NOT_OK(PublishLocked(
        current_.load(std::memory_order_relaxed)->segments, std::move(built)));
  }
  if (had_old) {
    std::error_code ec;
    std::filesystem::remove(VecPath(old_vec_id), ec);
  }
  EpochManager::Global().TryReclaim();
  return Status::OK();
}

AnnotationStore::Snapshot AnnotationStore::snapshot() const {
  PinnedSet pin(*this);
  return Snapshot{pin->segments, pin->epoch, pin->vectors, pin->delta};
}

size_t AnnotationStore::num_segments() const {
  PinnedSet pin(*this);
  return pin->segments.size();
}

uint64_t AnnotationStore::total_bytes() const {
  PinnedSet pin(*this);
  uint64_t bytes = 0;
  for (const auto& segment : pin->segments) bytes += segment->encoded_bytes();
  return bytes;
}

uint64_t AnnotationStore::epoch() const {
  PinnedSet pin(*this);
  return pin->epoch;
}

BackgroundCompactor::BackgroundCompactor(
    std::shared_ptr<AnnotationStore> store, size_t min_segments,
    std::chrono::milliseconds period)
    : store_(std::move(store)),
      min_segments_(min_segments),
      period_(period),
      thread_([this] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
          cv_.wait_for(lock, period_, [this] { return stop_; });
          if (stop_) break;
          if (store_->num_segments() >= min_segments_) {
            lock.unlock();
            if (store_->Compact().ok()) {
              compactions_run_.fetch_add(1, std::memory_order_relaxed);
            }
            lock.lock();
          }
        }
      }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace wsie::store
