#include "store/annotation_store.h"

#include <filesystem>
#include <set>

#include "common/stopwatch.h"
#include "fault/checkpoint.h"
#include "fault/wire_format.h"

namespace wsie::store {
namespace {

constexpr uint64_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";

namespace wire = wsie::fault::wire;

}  // namespace

AnnotationStore::AnnotationStore(std::string dir) : dir_(std::move(dir)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  segments_gauge_ = registry.GetGauge("wsie.store.segments");
  bytes_gauge_ = registry.GetGauge("wsie.store.bytes");
  segments_written_ = registry.GetCounter("wsie.store.segments_written");
  postings_written_ = registry.GetCounter("wsie.store.postings_written");
  compactions_ = registry.GetCounter("wsie.store.compactions");
  merge_wall_ns_ = registry.GetHistogram("wsie.store.merge.wall_ns");
  segment_write_ns_ = registry.GetHistogram("wsie.store.segment.write_ns");
}

std::string AnnotationStore::SegmentPath(uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".wseg";
}

Result<std::shared_ptr<AnnotationStore>> AnnotationStore::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("store: cannot create directory " + dir + ": " +
                            ec.message());
  }
  std::shared_ptr<AnnotationStore> store(new AnnotationStore(dir));

  const std::string manifest_path = dir + "/" + kManifestName;
  if (!std::filesystem::exists(manifest_path)) {
    std::lock_guard<std::mutex> lock(store->mu_);
    WSIE_RETURN_NOT_OK(store->WriteManifestLocked());
    store->PublishMetricsLocked();
    return store;
  }

  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint manifest,
                        fault::Checkpoint::ReadFile(manifest_path));
  const std::string* section = manifest.FindSection("store");
  if (section == nullptr) {
    return Status::InvalidArgument("store: manifest missing 'store' section");
  }
  std::string_view in = *section;
  uint64_t version = 0, next_id = 0, count = 0;
  if (!wire::GetU64(&in, &version) || version != kManifestVersion ||
      !wire::GetU64(&in, &next_id) || !wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("store: malformed manifest");
  }
  std::lock_guard<std::mutex> lock(store->mu_);
  store->next_id_ = next_id;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!wire::GetU64(&in, &id)) {
      return Status::InvalidArgument("store: malformed manifest entry");
    }
    WSIE_ASSIGN_OR_RETURN(Segment segment,
                          Segment::ReadFile(store->SegmentPath(id)));
    if (segment.id() != id) {
      return Status::InvalidArgument("store: segment id mismatch for " +
                                     store->SegmentPath(id));
    }
    store->live_.push_back(
        std::make_shared<const Segment>(std::move(segment)));
  }
  store->PublishMetricsLocked();
  return store;
}

Status AnnotationStore::WriteManifestLocked() {
  std::string section;
  wire::PutU64(&section, kManifestVersion);
  wire::PutU64(&section, next_id_);
  wire::PutU64(&section, live_.size());
  for (const auto& segment : live_) wire::PutU64(&section, segment->id());
  fault::Checkpoint manifest;
  manifest.SetSection("store", std::move(section));
  return manifest.WriteFile(dir_ + "/" + kManifestName);
}

void AnnotationStore::PublishMetricsLocked() {
  segments_gauge_->Set(static_cast<double>(live_.size()));
  uint64_t bytes = 0;
  for (const auto& segment : live_) bytes += segment->encoded_bytes();
  bytes_gauge_->Set(static_cast<double>(bytes));
}

Status AnnotationStore::Append(SegmentBuilder&& builder) {
  if (builder.empty()) return Status::OK();
  uint64_t id;
  {
    // Ids are claimed up front so concurrent appenders never share a file
    // name; the encode + durable write then happen outside the lock.
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  WSIE_ASSIGN_OR_RETURN(Segment segment, builder.Finish(id));
  Stopwatch watch;
  WSIE_RETURN_NOT_OK(segment.WriteFile(SegmentPath(id)));
  segment_write_ns_->Observe(static_cast<double>(watch.ElapsedNs()));

  std::lock_guard<std::mutex> lock(mu_);
  postings_written_->Add(segment.num_postings());
  segments_written_->Increment();
  live_.push_back(std::make_shared<const Segment>(std::move(segment)));
  ++epoch_;
  WSIE_RETURN_NOT_OK(WriteManifestLocked());
  PublishMetricsLocked();
  return Status::OK();
}

Status AnnotationStore::Compact() {
  // One compaction at a time: overlapping merges of the same inputs would
  // each re-publish the full input set, double-counting postings.
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  Snapshot before = snapshot();
  if (before.segments.size() < 2) return Status::OK();

  Stopwatch watch;
  SegmentBuilder builder;
  std::set<uint64_t> merged_ids;
  for (const auto& segment : before.segments) {
    builder.MergeSegment(*segment);
    merged_ids.insert(segment->id());
  }
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
  }
  WSIE_ASSIGN_OR_RETURN(Segment merged, builder.Finish(id));
  WSIE_RETURN_NOT_OK(merged.WriteFile(SegmentPath(id)));

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Replace exactly the segments that were merged; segments appended
    // concurrently (not in `merged_ids`) stay live.
    std::vector<std::shared_ptr<const Segment>> next;
    next.push_back(std::make_shared<const Segment>(std::move(merged)));
    for (const auto& segment : live_) {
      if (merged_ids.count(segment->id()) == 0) next.push_back(segment);
    }
    live_ = std::move(next);
    ++epoch_;
    WSIE_RETURN_NOT_OK(WriteManifestLocked());
    PublishMetricsLocked();
  }

  // The manifest no longer references the merged inputs; unlink them.
  // Readers holding pre-compaction snapshots keep the decoded segments in
  // memory, so the files are dead weight.
  for (uint64_t old_id : merged_ids) {
    std::error_code ec;
    std::filesystem::remove(SegmentPath(old_id), ec);
  }

  compactions_->Increment();
  merge_wall_ns_->Observe(static_cast<double>(watch.ElapsedNs()));
  return Status::OK();
}

AnnotationStore::Snapshot AnnotationStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{live_, epoch_};
}

size_t AnnotationStore::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

uint64_t AnnotationStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = 0;
  for (const auto& segment : live_) bytes += segment->encoded_bytes();
  return bytes;
}

uint64_t AnnotationStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

BackgroundCompactor::BackgroundCompactor(
    std::shared_ptr<AnnotationStore> store, size_t min_segments,
    std::chrono::milliseconds period)
    : store_(std::move(store)),
      min_segments_(min_segments),
      period_(period),
      thread_([this] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!stop_) {
          cv_.wait_for(lock, period_, [this] { return stop_; });
          if (stop_) break;
          if (store_->num_segments() >= min_segments_) {
            lock.unlock();
            if (store_->Compact().ok()) {
              compactions_run_.fetch_add(1, std::memory_order_relaxed);
            }
            lock.lock();
          }
        }
      }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace wsie::store
