#ifndef WSIE_STORE_SERVING_INDEX_H_
#define WSIE_STORE_SERVING_INDEX_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "store/segment.h"

namespace wsie::store {

/// Read-optimized aggregates over one immutable segment set, built once
/// per publish (Append/Compact) and shared by every reader that pins the
/// set. It exists so the common queries never walk posting lists:
///
///   - a merged, sorted, deduplicated term table (string_views into the
///     segments' dictionaries — the index must not outlive its segments),
///   - per term: total posting count, per-corpus counts, the distinct
///     (corpus, doc) count merged across segments, the per-(corpus, type,
///     method) posting counts, and the (segment, local term id) refs for
///     queries that do need the raw groups,
///   - corpus-level rollups: sentence totals and, per (corpus, type),
///     annotation counts and distinct-name counts per method plus the
///     either-method union.
///
/// Everything is integer aggregation in deterministic order, so results
/// computed from the index are bit-identical to a full segment walk.
class ServingIndex {
 public:
  /// Aggregated posting count for one (corpus, type, method) of one term,
  /// summed across segments. A term's combos are sorted by
  /// (corpus, type, method); at most kNumCorpora*kNumTypes*kNumMethods.
  struct ComboCount {
    uint64_t count = 0;
    uint8_t corpus = 0;
    uint8_t type = 0;
    uint8_t method = 0;
  };

  /// Where a merged term lives: segment index (into the set's vector, in
  /// publication order) and the term's local id there.
  struct TermRef {
    uint32_t segment = 0;
    uint32_t term_id = 0;
  };

  /// Index slot for distinct_names() selecting the either-method union.
  static constexpr size_t kMethodUnion = kNumMethods;

  ServingIndex() = default;

  static ServingIndex Build(
      const std::vector<std::shared_ptr<const Segment>>& segments);

  size_t num_terms() const { return terms_.size(); }
  std::string_view term(size_t i) const { return terms_[i]; }
  /// Binary search over the merged dictionary; -1 when absent.
  int64_t FindTerm(std::string_view name) const;
  /// Merged-dictionary range [first, last) of terms starting with `prefix`.
  std::pair<size_t, size_t> PrefixRange(std::string_view prefix) const;

  std::span<const ComboCount> Combos(size_t i) const {
    return {combos_.data() + combo_offsets_[i],
            static_cast<size_t>(combo_offsets_[i + 1] - combo_offsets_[i])};
  }
  std::span<const TermRef> Refs(size_t i) const {
    return {refs_.data() + ref_offsets_[i],
            static_cast<size_t>(ref_offsets_[i + 1] - ref_offsets_[i])};
  }
  uint64_t total_count(size_t i) const { return totals_[i]; }
  uint64_t distinct_docs(size_t i) const { return distinct_docs_[i]; }
  const std::array<uint64_t, kNumCorpora>& per_corpus(size_t i) const {
    return per_corpus_[i];
  }

  uint64_t sentences(size_t corpus) const { return sentences_[corpus]; }
  uint64_t annotations(size_t corpus, size_t type, size_t method) const {
    return annotations_[corpus][type][method];
  }
  /// `method_slot` is a method index or kMethodUnion.
  uint64_t distinct_names(size_t corpus, size_t type,
                          size_t method_slot) const {
    return distinct_names_[corpus][type][method_slot];
  }

 private:
  std::vector<std::string_view> terms_;  ///< sorted, unique, borrowed

  // Struct-of-arrays per-term tables, indexed by merged term position.
  CacheAlignedVector<uint64_t> totals_;
  CacheAlignedVector<uint64_t> distinct_docs_;
  CacheAlignedVector<std::array<uint64_t, kNumCorpora>> per_corpus_;
  CacheAlignedVector<ComboCount> combos_;
  std::vector<uint64_t> combo_offsets_;  ///< terms+1
  CacheAlignedVector<TermRef> refs_;
  std::vector<uint64_t> ref_offsets_;  ///< terms+1

  std::array<uint64_t, kNumCorpora> sentences_{};
  uint64_t annotations_[kNumCorpora][kNumTypes][kNumMethods] = {};
  uint64_t distinct_names_[kNumCorpora][kNumTypes][kNumMethods + 1] = {};
};

}  // namespace wsie::store

#endif  // WSIE_STORE_SERVING_INDEX_H_
