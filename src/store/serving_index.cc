#include "store/serving_index.h"

#include <algorithm>
#include <tuple>

namespace wsie::store {

int64_t ServingIndex::FindTerm(std::string_view name) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), name);
  if (it == terms_.end() || *it != name) return -1;
  return it - terms_.begin();
}

std::pair<size_t, size_t> ServingIndex::PrefixRange(
    std::string_view prefix) const {
  auto lo = std::lower_bound(terms_.begin(), terms_.end(), prefix);
  auto hi = lo;
  while (hi != terms_.end() && hi->substr(0, prefix.size()) == prefix) ++hi;
  return {static_cast<size_t>(lo - terms_.begin()),
          static_cast<size_t>(hi - terms_.begin())};
}

ServingIndex ServingIndex::Build(
    const std::vector<std::shared_ptr<const Segment>>& segments) {
  ServingIndex index;

  for (size_t s = 0; s < segments.size(); ++s) {
    const auto& stats = segments[s]->corpus_stats();
    for (size_t c = 0; c < kNumCorpora; ++c) {
      index.sentences_[c] += stats[c].sentences;
    }
  }

  // All (name, segment, local id) occurrences, ordered by name then by
  // segment position — so a merged term's refs walk segments in
  // publication order, exactly like the per-segment query loop does.
  struct Occurrence {
    std::string_view name;
    uint32_t segment;
    uint32_t term_id;
  };
  std::vector<Occurrence> occurrences;
  size_t total_terms = 0;
  for (const auto& segment : segments) total_terms += segment->terms().size();
  occurrences.reserve(total_terms);
  for (uint32_t s = 0; s < segments.size(); ++s) {
    const std::vector<std::string>& terms = segments[s]->terms();
    for (uint32_t t = 0; t < terms.size(); ++t) {
      occurrences.push_back(Occurrence{terms[t], s, t});
    }
  }
  std::sort(occurrences.begin(), occurrences.end(),
            [](const Occurrence& a, const Occurrence& b) {
              return std::tie(a.name, a.segment) < std::tie(b.name, b.segment);
            });

  index.combo_offsets_.push_back(0);
  index.ref_offsets_.push_back(0);
  std::vector<DocKey> doc_scratch;
  for (size_t i = 0; i < occurrences.size();) {
    const std::string_view name = occurrences[i].name;
    index.terms_.push_back(name);

    uint64_t combo[kNumCorpora][kNumTypes][kNumMethods] = {};
    uint64_t total = 0;
    std::array<uint64_t, kNumCorpora> per_corpus{};
    doc_scratch.clear();
    size_t run = i;
    for (; run < occurrences.size() && occurrences[run].name == name; ++run) {
      const Occurrence& occ = occurrences[run];
      index.refs_.push_back(TermRef{occ.segment, occ.term_id});
      const Segment& segment = *segments[occ.segment];
      for (const PostingGroup& group : segment.GroupsForTerm(occ.term_id)) {
        const uint64_t n = group.postings.size();
        combo[group.corpus][group.type][group.method] += n;
        total += n;
        per_corpus[group.corpus] += n;
      }
      const auto keys = segment.DocKeysForTerm(occ.term_id);
      doc_scratch.insert(doc_scratch.end(), keys.begin(), keys.end());
    }

    // Per-segment key runs are sorted+unique already; a single-segment
    // term needs no merge at all.
    uint64_t distinct = doc_scratch.size();
    if (run - i > 1) {
      std::sort(doc_scratch.begin(), doc_scratch.end());
      distinct = static_cast<uint64_t>(
          std::unique(doc_scratch.begin(), doc_scratch.end()) -
          doc_scratch.begin());
    }

    for (size_t c = 0; c < kNumCorpora; ++c) {
      for (size_t t = 0; t < kNumTypes; ++t) {
        bool any = false;
        for (size_t m = 0; m < kNumMethods; ++m) {
          if (combo[c][t][m] == 0) continue;
          index.combos_.push_back(
              ComboCount{combo[c][t][m], static_cast<uint8_t>(c),
                         static_cast<uint8_t>(t), static_cast<uint8_t>(m)});
          index.annotations_[c][t][m] += combo[c][t][m];
          ++index.distinct_names_[c][t][m];
          any = true;
        }
        if (any) ++index.distinct_names_[c][t][kMethodUnion];
      }
    }

    index.totals_.push_back(total);
    index.distinct_docs_.push_back(distinct);
    index.per_corpus_.push_back(per_corpus);
    index.combo_offsets_.push_back(index.combos_.size());
    index.ref_offsets_.push_back(index.refs_.size());
    i = run;
  }
  return index;
}

}  // namespace wsie::store
