#ifndef WSIE_STORE_STORE_SINK_H_
#define WSIE_STORE_STORE_SINK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "dataflow/operator.h"
#include "dataflow/plan.h"
#include "store/annotation_store.h"
#include "store/segment.h"

namespace wsie::store {

/// A dataflow sink that streams analyzed records into a SegmentBuilder:
/// entity annotations become (term, corpus, type, method) postings with
/// sentence indices, and per-document totals (docs/sentences/chars) become
/// the segment's corpus stats. The extraction mirrors
/// core::AnalyzeRecords — lowercased surfaces, identical type/method
/// mapping, per-document stats counted once per (corpus, doc id) even when
/// the union delivers a document through several branches — so numbers
/// rebuilt from the store match the in-memory CorpusAnalysis exactly.
///
/// Thread-safety: Process entry points are called concurrently by
/// executor workers; accumulation is mutex-protected and the builder sorts
/// at Finish, so the produced segment is schedule-independent. Emits no
/// output records (selectivity 0) — it taps the stream, it does not
/// transform it. Do not combine with ExecutorConfig::max_task_retries > 0:
/// a re-run morsel would be accumulated twice.
class StoreSink : public dataflow::Operator {
 public:
  std::string name() const override { return "store_sink"; }
  dataflow::OperatorPackage package() const override {
    return dataflow::OperatorPackage::kBase;
  }
  dataflow::OperatorTraits traits() const override {
    dataflow::OperatorTraits t;
    t.reads = {"id", "corpus", "text", "sentences", "entities"};
    t.selectivity = 0.0;
    t.record_at_a_time = false;  // stateful tap: never fused or reordered
    // Per-shard builders merge associatively into one SegmentSet (the
    // compactor folds them), so the tap may run shard-local.
    t.shard_local_state = true;
    return t;
  }

  Status ProcessSpan(std::span<const dataflow::Record> input,
                     dataflow::Dataset* output) const override;

  /// Moves everything accumulated so far out as a builder (the sink is
  /// left empty and reusable for the next run).
  SegmentBuilder TakeBuilder() const;

  /// Convenience: freeze the accumulated state into one segment appended
  /// to `store`.
  Status FlushTo(AnnotationStore* store) const;

  uint64_t postings_accumulated() const;

 private:
  mutable std::mutex mu_;
  mutable SegmentBuilder builder_;
  /// (corpus, doc id) pairs whose document-level stats were counted.
  mutable std::set<std::pair<uint8_t, uint64_t>> seen_docs_;
};

/// Appends a StoreSink node consuming the node marked as sink
/// `upstream_sink` (the analysis flow's "analyzed" output). The sink node
/// itself is marked as sink "stored" (its output is empty — the records
/// keep flowing to the original sink untouched). Returns the new node id,
/// or Plan::kInvalidNode when no such sink exists.
int AttachStoreSink(dataflow::Plan* plan, std::shared_ptr<StoreSink> sink,
                    const std::string& upstream_sink = "analyzed");

}  // namespace wsie::store

#endif  // WSIE_STORE_STORE_SINK_H_
