#ifndef WSIE_STORE_ANNOTATION_STORE_H_
#define WSIE_STORE_ANNOTATION_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "store/segment.h"
#include "store/serving_index.h"
#include "vec/ann_index.h"
#include "vec/delta_index.h"

namespace wsie::store {

/// A durable, append-only annotation store: a directory of immutable,
/// checksummed segment files plus an atomically-rewritten MANIFEST
/// (a fault::Checkpoint) naming the live set.
///
/// Concurrency model — epoch-based (RCU-style) publication:
/// the live set is one immutable SegmentSet published through an atomic
/// pointer. Writers (Append, Compact) build the next set — including its
/// ServingIndex — off to the side, publish it with a single release
/// store, and retire the previous set to the epoch manager; it is freed
/// only once every reader pin has moved past its retirement epoch.
/// Readers pin via PinnedSet: a per-thread epoch slot write plus one
/// acquire load of the pointer — no locks, no shared atomics, no
/// refcount traffic on the read path. Compaction therefore never blocks
/// or invalidates readers: a set pinned before a compaction keeps
/// serving the pre-merge segments until unpinned, and the merged segment
/// is only visible to pins taken after the swap. Old segment files are
/// unlinked after the swap; in-memory segments outlive their files for
/// as long as any pinned (or copied) set references them.
class AnnotationStore {
 public:
  /// Opens (or creates) the store in `dir`. Rejects a corrupt manifest or
  /// any corrupt live segment with a Status error.
  static Result<std::shared_ptr<AnnotationStore>> Open(const std::string& dir);

  ~AnnotationStore();

  /// Freezes `builder` into a new segment, writes it durably, and
  /// publishes it to subsequent pins/snapshots. No-op for an empty builder.
  Status Append(SegmentBuilder&& builder);

  /// Folds every live segment into one sorted segment. Readers holding
  /// older pins are unaffected. Returns OK (without work) when fewer
  /// than two segments are live. When the live set carries a vector
  /// index, the compactor rebuilds it over the merged set's term union
  /// with the same config, so similarity search keeps serving across the
  /// merge (the rebuilt graph is byte-identical when the term union is
  /// unchanged — every input is deterministic).
  Status Compact();

  /// Builds (or rebuilds) the semantic vector index over the current term
  /// union: deterministic feature-hashed embeddings for every distinct
  /// entity name, a Vamana-style ANN graph with uint8 scalar quantization,
  /// persisted as a checksummed `vec-<id>.wvec` container beside the
  /// segments and published into the next SegmentSet. Readers pinned
  /// before the publish keep the previous index (or none); appends after
  /// the build carry the index forward unchanged until the next build or
  /// compaction rebuild picks up the new terms.
  Status BuildVectorIndex(const vec::VecIndexConfig& config = {});

  /// One immutable published generation: the segment vector, its epoch
  /// (publish counter), the read-optimized ServingIndex built over
  /// exactly these segments, and (optionally) the semantic vector index.
  struct SegmentSet {
    std::vector<std::shared_ptr<const Segment>> segments;
    uint64_t epoch = 0;
    ServingIndex index;
    /// Similarity-search index; null until BuildVectorIndex publishes one.
    std::shared_ptr<const vec::VecIndex> vectors;
    /// Brute-force companion over terms live in `segments` but absent from
    /// `vectors` (terms appended since the last full build). Null when
    /// empty or when no vector index is published; recomputed at every
    /// publish and never persisted. Queries search it alongside `vectors`
    /// so appends are similarity-searchable immediately.
    std::shared_ptr<const vec::DeltaIndex> delta;

    uint64_t num_postings() const {
      uint64_t total = 0;
      for (const auto& segment : segments) total += segment->num_postings();
      return total;
    }
  };

  /// Zero-copy read pin on the current set. Construction pins this
  /// thread's epoch slot (lock-free) then loads the published pointer;
  /// the set — segments and index — stays valid until destruction. Pins
  /// nest freely and are meant to be short-lived (a query, a batch): a
  /// pin held forever blocks reclamation of every later retirement.
  class PinnedSet {
   public:
    explicit PinnedSet(const AnnotationStore& store)
        : set_(store.current_.load(std::memory_order_acquire)) {}
    PinnedSet(const PinnedSet&) = delete;
    PinnedSet& operator=(const PinnedSet&) = delete;

    const SegmentSet& operator*() const { return *set_; }
    const SegmentSet* operator->() const { return set_; }

   private:
    EpochManager::Guard guard_;  ///< declared first: pins before the load
    const SegmentSet* set_;
  };

  /// An owning snapshot (shared_ptr copies) that may outlive any pin.
  /// Queries should prefer PinnedSet; this remains for callers that stash
  /// a view across blocking work.
  struct Snapshot {
    std::vector<std::shared_ptr<const Segment>> segments;
    uint64_t epoch = 0;
    std::shared_ptr<const vec::VecIndex> vectors;
    std::shared_ptr<const vec::DeltaIndex> delta;

    uint64_t num_postings() const {
      uint64_t total = 0;
      for (const auto& segment : segments) total += segment->num_postings();
      return total;
    }
  };

  /// A consistent, immutable read view of the current live set.
  Snapshot snapshot() const;

  size_t num_segments() const;
  uint64_t total_bytes() const;
  uint64_t epoch() const;
  const std::string& dir() const { return dir_; }

 private:
  friend class PinnedSet;

  explicit AnnotationStore(std::string dir);

  /// Builds the next SegmentSet around `segments` (and the given vector
  /// index, possibly null), publishes it, retires the predecessor,
  /// rewrites the manifest, and refreshes gauges. Caller holds publish_mu_.
  Status PublishLocked(std::vector<std::shared_ptr<const Segment>> segments,
                       std::shared_ptr<const vec::VecIndex> vectors);
  /// Recomputes the append-delta companion for a set whose index and
  /// vectors are already in place: terms live in the serving index but
  /// absent from the vector index, embedded fresh (reusing `previous`
  /// rows where the names overlap). Null when that set is empty.
  static std::shared_ptr<const vec::DeltaIndex> ComputeDelta(
      const ServingIndex& index, const vec::VecIndex* vectors,
      const vec::DeltaIndex* previous);
  Status WriteManifestLocked(const SegmentSet& set);
  void PublishMetricsLocked(const SegmentSet& set);
  std::string SegmentPath(uint64_t id) const;
  std::string VecPath(uint64_t id) const;

  std::string dir_;
  /// Serializes writers: id claims, manifest writes, pointer publication.
  /// Readers never touch it.
  mutable std::mutex publish_mu_;
  std::mutex compact_mu_;  ///< serializes Compact() passes
  std::atomic<const SegmentSet*> current_;
  uint64_t next_id_ = 1;  ///< guarded by publish_mu_

  // Hoisted metric handles (wsie.store.*).
  obs::Gauge* segments_gauge_;
  obs::Gauge* bytes_gauge_;
  obs::Counter* segments_written_;
  obs::Counter* postings_written_;
  obs::Counter* compactions_;
  obs::Histogram* merge_wall_ns_;
  obs::Histogram* segment_write_ns_;
  obs::Gauge* epoch_retired_gauge_;
  obs::Gauge* epoch_reclaimed_gauge_;

  // Hoisted wsie.vec.* handles for the vector-index lifecycle.
  obs::Gauge* vec_vectors_gauge_;
  obs::Gauge* vec_bytes_gauge_;
  obs::Gauge* vec_stale_terms_gauge_;
  obs::Counter* vec_builds_;
  obs::Histogram* vec_build_wall_ns_;
};

/// Periodically folds the store's segments when the live count reaches
/// `min_segments`. Owns one background thread; destruction (or Stop())
/// joins it. Readers are never blocked — see AnnotationStore::Compact().
class BackgroundCompactor {
 public:
  BackgroundCompactor(std::shared_ptr<AnnotationStore> store,
                      size_t min_segments = 4,
                      std::chrono::milliseconds period =
                          std::chrono::milliseconds(20));
  ~BackgroundCompactor();

  void Stop();
  uint64_t compactions_run() const {
    return compactions_run_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<AnnotationStore> store_;
  size_t min_segments_;
  std::chrono::milliseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> compactions_run_{0};
  std::thread thread_;
};

}  // namespace wsie::store

#endif  // WSIE_STORE_ANNOTATION_STORE_H_
