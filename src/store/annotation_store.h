#ifndef WSIE_STORE_ANNOTATION_STORE_H_
#define WSIE_STORE_ANNOTATION_STORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "store/segment.h"

namespace wsie::store {

/// A durable, append-only annotation store: a directory of immutable,
/// checksummed segment files plus an atomically-rewritten MANIFEST
/// (a fault::Checkpoint) naming the live set.
///
/// Concurrency model — epoch snapshots over refcounted segment sets:
/// readers take a Snapshot (a shared_ptr copy of the live segment vector,
/// one mutex-protected pointer copy); writers (Append, Compact) install a
/// new vector and bump the epoch. Compaction therefore never blocks or
/// invalidates readers: a snapshot taken before a compaction keeps serving
/// the pre-merge segments until it is dropped, and the merged segment is
/// only visible to snapshots taken after the swap. Old segment files are
/// unlinked after the swap; in-memory segments outlive their files for as
/// long as any snapshot references them.
class AnnotationStore {
 public:
  /// Opens (or creates) the store in `dir`. Rejects a corrupt manifest or
  /// any corrupt live segment with a Status error.
  static Result<std::shared_ptr<AnnotationStore>> Open(const std::string& dir);

  /// Freezes `builder` into a new segment, writes it durably, and
  /// publishes it to subsequent snapshots. No-op for an empty builder.
  Status Append(SegmentBuilder&& builder);

  /// Folds every live segment into one sorted segment. Readers holding
  /// older snapshots are unaffected. Returns OK (without work) when fewer
  /// than two segments are live.
  Status Compact();

  struct Snapshot {
    std::vector<std::shared_ptr<const Segment>> segments;
    uint64_t epoch = 0;

    uint64_t num_postings() const {
      uint64_t total = 0;
      for (const auto& segment : segments) total += segment->num_postings();
      return total;
    }
  };

  /// A consistent, immutable read view of the current live set.
  Snapshot snapshot() const;

  size_t num_segments() const;
  uint64_t total_bytes() const;
  uint64_t epoch() const;
  const std::string& dir() const { return dir_; }

 private:
  explicit AnnotationStore(std::string dir);

  Status WriteManifestLocked();
  void PublishMetricsLocked();
  std::string SegmentPath(uint64_t id) const;

  std::string dir_;
  mutable std::mutex mu_;
  std::mutex compact_mu_;  ///< serializes Compact() passes
  std::vector<std::shared_ptr<const Segment>> live_;
  uint64_t next_id_ = 1;
  uint64_t epoch_ = 0;

  // Hoisted metric handles (wsie.store.*).
  obs::Gauge* segments_gauge_;
  obs::Gauge* bytes_gauge_;
  obs::Counter* segments_written_;
  obs::Counter* postings_written_;
  obs::Counter* compactions_;
  obs::Histogram* merge_wall_ns_;
  obs::Histogram* segment_write_ns_;
};

/// Periodically folds the store's segments when the live count reaches
/// `min_segments`. Owns one background thread; destruction (or Stop())
/// joins it. Readers are never blocked — see AnnotationStore::Compact().
class BackgroundCompactor {
 public:
  BackgroundCompactor(std::shared_ptr<AnnotationStore> store,
                      size_t min_segments = 4,
                      std::chrono::milliseconds period =
                          std::chrono::milliseconds(20));
  ~BackgroundCompactor();

  void Stop();
  uint64_t compactions_run() const {
    return compactions_run_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<AnnotationStore> store_;
  size_t min_segments_;
  std::chrono::milliseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> compactions_run_{0};
  std::thread thread_;
};

}  // namespace wsie::store

#endif  // WSIE_STORE_ANNOTATION_STORE_H_
