#ifndef WSIE_STORE_PARALLEL_MERGE_H_
#define WSIE_STORE_PARALLEL_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "store/segment.h"

namespace wsie {
class ThreadPool;
}  // namespace wsie

namespace wsie::store {

/// Partitioned parallel compaction merge.
///
/// Folds `segments` into one sorted segment with id `id`, exactly as the
/// serial path (a SegmentBuilder fed MergeSegment per input, then
/// Finish(id)) would — the encoded bytes are identical at every worker
/// and partition count, which tests/ingest_test.cc and bench/micro_ingest
/// gate.
///
/// How: the merged term universe (the sorted union of the inputs' term
/// dictionaries) is split into `partitions` contiguous term ranges whose
/// boundary terms are chosen deterministically from the dictionaries alone
/// — never from thread timing. Each range is k-way merged independently: a
/// worker walks every segment's group run for the range in segment order,
/// concatenates postings per (term, corpus, type, method) key, and sorts
/// each list — byte-for-byte what the serial builder computes for those
/// terms. The ordered partition outputs are then stitched: term ids are
/// re-based by prefix sums and group runs concatenated, reproducing the
/// global sorted order because no term straddles a range.
///
/// Scheduling uses the shared pool's caller-participating morsel loop
/// (ThreadPool::MorselForWithCaller), so compaction can run from any
/// thread — including a pool worker — without self-deadlock, and a task
/// that re-runs (the PR 7 retry discipline) recomputes its partition from
/// the pristine immutable inputs into its own slot, idempotently.
///
/// `pool` nullptr selects SharedThreadPool(); `workers` 0 uses the pool's
/// width; `partitions` 0 picks workers * 4 (clamped to the term count).
/// Inputs must outlive the call; an empty input list yields an empty
/// segment.
Result<Segment> MergeSegmentsParallel(
    const std::vector<std::shared_ptr<const Segment>>& segments, uint64_t id,
    ThreadPool* pool = nullptr, size_t workers = 0, size_t partitions = 0);

}  // namespace wsie::store

#endif  // WSIE_STORE_PARALLEL_MERGE_H_
