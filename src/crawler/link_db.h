#ifndef WSIE_CRAWLER_LINK_DB_H_
#define WSIE_CRAWLER_LINK_DB_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wsie::crawler {

/// The link database (Nutch's LinkDB, Fig. 1): stores the hyperlink graph
/// of the crawled pages for post-hoc structural analysis (PageRank,
/// Table 2; link-topology findings of Sect. 2.2/4.1). Thread-safe.
class LinkDb {
 public:
  /// Interns `url` and returns its node id.
  uint32_t InternUrl(const std::string& url);

  /// Records an edge from `from_url` to `to_url`.
  void AddLink(const std::string& from_url, const std::string& to_url);

  size_t num_nodes() const;
  size_t num_edges() const;

  /// Snapshot of the graph for analysis: node URLs plus adjacency (by id).
  struct Snapshot {
    std::vector<std::string> urls;
    std::vector<std::vector<uint32_t>> outlinks;
  };
  Snapshot TakeSnapshot() const;

  /// Fraction of edges whose endpoints share a host (the "navigational
  /// links lead to pages on the same host" measurement of Sect. 2.2).
  double IntraHostEdgeFraction() const;

  /// Serializes nodes (in id order) and adjacency. Node ids are assigned in
  /// insertion order, so the bytes are deterministic exactly when links were
  /// added in a deterministic order — which the crawler's serial apply
  /// phase guarantees.
  void EncodeTo(std::string* out) const;

  /// Restores state serialized by EncodeTo(), replacing current contents.
  Status DecodeFrom(std::string_view in);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> urls_;
  std::vector<std::vector<uint32_t>> outlinks_;
  size_t num_edges_ = 0;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_LINK_DB_H_
