#include "crawler/crawl_db.h"

namespace wsie::crawler {

bool CrawlDb::Inject(const std::string& url, const std::string& host) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(url);
  if (!inserted) return false;
  it->second.host = host;
  pending_.push_back(url);
  ++num_pending_;
  ++total_injected_;
  return true;
}

std::vector<std::string> CrawlDb::NextFetchBatch(size_t max_urls) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> batch;
  std::unordered_map<std::string, size_t> host_in_batch;
  std::deque<std::string> skipped;
  while (!pending_.empty() && batch.size() < max_urls) {
    std::string url = std::move(pending_.front());
    pending_.pop_front();
    auto it = entries_.find(url);
    if (it == entries_.end() || it->second.state != UrlState::kUnfetched) {
      --num_pending_;
      continue;
    }
    const std::string& host = it->second.host;
    // Politeness cap: at most max_per_host_ URLs of one host per batch.
    if (host_in_batch[host] >= max_per_host_) {
      skipped.push_back(std::move(url));
      continue;
    }
    ++host_in_batch[host];
    ++host_dispatched_[host];
    it->second.state = UrlState::kFetching;
    --num_pending_;
    batch.push_back(std::move(url));
  }
  // Put deferred URLs back at the front so they lead the next batch.
  for (auto it = skipped.rbegin(); it != skipped.rend(); ++it) {
    pending_.push_front(std::move(*it));
  }
  return batch;
}

void CrawlDb::MarkFetched(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) it->second.state = UrlState::kFetched;
}

void CrawlDb::MarkError(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) it->second.state = UrlState::kError;
}

bool CrawlDb::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pending_ == 0;
}

size_t CrawlDb::num_known() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t CrawlDb::num_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pending_;
}

uint64_t CrawlDb::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

size_t CrawlDb::HostFetchCount(const std::string& host) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = host_dispatched_.find(host);
  return it == host_dispatched_.end() ? 0 : it->second;
}

}  // namespace wsie::crawler
