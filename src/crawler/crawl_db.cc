#include "crawler/crawl_db.h"

#include <algorithm>

#include "fault/wire_format.h"

namespace wsie::crawler {

bool CrawlDb::Inject(const std::string& url, const std::string& host) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(url);
  if (!inserted) return false;
  it->second.host = host;
  pending_.push_back(url);
  ++num_pending_;
  ++total_injected_;
  return true;
}

std::vector<std::string> CrawlDb::NextFetchBatch(size_t max_urls) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> batch;
  std::unordered_map<std::string, size_t> host_in_batch;
  std::deque<std::string> skipped;
  while (!pending_.empty() && batch.size() < max_urls) {
    std::string url = std::move(pending_.front());
    pending_.pop_front();
    auto it = entries_.find(url);
    if (it == entries_.end() || it->second.state != UrlState::kUnfetched) {
      --num_pending_;
      continue;
    }
    const std::string& host = it->second.host;
    // Politeness cap: at most max_per_host_ URLs of one host per batch.
    if (host_in_batch[host] >= max_per_host_) {
      skipped.push_back(std::move(url));
      continue;
    }
    ++host_in_batch[host];
    ++host_dispatched_[host];
    it->second.state = UrlState::kFetching;
    --num_pending_;
    batch.push_back(std::move(url));
  }
  // Put deferred URLs back at the front so they lead the next batch.
  for (auto it = skipped.rbegin(); it != skipped.rend(); ++it) {
    pending_.push_front(std::move(*it));
  }
  return batch;
}

void CrawlDb::MarkFetched(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) it->second.state = UrlState::kFetched;
}

void CrawlDb::Requeue(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end() || it->second.state != UrlState::kFetching) return;
  it->second.state = UrlState::kUnfetched;
  auto host_it = host_dispatched_.find(it->second.host);
  if (host_it != host_dispatched_.end() && host_it->second > 0) {
    --host_it->second;
  }
  pending_.push_back(url);
  ++num_pending_;
}

void CrawlDb::MarkError(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) it->second.state = UrlState::kError;
}

bool CrawlDb::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pending_ == 0;
}

size_t CrawlDb::num_known() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t CrawlDb::num_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pending_;
}

uint64_t CrawlDb::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

size_t CrawlDb::HostFetchCount(const std::string& host) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = host_dispatched_.find(host);
  return it == host_dispatched_.end() ? 0 : it->second;
}

void CrawlDb::EncodeTo(std::string* out) const {
  namespace wire = fault::wire;
  std::lock_guard<std::mutex> lock(mu_);
  wire::PutU64(out, max_per_host_);
  wire::PutU64(out, total_injected_);
  wire::PutU64(out, num_pending_);
  // Entries in sorted-URL order: the hash map's iteration order must never
  // leak into the bytes.
  std::vector<const std::string*> urls;
  urls.reserve(entries_.size());
  for (const auto& [url, entry] : entries_) urls.push_back(&url);
  std::sort(urls.begin(), urls.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  wire::PutU64(out, urls.size());
  for (const std::string* url : urls) {
    const Entry& entry = entries_.at(*url);
    wire::PutString(out, *url);
    wire::PutString(out, entry.host);
    wire::PutU64(out, static_cast<uint64_t>(entry.state));
  }
  // The pending queue in queue order: frontier ordering is crawl state.
  wire::PutU64(out, pending_.size());
  for (const std::string& url : pending_) wire::PutString(out, url);
  // Per-host dispatch counts, sorted by host.
  std::vector<const std::string*> hosts;
  hosts.reserve(host_dispatched_.size());
  for (const auto& [host, count] : host_dispatched_) hosts.push_back(&host);
  std::sort(hosts.begin(), hosts.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  wire::PutU64(out, hosts.size());
  for (const std::string* host : hosts) {
    wire::PutString(out, *host);
    wire::PutU64(out, host_dispatched_.at(*host));
  }
}

Status CrawlDb::DecodeFrom(std::string_view in) {
  namespace wire = fault::wire;
  uint64_t max_per_host = 0, total_injected = 0, num_pending = 0, count = 0;
  if (!wire::GetU64(&in, &max_per_host) ||
      !wire::GetU64(&in, &total_injected) ||
      !wire::GetU64(&in, &num_pending) || !wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("crawldb: malformed header");
  }
  std::unordered_map<std::string, Entry> entries;
  entries.reserve(count);
  std::vector<std::string> in_flight;  // kFetching snapshots to re-frontier
  for (uint64_t i = 0; i < count; ++i) {
    std::string url, host;
    uint64_t state = 0;
    if (!wire::GetString(&in, &url) || !wire::GetString(&in, &host) ||
        !wire::GetU64(&in, &state) ||
        state > static_cast<uint64_t>(UrlState::kError)) {
      return Status::InvalidArgument("crawldb: malformed entry");
    }
    Entry entry;
    entry.host = std::move(host);
    entry.state = static_cast<UrlState>(state);
    if (entry.state == UrlState::kFetching) {
      entry.state = UrlState::kUnfetched;
      in_flight.push_back(url);
    }
    entries[std::move(url)] = std::move(entry);
  }
  uint64_t pending_count = 0;
  if (!wire::GetU64(&in, &pending_count)) {
    return Status::InvalidArgument("crawldb: malformed pending queue");
  }
  std::deque<std::string> pending;
  for (uint64_t i = 0; i < pending_count; ++i) {
    std::string url;
    if (!wire::GetString(&in, &url)) {
      return Status::InvalidArgument("crawldb: malformed pending entry");
    }
    pending.push_back(std::move(url));
  }
  uint64_t host_count = 0;
  if (!wire::GetU64(&in, &host_count)) {
    return Status::InvalidArgument("crawldb: malformed host counts");
  }
  std::unordered_map<std::string, size_t> host_dispatched;
  host_dispatched.reserve(host_count);
  for (uint64_t i = 0; i < host_count; ++i) {
    std::string host;
    uint64_t dispatched = 0;
    if (!wire::GetString(&in, &host) || !wire::GetU64(&in, &dispatched)) {
      return Status::InvalidArgument("crawldb: malformed host count entry");
    }
    host_dispatched[std::move(host)] = dispatched;
  }
  // In-flight URLs rejoin the frontier (sorted: deterministic re-dispatch
  // order regardless of snapshot hash-map layout) and their hosts'
  // dispatch charges are rolled back.
  std::sort(in_flight.begin(), in_flight.end());
  for (std::string& url : in_flight) {
    auto host_it = host_dispatched.find(entries[url].host);
    if (host_it != host_dispatched.end() && host_it->second > 0) {
      --host_it->second;
    }
    pending.push_back(std::move(url));
    ++num_pending;
  }

  std::lock_guard<std::mutex> lock(mu_);
  max_per_host_ = max_per_host;
  total_injected_ = total_injected;
  num_pending_ = num_pending;
  entries_ = std::move(entries);
  pending_ = std::move(pending);
  host_dispatched_ = std::move(host_dispatched);
  return Status::OK();
}

}  // namespace wsie::crawler
