#ifndef WSIE_CRAWLER_PAGERANK_H_
#define WSIE_CRAWLER_PAGERANK_H_

#include <string>
#include <vector>

#include "crawler/link_db.h"

namespace wsie::crawler {

/// PageRank parameters.
struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 50;
  double convergence_delta = 1e-8;  ///< L1 change per node to stop early
};

/// A ranked item (page URL or aggregated domain).
struct RankedItem {
  std::string name;
  double score = 0.0;
};

/// Computes PageRank over a LinkDb snapshot. Dangling nodes distribute
/// uniformly.
std::vector<double> ComputePageRank(const LinkDb::Snapshot& graph,
                                    const PageRankOptions& options = {});

/// Ranks pages by PageRank, highest first.
std::vector<RankedItem> TopPages(const LinkDb::Snapshot& graph, size_t k,
                                 const PageRankOptions& options = {});

/// Aggregates page scores by registrable domain and returns the top-k —
/// the Table 2 "domains of 30 top-ranked sites according to page rank".
std::vector<RankedItem> TopDomains(const LinkDb::Snapshot& graph, size_t k,
                                   const PageRankOptions& options = {});

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_PAGERANK_H_
