#ifndef WSIE_CRAWLER_FOCUSED_CRAWLER_H_
#define WSIE_CRAWLER_FOCUSED_CRAWLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "corpus/document.h"
#include "crawler/crawl_db.h"
#include "crawler/filters.h"
#include "crawler/link_db.h"
#include "crawler/relevance_classifier.h"
#include "fault/circuit_breaker.h"
#include "fault/retry_policy.h"
#include "html/boilerplate.h"
#include "html/html_repair.h"
#include "ml/metrics.h"
#include "web/simulated_web.h"

namespace wsie::crawler {

/// An auxiliary page-relevance signal combined with the text classifier.
/// The Sect. 5 vision of a consolidated crawl+IE process ("the result of
/// the IE pipeline could actually be a valuable input for the classifier
/// during a crawl, as the occurrence of gene names or disease names are
/// strong indicators for biomedical content") plugs in here.
class RelevanceSignal {
 public:
  virtual ~RelevanceSignal() = default;
  /// Returns a relevance score in [0, 1] for a page's net text.
  virtual double Score(std::string_view net_text) const = 0;
};

/// Focused-crawler configuration (architecture of Fig. 1).
struct CrawlerConfig {
  size_t num_fetch_threads = 8;
  size_t batch_size = 64;
  /// Stop after fetching this many pages (0 = only stop on empty frontier).
  size_t max_pages = 0;
  /// Stop once the relevant corpus reaches this many bytes (0 = no target).
  size_t max_relevant_bytes = 0;
  /// Stop after this many fetch batches (0 = unlimited). The fault-recovery
  /// bench uses this to kill a crawl mid-flight at a batch boundary.
  size_t max_batches = 0;
  /// Total per-host page budget (spider-trap protection; politeness caps
  /// per batch live in CrawlDb).
  size_t max_pages_per_host = 500;
  /// Follow links from irrelevant pages for up to n further steps (Sect. 2.2
  /// discusses n=2, n=3 as a yield-vs-time trade-off; 0 = stop immediately,
  /// the paper's choice).
  int follow_irrelevant_margin = 0;
  LengthFilterOptions length_filter;
  /// Optional IE feedback signal (see RelevanceSignal); not owned.
  const RelevanceSignal* ie_feedback = nullptr;
  /// Mixing weight of the feedback signal against the text classifier.
  double ie_feedback_weight = 0.35;
  /// Optional shared fetcher pool; when null, Crawl() creates its own.
  /// Fetch tasks use per-call completion tracking, so the same pool may be
  /// shared with the dataflow executor.
  std::shared_ptr<ThreadPool> fetch_pool;
  /// Fetch retry policy: transient failures (time-outs, DNS errors, 5xx —
  /// Status::IsRetryable()) back off and retry within the fetch task,
  /// charging virtual backoff latency. max_attempts = 1 disables retries.
  fault::RetryPolicy retry;
  /// Per-host circuit breaker (politeness layer). failure_threshold = 0
  /// (the default) disables it.
  fault::CircuitBreakerConfig breaker;
  /// Times a breaker-deferred URL is requeued before being dropped.
  int breaker_requeue_limit = 2;
  /// Checkpoint every n batches into `checkpoint_path` (0 = never).
  size_t checkpoint_every_batches = 0;
  std::string checkpoint_path;
  /// Sharded-frontier ownership predicate (shard::HostShardRouter binds
  /// this). When set, a URL whose host it rejects is never injected into
  /// this crawler's frontier; it is stashed for TakeExportedUrls() so a
  /// round driver can deliver it to the owning shard. All host-keyed state
  /// (robots cache, circuit breaker, politeness counts) therefore stays
  /// local to the shard that owns the host. Unset = own every host.
  std::function<bool(const std::string& host)> frontier_owner;
};

/// Aggregated crawl statistics (the Sect. 4.1 evaluation quantities).
///
/// Every field except `processing_seconds` (measured wall time) is a pure
/// function of the crawl seed and configuration: the crawler applies all
/// mutations in batch order on one thread, so two runs — or a killed run
/// resumed from a checkpoint — produce bit-identical values at any thread
/// count.
struct CrawlStats {
  uint64_t fetched = 0;
  uint64_t fetch_errors = 0;
  uint64_t fetch_retries = 0;       ///< extra attempts after transient faults
  uint64_t fetch_faults = 0;        ///< attempts lost to injected faults
  uint64_t robots_blocked = 0;
  uint64_t robots_unavailable = 0;  ///< hosts whose robots.txt never answered
  uint64_t breaker_skipped = 0;     ///< URLs deferred by an open circuit
  uint64_t breaker_dropped = 0;     ///< deferred past the requeue limit
  uint64_t host_budget_skipped = 0;
  uint64_t trap_pages = 0;
  uint64_t transcode_failures = 0;  ///< HTML repair gave up ([19]: ~13%)
  uint64_t classified_relevant = 0;
  uint64_t classified_irrelevant = 0;
  uint64_t relevant_bytes = 0;
  uint64_t irrelevant_bytes = 0;
  uint64_t batches = 0;             ///< fetch batches completed
  double virtual_fetch_seconds = 0.0;  ///< modeled network time / thread
  double processing_seconds = 0.0;     ///< measured pipeline time (wall)

  /// Classifier decisions against generator ground truth, over all
  /// classified pages (the paper estimates this on a 200-page sample).
  ml::BinaryConfusion classification_vs_truth;

  double HarvestRate() const {
    uint64_t total = classified_relevant + classified_irrelevant;
    return total == 0 ? 0.0
                      : static_cast<double>(classified_relevant) /
                            static_cast<double>(total);
  }
  double DocsPerVirtualSecond() const {
    double t = virtual_fetch_seconds + processing_seconds;
    return t <= 0 ? 0.0 : static_cast<double>(fetched) / t;
  }

  /// Serialization for checkpoints. Doubles round-trip exactly (hexfloat),
  /// so a resumed crawl accumulates from bit-identical values.
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view* in);
};

/// The focused crawler (Fig. 1): Nutch-style fetch loop extended with MIME/
/// language/length filters, Boilerpipe-style net-text extraction, and a
/// Naive-Bayes relevance classifier that decides whether a page's outlinks
/// enter the frontier.
///
/// Execution model (the recovery subsystem's determinism contract): each
/// iteration pops one politeness-respecting batch from the CrawlDb, gates
/// it serially (robots.txt with retries, per-host circuit breaker, host
/// budget), fetches + parses + classifies the surviving URLs in parallel —
/// workers touch no crawl state — and then applies every outcome serially
/// in batch order: stats, corpora, LinkDb edges, frontier injections.
/// Thread scheduling therefore cannot influence any crawl decision, which
/// is what makes checkpoint/resume byte-identical and fault injection
/// replayable.
class FocusedCrawler {
 public:
  /// All pointed-to collaborators must outlive the crawler.
  FocusedCrawler(const web::SimulatedWeb* web,
                 const RelevanceClassifier* classifier,
                 CrawlerConfig config = {});

  /// Seeds the frontier.
  void InjectSeeds(const std::vector<std::string>& seed_urls);

  /// Runs the crawl to a stop condition (empty frontier, max_pages,
  /// max_batches, or corpus-size target). Resumable: calling Crawl() again
  /// (or after RestoreCheckpoint()) continues where the crawl stopped.
  void Crawl();

  /// Snapshots the full crawl state (frontier, LinkDb, stats, corpora,
  /// margins, robots cache, breaker) into a durable checkpoint file.
  Status SaveCheckpoint(const std::string& path) const;

  /// Restores state saved by SaveCheckpoint(), replacing current progress.
  /// Corrupt or truncated files are rejected and leave this crawler
  /// untouched.
  Status RestoreCheckpoint(const std::string& path);

  /// Drains the URLs discovered here but owned by another shard's frontier
  /// (CrawlerConfig::frontier_owner). Deduplicated, discovery order.
  std::vector<std::string> TakeExportedUrls();

  const CrawlStats& stats() const { return stats_; }
  const PreFilterChain& prefilter() const { return prefilter_; }
  const corpus::DocumentStore& relevant_corpus() const {
    return relevant_corpus_;
  }
  const corpus::DocumentStore& irrelevant_corpus() const {
    return irrelevant_corpus_;
  }
  LinkDb& link_db() { return link_db_; }
  CrawlDb& crawl_db() { return crawl_db_; }
  const fault::HostCircuitBreaker& breaker() const { return breaker_; }

 private:
  /// Everything one fetch task produces; applied serially in batch order.
  struct FetchOutcome {
    bool fetch_failed = false;     ///< permanent failure after retries
    uint64_t retries = 0;          ///< extra attempts taken
    uint64_t faulted_attempts = 0; ///< attempts lost to injected faults
    double latency_ms = 0.0;       ///< fetch + backoff virtual time
    double backoff_ms = 0.0;       ///< backoff share of latency_ms
    bool is_trap = false;
    bool transcode_failed = false;
    FilterVerdict verdict = FilterVerdict::kPass;
    bool classified_relevant = false;
    bool ground_truth_relevant = false;
    bool has_ground_truth = false;
    std::string net_text;
    std::vector<std::string> out_urls;
  };

  /// Worker-side: fetch with retries, repair, extract, classify. Reads only
  /// immutable collaborators and the (pre-resolved, frozen) robots cache.
  FetchOutcome FetchAndParse(const std::string& url) const;

  /// Serial: resolves (and caches) robots rules for every host in `batch`.
  void ResolveRobots(const std::vector<std::string>& batch);

  /// Serial: applies one outcome — stats, corpora, LinkDb, frontier.
  void ApplyOutcome(const std::string& url, FetchOutcome& outcome);

  /// Serial gate: breaker / robots / host budget. Returns URLs to fetch.
  std::vector<std::string> GateBatch(std::vector<std::string> batch);

  /// Stashes a URL owned by another shard (deduplicated).
  void ExportUrl(const std::string& url);

  const web::SimulatedWeb* web_;
  const RelevanceClassifier* classifier_;
  CrawlerConfig config_;

  CrawlDb crawl_db_;
  LinkDb link_db_;
  PreFilterChain prefilter_;
  html::HtmlRepair repair_;
  html::BoilerplateDetector boilerplate_;
  fault::HostCircuitBreaker breaker_;

  CrawlStats stats_;
  corpus::DocumentStore relevant_corpus_;
  corpus::DocumentStore irrelevant_corpus_;
  /// host -> robots Disallow prefix ("/" = conservative disallow-all after
  /// persistent robots unavailability). Written only in the serial phases.
  std::unordered_map<std::string, std::string> robots_cache_;
  std::unordered_map<std::string, int> margin_;  // url -> remaining margin
  std::unordered_map<std::string, int> breaker_requeues_;  // url -> count
  /// URLs discovered here but owned elsewhere (frontier_owner rejected the
  /// host). Written only in the serial phases; drained between rounds.
  std::vector<std::string> exported_urls_;
  std::unordered_set<std::string> exported_seen_;
  bool stop_requested_ = false;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_FOCUSED_CRAWLER_H_
