#ifndef WSIE_CRAWLER_FOCUSED_CRAWLER_H_
#define WSIE_CRAWLER_FOCUSED_CRAWLER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "corpus/document.h"
#include "crawler/crawl_db.h"
#include "crawler/filters.h"
#include "crawler/link_db.h"
#include "crawler/relevance_classifier.h"
#include "html/boilerplate.h"
#include "html/html_repair.h"
#include "ml/metrics.h"
#include "web/simulated_web.h"

namespace wsie::crawler {

/// An auxiliary page-relevance signal combined with the text classifier.
/// The Sect. 5 vision of a consolidated crawl+IE process ("the result of
/// the IE pipeline could actually be a valuable input for the classifier
/// during a crawl, as the occurrence of gene names or disease names are
/// strong indicators for biomedical content") plugs in here.
class RelevanceSignal {
 public:
  virtual ~RelevanceSignal() = default;
  /// Returns a relevance score in [0, 1] for a page's net text.
  virtual double Score(std::string_view net_text) const = 0;
};

/// Focused-crawler configuration (architecture of Fig. 1).
struct CrawlerConfig {
  size_t num_fetch_threads = 8;
  size_t batch_size = 64;
  /// Stop after fetching this many pages (0 = only stop on empty frontier).
  size_t max_pages = 0;
  /// Stop once the relevant corpus reaches this many bytes (0 = no target).
  size_t max_relevant_bytes = 0;
  /// Total per-host page budget (spider-trap protection; politeness caps
  /// per batch live in CrawlDb).
  size_t max_pages_per_host = 500;
  /// Follow links from irrelevant pages for up to n further steps (Sect. 2.2
  /// discusses n=2, n=3 as a yield-vs-time trade-off; 0 = stop immediately,
  /// the paper's choice).
  int follow_irrelevant_margin = 0;
  LengthFilterOptions length_filter;
  /// Optional IE feedback signal (see RelevanceSignal); not owned.
  const RelevanceSignal* ie_feedback = nullptr;
  /// Mixing weight of the feedback signal against the text classifier.
  double ie_feedback_weight = 0.35;
  /// Optional shared fetcher pool; when null, Crawl() creates its own.
  /// Fetch tasks use per-call completion tracking, so the same pool may be
  /// shared with the dataflow executor.
  std::shared_ptr<ThreadPool> fetch_pool;
};

/// Aggregated crawl statistics (the Sect. 4.1 evaluation quantities).
struct CrawlStats {
  uint64_t fetched = 0;
  uint64_t fetch_errors = 0;
  uint64_t robots_blocked = 0;
  uint64_t host_budget_skipped = 0;
  uint64_t trap_pages = 0;
  uint64_t transcode_failures = 0;  ///< HTML repair gave up ([19]: ~13%)
  uint64_t classified_relevant = 0;
  uint64_t classified_irrelevant = 0;
  uint64_t relevant_bytes = 0;
  uint64_t irrelevant_bytes = 0;
  double virtual_fetch_seconds = 0.0;  ///< modeled network time / thread
  double processing_seconds = 0.0;     ///< measured pipeline time

  /// Classifier decisions against generator ground truth, over all
  /// classified pages (the paper estimates this on a 200-page sample).
  ml::BinaryConfusion classification_vs_truth;

  double HarvestRate() const {
    uint64_t total = classified_relevant + classified_irrelevant;
    return total == 0 ? 0.0
                      : static_cast<double>(classified_relevant) /
                            static_cast<double>(total);
  }
  double DocsPerVirtualSecond() const {
    double t = virtual_fetch_seconds + processing_seconds;
    return t <= 0 ? 0.0 : static_cast<double>(fetched) / t;
  }
};

/// The focused crawler (Fig. 1): Nutch-style fetch loop extended with MIME/
/// language/length filters, Boilerpipe-style net-text extraction, and a
/// Naive-Bayes relevance classifier that decides whether a page's outlinks
/// enter the frontier.
class FocusedCrawler {
 public:
  /// All pointed-to collaborators must outlive the crawler.
  FocusedCrawler(const web::SimulatedWeb* web,
                 const RelevanceClassifier* classifier,
                 CrawlerConfig config = {});

  /// Seeds the frontier.
  void InjectSeeds(const std::vector<std::string>& seed_urls);

  /// Runs the crawl to a stop condition (empty frontier, max_pages, or
  /// corpus-size target).
  void Crawl();

  const CrawlStats& stats() const { return stats_; }
  const PreFilterChain& prefilter() const { return prefilter_; }
  const corpus::DocumentStore& relevant_corpus() const {
    return relevant_corpus_;
  }
  const corpus::DocumentStore& irrelevant_corpus() const {
    return irrelevant_corpus_;
  }
  LinkDb& link_db() { return link_db_; }
  CrawlDb& crawl_db() { return crawl_db_; }

 private:
  struct PageOutcome {
    bool add_outlinks = false;
    int child_margin = 0;
  };

  void ProcessUrl(const std::string& url);
  /// Consults (and caches) the host's robots.txt rules.
  bool RobotsAllows(const std::string& host, const std::string& path);

  const web::SimulatedWeb* web_;
  const RelevanceClassifier* classifier_;
  CrawlerConfig config_;

  CrawlDb crawl_db_;
  LinkDb link_db_;
  PreFilterChain prefilter_;
  html::HtmlRepair repair_;
  html::BoilerplateDetector boilerplate_;

  std::mutex mu_;
  CrawlStats stats_;
  corpus::DocumentStore relevant_corpus_;
  corpus::DocumentStore irrelevant_corpus_;
  std::unordered_map<std::string, std::string> robots_cache_;  // host->prefix
  std::unordered_map<std::string, int> margin_;  // url -> remaining margin
  bool stop_requested_ = false;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_FOCUSED_CRAWLER_H_
