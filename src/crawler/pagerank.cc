#include "crawler/pagerank.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "web/url.h"

namespace wsie::crawler {

std::vector<double> ComputePageRank(const LinkDb::Snapshot& graph,
                                    const PageRankOptions& options) {
  const size_t n = graph.urls.size();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const auto& out = graph.outlinks[i];
      if (out.empty()) {
        dangling_mass += rank[i];
        continue;
      }
      double share = rank[i] / static_cast<double>(out.size());
      for (uint32_t to : out) next[to] += share;
    }
    double base = (1.0 - options.damping) / static_cast<double>(n) +
                  options.damping * dangling_mass / static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double updated = base + options.damping * next[i];
      delta += std::fabs(updated - rank[i]);
      rank[i] = updated;
    }
    if (delta < options.convergence_delta * static_cast<double>(n)) break;
  }
  return rank;
}

std::vector<RankedItem> TopPages(const LinkDb::Snapshot& graph, size_t k,
                                 const PageRankOptions& options) {
  std::vector<double> rank = ComputePageRank(graph, options);
  std::vector<RankedItem> items;
  items.reserve(rank.size());
  for (size_t i = 0; i < rank.size(); ++i) {
    items.push_back(RankedItem{graph.urls[i], rank[i]});
  }
  std::sort(items.begin(), items.end(),
            [](const RankedItem& a, const RankedItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.name < b.name;
            });
  if (items.size() > k) items.resize(k);
  return items;
}

std::vector<RankedItem> TopDomains(const LinkDb::Snapshot& graph, size_t k,
                                   const PageRankOptions& options) {
  std::vector<double> rank = ComputePageRank(graph, options);
  std::unordered_map<std::string, double> domain_scores;
  for (size_t i = 0; i < rank.size(); ++i) {
    web::Url parsed;
    if (!web::ParseUrl(graph.urls[i], &parsed)) continue;
    domain_scores[web::DomainOf(parsed.host)] += rank[i];
  }
  std::vector<RankedItem> items;
  items.reserve(domain_scores.size());
  for (auto& [domain, score] : domain_scores) {
    items.push_back(RankedItem{domain, score});
  }
  std::sort(items.begin(), items.end(),
            [](const RankedItem& a, const RankedItem& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.name < b.name;
            });
  if (items.size() > k) items.resize(k);
  return items;
}

}  // namespace wsie::crawler
