#ifndef WSIE_CRAWLER_RELEVANCE_CLASSIFIER_H_
#define WSIE_CRAWLER_RELEVANCE_CLASSIFIER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "corpus/lexicon.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "text/bag_of_words.h"

namespace wsie::corpus {
struct Document;
}  // namespace wsie::corpus

namespace wsie::crawler {

/// Training configuration for the crawl relevance classifier.
struct ClassifierTrainConfig {
  /// Training set sizes per class (paper: equal-sized random samples of
  /// Medline abstracts vs. Common-Crawl English documents, Sect. 2).
  size_t docs_per_class = 600;
  /// Decision threshold on P(relevant | page). Values above 0.5 gear the
  /// model "towards high precision" as the paper chose (Sect. 4.1); the
  /// precision/recall trade-off is swept in the ablation bench.
  double relevance_threshold = 0.8;
  uint64_t seed = 2024;
};

/// The focused crawler's page relevance classifier (Sect. 2.1): Bag-of-Words
/// + multinomial Naive Bayes, trained on Medline abstracts as the relevant
/// class and generic web text as the irrelevant class — including the
/// paper's training bias ("a typical Medline abstract is quite different
/// from a typical web page").
class RelevanceClassifier {
 public:
  /// Builds and trains from generated training corpora.
  RelevanceClassifier(const corpus::EntityLexicons* lexicons,
                      ClassifierTrainConfig config = {});

  /// Posterior probability that `net_text` is biomedical.
  double RelevanceScore(std::string_view net_text) const;

  /// Thresholded decision.
  bool IsRelevant(std::string_view net_text) const {
    return RelevanceScore(net_text) >= config_.relevance_threshold;
  }

  /// k-fold cross validation on freshly generated held-out-style data
  /// (Sect. 4.1: "10-fold cross validation on its training corpus").
  ml::CrossValidationResult CrossValidate(size_t folds = 10) const;

  const ClassifierTrainConfig& config() const { return config_; }
  void set_relevance_threshold(double threshold) {
    config_.relevance_threshold = threshold;
  }

 private:
  std::vector<corpus::Document> GenerateTrainingDocs(bool relevant,
                                                     uint64_t seed) const;

  const corpus::EntityLexicons* lexicons_;
  ClassifierTrainConfig config_;
  text::BagOfWords bow_;
  ml::NaiveBayesClassifier model_;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_RELEVANCE_CLASSIFIER_H_
