#include "crawler/relevance_classifier.h"

#include "corpus/text_generator.h"

namespace wsie::crawler {
namespace {

constexpr size_t kRelevantClass = 0;
constexpr size_t kIrrelevantClass = 1;

}  // namespace

RelevanceClassifier::RelevanceClassifier(
    const corpus::EntityLexicons* lexicons, ClassifierTrainConfig config)
    : lexicons_(lexicons),
      config_(config),
      model_({"relevant", "irrelevant"}) {
  std::vector<corpus::Document> relevant =
      GenerateTrainingDocs(true, config_.seed);
  std::vector<corpus::Document> irrelevant =
      GenerateTrainingDocs(false, config_.seed + 1);
  for (const auto& doc : relevant) {
    model_.Update(kRelevantClass, bow_.Featurize(doc.text));
  }
  for (const auto& doc : irrelevant) {
    model_.Update(kIrrelevantClass, bow_.Featurize(doc.text));
  }
}

std::vector<corpus::Document> RelevanceClassifier::GenerateTrainingDocs(
    bool relevant, uint64_t seed) const {
  // Relevant class: Medline abstracts. Irrelevant class: generic English web
  // documents (common-crawl stand-in). This reproduces the paper's training
  // bias: the crawler later classifies *web* pages with a model trained on
  // abstracts.
  corpus::CorpusProfile profile = corpus::ProfileFor(
      relevant ? corpus::CorpusKind::kMedline
               : corpus::CorpusKind::kIrrelevantWeb);
  corpus::TextGenerator generator(lexicons_, profile, seed);
  return generator.GenerateCorpus(/*first_doc_id=*/1u << 30,
                                  config_.docs_per_class);
}

double RelevanceClassifier::RelevanceScore(std::string_view net_text) const {
  return model_.PosteriorOf(kRelevantClass, bow_.Featurize(net_text));
}

ml::CrossValidationResult RelevanceClassifier::CrossValidate(
    size_t folds) const {
  // Re-generate the training distribution and run k-fold CV with freshly
  // trained per-fold models.
  std::vector<corpus::Document> relevant =
      GenerateTrainingDocs(true, config_.seed + 17);
  std::vector<corpus::Document> irrelevant =
      GenerateTrainingDocs(false, config_.seed + 18);
  struct Labeled {
    const corpus::Document* doc;
    bool relevant;
  };
  std::vector<Labeled> all;
  all.reserve(relevant.size() + irrelevant.size());
  for (const auto& d : relevant) all.push_back({&d, true});
  for (const auto& d : irrelevant) all.push_back({&d, false});

  std::vector<std::vector<size_t>> splits = ml::KFoldSplits(all.size(), folds);
  std::vector<ml::BinaryConfusion> fold_results;
  for (const auto& test_fold : splits) {
    std::vector<bool> in_test(all.size(), false);
    for (size_t idx : test_fold) in_test[idx] = true;
    ml::NaiveBayesClassifier fold_model({"relevant", "irrelevant"});
    for (size_t i = 0; i < all.size(); ++i) {
      if (in_test[i]) continue;
      fold_model.Update(all[i].relevant ? kRelevantClass : kIrrelevantClass,
                        bow_.Featurize(all[i].doc->text));
    }
    ml::BinaryConfusion confusion;
    for (size_t idx : test_fold) {
      double score =
          fold_model.PosteriorOf(kRelevantClass, bow_.Featurize(all[idx].doc->text));
      confusion.Add(score >= config_.relevance_threshold, all[idx].relevant);
    }
    fold_results.push_back(confusion);
  }
  return ml::SummarizeFolds(std::move(fold_results));
}

}  // namespace wsie::crawler
