#include "crawler/link_db.h"

#include "web/url.h"

namespace wsie::crawler {

uint32_t LinkDb::InternUrl(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ids_.try_emplace(url, static_cast<uint32_t>(urls_.size()));
  if (inserted) {
    urls_.push_back(url);
    outlinks_.emplace_back();
  }
  return it->second;
}

void LinkDb::AddLink(const std::string& from_url, const std::string& to_url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto intern = [&](const std::string& url) {
    auto [it, inserted] =
        ids_.try_emplace(url, static_cast<uint32_t>(urls_.size()));
    if (inserted) {
      urls_.push_back(url);
      outlinks_.emplace_back();
    }
    return it->second;
  };
  uint32_t from = intern(from_url);
  uint32_t to = intern(to_url);
  outlinks_[from].push_back(to);
  ++num_edges_;
}

size_t LinkDb::num_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return urls_.size();
}

size_t LinkDb::num_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_edges_;
}

LinkDb::Snapshot LinkDb::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{urls_, outlinks_};
}

double LinkDb::IntraHostEdgeFraction() const {
  Snapshot snap = TakeSnapshot();
  size_t intra = 0, total = 0;
  std::vector<std::string> hosts(snap.urls.size());
  for (size_t i = 0; i < snap.urls.size(); ++i) {
    web::Url parsed;
    if (web::ParseUrl(snap.urls[i], &parsed)) hosts[i] = parsed.host;
  }
  for (size_t from = 0; from < snap.outlinks.size(); ++from) {
    for (uint32_t to : snap.outlinks[from]) {
      ++total;
      if (!hosts[from].empty() && hosts[from] == hosts[to]) ++intra;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(intra) / static_cast<double>(total);
}

}  // namespace wsie::crawler
