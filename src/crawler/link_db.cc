#include "crawler/link_db.h"

#include "fault/wire_format.h"
#include "web/url.h"

namespace wsie::crawler {

uint32_t LinkDb::InternUrl(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ids_.try_emplace(url, static_cast<uint32_t>(urls_.size()));
  if (inserted) {
    urls_.push_back(url);
    outlinks_.emplace_back();
  }
  return it->second;
}

void LinkDb::AddLink(const std::string& from_url, const std::string& to_url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto intern = [&](const std::string& url) {
    auto [it, inserted] =
        ids_.try_emplace(url, static_cast<uint32_t>(urls_.size()));
    if (inserted) {
      urls_.push_back(url);
      outlinks_.emplace_back();
    }
    return it->second;
  };
  uint32_t from = intern(from_url);
  uint32_t to = intern(to_url);
  outlinks_[from].push_back(to);
  ++num_edges_;
}

size_t LinkDb::num_nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return urls_.size();
}

size_t LinkDb::num_edges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_edges_;
}

LinkDb::Snapshot LinkDb::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{urls_, outlinks_};
}

double LinkDb::IntraHostEdgeFraction() const {
  Snapshot snap = TakeSnapshot();
  size_t intra = 0, total = 0;
  std::vector<std::string> hosts(snap.urls.size());
  for (size_t i = 0; i < snap.urls.size(); ++i) {
    web::Url parsed;
    if (web::ParseUrl(snap.urls[i], &parsed)) hosts[i] = parsed.host;
  }
  for (size_t from = 0; from < snap.outlinks.size(); ++from) {
    for (uint32_t to : snap.outlinks[from]) {
      ++total;
      if (!hosts[from].empty() && hosts[from] == hosts[to]) ++intra;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(intra) / static_cast<double>(total);
}

void LinkDb::EncodeTo(std::string* out) const {
  namespace wire = fault::wire;
  std::lock_guard<std::mutex> lock(mu_);
  wire::PutU64(out, num_edges_);
  wire::PutU64(out, urls_.size());
  for (const std::string& url : urls_) wire::PutString(out, url);
  for (const std::vector<uint32_t>& links : outlinks_) {
    wire::PutU64(out, links.size());
    for (uint32_t to : links) wire::PutU64(out, to);
  }
}

Status LinkDb::DecodeFrom(std::string_view in) {
  namespace wire = fault::wire;
  uint64_t num_edges = 0, num_nodes = 0;
  if (!wire::GetU64(&in, &num_edges) || !wire::GetU64(&in, &num_nodes)) {
    return Status::InvalidArgument("linkdb: malformed header");
  }
  std::vector<std::string> urls;
  urls.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    std::string url;
    if (!wire::GetString(&in, &url)) {
      return Status::InvalidArgument("linkdb: malformed node");
    }
    urls.push_back(std::move(url));
  }
  std::vector<std::vector<uint32_t>> outlinks(num_nodes);
  uint64_t edges_seen = 0;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t degree = 0;
    if (!wire::GetU64(&in, &degree)) {
      return Status::InvalidArgument("linkdb: malformed adjacency");
    }
    outlinks[i].reserve(degree);
    for (uint64_t j = 0; j < degree; ++j) {
      uint64_t to = 0;
      if (!wire::GetU64(&in, &to) || to >= num_nodes) {
        return Status::InvalidArgument("linkdb: edge target out of range");
      }
      outlinks[i].push_back(static_cast<uint32_t>(to));
      ++edges_seen;
    }
  }
  if (edges_seen != num_edges) {
    return Status::InvalidArgument("linkdb: edge count mismatch");
  }
  std::unordered_map<std::string, uint32_t> ids;
  ids.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    ids[urls[i]] = static_cast<uint32_t>(i);
  }

  std::lock_guard<std::mutex> lock(mu_);
  urls_ = std::move(urls);
  outlinks_ = std::move(outlinks);
  ids_ = std::move(ids);
  num_edges_ = num_edges;
  return Status::OK();
}

}  // namespace wsie::crawler
