#include "crawler/focused_crawler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "fault/checkpoint.h"
#include "fault/wire_format.h"
#include "html/markup_remover.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "web/url.h"

namespace wsie::crawler {

namespace wire = fault::wire;

void CrawlStats::EncodeTo(std::string* out) const {
  wire::PutU64(out, fetched);
  wire::PutU64(out, fetch_errors);
  wire::PutU64(out, fetch_retries);
  wire::PutU64(out, fetch_faults);
  wire::PutU64(out, robots_blocked);
  wire::PutU64(out, robots_unavailable);
  wire::PutU64(out, breaker_skipped);
  wire::PutU64(out, breaker_dropped);
  wire::PutU64(out, host_budget_skipped);
  wire::PutU64(out, trap_pages);
  wire::PutU64(out, transcode_failures);
  wire::PutU64(out, classified_relevant);
  wire::PutU64(out, classified_irrelevant);
  wire::PutU64(out, relevant_bytes);
  wire::PutU64(out, irrelevant_bytes);
  wire::PutU64(out, batches);
  wire::PutDouble(out, virtual_fetch_seconds);
  wire::PutDouble(out, processing_seconds);
  wire::PutU64(out, classification_vs_truth.true_positives);
  wire::PutU64(out, classification_vs_truth.false_positives);
  wire::PutU64(out, classification_vs_truth.true_negatives);
  wire::PutU64(out, classification_vs_truth.false_negatives);
}

Status CrawlStats::DecodeFrom(std::string_view* in) {
  CrawlStats s;
  bool ok = wire::GetU64(in, &s.fetched) && wire::GetU64(in, &s.fetch_errors) &&
            wire::GetU64(in, &s.fetch_retries) &&
            wire::GetU64(in, &s.fetch_faults) &&
            wire::GetU64(in, &s.robots_blocked) &&
            wire::GetU64(in, &s.robots_unavailable) &&
            wire::GetU64(in, &s.breaker_skipped) &&
            wire::GetU64(in, &s.breaker_dropped) &&
            wire::GetU64(in, &s.host_budget_skipped) &&
            wire::GetU64(in, &s.trap_pages) &&
            wire::GetU64(in, &s.transcode_failures) &&
            wire::GetU64(in, &s.classified_relevant) &&
            wire::GetU64(in, &s.classified_irrelevant) &&
            wire::GetU64(in, &s.relevant_bytes) &&
            wire::GetU64(in, &s.irrelevant_bytes) &&
            wire::GetU64(in, &s.batches) &&
            wire::GetDouble(in, &s.virtual_fetch_seconds) &&
            wire::GetDouble(in, &s.processing_seconds) &&
            wire::GetU64(in, &s.classification_vs_truth.true_positives) &&
            wire::GetU64(in, &s.classification_vs_truth.false_positives) &&
            wire::GetU64(in, &s.classification_vs_truth.true_negatives) &&
            wire::GetU64(in, &s.classification_vs_truth.false_negatives);
  if (!ok) return Status::InvalidArgument("crawl stats: malformed section");
  *this = s;
  return Status::OK();
}

namespace {

/// Encodes a string->u64 map in sorted key order.
void EncodeStringU64Map(const std::unordered_map<std::string, int>& map,
                        std::string* out) {
  std::vector<std::pair<std::string, uint64_t>> items;
  items.reserve(map.size());
  for (const auto& [key, value] : map) {
    items.emplace_back(key, static_cast<uint64_t>(value));
  }
  std::sort(items.begin(), items.end());
  wire::PutU64(out, items.size());
  for (const auto& [key, value] : items) {
    wire::PutString(out, key);
    wire::PutU64(out, value);
  }
}

Status DecodeStringU64Map(std::string_view in, const char* what,
                          std::unordered_map<std::string, int>* map) {
  uint64_t count = 0;
  if (!wire::GetU64(&in, &count)) {
    return Status::InvalidArgument(std::string(what) + ": malformed header");
  }
  std::unordered_map<std::string, int> decoded;
  decoded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value = 0;
    if (!wire::GetString(&in, &key) || !wire::GetU64(&in, &value)) {
      return Status::InvalidArgument(std::string(what) + ": malformed entry");
    }
    decoded[std::move(key)] = static_cast<int>(value);
  }
  *map = std::move(decoded);
  return Status::OK();
}

void EncodeRobotsCache(const std::unordered_map<std::string, std::string>& map,
                       std::string* out) {
  std::vector<std::pair<std::string, std::string>> items(map.begin(),
                                                         map.end());
  std::sort(items.begin(), items.end());
  wire::PutU64(out, items.size());
  for (const auto& [host, prefix] : items) {
    wire::PutString(out, host);
    wire::PutString(out, prefix);
  }
}

Status DecodeRobotsCache(std::string_view in,
                         std::unordered_map<std::string, std::string>* map) {
  uint64_t count = 0;
  if (!wire::GetU64(&in, &count)) {
    return Status::InvalidArgument("robots cache: malformed header");
  }
  std::unordered_map<std::string, std::string> decoded;
  decoded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string host, prefix;
    if (!wire::GetString(&in, &host) || !wire::GetString(&in, &prefix)) {
      return Status::InvalidArgument("robots cache: malformed entry");
    }
    decoded[std::move(host)] = std::move(prefix);
  }
  *map = std::move(decoded);
  return Status::OK();
}

void EncodeCorpus(const corpus::DocumentStore& store, std::string* out) {
  wire::PutU64(out, store.size());
  for (const corpus::Document& doc : store.documents()) {
    wire::PutU64(out, doc.id);
    wire::PutU64(out, static_cast<uint64_t>(doc.kind));
    wire::PutString(out, doc.url);
    wire::PutString(out, doc.text);
  }
}

Status DecodeCorpus(std::string_view* in, corpus::DocumentStore* store) {
  uint64_t count = 0;
  if (!wire::GetU64(in, &count)) {
    return Status::InvalidArgument("corpus: malformed header");
  }
  corpus::DocumentStore decoded;
  for (uint64_t i = 0; i < count; ++i) {
    corpus::Document doc;
    uint64_t kind = 0;
    if (!wire::GetU64(in, &doc.id) || !wire::GetU64(in, &kind) ||
        kind > static_cast<uint64_t>(corpus::CorpusKind::kPmc) ||
        !wire::GetString(in, &doc.url) || !wire::GetString(in, &doc.text)) {
      return Status::InvalidArgument("corpus: malformed document");
    }
    doc.kind = static_cast<corpus::CorpusKind>(kind);
    decoded.Add(std::move(doc));
  }
  *store = std::move(decoded);
  return Status::OK();
}

/// Registry handles for the crawler, resolved once per process. The crawl
/// loop feeds them from CrawlStats deltas at batch boundaries — CrawlStats
/// stays the single authoritative (and checkpoint-serialized) tally, and
/// the registry mirrors it without a second counting site.
struct CrawlMetrics {
  obs::Counter* pages;
  obs::Counter* errors;
  obs::Counter* retries;
  obs::Counter* faults;
  obs::Counter* robots_blocked;
  obs::Counter* robots_unavailable;
  obs::Counter* breaker_skipped;
  obs::Counter* breaker_dropped;
  obs::Counter* host_budget_skipped;
  obs::Counter* trap_pages;
  obs::Counter* transcode_failures;
  obs::Counter* classified_relevant;
  obs::Counter* classified_irrelevant;
  obs::Counter* batches;
  obs::Gauge* frontier_pending;
  obs::Gauge* frontier_known;
  obs::Gauge* harvest_rate;
  obs::Gauge* backoff_total_ms;
  obs::Histogram* checkpoint_write_ns;
};

CrawlMetrics& GetCrawlMetrics() {
  static CrawlMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    auto* m = new CrawlMetrics();
    m->pages = registry.GetCounter("wsie.crawler.fetch.pages");
    m->errors = registry.GetCounter("wsie.crawler.fetch.errors");
    m->retries = registry.GetCounter("wsie.crawler.fetch.retries");
    m->faults = registry.GetCounter("wsie.crawler.fetch.faults");
    m->robots_blocked = registry.GetCounter("wsie.crawler.robots.blocked");
    m->robots_unavailable =
        registry.GetCounter("wsie.crawler.robots.unavailable");
    m->breaker_skipped = registry.GetCounter("wsie.crawler.breaker.skipped");
    m->breaker_dropped = registry.GetCounter("wsie.crawler.breaker.dropped");
    m->host_budget_skipped =
        registry.GetCounter("wsie.crawler.gate.host_budget_skipped");
    m->trap_pages = registry.GetCounter("wsie.crawler.trap_pages");
    m->transcode_failures =
        registry.GetCounter("wsie.crawler.transcode_failures");
    m->classified_relevant =
        registry.GetCounter("wsie.crawler.classified.relevant");
    m->classified_irrelevant =
        registry.GetCounter("wsie.crawler.classified.irrelevant");
    m->batches = registry.GetCounter("wsie.crawler.batches");
    m->frontier_pending = registry.GetGauge("wsie.crawler.frontier.pending");
    m->frontier_known = registry.GetGauge("wsie.crawler.frontier.known");
    m->harvest_rate = registry.GetGauge("wsie.crawler.harvest_rate");
    m->backoff_total_ms = registry.GetGauge("wsie.fault.backoff.total_ms");
    m->checkpoint_write_ns =
        registry.GetHistogram("wsie.crawler.checkpoint.write_ns");
    return m;
  }();
  return *metrics;
}

}  // namespace

FocusedCrawler::FocusedCrawler(const web::SimulatedWeb* web,
                               const RelevanceClassifier* classifier,
                               CrawlerConfig config)
    : web_(web),
      classifier_(classifier),
      config_(config),
      crawl_db_(/*max_fetch_list_per_host=*/config.max_pages_per_host),
      prefilter_(config.length_filter),
      breaker_(config.breaker) {}

void FocusedCrawler::InjectSeeds(const std::vector<std::string>& seed_urls) {
  for (const std::string& url : seed_urls) {
    web::Url parsed;
    if (!web::ParseUrl(url, &parsed)) continue;
    if (config_.frontier_owner && !config_.frontier_owner(parsed.host)) {
      ExportUrl(url);
      continue;
    }
    crawl_db_.Inject(url, parsed.host);
    if (config_.follow_irrelevant_margin > 0) {
      margin_[url] = config_.follow_irrelevant_margin;
    }
  }
}

void FocusedCrawler::ExportUrl(const std::string& url) {
  if (exported_seen_.insert(url).second) exported_urls_.push_back(url);
}

std::vector<std::string> FocusedCrawler::TakeExportedUrls() {
  std::vector<std::string> out = std::move(exported_urls_);
  exported_urls_.clear();
  return out;
}

void FocusedCrawler::ResolveRobots(const std::vector<std::string>& batch) {
  for (const std::string& url : batch) {
    web::Url parsed;
    if (!web::ParseUrl(url, &parsed)) continue;
    if (robots_cache_.count(parsed.host) > 0) continue;
    int attempt = 0;
    for (;;) {
      Result<std::string> prefix =
          web_->CheckedRobotsDisallowPrefix(parsed.host, attempt);
      if (prefix.ok()) {
        robots_cache_[parsed.host] = *prefix;
        break;
      }
      if (config_.retry.ShouldRetry(prefix.status(), attempt)) {
        stats_.virtual_fetch_seconds +=
            config_.retry.BackoffMs(attempt, wire::Fnv1a(parsed.host)) /
            1000.0 / static_cast<double>(config_.num_fetch_threads);
        ++stats_.fetch_retries;
        ++attempt;
        continue;
      }
      // Robots never answered: err on the polite side and treat the whole
      // host as disallowed (every path starts with "/").
      robots_cache_[parsed.host] = "/";
      ++stats_.robots_unavailable;
      break;
    }
  }
}

std::vector<std::string> FocusedCrawler::GateBatch(
    std::vector<std::string> batch) {
  std::vector<std::string> fetch_list;
  fetch_list.reserve(batch.size());
  for (std::string& url : batch) {
    web::Url parsed;
    if (!web::ParseUrl(url, &parsed)) {
      crawl_db_.MarkError(url);
      continue;
    }
    // Spider-trap / budget protection: total per-host cap.
    if (crawl_db_.HostFetchCount(parsed.host) > config_.max_pages_per_host) {
      ++stats_.host_budget_skipped;
      crawl_db_.MarkError(url);
      continue;
    }
    auto robots = robots_cache_.find(parsed.host);
    const std::string& prefix =
        robots == robots_cache_.end() ? std::string() : robots->second;
    if (!prefix.empty() && parsed.path.rfind(prefix, 0) == 0) {
      ++stats_.robots_blocked;
      crawl_db_.MarkError(url);
      continue;
    }
    if (breaker_.enabled() && !breaker_.Allow(parsed.host, stats_.batches)) {
      ++stats_.breaker_skipped;
      int& requeues = breaker_requeues_[url];
      if (++requeues > config_.breaker_requeue_limit) {
        ++stats_.breaker_dropped;
        crawl_db_.MarkError(url);
      } else {
        crawl_db_.Requeue(url);
      }
      continue;
    }
    fetch_list.push_back(std::move(url));
  }
  return fetch_list;
}

FocusedCrawler::FetchOutcome FocusedCrawler::FetchAndParse(
    const std::string& url) const {
  FetchOutcome outcome;
  WSIE_TRACE_SPAN("crawler.fetch");
  web::Url parsed;
  if (!web::ParseUrl(url, &parsed)) {
    outcome.fetch_failed = true;
    return outcome;
  }

  // --- Fetch with retries. Transient failures (time-outs, DNS errors, 5xx)
  // back off in virtual time and try again; everything else is permanent.
  web::FetchResult fetched;
  for (int attempt = 0;; ++attempt) {
    fetched = web_->Fetch(url, attempt);
    outcome.latency_ms += fetched.virtual_latency_ms;
    if (fetched.injected_fault != fault::FaultKind::kNone) {
      ++outcome.faulted_attempts;
    }
    if (fetched.status.ok()) break;
    if (!config_.retry.ShouldRetry(fetched.status, attempt)) {
      outcome.fetch_failed = true;
      return outcome;
    }
    double backoff = config_.retry.BackoffMs(attempt, wire::Fnv1a(url));
    outcome.latency_ms += backoff;
    outcome.backoff_ms += backoff;
    ++outcome.retries;
  }
  // Per-host modeled fetch latency (including backoff). Worker-side but
  // safe: histogram writes are relaxed atomics; the label lookup only runs
  // when metrics are on.
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram(obs::WithLabel("wsie.crawler.fetch.latency_ms", "host",
                                     parsed.host),
                      obs::LatencyBucketsMs())
        ->Observe(outcome.latency_ms);
  }
  if (fetched.http_status != 200) {
    outcome.fetch_failed = true;
    return outcome;
  }

  outcome.is_trap = fetched.is_trap;
  outcome.has_ground_truth = fetched.page != nullptr;
  outcome.ground_truth_relevant =
      fetched.page != nullptr && fetched.page->relevant;

  // --- MIME filter on the raw response, before any HTML treatment
  // (Fig. 1: the MIME type filter is the first custom component).
  std::string_view head(fetched.body.data(),
                        std::min<size_t>(fetched.body.size(), 256));
  outcome.verdict = prefilter_.ApplyMime(url, head);

  // --- Parse: repair markup, then extract links and net text.
  if (outcome.verdict == FilterVerdict::kPass) {
    auto repaired = repair_.Repair(fetched.body);
    outcome.transcode_failed = !repaired.ok();
    if (!outcome.transcode_failed) {
      html::MarkupRemover remover;
      for (const std::string& link : remover.ExtractLinks(repaired->html)) {
        web::Url resolved;
        if (web::ResolveLink(parsed, link, &resolved)) {
          outcome.out_urls.push_back(resolved.ToString());
        }
      }
      outcome.net_text = boilerplate_.NetText(repaired->html);
      outcome.verdict = prefilter_.ApplyTextFilters(outcome.net_text);
    }
  }
  if (!outcome.transcode_failed && outcome.verdict == FilterVerdict::kPass) {
    double score = classifier_->RelevanceScore(outcome.net_text);
    if (config_.ie_feedback != nullptr) {
      // Consolidated crawl+IE (Sect. 5): blend the IE-derived signal into
      // the relevance decision.
      double w = config_.ie_feedback_weight;
      score = (1.0 - w) * score + w * config_.ie_feedback->Score(outcome.net_text);
    }
    outcome.classified_relevant =
        score >= classifier_->config().relevance_threshold;
  }
  return outcome;
}

void FocusedCrawler::ApplyOutcome(const std::string& url,
                                  FetchOutcome& outcome) {
  stats_.virtual_fetch_seconds +=
      outcome.latency_ms / 1000.0 /
      static_cast<double>(config_.num_fetch_threads);
  stats_.fetch_retries += outcome.retries;
  stats_.fetch_faults += outcome.faulted_attempts;
  GetCrawlMetrics().backoff_total_ms->Add(outcome.backoff_ms);
  if (outcome.fetch_failed) {
    ++stats_.fetch_errors;
    crawl_db_.MarkError(url);
    return;
  }
  crawl_db_.MarkFetched(url);

  ++stats_.fetched;
  if (outcome.is_trap) ++stats_.trap_pages;
  if (outcome.transcode_failed) ++stats_.transcode_failures;

  int child_margin = 0;
  bool add_outlinks = false;
  if (outcome.verdict == FilterVerdict::kPass && !outcome.transcode_failed) {
    if (outcome.classified_relevant) {
      ++stats_.classified_relevant;
      stats_.relevant_bytes += outcome.net_text.size();
      corpus::Document doc;
      doc.id = stats_.fetched;  // crawl-order id
      doc.kind = corpus::CorpusKind::kRelevantWeb;
      doc.url = url;
      doc.text = outcome.net_text;
      relevant_corpus_.Add(std::move(doc));
      add_outlinks = true;
      child_margin = config_.follow_irrelevant_margin;
    } else {
      ++stats_.classified_irrelevant;
      stats_.irrelevant_bytes += outcome.net_text.size();
      corpus::Document doc;
      doc.id = stats_.fetched;
      doc.kind = corpus::CorpusKind::kIrrelevantWeb;
      doc.url = url;
      doc.text = outcome.net_text;
      irrelevant_corpus_.Add(std::move(doc));
      // Follow-irrelevant margin: continue for up to n steps.
      auto it = margin_.find(url);
      int remaining = it == margin_.end() ? config_.follow_irrelevant_margin
                                          : it->second;
      if (remaining > 0) {
        add_outlinks = true;
        child_margin = remaining - 1;
      }
    }
    stats_.classification_vs_truth.Add(outcome.classified_relevant,
                                       outcome.ground_truth_relevant);
  }

  // --- Frontier + link graph updates.
  for (const std::string& out : outcome.out_urls) {
    link_db_.AddLink(url, out);
    if (!add_outlinks) continue;
    web::Url target;
    if (!web::ParseUrl(out, &target)) continue;
    // Sharded frontier: links to hosts another shard owns are exported to
    // the round driver instead of entering the local frontier.
    if (config_.frontier_owner && !config_.frontier_owner(target.host)) {
      ExportUrl(out);
      continue;
    }
    if (crawl_db_.Inject(out, target.host) &&
        config_.follow_irrelevant_margin > 0) {
      margin_[out] = child_margin;
    }
  }

  // --- Stop conditions.
  if (config_.max_relevant_bytes > 0 &&
      stats_.relevant_bytes >= config_.max_relevant_bytes) {
    stop_requested_ = true;
  }
  if (config_.max_pages > 0 && stats_.fetched >= config_.max_pages) {
    stop_requested_ = true;
  }
}

void FocusedCrawler::Crawl() {
  // Reuse a caller-provided fetcher pool when configured (so the crawler and
  // executor can share one set of threads) instead of spinning up a fresh
  // pool per Crawl() call.
  std::shared_ptr<ThreadPool> pool = config_.fetch_pool;
  if (!pool) pool = std::make_shared<ThreadPool>(config_.num_fetch_threads);
  stop_requested_ =
      (config_.max_pages > 0 && stats_.fetched >= config_.max_pages) ||
      (config_.max_relevant_bytes > 0 &&
       stats_.relevant_bytes >= config_.max_relevant_bytes);
  for (;;) {
    if (stop_requested_) break;
    if (config_.max_batches > 0 && stats_.batches >= config_.max_batches) {
      break;  // the fault-recovery bench's kill point (batch boundary)
    }
    WSIE_TRACE_SPAN("crawler.batch");
    // Registry publication works on batch deltas of the serial CrawlStats,
    // so the counters stay correct across multiple Crawl() calls and
    // checkpoint resumes.
    const CrawlStats before = stats_;
    std::vector<std::string> batch =
        crawl_db_.NextFetchBatch(config_.batch_size);
    if (batch.empty()) break;  // frontier exhausted (Sect. 2.2 failure mode)

    // Serial pre-pass: robots (with retries) and the politeness gate. The
    // fetch list and every crawl-state decision are fixed before any worker
    // runs.
    ResolveRobots(batch);
    std::vector<std::string> fetch_list = GateBatch(std::move(batch));

    // Parallel phase: workers fetch, retry, parse, and classify, writing
    // only their own outcome slot — no crawl state.
    std::vector<FetchOutcome> outcomes(fetch_list.size());
    if (!fetch_list.empty()) {
      Stopwatch processing;
      pool->MorselFor(fetch_list.size(), config_.num_fetch_threads,
                      [this, &fetch_list, &outcomes](size_t i) {
                        outcomes[i] = FetchAndParse(fetch_list[i]);
                        return true;
                      });
      stats_.processing_seconds += processing.ElapsedSeconds();
    }

    // Serial apply, in batch order: thread scheduling cannot influence
    // stats, document ids, frontier order, or the link graph.
    std::map<std::string, std::pair<uint64_t, uint64_t>> host_outcomes;
    for (size_t i = 0; i < fetch_list.size(); ++i) {
      ApplyOutcome(fetch_list[i], outcomes[i]);
      if (breaker_.enabled()) {
        web::Url parsed;
        if (web::ParseUrl(fetch_list[i], &parsed)) {
          auto& [failures, successes] = host_outcomes[parsed.host];
          outcomes[i].fetch_failed ? ++failures : ++successes;
        }
      }
    }
    for (const auto& [host, counts] : host_outcomes) {
      breaker_.RecordBatch(host, counts.first, counts.second, stats_.batches);
    }
    ++stats_.batches;

    if (obs::MetricsEnabled()) {
      CrawlMetrics& m = GetCrawlMetrics();
      m.pages->Add(stats_.fetched - before.fetched);
      m.errors->Add(stats_.fetch_errors - before.fetch_errors);
      m.retries->Add(stats_.fetch_retries - before.fetch_retries);
      m.faults->Add(stats_.fetch_faults - before.fetch_faults);
      m.robots_blocked->Add(stats_.robots_blocked - before.robots_blocked);
      m.robots_unavailable->Add(stats_.robots_unavailable -
                                before.robots_unavailable);
      m.breaker_skipped->Add(stats_.breaker_skipped - before.breaker_skipped);
      m.breaker_dropped->Add(stats_.breaker_dropped - before.breaker_dropped);
      m.host_budget_skipped->Add(stats_.host_budget_skipped -
                                 before.host_budget_skipped);
      m.trap_pages->Add(stats_.trap_pages - before.trap_pages);
      m.transcode_failures->Add(stats_.transcode_failures -
                                before.transcode_failures);
      m.classified_relevant->Add(stats_.classified_relevant -
                                 before.classified_relevant);
      m.classified_irrelevant->Add(stats_.classified_irrelevant -
                                   before.classified_irrelevant);
      m.batches->Increment();
      m.frontier_pending->Set(static_cast<double>(crawl_db_.num_pending()));
      m.frontier_known->Set(static_cast<double>(crawl_db_.num_known()));
      m.harvest_rate->Set(stats_.HarvestRate());
    }

    if (config_.checkpoint_every_batches > 0 &&
        !config_.checkpoint_path.empty() &&
        stats_.batches % config_.checkpoint_every_batches == 0) {
      Status saved;
      {
        obs::ScopedTimer timer(GetCrawlMetrics().checkpoint_write_ns,
                               "crawler.checkpoint");
        saved = SaveCheckpoint(config_.checkpoint_path);
      }
      if (!saved.ok()) {
        WSIE_LOG(kWarning) << "checkpoint failed: " << saved.ToString();
      }
    }
  }
}

Status FocusedCrawler::SaveCheckpoint(const std::string& path) const {
  fault::Checkpoint ckpt;
  std::string bytes;
  crawl_db_.EncodeTo(&bytes);
  ckpt.SetSection("crawl_db", std::move(bytes));
  bytes.clear();
  link_db_.EncodeTo(&bytes);
  ckpt.SetSection("link_db", std::move(bytes));
  bytes.clear();
  stats_.EncodeTo(&bytes);
  ckpt.SetSection("stats", std::move(bytes));
  bytes.clear();
  EncodeStringU64Map(margin_, &bytes);
  ckpt.SetSection("margins", std::move(bytes));
  bytes.clear();
  EncodeStringU64Map(breaker_requeues_, &bytes);
  ckpt.SetSection("breaker_requeues", std::move(bytes));
  bytes.clear();
  EncodeRobotsCache(robots_cache_, &bytes);
  ckpt.SetSection("robots_cache", std::move(bytes));
  bytes.clear();
  breaker_.EncodeTo(&bytes);
  ckpt.SetSection("breaker", std::move(bytes));
  bytes.clear();
  EncodeCorpus(relevant_corpus_, &bytes);
  EncodeCorpus(irrelevant_corpus_, &bytes);
  ckpt.SetSection("corpora", std::move(bytes));
  return ckpt.WriteFile(path);
}

Status FocusedCrawler::RestoreCheckpoint(const std::string& path) {
  Result<fault::Checkpoint> loaded = fault::Checkpoint::ReadFile(path);
  if (!loaded.ok()) return loaded.status();
  const fault::Checkpoint& ckpt = *loaded;
  const char* kSections[] = {"crawl_db", "link_db",         "stats",
                             "margins",  "breaker_requeues", "robots_cache",
                             "breaker",  "corpora"};
  for (const char* name : kSections) {
    if (ckpt.FindSection(name) == nullptr) {
      return Status::InvalidArgument(std::string("checkpoint: missing section ") +
                                     name);
    }
  }

  // Decode everything into temporaries first; the crawler is only touched
  // once the whole checkpoint has parsed.
  CrawlStats stats;
  std::string_view stats_in = *ckpt.FindSection("stats");
  WSIE_RETURN_NOT_OK(stats.DecodeFrom(&stats_in));
  std::unordered_map<std::string, int> margin, requeues;
  WSIE_RETURN_NOT_OK(
      DecodeStringU64Map(*ckpt.FindSection("margins"), "margins", &margin));
  WSIE_RETURN_NOT_OK(DecodeStringU64Map(*ckpt.FindSection("breaker_requeues"),
                                          "breaker requeues", &requeues));
  std::unordered_map<std::string, std::string> robots;
  WSIE_RETURN_NOT_OK(
      DecodeRobotsCache(*ckpt.FindSection("robots_cache"), &robots));
  corpus::DocumentStore relevant, irrelevant;
  std::string_view corpora_in = *ckpt.FindSection("corpora");
  WSIE_RETURN_NOT_OK(DecodeCorpus(&corpora_in, &relevant));
  WSIE_RETURN_NOT_OK(DecodeCorpus(&corpora_in, &irrelevant));

  // CrawlDb / LinkDb / breaker decode transactionally into themselves.
  WSIE_RETURN_NOT_OK(crawl_db_.DecodeFrom(*ckpt.FindSection("crawl_db")));
  WSIE_RETURN_NOT_OK(link_db_.DecodeFrom(*ckpt.FindSection("link_db")));
  std::string_view breaker_in = *ckpt.FindSection("breaker");
  WSIE_RETURN_NOT_OK(breaker_.DecodeFrom(&breaker_in));

  stats_ = stats;
  margin_ = std::move(margin);
  breaker_requeues_ = std::move(requeues);
  robots_cache_ = std::move(robots);
  relevant_corpus_ = std::move(relevant);
  irrelevant_corpus_ = std::move(irrelevant);
  stop_requested_ = false;
  return Status::OK();
}

}  // namespace wsie::crawler
