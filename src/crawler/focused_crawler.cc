#include "crawler/focused_crawler.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "html/markup_remover.h"
#include "web/url.h"

namespace wsie::crawler {

FocusedCrawler::FocusedCrawler(const web::SimulatedWeb* web,
                               const RelevanceClassifier* classifier,
                               CrawlerConfig config)
    : web_(web),
      classifier_(classifier),
      config_(config),
      crawl_db_(/*max_fetch_list_per_host=*/config.max_pages_per_host),
      prefilter_(config.length_filter) {}

void FocusedCrawler::InjectSeeds(const std::vector<std::string>& seed_urls) {
  for (const std::string& url : seed_urls) {
    web::Url parsed;
    if (!web::ParseUrl(url, &parsed)) continue;
    crawl_db_.Inject(url, parsed.host);
    if (config_.follow_irrelevant_margin > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      margin_[url] = config_.follow_irrelevant_margin;
    }
  }
}

bool FocusedCrawler::RobotsAllows(const std::string& host,
                                  const std::string& path) {
  std::string prefix;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = robots_cache_.find(host);
    if (it != robots_cache_.end()) {
      prefix = it->second;
    } else {
      prefix = web_->RobotsDisallowPrefix(host);
      robots_cache_[host] = prefix;
    }
  }
  if (prefix.empty()) return true;
  return path.rfind(prefix, 0) != 0;  // path does not start with prefix
}

void FocusedCrawler::ProcessUrl(const std::string& url) {
  web::Url parsed;
  if (!web::ParseUrl(url, &parsed)) {
    crawl_db_.MarkError(url);
    return;
  }
  // Spider-trap / budget protection: total per-host cap.
  if (crawl_db_.HostFetchCount(parsed.host) > config_.max_pages_per_host) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.host_budget_skipped;
    crawl_db_.MarkError(url);
    return;
  }
  if (!RobotsAllows(parsed.host, parsed.path)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.robots_blocked;
    crawl_db_.MarkError(url);
    return;
  }

  web::FetchResult fetched = web_->Fetch(url);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.virtual_fetch_seconds += fetched.virtual_latency_ms / 1000.0 /
                                    static_cast<double>(config_.num_fetch_threads);
  }
  if (fetched.http_status != 200) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.fetch_errors;
    crawl_db_.MarkError(url);
    return;
  }
  crawl_db_.MarkFetched(url);
  Stopwatch processing;

  bool is_trap = fetched.is_trap;
  // --- MIME filter on the raw response, before any HTML treatment
  // (Fig. 1: the MIME type filter is the first custom component).
  std::string_view head(fetched.body.data(),
                        std::min<size_t>(fetched.body.size(), 256));
  FilterVerdict verdict = prefilter_.ApplyMime(url, head);

  // --- Parse: repair markup, then extract links and net text.
  std::vector<std::string> out_urls;
  std::string net_text;
  bool transcode_failed = false;
  if (verdict == FilterVerdict::kPass) {
    auto repaired = repair_.Repair(fetched.body);
    transcode_failed = !repaired.ok();
    if (!transcode_failed) {
      html::MarkupRemover remover;
      for (const std::string& link : remover.ExtractLinks(repaired->html)) {
        web::Url resolved;
        if (web::ResolveLink(parsed, link, &resolved)) {
          out_urls.push_back(resolved.ToString());
        }
      }
      net_text = boilerplate_.NetText(repaired->html);
      verdict = prefilter_.ApplyTextFilters(net_text);
    }
  }
  bool classified_relevant = false;
  double score = 0.0;
  if (!transcode_failed && verdict == FilterVerdict::kPass) {
    score = classifier_->RelevanceScore(net_text);
    if (config_.ie_feedback != nullptr) {
      // Consolidated crawl+IE (Sect. 5): blend the IE-derived signal into
      // the relevance decision.
      double w = config_.ie_feedback_weight;
      score = (1.0 - w) * score + w * config_.ie_feedback->Score(net_text);
    }
    classified_relevant = score >= classifier_->config().relevance_threshold;
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fetched;
  if (is_trap) ++stats_.trap_pages;
  if (transcode_failed) ++stats_.transcode_failures;
  stats_.processing_seconds += processing.ElapsedSeconds();

  bool ground_truth_relevant =
      fetched.page != nullptr && fetched.page->relevant;
  int child_margin = 0;
  bool add_outlinks = false;
  if (verdict == FilterVerdict::kPass && !transcode_failed) {
    if (classified_relevant) {
      ++stats_.classified_relevant;
      stats_.relevant_bytes += net_text.size();
      corpus::Document doc;
      doc.id = stats_.fetched;  // crawl-order id
      doc.kind = corpus::CorpusKind::kRelevantWeb;
      doc.url = url;
      doc.text = net_text;
      relevant_corpus_.Add(std::move(doc));
      add_outlinks = true;
      child_margin = config_.follow_irrelevant_margin;
    } else {
      ++stats_.classified_irrelevant;
      stats_.irrelevant_bytes += net_text.size();
      corpus::Document doc;
      doc.id = stats_.fetched;
      doc.kind = corpus::CorpusKind::kIrrelevantWeb;
      doc.url = url;
      doc.text = net_text;
      irrelevant_corpus_.Add(std::move(doc));
      // Follow-irrelevant margin: continue for up to n steps.
      auto it = margin_.find(url);
      int remaining = it == margin_.end() ? config_.follow_irrelevant_margin
                                          : it->second;
      if (remaining > 0) {
        add_outlinks = true;
        child_margin = remaining - 1;
      }
    }
    stats_.classification_vs_truth.Add(classified_relevant,
                                       ground_truth_relevant);
  }

  // --- Frontier + link graph updates.
  for (const std::string& out : out_urls) {
    link_db_.AddLink(url, out);
    if (!add_outlinks) continue;
    web::Url target;
    if (!web::ParseUrl(out, &target)) continue;
    if (crawl_db_.Inject(out, target.host) &&
        config_.follow_irrelevant_margin > 0) {
      margin_[out] = child_margin;
    }
  }

  // --- Stop conditions.
  if (config_.max_relevant_bytes > 0 &&
      stats_.relevant_bytes >= config_.max_relevant_bytes) {
    stop_requested_ = true;
  }
  if (config_.max_pages > 0 && stats_.fetched >= config_.max_pages) {
    stop_requested_ = true;
  }
}

void FocusedCrawler::Crawl() {
  // Reuse a caller-provided fetcher pool when configured (so the crawler and
  // executor can share one set of threads) instead of spinning up a fresh
  // pool per Crawl() call.
  std::shared_ptr<ThreadPool> pool = config_.fetch_pool;
  if (!pool) pool = std::make_shared<ThreadPool>(config_.num_fetch_threads);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) break;
    }
    std::vector<std::string> batch = crawl_db_.NextFetchBatch(config_.batch_size);
    if (batch.empty()) break;  // frontier exhausted (Sect. 2.2 failure mode)
    pool->MorselFor(batch.size(), config_.num_fetch_threads,
                    [this, &batch](size_t i) {
                      ProcessUrl(batch[i]);
                      return true;
                    });
  }
}

}  // namespace wsie::crawler
