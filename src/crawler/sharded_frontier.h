#ifndef WSIE_CRAWLER_SHARDED_FRONTIER_H_
#define WSIE_CRAWLER_SHARDED_FRONTIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crawler/focused_crawler.h"
#include "shard/partitioner.h"

namespace wsie::crawler {

/// Routes crawl hosts to frontier shards on the consistent-hash ring, so a
/// shard count change remaps only ~1/(N+1) of the hosts (warm robots
/// caches and breaker history survive a resize for everything else).
class HostShardRouter {
 public:
  explicit HostShardRouter(int num_shards,
                           shard::HashRingOptions options = {});

  int ShardForHost(const std::string& host) const;
  /// -1 when the URL does not parse.
  int ShardForUrl(const std::string& url) const;
  int num_shards() const { return ring_.num_shards(); }

 private:
  shard::HashRing ring_;
};

/// Options for a sharded crawl. The stop knobs inside `config` apply
/// per shard (each shard is an independent FocusedCrawler).
struct ShardedCrawlOptions {
  int num_shards = 2;
  shard::HashRingOptions ring;
  /// Safety bound on URL-exchange rounds (0 = unlimited).
  size_t max_rounds = 64;
  CrawlerConfig config;
};

/// N host-sharded focused crawlers plus the round-based URL exchange
/// between them — the crawl-side analogue of the dataflow exchange layer.
///
/// Hosts are assigned to shards by HostShardRouter; every per-host
/// mutable structure (robots cache, circuit breaker, politeness dispatch
/// counts, host budgets) lives only on the owning shard, so shards never
/// contend or disagree on host state. A shard that discovers a link to a
/// foreign host exports it (CrawlerConfig::frontier_owner) instead of
/// fetching it; Crawl() runs rounds of [each shard crawls its local
/// frontier to quiescence] then [exported URLs are delivered to their
/// owners] until no frontier and no export queue has work left.
///
/// Determinism: each shard's crawl is the usual serial-apply loop, and
/// exports are delivered in (source shard, discovery order) — so for a
/// fixed seed set and shard count the union of the shard corpora is a
/// pure function of the configuration, independent of thread scheduling.
class ShardedCrawl {
 public:
  ShardedCrawl(const web::SimulatedWeb* web,
               const RelevanceClassifier* classifier,
               ShardedCrawlOptions options);

  /// Routes each seed to its owning shard's frontier.
  void InjectSeeds(const std::vector<std::string>& seed_urls);

  /// Runs exchange rounds until every shard frontier is empty (or a shard
  /// stop condition / max_rounds halts progress).
  void Crawl();

  int num_shards() const { return static_cast<int>(crawlers_.size()); }
  FocusedCrawler& shard(int i) { return *crawlers_[static_cast<size_t>(i)]; }
  const HostShardRouter& router() const { return router_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t urls_exchanged() const { return urls_exchanged_; }

  /// Sums the countable per-shard stats (wall times are per-shard;
  /// the aggregate keeps the max, the serial-equivalent critical path).
  CrawlStats AggregateStats() const;

 private:
  HostShardRouter router_;
  ShardedCrawlOptions options_;
  std::vector<std::unique_ptr<FocusedCrawler>> crawlers_;
  uint64_t rounds_ = 0;
  uint64_t urls_exchanged_ = 0;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_SHARDED_FRONTIER_H_
