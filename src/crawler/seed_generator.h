#ifndef WSIE_CRAWLER_SEED_GENERATOR_H_
#define WSIE_CRAWLER_SEED_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/lexicon.h"
#include "web/search_engine.h"

namespace wsie::crawler {

/// Keyword-category budget for seed generation (Table 1). The paper's full
/// run used 500 general / 5000 disease / 4000 drug / 6500 gene terms; the
/// first (under-seeded) run used the bracketed subset 166/468/325/246.
struct SeedQueryBudget {
  size_t general_terms = 500;
  size_t disease_terms = 5000;
  size_t drug_terms = 4000;
  size_t gene_terms = 6500;

  /// The paper's first-crawl subset (numbers in brackets in Table 1).
  static SeedQueryBudget FirstCrawl() { return {166, 468, 325, 246}; }

  size_t total() const {
    return general_terms + disease_terms + drug_terms + gene_terms;
  }
};

/// Per-category outcome of one seed-generation run.
struct SeedCategoryReport {
  std::string category;
  size_t terms_requested = 0;
  size_t terms_used = 0;  ///< capped by lexicon size
  size_t queries_issued = 0;
  size_t urls_found = 0;  ///< before global dedup
};

/// Result of a seed-generation run.
struct SeedGenerationReport {
  std::vector<SeedCategoryReport> categories;
  std::vector<std::string> seed_urls;  ///< merged, deduplicated
  size_t queries_rejected = 0;         ///< engines over budget
};

/// Generates seed URLs by issuing keyword queries from the four term
/// categories against every engine of the federation and merging the
/// results into one deduplicated seed list (Sect. 2.2).
class SeedGenerator {
 public:
  SeedGenerator(const corpus::EntityLexicons* lexicons,
                web::SearchEngineFederation* engines, uint64_t seed = 5);

  SeedGenerationReport Generate(const SeedQueryBudget& budget);

 private:
  const corpus::EntityLexicons* lexicons_;
  web::SearchEngineFederation* engines_;
  uint64_t seed_;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_SEED_GENERATOR_H_
