#include "crawler/sharded_frontier.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "web/url.h"

namespace wsie::crawler {

HostShardRouter::HostShardRouter(int num_shards,
                                 shard::HashRingOptions options)
    : ring_(num_shards, options) {}

int HostShardRouter::ShardForHost(const std::string& host) const {
  return ring_.ShardForKey(host);
}

int HostShardRouter::ShardForUrl(const std::string& url) const {
  web::Url parsed;
  if (!web::ParseUrl(url, &parsed)) return -1;
  return ShardForHost(parsed.host);
}

ShardedCrawl::ShardedCrawl(const web::SimulatedWeb* web,
                           const RelevanceClassifier* classifier,
                           ShardedCrawlOptions options)
    : router_(options.num_shards, options.ring), options_(options) {
  crawlers_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    CrawlerConfig config = options_.config;
    // `this` outlives the crawlers (they are members); the router is
    // immutable after construction.
    config.frontier_owner = [this, s](const std::string& host) {
      return router_.ShardForHost(host) == s;
    };
    crawlers_.push_back(
        std::make_unique<FocusedCrawler>(web, classifier, config));
  }
}

void ShardedCrawl::InjectSeeds(const std::vector<std::string>& seed_urls) {
  // Per-shard seed batches in input order; routing happens once here and
  // the shard-local frontier_owner accepts them.
  std::vector<std::vector<std::string>> per_shard(crawlers_.size());
  for (const std::string& url : seed_urls) {
    int owner = router_.ShardForUrl(url);
    if (owner < 0) continue;
    per_shard[static_cast<size_t>(owner)].push_back(url);
  }
  for (size_t s = 0; s < crawlers_.size(); ++s) {
    if (!per_shard[s].empty()) crawlers_[s]->InjectSeeds(per_shard[s]);
  }
}

void ShardedCrawl::Crawl() {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* rounds_counter =
      registry.GetCounter("wsie.shard.crawl.rounds");
  obs::Counter* exchanged_counter =
      registry.GetCounter("wsie.shard.crawl.urls_exchanged");

  for (;;) {
    if (options_.max_rounds > 0 && rounds_ >= options_.max_rounds) break;
    bool any_work = false;
    for (auto& crawler : crawlers_) {
      if (crawler->crawl_db().Empty()) continue;
      any_work = true;
      crawler->Crawl();
    }
    // Deliver cross-shard discoveries: (source shard, discovery order).
    std::vector<std::vector<std::string>> deliveries(crawlers_.size());
    size_t exported = 0;
    for (auto& crawler : crawlers_) {
      for (std::string& url : crawler->TakeExportedUrls()) {
        int owner = router_.ShardForUrl(url);
        if (owner < 0) continue;
        deliveries[static_cast<size_t>(owner)].push_back(std::move(url));
        ++exported;
      }
    }
    if (any_work || exported > 0) {
      ++rounds_;
      rounds_counter->Increment();
    }
    if (exported == 0) {
      if (!any_work) break;
      // Shards ran but produced no cross-shard links; if every frontier is
      // now quiescent the crawl is done.
      bool all_empty = true;
      for (auto& crawler : crawlers_) {
        if (!crawler->crawl_db().Empty()) all_empty = false;
      }
      if (all_empty) break;
      continue;
    }
    urls_exchanged_ += exported;
    exchanged_counter->Add(static_cast<double>(exported));
    for (size_t s = 0; s < crawlers_.size(); ++s) {
      if (!deliveries[s].empty()) crawlers_[s]->InjectSeeds(deliveries[s]);
    }
  }

  // Per-shard load gauges for the shard-wide rollups: how evenly the
  // consistent-hash ring spread the fetch work, same skew convention as
  // wsie.shard.skew.records (max/mean; 1.0 = perfectly balanced).
  uint64_t total_fetched = 0;
  uint64_t max_fetched = 0;
  for (size_t s = 0; s < crawlers_.size(); ++s) {
    const uint64_t fetched = crawlers_[s]->stats().fetched;
    registry
        .GetGauge(obs::WithLabel("wsie.shard.crawl.pages", "shard",
                                 std::to_string(s)))
        ->Set(static_cast<double>(fetched));
    total_fetched += fetched;
    max_fetched = std::max(max_fetched, fetched);
  }
  const double mean_fetched =
      static_cast<double>(total_fetched) / static_cast<double>(crawlers_.size());
  registry.GetGauge("wsie.shard.crawl.skew")
      ->Set(mean_fetched > 0 ? static_cast<double>(max_fetched) / mean_fetched
                             : 1.0);
}

CrawlStats ShardedCrawl::AggregateStats() const {
  CrawlStats total;
  double max_processing = 0.0;
  double max_virtual = 0.0;
  for (const auto& crawler : crawlers_) {
    const CrawlStats& s = crawler->stats();
    total.fetched += s.fetched;
    total.fetch_errors += s.fetch_errors;
    total.fetch_retries += s.fetch_retries;
    total.fetch_faults += s.fetch_faults;
    total.robots_blocked += s.robots_blocked;
    total.robots_unavailable += s.robots_unavailable;
    total.breaker_skipped += s.breaker_skipped;
    total.breaker_dropped += s.breaker_dropped;
    total.host_budget_skipped += s.host_budget_skipped;
    total.trap_pages += s.trap_pages;
    total.transcode_failures += s.transcode_failures;
    total.classified_relevant += s.classified_relevant;
    total.classified_irrelevant += s.classified_irrelevant;
    total.relevant_bytes += s.relevant_bytes;
    total.irrelevant_bytes += s.irrelevant_bytes;
    total.batches += s.batches;
    max_virtual = std::max(max_virtual, s.virtual_fetch_seconds);
    max_processing = std::max(max_processing, s.processing_seconds);
    total.classification_vs_truth.true_positives +=
        s.classification_vs_truth.true_positives;
    total.classification_vs_truth.false_positives +=
        s.classification_vs_truth.false_positives;
    total.classification_vs_truth.true_negatives +=
        s.classification_vs_truth.true_negatives;
    total.classification_vs_truth.false_negatives +=
        s.classification_vs_truth.false_negatives;
  }
  total.virtual_fetch_seconds = max_virtual;
  total.processing_seconds = max_processing;
  return total;
}

}  // namespace wsie::crawler
