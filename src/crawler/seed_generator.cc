#include "crawler/seed_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace wsie::crawler {

SeedGenerator::SeedGenerator(const corpus::EntityLexicons* lexicons,
                             web::SearchEngineFederation* engines,
                             uint64_t seed)
    : lexicons_(lexicons), engines_(engines), seed_(seed) {}

SeedGenerationReport SeedGenerator::Generate(const SeedQueryBudget& budget) {
  SeedGenerationReport report;
  Rng rng(seed_);
  std::unordered_set<std::string> unique_urls;

  auto run_category = [&](const std::string& name,
                          const std::vector<std::string>& pool,
                          size_t requested) {
    SeedCategoryReport cat;
    cat.category = name;
    cat.terms_requested = requested;
    // Sample without replacement up to the pool size.
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(order);
    size_t used = std::min(requested, pool.size());
    cat.terms_used = used;
    for (size_t t = 0; t < used; ++t) {
      const std::string& term = pool[order[t]];
      for (size_t e = 0; e < engines_->num_engines(); ++e) {
        auto result = engines_->Query(e, term);
        ++cat.queries_issued;
        if (!result.ok()) {
          ++report.queries_rejected;
          continue;
        }
        for (const std::string& url : result.value()) {
          ++cat.urls_found;
          unique_urls.insert(url);
        }
      }
    }
    report.categories.push_back(std::move(cat));
  };

  run_category("general terms", lexicons_->general_terms(),
               budget.general_terms);
  run_category("disease-specific", lexicons_->diseases(), budget.disease_terms);
  run_category("drug-specific", lexicons_->drugs(), budget.drug_terms);
  run_category("gene-specific", lexicons_->genes(), budget.gene_terms);

  report.seed_urls.assign(unique_urls.begin(), unique_urls.end());
  std::sort(report.seed_urls.begin(), report.seed_urls.end());
  return report;
}

}  // namespace wsie::crawler
