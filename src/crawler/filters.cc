#include "crawler/filters.h"

namespace wsie::crawler {

const char* FilterVerdictName(FilterVerdict verdict) {
  switch (verdict) {
    case FilterVerdict::kPass:
      return "pass";
    case FilterVerdict::kMimeRejected:
      return "mime";
    case FilterVerdict::kLanguageRejected:
      return "language";
    case FilterVerdict::kLengthRejected:
      return "length";
  }
  return "unknown";
}

PreFilterChain::PreFilterChain(LengthFilterOptions length_options)
    : length_options_(length_options) {}

FilterVerdict PreFilterChain::Apply(std::string_view url,
                                    std::string_view raw_head,
                                    std::string_view net_text) const {
  FilterVerdict mime = ApplyMime(url, raw_head);
  if (mime != FilterVerdict::kPass) return mime;
  return ApplyTextFilters(net_text);
}

FilterVerdict PreFilterChain::ApplyMime(std::string_view url,
                                        std::string_view raw_head) const {
  total_.fetch_add(1);
  lang::MimeDetection mime = mime_detector_.Detect(url, raw_head);
  if (!lang::MimeDetector::IsTextual(mime.mime)) {
    mime_rejected_.fetch_add(1);
    return FilterVerdict::kMimeRejected;
  }
  return FilterVerdict::kPass;
}

FilterVerdict PreFilterChain::ApplyTextFilters(
    std::string_view net_text) const {
  if (net_text.size() < length_options_.min_chars ||
      net_text.size() > length_options_.max_chars) {
    length_rejected_.fetch_add(1);
    return FilterVerdict::kLengthRejected;
  }
  if (!language_identifier_.IsEnglish(net_text)) {
    language_rejected_.fetch_add(1);
    return FilterVerdict::kLanguageRejected;
  }
  passed_.fetch_add(1);
  return FilterVerdict::kPass;
}

}  // namespace wsie::crawler
