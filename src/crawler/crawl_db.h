#ifndef WSIE_CRAWLER_CRAWL_DB_H_
#define WSIE_CRAWLER_CRAWL_DB_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace wsie::crawler {

/// Lifecycle states of a URL in the crawl database.
enum class UrlState {
  kUnfetched,
  kFetching,
  kFetched,
  kError,
};

/// The crawl frontier (Nutch's CrawlDB, Fig. 1).
///
/// Holds every URL ever seen with its state, hands out politeness-respecting
/// fetch batches (at most `max_fetch_list_per_host` URLs of one host per
/// batch — Sect. 4.1: "the sizes of host-specific fetch lists was limited to
/// 500 to prevent threads from blocking each other"), and deduplicates
/// injected links. Thread-safe.
class CrawlDb {
 public:
  explicit CrawlDb(size_t max_fetch_list_per_host = 500)
      : max_per_host_(max_fetch_list_per_host) {}

  /// Adds `url` if never seen. Returns true if it was new.
  bool Inject(const std::string& url, const std::string& host);

  /// Pops up to `max_urls` unfetched URLs, honouring the per-host cap.
  /// Popped URLs move to kFetching.
  std::vector<std::string> NextFetchBatch(size_t max_urls);

  /// Records the outcome of a fetch.
  void MarkFetched(const std::string& url);
  void MarkError(const std::string& url);

  /// Returns a dispatched (kFetching) URL to the back of the frontier
  /// without recording an outcome — the circuit-breaker deferral path. The
  /// host's dispatch count is rolled back so politeness accounting does not
  /// double-charge the host when the URL is dispatched again.
  void Requeue(const std::string& url);

  /// True when no unfetched URLs remain (the "CrawlDB empty" stop
  /// condition of Sect. 2.1).
  bool Empty() const;

  size_t num_known() const;
  size_t num_pending() const;
  uint64_t total_injected() const;

  /// Per-host URL count already dispatched (politeness accounting).
  size_t HostFetchCount(const std::string& host) const;

  /// Serializes the complete frontier state — entries in sorted-URL order,
  /// the pending queue in queue order, per-host dispatch counts — so the
  /// bytes are a pure function of the logical state (the checkpoint's
  /// byte-identical-resume guarantee relies on this).
  void EncodeTo(std::string* out) const;

  /// Restores state serialized by EncodeTo(), replacing current contents.
  /// URLs that were in flight (kFetching) at snapshot time are returned to
  /// the frontier: a resumed crawl re-fetches work the killed crawl never
  /// finished. Rejects malformed input without modifying *this on the
  /// header; contents are replaced transactionally only on full success.
  Status DecodeFrom(std::string_view in);

 private:
  struct Entry {
    UrlState state = UrlState::kUnfetched;
    std::string host;
  };

  mutable std::mutex mu_;
  size_t max_per_host_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<std::string> pending_;
  std::unordered_map<std::string, size_t> host_dispatched_;
  uint64_t total_injected_ = 0;
  size_t num_pending_ = 0;
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_CRAWL_DB_H_
