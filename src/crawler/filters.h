#ifndef WSIE_CRAWLER_FILTERS_H_
#define WSIE_CRAWLER_FILTERS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "lang/language_id.h"
#include "lang/mime.h"

namespace wsie::crawler {

/// Why a page was dropped before classification.
enum class FilterVerdict {
  kPass,
  kMimeRejected,      ///< not textual (Sect. 2.1: MIME type filter)
  kLanguageRejected,  ///< not English (n-gram language filter)
  kLengthRejected,    ///< too short / too long (document length filter)
};

const char* FilterVerdictName(FilterVerdict verdict);

/// Length bounds for the document length filter. The paper filters both
/// pages "that are too short" (Sect. 2.1) and "extremely long documents"
/// (Sect. 3.2).
struct LengthFilterOptions {
  size_t min_chars = 200;
  size_t max_chars = 2u << 20;  // 2 MiB of net text
};

/// The document pre-selection chain of the focused crawler (Fig. 1, lower
/// part): MIME filter -> length filter -> language filter. Keeps running
/// counters so the Sect. 4.1 effectiveness numbers (MIME -9.5%, language
/// -14%, length -17%) can be reproduced. Thread-safe counters.
class PreFilterChain {
 public:
  explicit PreFilterChain(LengthFilterOptions length_options = {});

  /// Applies all filters. `url` and `raw_head` feed the MIME detector;
  /// `net_text` feeds length and language checks.
  FilterVerdict Apply(std::string_view url, std::string_view raw_head,
                      std::string_view net_text) const;

  /// Stage 1 only: MIME-type check on the raw response (runs before any
  /// HTML parsing, as in Fig. 1). Counts the page in total().
  FilterVerdict ApplyMime(std::string_view url,
                          std::string_view raw_head) const;

  /// Stage 2: length + language checks on extracted net text. Must follow
  /// an ApplyMime() for the same page (does not bump total()).
  FilterVerdict ApplyTextFilters(std::string_view net_text) const;

  uint64_t total() const { return total_.load(); }
  uint64_t mime_rejected() const { return mime_rejected_.load(); }
  uint64_t language_rejected() const { return language_rejected_.load(); }
  uint64_t length_rejected() const { return length_rejected_.load(); }
  uint64_t passed() const { return passed_.load(); }

 private:
  LengthFilterOptions length_options_;
  lang::MimeDetector mime_detector_;
  lang::LanguageIdentifier language_identifier_;
  mutable std::atomic<uint64_t> total_{0};
  mutable std::atomic<uint64_t> mime_rejected_{0};
  mutable std::atomic<uint64_t> language_rejected_{0};
  mutable std::atomic<uint64_t> length_rejected_{0};
  mutable std::atomic<uint64_t> passed_{0};
};

}  // namespace wsie::crawler

#endif  // WSIE_CRAWLER_FILTERS_H_
