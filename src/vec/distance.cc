#include "vec/distance.h"

#if defined(__x86_64__) || defined(__i386__)
#define WSIE_VEC_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define WSIE_VEC_NEON 1
#include <arm_neon.h>
#endif

namespace wsie::vec {

uint32_t L2SquaredU8Scalar(const uint8_t* a, const uint8_t* b, size_t n) {
  uint32_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += static_cast<uint32_t>(d * d);
  }
  return sum;
}

float L2SquaredF32(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// ------------------------------------------------------------ SIMD kernels
//
// Same shape as the group-varint posting decoder: per-ISA kernels compiled
// behind function-level target attributes, selected once per process via
// __builtin_cpu_supports, with the scalar loop as the universal fallback.
// All kernels compute the identical exact integer sum.

#if defined(WSIE_VEC_X86)

namespace {

__attribute__((target("avx2"))) uint32_t L2SquaredU8Avx2(const uint8_t* a,
                                                         const uint8_t* b,
                                                         size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Widen 16 bytes of each side to int16 and square the differences;
    // madd pairs into int32 lanes (max 2 * 255^2 per pair, no overflow).
    const __m256i va = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i diff = _mm256_sub_epi16(va, vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(diff, diff));
  }
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint32_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                 lanes[5] + lanes[6] + lanes[7];
  return sum + L2SquaredU8Scalar(a + i, b + i, n - i);
}

__attribute__((target("sse2"))) uint32_t L2SquaredU8Sse2(const uint8_t* a,
                                                         const uint8_t* b,
                                                         size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i alo = _mm_unpacklo_epi8(va, zero);
    const __m128i ahi = _mm_unpackhi_epi8(va, zero);
    const __m128i blo = _mm_unpacklo_epi8(vb, zero);
    const __m128i bhi = _mm_unpackhi_epi8(vb, zero);
    const __m128i dlo = _mm_sub_epi16(alo, blo);
    const __m128i dhi = _mm_sub_epi16(ahi, bhi);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(dlo, dlo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(dhi, dhi));
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         L2SquaredU8Scalar(a + i, b + i, n - i);
}

bool HostHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

bool HostHasSse2() {
  static const bool has = __builtin_cpu_supports("sse2");
  return has;
}

}  // namespace

#elif defined(WSIE_VEC_NEON)

namespace {

uint32_t L2SquaredU8Neon(const uint8_t* a, const uint8_t* b, size_t n) {
  uint32x4_t acc = vdupq_n_u32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    // |a - b| fits uint8; square-accumulate via widening multiplies.
    const uint8x16_t diff = vabdq_u8(va, vb);
    const uint16x8_t lo = vmull_u8(vget_low_u8(diff), vget_low_u8(diff));
    const uint16x8_t hi = vmull_u8(vget_high_u8(diff), vget_high_u8(diff));
    acc = vpadalq_u16(acc, lo);
    acc = vpadalq_u16(acc, hi);
  }
  return vaddvq_u32(acc) + L2SquaredU8Scalar(a + i, b + i, n - i);
}

}  // namespace
#endif

uint32_t L2SquaredU8(const uint8_t* a, const uint8_t* b, size_t n) {
#if defined(WSIE_VEC_X86)
  if (HostHasAvx2()) return L2SquaredU8Avx2(a, b, n);
  if (HostHasSse2()) return L2SquaredU8Sse2(a, b, n);
#elif defined(WSIE_VEC_NEON)
  return L2SquaredU8Neon(a, b, n);
#endif
  return L2SquaredU8Scalar(a, b, n);
}

bool VecSimdActive() {
#if defined(WSIE_VEC_X86)
  return HostHasAvx2() || HostHasSse2();
#elif defined(WSIE_VEC_NEON)
  return true;
#else
  return false;
#endif
}

}  // namespace wsie::vec
