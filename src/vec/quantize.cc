#include "vec/quantize.h"

#include <utility>

namespace wsie::vec {

Quantizer Quantizer::Train(const float* data, size_t count, size_t dim) {
  Quantizer q;
  q.min_.assign(dim, 0.0f);
  q.scale_.assign(dim, 0.0f);
  if (count == 0 || dim == 0) return q;
  std::vector<float> max(dim);
  for (size_t d = 0; d < dim; ++d) {
    q.min_[d] = data[d];
    max[d] = data[d];
  }
  for (size_t i = 1; i < count; ++i) {
    const float* row = data + i * dim;
    for (size_t d = 0; d < dim; ++d) {
      if (row[d] < q.min_[d]) q.min_[d] = row[d];
      if (row[d] > max[d]) max[d] = row[d];
    }
  }
  for (size_t d = 0; d < dim; ++d) q.scale_[d] = max[d] - q.min_[d];
  return q;
}

void Quantizer::Encode(const float* in, uint8_t* out) const {
  const size_t dim = min_.size();
  for (size_t d = 0; d < dim; ++d) {
    if (scale_[d] <= 0.0f) {
      out[d] = 0;
      continue;
    }
    const float normalized = (in[d] - min_[d]) / scale_[d];
    const float clamped =
        normalized < 0.0f ? 0.0f : (normalized > 1.0f ? 1.0f : normalized);
    out[d] = static_cast<uint8_t>(clamped * 255.0f + 0.5f);
  }
}

float Quantizer::Decode(uint8_t code, size_t d) const {
  if (scale_[d] <= 0.0f) return min_[d];
  return min_[d] + (static_cast<float>(code) / 255.0f) * scale_[d];
}

Quantizer Quantizer::FromParams(std::vector<float> mins,
                                std::vector<float> scales) {
  Quantizer q;
  q.min_ = std::move(mins);
  q.scale_ = std::move(scales);
  return q;
}

}  // namespace wsie::vec
