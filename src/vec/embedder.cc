#include "vec/embedder.h"

#include <cmath>

#include "common/char_class.h"
#include "ml/crf.h"

namespace wsie::vec {
namespace {

// Template-prefix seeds, folded at compile time exactly like the CRF
// extractor's (ml::HashFeatureSeed is constexpr): hashing continues from
// these with the feature payload bytes, so HashFeature("t=" + token) is
// reproduced without building the string.
constexpr uint64_t kTokenSeed =
    ml::HashFeatureSeed(ml::kFnvOffsetBasis, "t=");
constexpr uint64_t kGramSeed = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "g=");
constexpr uint64_t kBigramSeed =
    ml::HashFeatureSeed(ml::kFnvOffsetBasis, "b=");

constexpr char kBoundary = '#';
constexpr char kJoiner = '_';

}  // namespace

void Embedder::Embed(std::string_view text, float* out) const {
  const uint32_t dim = config_.dim;
  for (uint32_t i = 0; i < dim; ++i) out[i] = 0.0f;

  auto bucket = [&](uint64_t hash, float weight) {
    const float signed_weight = (hash >> 63) ? -weight : weight;
    out[hash % dim] += signed_weight;
  };

  // Walk lowercased alphanumeric token runs. Features are bucketed in
  // stream order, so the float accumulation order — and therefore every
  // output bit — is a pure function of the text bytes and the config.
  uint64_t prev_bigram_seed = 0;  // "b=" + previous token, streamed
  bool has_prev = false;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && !IsAsciiAlnum(text[i])) ++i;
    if (i >= n) break;
    const size_t begin = i;
    uint64_t token_hash = kTokenSeed;
    while (i < n && IsAsciiAlnum(text[i])) {
      token_hash = ml::HashFeatureChar(token_hash, AsciiLowerChar(text[i]));
      ++i;
    }
    const size_t len = i - begin;
    bucket(token_hash, 1.0f);

    // Char n-grams over "#token#" (boundary-marked), one streamed hash per
    // (start, size), reading lowercased bytes straight from the text.
    const size_t padded = len + 2;
    auto padded_char = [&](size_t p) {
      return (p == 0 || p == padded - 1) ? kBoundary
                                         : AsciiLowerChar(text[begin + p - 1]);
    };
    for (size_t size = config_.ngram_min;
         size <= config_.ngram_max && size <= padded; ++size) {
      for (size_t start = 0; start + size <= padded; ++start) {
        uint64_t h = kGramSeed;
        for (size_t k = 0; k < size; ++k) {
          h = ml::HashFeatureChar(h, padded_char(start + k));
        }
        bucket(h, 1.0f);
      }
    }

    // Adjacent-token context bigram "b=<prev>_<cur>", continued from the
    // previous token's prefix seed — the same prefix-seed continuation
    // trick the CRF path uses, so no feature string is materialized.
    if (has_prev) {
      uint64_t h = ml::HashFeatureChar(prev_bigram_seed, kJoiner);
      for (size_t p = begin; p < begin + len; ++p) {
        h = ml::HashFeatureChar(h, AsciiLowerChar(text[p]));
      }
      bucket(h, 0.5f);
    }
    uint64_t h = kBigramSeed;
    for (size_t p = begin; p < begin + len; ++p) {
      h = ml::HashFeatureChar(h, AsciiLowerChar(text[p]));
    }
    prev_bigram_seed = h;
    has_prev = true;
  }

  // L2 normalization with a double accumulator (one fixed pass). The
  // normalized floats are what every consumer — graph build, re-rank,
  // brute force — sees, so precision here is a shared constant, not skew.
  double norm_sq = 0.0;
  for (uint32_t d = 0; d < dim; ++d) {
    norm_sq += static_cast<double>(out[d]) * static_cast<double>(out[d]);
  }
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (uint32_t d = 0; d < dim; ++d) out[d] *= inv;
  }
}

}  // namespace wsie::vec
