#ifndef WSIE_VEC_DISTANCE_H_
#define WSIE_VEC_DISTANCE_H_

#include <cstddef>
#include <cstdint>

namespace wsie::vec {

/// Squared L2 distance between two quantized (uint8) vectors.
///
/// Pure integer arithmetic — per-dimension differences fit int16, squares
/// fit int32, and the uint32 sum is exact for any dim below ~2^16 — so the
/// SIMD kernels (AVX2 / SSE2 on x86, NEON on aarch64; same cpuid-dispatch
/// pattern as the group-varint posting decoder) return bit-identical sums
/// to the scalar fallback on every host. Graph construction and traversal
/// order therefore never depend on the instruction set.
uint32_t L2SquaredU8(const uint8_t* a, const uint8_t* b, size_t n);

/// Scalar reference implementation (golden, property-tested against the
/// dispatched kernel).
uint32_t L2SquaredU8Scalar(const uint8_t* a, const uint8_t* b, size_t n);

/// Squared L2 distance between two float vectors, accumulated left to
/// right in a fixed order — the exact re-rank metric. Deliberately scalar:
/// re-ranking touches only the candidate set, and a fixed summation order
/// keeps ranked results bit-identical everywhere.
float L2SquaredF32(const float* a, const float* b, size_t n);

/// True when a SIMD kernel (not the scalar fallback) serves L2SquaredU8 on
/// this host.
bool VecSimdActive();

}  // namespace wsie::vec

#endif  // WSIE_VEC_DISTANCE_H_
