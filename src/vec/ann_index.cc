#include "vec/ann_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "fault/checkpoint.h"
#include "fault/wire_format.h"
#include "obs/metrics.h"
#include "vec/distance.h"

namespace wsie::vec {
namespace {

namespace wire = wsie::fault::wire;

// v1: sequential-build indexes without a persisted batch size (decoded as
// build_batch = 1, which reproduces their construction schedule exactly).
// v2 adds build_batch to the meta section. Encode always writes v2.
constexpr uint64_t kFormatVersionNoBatch = 1;
constexpr uint64_t kFormatVersion = 2;

/// A (quantized distance, id) pair; all orderings tie-break on id so every
/// traversal is deterministic.
struct Candidate {
  uint32_t distance = 0;
  uint32_t id = 0;

  friend bool operator<(const Candidate& a, const Candidate& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Bounded best-first pool over quantized distances: the classic Vamana /
/// DiskANN GreedySearch. Expands the closest unexpanded candidate until
/// every pool entry is expanded, inserting newly-visited neighbors when
/// they beat the pool's worst entry. `visited` carries a per-query
/// generation stamp so no O(n) clear happens per search.
class GreedySearcher {
 public:
  GreedySearcher(const uint8_t* codes, uint32_t dim,
                 const CacheAlignedVector<uint32_t>& graph,
                 const std::vector<uint32_t>& offsets, size_t n)
      : codes_(codes), dim_(dim), graph_(graph), offsets_(offsets), n_(n) {}

  /// Runs the search and leaves the final pool (sorted by distance, id) in
  /// `*pool`. Returns traversal counters.
  VecIndex::SearchStats Run(const uint8_t* query, uint32_t start, size_t beam,
                            std::vector<Candidate>* pool) {
    VecIndex::SearchStats stats;
    pool->clear();
    if (n_ == 0) return stats;
    thread_local std::vector<uint64_t> visited;
    thread_local uint64_t generation = 0;
    if (visited.size() < n_) visited.resize(n_, 0);
    ++generation;

    auto distance_to = [&](uint32_t id) {
      ++stats.distances;
      return L2SquaredU8(query, codes_ + static_cast<size_t>(id) * dim_,
                         dim_);
    };
    auto mark = [&](uint32_t id) {
      if (visited[id] == generation) return false;
      visited[id] = generation;
      return true;
    };

    mark(start);
    pool->push_back(Candidate{distance_to(start), start});
    // expanded_[i] parallels pool: whether entry i's neighbors were pulled.
    thread_local std::vector<uint8_t> expanded;
    expanded.assign(1, 0);

    for (;;) {
      // Closest unexpanded pool entry; pool is kept sorted.
      size_t next = pool->size();
      for (size_t i = 0; i < pool->size(); ++i) {
        if (!expanded[i]) {
          next = i;
          break;
        }
      }
      if (next == pool->size()) break;
      expanded[next] = 1;
      ++stats.hops;
      const uint32_t node = (*pool)[next].id;
      const uint32_t begin = offsets_[node];
      const uint32_t end = offsets_[node + 1];
      for (uint32_t e = begin; e < end; ++e) {
        const uint32_t neighbor = graph_[e];
        if (!mark(neighbor)) continue;
        const Candidate candidate{distance_to(neighbor), neighbor};
        if (pool->size() >= beam && !(candidate < pool->back())) continue;
        // Sorted insert; evict the worst entry past the beam.
        const auto at = std::lower_bound(pool->begin(), pool->end(),
                                         candidate);
        const size_t pos = static_cast<size_t>(at - pool->begin());
        pool->insert(at, candidate);
        expanded.insert(expanded.begin() + static_cast<ptrdiff_t>(pos), 0);
        if (pool->size() > beam) {
          pool->pop_back();
          expanded.pop_back();
        }
      }
    }
    return stats;
  }

 private:
  const uint8_t* codes_;
  uint32_t dim_;
  const CacheAlignedVector<uint32_t>& graph_;
  const std::vector<uint32_t>& offsets_;
  size_t n_;
};

}  // namespace

int64_t VecIndex::FindName(std::string_view name) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return -1;
  return it - names_.begin();
}

std::span<const uint32_t> VecIndex::NeighborsOf(uint32_t i) const {
  return {graph_.data() + graph_offsets_[i],
          static_cast<size_t>(graph_offsets_[i + 1] - graph_offsets_[i])};
}

// --------------------------------------------------------------- building

namespace {

/// Robust prune: keep at most R candidates, closest first, dropping any
/// candidate dominated by an already-kept one (alpha-scaled). `candidates`
/// must be sorted and unique; entries equal to `node` are skipped.
void RobustPrune(uint32_t node, std::vector<Candidate>* candidates,
                 const uint8_t* codes, uint32_t dim, float alpha, uint32_t r,
                 std::vector<uint32_t>* out) {
  out->clear();
  thread_local std::vector<uint8_t> dropped;
  dropped.assign(candidates->size(), 0);
  for (size_t i = 0; i < candidates->size() && out->size() < r; ++i) {
    if (dropped[i]) continue;
    const Candidate kept = (*candidates)[i];
    if (kept.id == node) continue;
    out->push_back(kept.id);
    const uint8_t* kept_codes = codes + static_cast<size_t>(kept.id) * dim;
    for (size_t j = i + 1; j < candidates->size(); ++j) {
      if (dropped[j]) continue;
      const Candidate& other = (*candidates)[j];
      const uint32_t kept_to_other = L2SquaredU8(
          kept_codes, codes + static_cast<size_t>(other.id) * dim, dim);
      if (alpha * static_cast<float>(kept_to_other) <=
          static_cast<float>(other.distance)) {
        dropped[j] = 1;
      }
    }
  }
}

void SortUniqueCandidates(std::vector<Candidate>* candidates) {
  std::sort(candidates->begin(), candidates->end());
  candidates->erase(std::unique(candidates->begin(), candidates->end()),
                    candidates->end());
  // Distinct distances to the same id cannot happen (distance is a pure
  // function of the id), so (distance, id) uniqueness equals id uniqueness.
}

/// Per-thread construction scratch. Workers of the shared pool serve many
/// Build() calls over their lifetime, so the visited stamps are keyed by a
/// per-call owner token: a new owner (or a larger node count) re-zeroes the
/// stamp array, and the generation counter only ever moves forward — a
/// stale stamp can never equal a fresh generation.
struct BuildScratch {
  const void* owner = nullptr;
  std::vector<Candidate> pool;
  std::vector<Candidate> candidates;
  std::vector<uint32_t> pruned;
  std::vector<uint8_t> expanded;
  std::vector<uint64_t> visited;
  uint64_t generation = 0;
};

BuildScratch& LocalBuildScratch(const void* owner, size_t n) {
  thread_local BuildScratch scratch;
  if (scratch.owner != owner || scratch.visited.size() < n) {
    scratch.visited.assign(n, 0);
    scratch.generation = 0;
    scratch.owner = owner;
  }
  return scratch;
}

/// The construction-time greedy search (identical to the original
/// sequential build's inner loop): best-first traversal of the current
/// adjacency from the medoid, recording every visited node in
/// `scratch->candidates`. Reads the graph only — during a batch's parallel
/// phase nothing mutates it, so the result is a pure function of the
/// frozen pre-batch graph and the query.
void BuildSearch(const std::vector<std::vector<uint32_t>>& adjacency,
                 const uint8_t* codes, uint32_t dim, uint32_t medoid,
                 size_t beam, const uint8_t* query, BuildScratch* scratch) {
  scratch->pool.clear();
  scratch->candidates.clear();
  ++scratch->generation;
  scratch->expanded.assign(1, 0);
  auto distance_to = [&](uint32_t node) {
    return L2SquaredU8(query, codes + static_cast<size_t>(node) * dim, dim);
  };
  scratch->visited[medoid] = scratch->generation;
  scratch->pool.push_back(Candidate{distance_to(medoid), medoid});
  scratch->candidates.push_back(scratch->pool[0]);
  for (;;) {
    size_t next = scratch->pool.size();
    for (size_t i = 0; i < scratch->pool.size(); ++i) {
      if (!scratch->expanded[i]) {
        next = i;
        break;
      }
    }
    if (next == scratch->pool.size()) break;
    scratch->expanded[next] = 1;
    for (const uint32_t neighbor : adjacency[scratch->pool[next].id]) {
      if (scratch->visited[neighbor] == scratch->generation) continue;
      scratch->visited[neighbor] = scratch->generation;
      const Candidate candidate{distance_to(neighbor), neighbor};
      scratch->candidates.push_back(candidate);
      if (scratch->pool.size() >= beam && !(candidate < scratch->pool.back()))
        continue;
      const auto at = std::lower_bound(scratch->pool.begin(),
                                       scratch->pool.end(), candidate);
      const size_t pos = static_cast<size_t>(at - scratch->pool.begin());
      scratch->pool.insert(at, candidate);
      scratch->expanded.insert(
          scratch->expanded.begin() + static_cast<ptrdiff_t>(pos), 0);
      if (scratch->pool.size() > beam) {
        scratch->pool.pop_back();
        scratch->expanded.pop_back();
      }
    }
  }
}

}  // namespace

Result<VecIndex> VecIndex::Build(std::vector<std::string> names,
                                 const VecIndexConfig& config, uint64_t id,
                                 const BuildOptions& options) {
  if (config.embedder.dim == 0 || config.max_degree == 0 ||
      config.build_beam == 0 || config.build_batch == 0) {
    return Status::InvalidArgument("vec: degenerate index config");
  }
  if (config.embedder.ngram_min == 0 ||
      config.embedder.ngram_min > config.embedder.ngram_max) {
    return Status::InvalidArgument("vec: bad ngram range");
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* batches_counter = registry.GetCounter("wsie.vec.build.batches");
  obs::Histogram* embed_wall_ns =
      registry.GetHistogram("wsie.vec.build.embed_wall_ns");
  obs::Histogram* graph_wall_ns =
      registry.GetHistogram("wsie.vec.build.graph_wall_ns");
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : &SharedThreadPool();
  const size_t workers =
      options.workers != 0 ? options.workers : pool->num_threads() + 1;

  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  VecIndex index;
  index.id_ = id;
  index.config_ = config;
  index.embedder_ = Embedder(config.embedder);
  index.names_ = std::move(names);

  const size_t n = index.names_.size();
  const uint32_t dim = config.embedder.dim;
  // Embedding and code rows are pure per-name functions — morsel order
  // cannot affect a byte of output.
  Stopwatch embed_watch;
  index.floats_.resize(n * dim);
  pool->MorselForWithCaller(n, workers, [&](size_t i) {
    index.embedder_.Embed(index.names_[i], index.floats_.data() + i * dim);
    return true;
  });
  index.quantizer_ = Quantizer::Train(index.floats_.data(), n, dim);
  index.codes_.resize(n * dim);
  pool->MorselForWithCaller(n, workers, [&](size_t i) {
    index.quantizer_.Encode(index.floats_.data() + i * dim,
                            index.codes_.data() + i * dim);
    return true;
  });
  embed_wall_ns->Observe(static_cast<double>(embed_watch.ElapsedNs()));

  if (n == 0) {
    index.graph_offsets_.assign(1, 0);
    index.encoded_bytes_ = index.Encode().size();
    return index;
  }

  // Medoid: the vector closest to the dataset mean (float math in fixed
  // order; ties break on id).
  {
    std::vector<double> mean(dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const float* row = index.floats_.data() + i * dim;
      for (uint32_t d = 0; d < dim; ++d) mean[d] += row[d];
    }
    std::vector<float> mean_f(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      mean_f[d] = static_cast<float>(mean[d] / static_cast<double>(n));
    }
    float best = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const float d2 =
          L2SquaredF32(mean_f.data(), index.floats_.data() + i * dim, dim);
      if (i == 0 || d2 < best) {
        best = d2;
        index.medoid_ = static_cast<uint32_t>(i);
      }
    }
  }

  const uint32_t r = config.max_degree;
  const size_t beam = config.build_beam;
  const uint8_t* codes = index.codes_.data();

  // Random bootstrap graph from the seeded generator: every node gets up
  // to R distinct random out-neighbors, identical on every run.
  std::vector<std::vector<uint32_t>> adjacency(n);
  {
    Rng rng(config.seed);
    for (size_t i = 0; i < n; ++i) {
      auto& neighbors = adjacency[i];
      const size_t want = std::min<size_t>(r, n - 1);
      while (neighbors.size() < want) {
        const auto pick = static_cast<uint32_t>(rng.Uniform(n));
        if (pick == i) continue;
        if (std::find(neighbors.begin(), neighbors.end(), pick) !=
            neighbors.end()) {
          continue;
        }
        neighbors.push_back(pick);
      }
    }
  }

  auto distance_between = [&](uint32_t a, uint32_t b) {
    return L2SquaredU8(codes + static_cast<size_t>(a) * dim,
                       codes + static_cast<size_t>(b) * dim, dim);
  };

  // Two passes, alpha 1.0 then config.alpha — the standard Vamana schedule —
  // over batches of `build_batch` consecutive nodes. Within a batch the
  // greedy search + robust prune for every node runs against the frozen
  // pre-batch graph (pure reads, so the work morsel-parallelizes with no
  // effect on the output), then the results apply serially in id order:
  // first every node's new out-list, then every node's back-edge patches.
  // The graph therefore depends on build_batch but never on the pool width;
  // build_batch = 1 replays the original fully sequential schedule.
  Stopwatch graph_watch;
  const size_t batch_size = config.build_batch;
  const void* owner_token = &adjacency;
  std::vector<std::vector<uint32_t>> pruned_results(
      std::min<size_t>(batch_size, n));
  for (int pass = 0; pass < 2; ++pass) {
    const float alpha = pass == 0 ? 1.0f : config.alpha;
    for (size_t start = 0; start < n; start += batch_size) {
      const size_t count = std::min(batch_size, n - start);
      batches_counter->Add(1);
      pool->MorselForWithCaller(count, workers, [&](size_t i) {
        const size_t node = start + i;
        const uint32_t node_id = static_cast<uint32_t>(node);
        BuildScratch& scratch = LocalBuildScratch(owner_token, n);
        BuildSearch(adjacency, codes, dim, index.medoid_, beam,
                    codes + node * dim, &scratch);
        // Candidate pool: everything visited plus current out-neighbors.
        for (const uint32_t neighbor : adjacency[node]) {
          scratch.candidates.push_back(
              Candidate{distance_between(node_id, neighbor), neighbor});
        }
        SortUniqueCandidates(&scratch.candidates);
        RobustPrune(node_id, &scratch.candidates, codes, dim, alpha, r,
                    &scratch.pruned);
        pruned_results[i] = scratch.pruned;
        return true;
      });
      // Serial apply in fixed id order: out-lists first so intra-batch
      // back-edges land on the new lists, exactly like the serial schedule
      // does for batch 1.
      for (size_t i = 0; i < count; ++i) {
        adjacency[start + i] = std::move(pruned_results[i]);
      }
      std::vector<Candidate> back_candidates;
      std::vector<uint32_t> back_pruned;
      for (size_t i = 0; i < count; ++i) {
        const size_t node = start + i;
        const uint32_t node_id = static_cast<uint32_t>(node);
        // Patch back-edges; over-full destinations get re-pruned.
        for (const uint32_t neighbor : adjacency[node]) {
          auto& back = adjacency[neighbor];
          if (std::find(back.begin(), back.end(), node_id) != back.end()) {
            continue;
          }
          back.push_back(node_id);
          if (back.size() > r) {
            back_candidates.clear();
            for (const uint32_t b : back) {
              back_candidates.push_back(
                  Candidate{distance_between(neighbor, b), b});
            }
            SortUniqueCandidates(&back_candidates);
            RobustPrune(neighbor, &back_candidates, codes, dim, alpha, r,
                        &back_pruned);
            back = back_pruned;
          }
        }
      }
    }
  }
  graph_wall_ns->Observe(static_cast<double>(graph_watch.ElapsedNs()));

  // Freeze to CSR.
  index.graph_offsets_.resize(n + 1);
  index.graph_offsets_[0] = 0;
  size_t total_edges = 0;
  for (size_t i = 0; i < n; ++i) {
    total_edges += adjacency[i].size();
    index.graph_offsets_[i + 1] = static_cast<uint32_t>(total_edges);
  }
  index.graph_.resize(total_edges);
  size_t edge = 0;
  for (size_t i = 0; i < n; ++i) {
    for (const uint32_t neighbor : adjacency[i]) {
      index.graph_[edge++] = neighbor;
    }
  }
  index.encoded_bytes_ = index.Encode().size();
  return index;
}

// --------------------------------------------------------------- querying

std::vector<VecIndex::Neighbor> VecIndex::Search(const float* query, size_t k,
                                                 size_t beam,
                                                 SearchStats* stats) const {
  std::vector<Neighbor> result;
  const size_t n = names_.size();
  if (n == 0 || k == 0) return result;
  if (beam == 0) {
    beam = std::max<size_t>(config_.build_beam, 4 * k);
  }
  beam = std::max(beam, k);

  thread_local std::vector<uint8_t> query_codes;
  query_codes.resize(dim());
  quantizer_.Encode(query, query_codes.data());

  thread_local std::vector<Candidate> pool;
  GreedySearcher searcher(codes_.data(), dim(), graph_, graph_offsets_, n);
  SearchStats local =
      searcher.Run(query_codes.data(), medoid_, beam, &pool);

  // Exact float re-rank of the pool; ties break on id.
  result.reserve(pool.size());
  for (const Candidate& candidate : pool) {
    result.push_back(Neighbor{
        candidate.id,
        L2SquaredF32(query, vector(candidate.id), dim())});
  }
  local.reranked = result.size();
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (result.size() > k) result.resize(k);
  if (stats != nullptr) *stats = local;
  return result;
}

std::vector<VecIndex::Neighbor> VecIndex::SearchExact(const float* query,
                                                      size_t k) const {
  std::vector<Neighbor> all;
  const size_t n = names_.size();
  all.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    all.push_back(Neighbor{static_cast<uint32_t>(i),
                           L2SquaredF32(query, vector(i), dim())});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<VecIndex::Neighbor> VecIndex::SearchText(std::string_view text,
                                                     size_t k, size_t beam,
                                                     SearchStats* stats) const {
  thread_local std::vector<float> query;
  query.resize(dim());
  embedder_.Embed(text, query.data());
  return Search(query.data(), k, beam, stats);
}

// ------------------------------------------------------------- persistence

namespace {

/// Raw little-endian byte append/consume for the bulk sections. The repo
/// targets little-endian hosts throughout (the group-varint lanes make the
/// same assumption); text encodings would bloat vector sections ~5x.
template <typename T>
void PutRaw(std::string* out, const T* data, size_t count) {
  out->append(reinterpret_cast<const char*>(data), count * sizeof(T));
}

template <typename T>
bool GetRaw(std::string_view* in, T* data, size_t count) {
  const size_t bytes = count * sizeof(T);
  if (in->size() < bytes) return false;
  std::memcpy(data, in->data(), bytes);
  in->remove_prefix(bytes);
  return true;
}

}  // namespace

fault::Checkpoint VecIndex::ToContainer() const {
  fault::Checkpoint container;
  const size_t n = names_.size();
  const uint32_t dim_v = dim();

  std::string meta;
  wire::PutU64(&meta, kFormatVersion);
  wire::PutU64(&meta, id_);
  wire::PutU64(&meta, n);
  wire::PutU64(&meta, dim_v);
  wire::PutU64(&meta, config_.embedder.ngram_min);
  wire::PutU64(&meta, config_.embedder.ngram_max);
  wire::PutU64(&meta, config_.max_degree);
  wire::PutU64(&meta, config_.build_beam);
  wire::PutU64(&meta, config_.build_batch);
  wire::PutDouble(&meta, static_cast<double>(config_.alpha));
  wire::PutU64(&meta, config_.seed);
  wire::PutU64(&meta, medoid_);
  wire::PutU64(&meta, graph_.size());
  container.SetSection("meta", std::move(meta));

  std::string names;
  for (const std::string& name : names_) wire::PutString(&names, name);
  container.SetSection("names", std::move(names));

  std::string vectors;
  PutRaw(&vectors, floats_.data(), floats_.size());
  container.SetSection("vectors", std::move(vectors));

  std::string quant;
  PutRaw(&quant, quantizer_.mins().data(), quantizer_.mins().size());
  PutRaw(&quant, quantizer_.scales().data(), quantizer_.scales().size());
  PutRaw(&quant, codes_.data(), codes_.size());
  container.SetSection("quant", std::move(quant));

  std::string graph;
  PutRaw(&graph, graph_offsets_.data(), graph_offsets_.size());
  PutRaw(&graph, graph_.data(), graph_.size());
  container.SetSection("graph", std::move(graph));

  return container;
}

std::string VecIndex::Encode() const { return ToContainer().Serialize(); }

Result<VecIndex> VecIndex::Decode(std::string_view bytes) {
  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint container,
                        fault::Checkpoint::Deserialize(bytes));
  auto section = [&](const char* name) -> Result<std::string_view> {
    const std::string* s = container.FindSection(name);
    if (s == nullptr) {
      return Status::InvalidArgument(std::string("vec: missing section ") +
                                     name);
    }
    return std::string_view(*s);
  };

  WSIE_ASSIGN_OR_RETURN(std::string_view meta, section("meta"));
  uint64_t version = 0, id = 0, n = 0, dim = 0, ngram_min = 0, ngram_max = 0,
           max_degree = 0, build_beam = 0, build_batch = 0, seed = 0,
           medoid = 0, edges = 0;
  double alpha = 0.0;
  if (!wire::GetU64(&meta, &version) ||
      (version != kFormatVersion && version != kFormatVersionNoBatch) ||
      !wire::GetU64(&meta, &id) || !wire::GetU64(&meta, &n) ||
      !wire::GetU64(&meta, &dim) || !wire::GetU64(&meta, &ngram_min) ||
      !wire::GetU64(&meta, &ngram_max) || !wire::GetU64(&meta, &max_degree) ||
      !wire::GetU64(&meta, &build_beam)) {
    return Status::InvalidArgument("vec: malformed meta section");
  }
  // v1 predates batched construction; those graphs were built with the
  // fully sequential schedule, i.e. build_batch = 1.
  if (version == kFormatVersionNoBatch) {
    build_batch = 1;
  } else if (!wire::GetU64(&meta, &build_batch)) {
    return Status::InvalidArgument("vec: malformed meta section");
  }
  if (!wire::GetDouble(&meta, &alpha) || !wire::GetU64(&meta, &seed) ||
      !wire::GetU64(&meta, &medoid) || !wire::GetU64(&meta, &edges)) {
    return Status::InvalidArgument("vec: malformed meta section");
  }
  if (dim == 0 || dim > (1u << 20) || max_degree == 0 || build_beam == 0 ||
      build_batch == 0 || ngram_min == 0 || ngram_min > ngram_max) {
    return Status::InvalidArgument("vec: inconsistent meta values");
  }
  if (n > 0 && medoid >= n) {
    return Status::InvalidArgument("vec: medoid out of range");
  }

  VecIndex index;
  index.id_ = id;
  index.config_.embedder.dim = static_cast<uint32_t>(dim);
  index.config_.embedder.ngram_min = static_cast<uint32_t>(ngram_min);
  index.config_.embedder.ngram_max = static_cast<uint32_t>(ngram_max);
  index.config_.max_degree = static_cast<uint32_t>(max_degree);
  index.config_.build_beam = static_cast<uint32_t>(build_beam);
  index.config_.build_batch = static_cast<uint32_t>(build_batch);
  index.config_.alpha = static_cast<float>(alpha);
  index.config_.seed = seed;
  index.embedder_ = Embedder(index.config_.embedder);
  index.medoid_ = static_cast<uint32_t>(medoid);

  WSIE_ASSIGN_OR_RETURN(std::string_view names, section("names"));
  index.names_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!wire::GetString(&names, &name)) {
      return Status::InvalidArgument("vec: truncated names section");
    }
    if (i > 0 && !(index.names_.back() < name)) {
      return Status::InvalidArgument("vec: names not sorted/unique");
    }
    index.names_.push_back(std::move(name));
  }
  if (!names.empty()) {
    return Status::InvalidArgument("vec: trailing bytes in names section");
  }

  WSIE_ASSIGN_OR_RETURN(std::string_view vectors, section("vectors"));
  index.floats_.resize(n * dim);
  if (!GetRaw(&vectors, index.floats_.data(), index.floats_.size()) ||
      !vectors.empty()) {
    return Status::InvalidArgument("vec: bad vectors section size");
  }

  WSIE_ASSIGN_OR_RETURN(std::string_view quant, section("quant"));
  std::vector<float> mins(dim), scales(dim);
  index.codes_.resize(n * dim);
  if (!GetRaw(&quant, mins.data(), mins.size()) ||
      !GetRaw(&quant, scales.data(), scales.size()) ||
      !GetRaw(&quant, index.codes_.data(), index.codes_.size()) ||
      !quant.empty()) {
    return Status::InvalidArgument("vec: bad quant section size");
  }
  index.quantizer_ = Quantizer::FromParams(std::move(mins), std::move(scales));

  WSIE_ASSIGN_OR_RETURN(std::string_view graph, section("graph"));
  index.graph_offsets_.resize(n + 1);
  index.graph_.resize(edges);
  if (!GetRaw(&graph, index.graph_offsets_.data(),
              index.graph_offsets_.size()) ||
      !GetRaw(&graph, index.graph_.data(), index.graph_.size()) ||
      !graph.empty()) {
    return Status::InvalidArgument("vec: bad graph section size");
  }
  if (index.graph_offsets_[0] != 0 ||
      index.graph_offsets_[n] != index.graph_.size()) {
    return Status::InvalidArgument("vec: bad graph offsets");
  }
  for (size_t i = 0; i < n; ++i) {
    if (index.graph_offsets_[i] > index.graph_offsets_[i + 1] ||
        index.graph_offsets_[i + 1] - index.graph_offsets_[i] > max_degree) {
      return Status::InvalidArgument("vec: bad graph offsets");
    }
  }
  for (const uint32_t neighbor : index.graph_) {
    if (neighbor >= n) {
      return Status::InvalidArgument("vec: graph neighbor out of range");
    }
  }
  index.encoded_bytes_ = bytes.size();
  return index;
}

Status VecIndex::WriteFile(const std::string& path) const {
  return ToContainer().WriteFile(path);
}

Result<VecIndex> VecIndex::ReadFile(const std::string& path) {
  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint container,
                        fault::Checkpoint::ReadFile(path));
  return Decode(container.Serialize());
}

}  // namespace wsie::vec
