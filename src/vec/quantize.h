#ifndef WSIE_VEC_QUANTIZE_H_
#define WSIE_VEC_QUANTIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsie::vec {

/// Per-dimension min/max scalar quantizer: float -> uint8 codes.
///
/// Train() scans the dataset once per dimension for [min, max]; Encode maps
/// x to round((x - min) / (max - min) * 255), clamped. Quantized vectors
/// are what the ANN graph stores and traverses (4x smaller than float,
/// integer SIMD distances); the exact float vectors are kept alongside for
/// candidate re-ranking, so quantization costs recall only through
/// candidate selection, never through final ranking. Training, encoding,
/// and decoding are deterministic element-wise float ops — codes are
/// bit-identical across runs and hosts.
class Quantizer {
 public:
  Quantizer() = default;

  /// Computes per-dimension ranges over `count` vectors of `dim` floats
  /// (row-major, contiguous). A constant dimension gets scale 0 and always
  /// encodes to 0.
  static Quantizer Train(const float* data, size_t count, size_t dim);

  /// Quantizes one vector into out[0..dim).
  void Encode(const float* in, uint8_t* out) const;

  /// Reconstructs the dequantized value of one code (midpoint mapping) —
  /// diagnostics and tests only; the search path re-ranks with the exact
  /// floats instead.
  float Decode(uint8_t code, size_t d) const;

  size_t dim() const { return min_.size(); }
  const std::vector<float>& mins() const { return min_; }
  const std::vector<float>& scales() const { return scale_; }

  /// Rebuilds a quantizer from persisted parameters (sizes must match).
  static Quantizer FromParams(std::vector<float> mins,
                              std::vector<float> scales);

  friend bool operator==(const Quantizer&, const Quantizer&) = default;

 private:
  std::vector<float> min_;    ///< per-dimension minimum
  std::vector<float> scale_;  ///< per-dimension (max - min), 0 if constant
};

}  // namespace wsie::vec

#endif  // WSIE_VEC_QUANTIZE_H_
