#ifndef WSIE_VEC_ANN_INDEX_H_
#define WSIE_VEC_ANN_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "common/status.h"
#include "vec/embedder.h"
#include "vec/quantize.h"

namespace wsie {
class ThreadPool;
}  // namespace wsie

namespace wsie::fault {
class Checkpoint;
}  // namespace wsie::fault

namespace wsie::vec {

/// Construction parameters for a VecIndex. Persisted with the index so a
/// compactor rebuild over the same name set reproduces it byte for byte.
struct VecIndexConfig {
  EmbedderConfig embedder;
  uint32_t max_degree = 32;  ///< R: out-degree bound after robust prune
  uint32_t build_beam = 64;  ///< L: greedy-search pool during construction
  float alpha = 1.2f;        ///< robust-prune distance slack
  uint64_t seed = 42;        ///< seeds the random bootstrap graph
  /// Nodes per construction batch. Each batch's greedy-search + robust-
  /// prune results are computed against the frozen pre-batch graph (and may
  /// therefore run morsel-parallel) and applied in fixed id order, so the
  /// built graph depends on this value but never on the thread count.
  /// 1 reproduces the original fully sequential Vamana schedule exactly —
  /// the serial golden reference (each "batch" sees every prior node's
  /// edges, which is precisely the old per-node update order).
  uint32_t build_batch = 64;

  friend bool operator==(const VecIndexConfig&, const VecIndexConfig&) =
      default;
};

/// Execution knobs for VecIndex::Build — scheduling only, never part of the
/// persisted identity: the built index is byte-identical at every pool
/// width and worker count (gated by tests/ingest_test.cc and
/// bench/micro_ingest).
struct VecBuildOptions {
  ThreadPool* pool = nullptr;  ///< nullptr selects SharedThreadPool()
  size_t workers = 0;          ///< 0 = pool width + the calling thread
};

/// An immutable Vamana-style ANN index over a sorted, deduplicated set of
/// entity names.
///
/// Layout: one contiguous float matrix (the exact embeddings, used only to
/// re-rank), one contiguous uint8 matrix (per-dimension min/max scalar
/// quantization — the compact representation every graph hop reads), and a
/// CSR adjacency list produced by the standard Vamana construction (random
/// bootstrap graph, then per-node greedy search + robust prune at alpha 1.0
/// and again at `alpha`, patching back-edges as it goes).
///
/// Determinism: embeddings are pure functions of the name bytes, node ids
/// are sorted-name positions, graph distances are exact integers (identical
/// under every SIMD kernel), and all ties break on id — so Build() over the
/// same (names, config) yields a byte-identical index on every run, shard
/// count, and host. Search() traverses quantized vectors with a bounded
/// best-first pool, then re-ranks the pool with exact float distances; its
/// results are deterministic for the same reasons.
///
/// On disk the index is a fault::Checkpoint container ("vec-*.wvec": magic
/// + FNV-1a trailer + atomic tmp/rename) with meta/names/vectors/quant/
/// graph sections; Decode rejects corrupt or structurally inconsistent
/// bytes with a Status error, never UB.
class VecIndex {
 public:
  /// One ranked result: index id (= sorted-name position) and the exact
  /// squared float L2 distance to the query.
  struct Neighbor {
    uint32_t id = 0;
    float distance = 0.0f;

    friend bool operator==(const Neighbor&, const Neighbor&) = default;
  };

  /// Per-query traversal counters (optional out-param of Search).
  struct SearchStats {
    uint64_t hops = 0;           ///< nodes expanded
    uint64_t distances = 0;      ///< quantized distance evaluations
    uint64_t reranked = 0;       ///< candidates re-ranked with float math
  };

  VecIndex() = default;

  using BuildOptions = VecBuildOptions;

  /// Embeds `names` (must become sorted + unique; Build sorts and dedups),
  /// trains the quantizer, and constructs the graph. `id` is the persisted
  /// identity (the store's segment-id counter). Embedding, quantization,
  /// and the per-batch graph passes run morsel-parallel on the options
  /// pool; see VecIndexConfig::build_batch for the determinism contract.
  static Result<VecIndex> Build(std::vector<std::string> names,
                                const VecIndexConfig& config, uint64_t id = 0,
                                const BuildOptions& options = {});

  size_t size() const { return names_.size(); }
  uint64_t id() const { return id_; }
  uint32_t dim() const { return embedder_.dim(); }
  const VecIndexConfig& config() const { return config_; }
  const Embedder& embedder() const { return embedder_; }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Binary search over the sorted names; -1 when absent.
  int64_t FindName(std::string_view name) const;

  /// The exact float embedding of node `i`.
  const float* vector(size_t i) const { return floats_.data() + i * dim(); }
  /// Node `i`'s graph out-neighbors.
  std::span<const uint32_t> NeighborsOf(uint32_t i) const;
  uint32_t medoid() const { return medoid_; }

  /// Greedy ANN search: traverses the quantized graph with a pool of
  /// `beam` candidates (0 = max(config.build_beam, 4k)), re-ranks the
  /// final pool with exact float distances, and returns the top `k` by
  /// (distance, id). Returns fewer than `k` only when the index is smaller.
  std::vector<Neighbor> Search(const float* query, size_t k, size_t beam = 0,
                               SearchStats* stats = nullptr) const;

  /// Exact brute-force scan over the float matrix — the golden reference
  /// the recall gate compares against.
  std::vector<Neighbor> SearchExact(const float* query, size_t k) const;

  /// Embed + Search in one call.
  std::vector<Neighbor> SearchText(std::string_view text, size_t k,
                                   size_t beam = 0,
                                   SearchStats* stats = nullptr) const;

  // ----------------------------------------------------- memory accounting
  size_t float_bytes() const { return floats_.size() * sizeof(float); }
  size_t quantized_bytes() const { return codes_.size(); }
  size_t graph_bytes() const {
    return graph_.size() * sizeof(uint32_t) +
           graph_offsets_.size() * sizeof(uint32_t);
  }
  /// Size of the encoded container (what the vec-* file occupies).
  size_t encoded_bytes() const { return encoded_bytes_; }

  // ----------------------------------------------------------- persistence
  std::string Encode() const;
  static Result<VecIndex> Decode(std::string_view bytes);
  /// Atomic write (tmp + rename) via the checkpoint container.
  Status WriteFile(const std::string& path) const;
  static Result<VecIndex> ReadFile(const std::string& path);

 private:
  fault::Checkpoint ToContainer() const;

  uint64_t id_ = 0;
  VecIndexConfig config_;
  Embedder embedder_;
  std::vector<std::string> names_;  ///< sorted, unique
  CacheAlignedVector<float> floats_;   ///< size() * dim exact embeddings
  CacheAlignedVector<uint8_t> codes_;  ///< size() * dim quantized codes
  Quantizer quantizer_;
  CacheAlignedVector<uint32_t> graph_;  ///< CSR adjacency, in prune order
  std::vector<uint32_t> graph_offsets_;  ///< size() + 1
  uint32_t medoid_ = 0;
  size_t encoded_bytes_ = 0;
};

}  // namespace wsie::vec

#endif  // WSIE_VEC_ANN_INDEX_H_
