#include "vec/delta_index.h"

#include <algorithm>
#include <cstring>

#include "vec/distance.h"

namespace wsie::vec {

DeltaIndex DeltaIndex::Build(std::vector<std::string> names,
                             const EmbedderConfig& config,
                             const DeltaIndex* previous) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  DeltaIndex index;
  index.config_ = config;
  index.names_ = std::move(names);
  const size_t n = index.names_.size();
  const uint32_t dim = config.dim;
  index.floats_.resize(n * dim);

  const bool reuse = previous != nullptr && previous->config_ == config;
  Embedder embedder(config);
  for (size_t i = 0; i < n; ++i) {
    float* row = index.floats_.data() + i * dim;
    if (reuse) {
      const int64_t at = previous->FindName(index.names_[i]);
      if (at >= 0) {
        std::memcpy(row, previous->vector(static_cast<size_t>(at)),
                    dim * sizeof(float));
        continue;
      }
    }
    embedder.Embed(index.names_[i], row);
  }
  return index;
}

int64_t DeltaIndex::FindName(std::string_view name) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return -1;
  return it - names_.begin();
}

std::vector<VecIndex::Neighbor> DeltaIndex::SearchExact(const float* query,
                                                        size_t k) const {
  std::vector<VecIndex::Neighbor> all;
  const size_t n = names_.size();
  if (n == 0 || k == 0) return all;
  all.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    all.push_back(VecIndex::Neighbor{
        static_cast<uint32_t>(i), L2SquaredF32(query, vector(i), dim())});
  }
  std::sort(all.begin(), all.end(),
            [](const VecIndex::Neighbor& a, const VecIndex::Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace wsie::vec
