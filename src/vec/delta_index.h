#ifndef WSIE_VEC_DELTA_INDEX_H_
#define WSIE_VEC_DELTA_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/aligned.h"
#include "vec/ann_index.h"
#include "vec/embedder.h"

namespace wsie::vec {

/// A small brute-force companion index over the entity terms that have
/// appeared since the last full VecIndex build — the store's answer to the
/// stale-index gap on Append().
///
/// The main Vamana graph is immutable by design (its byte-determinism is a
/// serving guarantee), so appends used to carry it forward stale: terms
/// first seen after the build were invisible to Similar() until the next
/// compaction rebuild. A DeltaIndex closes that window. It holds the new
/// terms' exact float embeddings only — no quantization, no graph — and is
/// searched by exhaustive scan, which is the right trade below a few tens
/// of thousands of vectors: exact results, zero build cost beyond
/// embedding, and the set shrinks back to empty at every rebuild when the
/// compactor folds the terms into the graph.
///
/// Determinism: names are sorted unique, embeddings are pure functions of
/// (name bytes, embedder config), and SearchExact orders by exact
/// (distance, id) with ids being sorted-name positions — so the merged
/// main+delta answer in QueryEngine::Similar is reproducible across runs,
/// appends, and thread counts. Never persisted: every store open or
/// publish recomputes it from the live segments' terms minus the published
/// index's names (see AnnotationStore), reusing prior embeddings where the
/// name sets overlap.
class DeltaIndex {
 public:
  DeltaIndex() = default;

  /// Sorts and dedups `names`, then embeds each one under `config`. When
  /// `previous` is non-null and was built under an equal config, rows for
  /// names it already holds are copied instead of re-embedded (identical
  /// bytes either way — embeddings are pure — just cheaper).
  static DeltaIndex Build(std::vector<std::string> names,
                          const EmbedderConfig& config,
                          const DeltaIndex* previous = nullptr);

  size_t size() const { return names_.size(); }
  uint32_t dim() const { return config_.dim; }
  const EmbedderConfig& embedder_config() const { return config_; }
  const std::vector<std::string>& names() const { return names_; }
  const std::string& name(size_t i) const { return names_[i]; }

  /// Binary search over the sorted names; -1 when absent.
  int64_t FindName(std::string_view name) const;

  /// The exact float embedding of entry `i`.
  const float* vector(size_t i) const { return floats_.data() + i * dim(); }

  /// Exhaustive exact scan: top `k` by (squared L2 distance, id) — the
  /// same total order VecIndex uses, so merged results interleave exactly.
  std::vector<VecIndex::Neighbor> SearchExact(const float* query,
                                              size_t k) const;

  size_t float_bytes() const { return floats_.size() * sizeof(float); }

 private:
  EmbedderConfig config_;
  std::vector<std::string> names_;  ///< sorted, unique
  CacheAlignedVector<float> floats_;
};

}  // namespace wsie::vec

#endif  // WSIE_VEC_DELTA_INDEX_H_
