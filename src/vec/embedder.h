#ifndef WSIE_VEC_EMBEDDER_H_
#define WSIE_VEC_EMBEDDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace wsie::vec {

/// Knobs for the feature-hashed embedder. Every field participates in the
/// persisted index format, so two indexes built with equal configs (and
/// equal name sets) are byte-identical.
struct EmbedderConfig {
  uint32_t dim = 256;      ///< feature-hash buckets (vector dimensionality)
  uint32_t ngram_min = 3;  ///< smallest char n-gram per token
  uint32_t ngram_max = 5;  ///< largest char n-gram per token

  friend bool operator==(const EmbedderConfig&, const EmbedderConfig&) =
      default;
};

/// Deterministic feature-hashed text embedder.
///
/// Embeds entity names and free sentence text into one shared
/// `dim`-dimensional space by hashing three feature families through the
/// same streaming FNV-1a the CRF feature extractor uses (ml::HashFeatureSeed
/// continuation from precomputed template-prefix seeds — no feature string
/// is ever materialized):
///
///   t=<token>            whole lowercased alphanumeric token
///   g=<gram>             char n-grams of "#token#" (boundary-marked),
///                        sizes [ngram_min, ngram_max]
///   b=<tok1>_<tok2>      adjacent-token context bigram (half weight)
///
/// Each feature lands in bucket `hash % dim` with sign `hash >> 63` (signed
/// feature hashing keeps bucket collisions mean-zero), and the result is
/// L2-normalized. The embedding is a pure function of the bytes of `text`
/// and the config — bit-identical across runs, shard counts, and hosts —
/// so entity vectors, and therefore the ANN graph built over them, are
/// byte-deterministic.
class Embedder {
 public:
  explicit Embedder(EmbedderConfig config = {}) : config_(config) {}

  /// Writes the L2-normalized embedding of `text` into out[0..dim). Text
  /// with no alphanumeric tokens embeds to the zero vector.
  void Embed(std::string_view text, float* out) const;

  /// Convenience allocating overload.
  std::vector<float> Embed(std::string_view text) const {
    std::vector<float> v(config_.dim);
    Embed(text, v.data());
    return v;
  }

  uint32_t dim() const { return config_.dim; }
  const EmbedderConfig& config() const { return config_; }

 private:
  EmbedderConfig config_;
};

}  // namespace wsie::vec

#endif  // WSIE_VEC_EMBEDDER_H_
