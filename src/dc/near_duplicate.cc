#include "dc/near_duplicate.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "common/string_util.h"
#include "ml/crf.h"  // HashFeature

namespace wsie::dc {

std::vector<uint64_t> ShingleSet(std::string_view text, int shingle_words) {
  std::vector<std::string> words = SplitWhitespace(AsciiToLower(text));
  std::vector<uint64_t> shingles;
  if (words.size() < static_cast<size_t>(shingle_words)) {
    // Short documents: single shingle over the whole text.
    if (!words.empty()) {
      shingles.push_back(ml::HashFeature(Join(words, " ")));
    }
    return shingles;
  }
  shingles.reserve(words.size());
  for (size_t i = 0; i + shingle_words <= words.size(); ++i) {
    std::string shingle = words[i];
    for (int k = 1; k < shingle_words; ++k) {
      shingle.push_back(' ');
      shingle += words[i + k];
    }
    shingles.push_back(ml::HashFeature(shingle));
  }
  std::sort(shingles.begin(), shingles.end());
  shingles.erase(std::unique(shingles.begin(), shingles.end()),
                 shingles.end());
  return shingles;
}

double JaccardEstimate(const MinHashSignature& a, const MinHashSignature& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

NearDuplicateIndex::NearDuplicateIndex(NearDuplicateOptions options)
    : options_(options) {
  if (options_.num_hashes % options_.bands != 0) {
    options_.bands = 8;
  }
  Rng rng(options_.seed);
  hash_params_.reserve(options_.num_hashes);
  for (int h = 0; h < options_.num_hashes; ++h) {
    hash_params_.emplace_back(rng.Next() | 1, rng.Next());
  }
  bands_.resize(static_cast<size_t>(options_.bands));
}

MinHashSignature NearDuplicateIndex::Signature(std::string_view text) const {
  std::vector<uint64_t> shingles = ShingleSet(text, options_.shingle_words);
  MinHashSignature signature(hash_params_.size(),
                             std::numeric_limits<uint64_t>::max());
  for (uint64_t shingle : shingles) {
    for (size_t h = 0; h < hash_params_.size(); ++h) {
      uint64_t value = shingle * hash_params_[h].first + hash_params_[h].second;
      value ^= value >> 33;
      if (value < signature[h]) signature[h] = value;
    }
  }
  return signature;
}

uint64_t NearDuplicateIndex::BandKey(const MinHashSignature& signature,
                                     int band) const {
  size_t rows = signature.size() / static_cast<size_t>(options_.bands);
  uint64_t key = 1469598103934665603ULL ^ static_cast<uint64_t>(band);
  for (size_t r = 0; r < rows; ++r) {
    key ^= signature[static_cast<size_t>(band) * rows + r];
    key *= 1099511628211ULL;
  }
  return key;
}

void NearDuplicateIndex::Add(uint64_t doc_id,
                             const MinHashSignature& signature) {
  signatures_[doc_id] = signature;
  for (int band = 0; band < options_.bands; ++band) {
    bands_[static_cast<size_t>(band)][BandKey(signature, band)].push_back(
        doc_id);
  }
}

int64_t NearDuplicateIndex::FindDuplicateOf(
    const MinHashSignature& signature) const {
  for (int band = 0; band < options_.bands; ++band) {
    auto it = bands_[static_cast<size_t>(band)].find(BandKey(signature, band));
    if (it == bands_[static_cast<size_t>(band)].end()) continue;
    for (uint64_t candidate : it->second) {
      auto sit = signatures_.find(candidate);
      if (sit == signatures_.end()) continue;
      if (JaccardEstimate(signature, sit->second) >=
          options_.jaccard_threshold) {
        return static_cast<int64_t>(candidate);
      }
    }
  }
  return -1;
}

int64_t NearDuplicateIndex::AddIfNovel(uint64_t doc_id,
                                       std::string_view text) {
  MinHashSignature signature = Signature(text);
  int64_t duplicate = FindDuplicateOf(signature);
  if (duplicate >= 0) return duplicate;
  Add(doc_id, signature);
  return -1;
}

}  // namespace wsie::dc
