#ifndef WSIE_DC_NEAR_DUPLICATE_H_
#define WSIE_DC_NEAR_DUPLICATE_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wsie::dc {

/// MinHash signature of a document's word-shingle set.
using MinHashSignature = std::vector<uint64_t>;

/// Parameters of the near-duplicate detector.
struct NearDuplicateOptions {
  int shingle_words = 4;     ///< w-shingling window (words)
  int num_hashes = 64;       ///< signature length
  int bands = 16;            ///< LSH bands (num_hashes % bands == 0)
  double jaccard_threshold = 0.8;  ///< similarity to call a duplicate
  uint64_t seed = 0x5eedu;
};

/// Hashed word shingles of `text` (deduplicated set).
std::vector<uint64_t> ShingleSet(std::string_view text, int shingle_words);

/// Estimated Jaccard similarity from two signatures of equal length.
double JaccardEstimate(const MinHashSignature& a, const MinHashSignature& b);

/// Web-crawl near-duplicate detection (the data-cleansing "DC" package of
/// Sect. 3.1; web corpora are heavily redundant — mirrors, boilerplate
/// reprints, syndicated articles — which distorts frequency statistics).
///
/// Classic MinHash + banded LSH: Add() indexes a document's signature;
/// FindDuplicateOf() returns the first previously indexed document whose
/// estimated Jaccard similarity clears the threshold (after LSH candidate
/// filtering), or -1.
class NearDuplicateIndex {
 public:
  explicit NearDuplicateIndex(NearDuplicateOptions options = {});

  /// Computes the signature of `text`.
  MinHashSignature Signature(std::string_view text) const;

  /// Indexes `doc_id` with `signature`.
  void Add(uint64_t doc_id, const MinHashSignature& signature);

  /// Returns the id of an indexed near-duplicate of `signature`, or -1.
  int64_t FindDuplicateOf(const MinHashSignature& signature) const;

  /// Convenience: signature + lookup + add. Returns the duplicate's id or
  /// -1 if `text` is novel (in which case it is indexed).
  int64_t AddIfNovel(uint64_t doc_id, std::string_view text);

  size_t size() const { return signatures_.size(); }
  const NearDuplicateOptions& options() const { return options_; }

 private:
  uint64_t BandKey(const MinHashSignature& signature, int band) const;

  NearDuplicateOptions options_;
  std::vector<std::pair<uint64_t, uint64_t>> hash_params_;  // (a, b) pairs
  std::unordered_map<uint64_t, MinHashSignature> signatures_;  // by doc id
  /// band index -> band key -> doc ids
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> bands_;
};

}  // namespace wsie::dc

#endif  // WSIE_DC_NEAR_DUPLICATE_H_
