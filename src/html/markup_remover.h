#ifndef WSIE_HTML_MARKUP_REMOVER_H_
#define WSIE_HTML_MARKUP_REMOVER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsie::html {

/// A contiguous text block extracted from HTML, the unit of boilerplate
/// classification. Blocks are delimited by block-level elements.
struct TextBlock {
  std::string text;            ///< entity-decoded character data
  size_t num_words = 0;
  size_t num_anchor_words = 0; ///< words inside <a> elements
  std::string enclosing_tag;   ///< nearest enclosing block tag ("p", "div"...)
  bool in_title = false;

  double LinkDensity() const {
    return num_words == 0 ? 0.0
                          : static_cast<double>(num_anchor_words) /
                                static_cast<double>(num_words);
  }
};

/// Markup removal (the WA package's "markup removal" operator).
///
/// Strips all tags, decodes entities, drops script/style bodies, and
/// segments character data into block-level TextBlocks for the boilerplate
/// detector. PlainText() concatenates all blocks.
class MarkupRemover {
 public:
  /// Segments `html` into text blocks.
  std::vector<TextBlock> ExtractBlocks(std::string_view html) const;

  /// All character data joined with newlines (no boilerplate filtering).
  std::string PlainText(std::string_view html) const;

  /// Extracts href targets of <a> elements (link extraction operator).
  std::vector<std::string> ExtractLinks(std::string_view html) const;
};

}  // namespace wsie::html

#endif  // WSIE_HTML_MARKUP_REMOVER_H_
