#include "html/boilerplate.h"

namespace wsie::html {

std::vector<BlockDecision> BoilerplateDetector::Classify(
    std::string_view html) const {
  MarkupRemover remover;
  std::vector<TextBlock> blocks = remover.ExtractBlocks(html);
  std::vector<BlockDecision> decisions;
  decisions.reserve(blocks.size());

  // Pass 1: local decision from word count and link density (the two
  // dominant features in Kohlschütter et al.'s densitometric classifier).
  for (auto& block : blocks) {
    BlockDecision d;
    bool content = block.num_words >= options_.min_words &&
                   block.LinkDensity() <= options_.max_link_density;
    if (block.in_title) content = false;  // page titles are metadata
    if (options_.drop_table_and_list_blocks &&
        (block.enclosing_tag == "td" || block.enclosing_tag == "th" ||
         block.enclosing_tag == "li" || block.enclosing_tag == "tr")) {
      content = false;
    }
    d.block = std::move(block);
    d.is_content = content;
    decisions.push_back(std::move(d));
  }

  // Pass 2: neighbourhood smoothing — short non-linky blocks flanked by
  // content become content (sub-headings, continuation lines).
  for (size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].is_content) continue;
    const TextBlock& b = decisions[i].block;
    bool prev_content = i > 0 && decisions[i - 1].is_content;
    bool next_content =
        i + 1 < decisions.size() && decisions[i + 1].is_content;
    if (prev_content && next_content &&
        b.num_words >= options_.min_words_absorbed &&
        b.LinkDensity() <= options_.max_link_density && !b.in_title) {
      decisions[i].is_content = true;
    }
  }
  return decisions;
}

std::string BoilerplateDetector::NetText(std::string_view html) const {
  std::string out;
  for (const auto& d : Classify(html)) {
    if (!d.is_content) continue;
    if (!out.empty()) out.push_back('\n');
    out += d.block.text;
  }
  return out;
}

}  // namespace wsie::html
