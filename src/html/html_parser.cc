#include "html/html_parser.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace wsie::html {
namespace {

bool IsTagNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '-' || c == ':';
}

}  // namespace

bool IsVoidElement(std::string_view tag) {
  static constexpr const char* kVoid[] = {"br",  "hr",    "img",  "input",
                                          "meta", "link",  "area", "base",
                                          "col",  "embed", "source", "wbr"};
  for (const char* v : kVoid) {
    if (tag == v) return true;
  }
  return false;
}

bool IsBlockElement(std::string_view tag) {
  static constexpr const char* kBlock[] = {
      "p",   "div",  "td",    "th",    "li",      "h1",     "h2",
      "h3",  "h4",   "h5",    "h6",    "title",   "table",  "tr",
      "ul",  "ol",   "pre",   "blockquote", "section", "article", "aside",
      "header", "footer", "nav", "form", "dd", "dt"};
  for (const char* b : kBlock) {
    if (tag == b) return true;
  }
  return false;
}

std::string ExtractAttribute(std::string_view attrs, std::string_view name) {
  std::string lower = AsciiToLower(attrs);
  std::string needle = AsciiToLower(name);
  size_t pos = 0;
  while ((pos = lower.find(needle, pos)) != std::string::npos) {
    // Must be preceded by start/whitespace and followed by optional ws and '='.
    bool boundary_ok =
        (pos == 0 ||
         std::isspace(static_cast<unsigned char>(lower[pos - 1])));
    size_t after = pos + needle.size();
    size_t eq = after;
    while (eq < lower.size() &&
           std::isspace(static_cast<unsigned char>(lower[eq])))
      ++eq;
    if (!boundary_ok || eq >= lower.size() || lower[eq] != '=') {
      pos = after;
      continue;
    }
    ++eq;
    while (eq < attrs.size() &&
           std::isspace(static_cast<unsigned char>(attrs[eq])))
      ++eq;
    if (eq >= attrs.size()) return "";
    char quote = attrs[eq];
    if (quote == '"' || quote == '\'') {
      size_t close = attrs.find(quote, eq + 1);
      if (close == std::string_view::npos)
        return std::string(attrs.substr(eq + 1));  // unterminated quote
      return std::string(attrs.substr(eq + 1, close - eq - 1));
    }
    size_t end = eq;
    while (end < attrs.size() &&
           !std::isspace(static_cast<unsigned char>(attrs[end])) &&
           attrs[end] != '>')
      ++end;
    return std::string(attrs.substr(eq, end - eq));
  }
  return "";
}

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 10) {
      out.push_back(text[i++]);  // bare ampersand
      continue;
    }
    std::string_view entity = text.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (entity == "nbsp") {
      out.push_back(' ');
    } else if (!entity.empty() && entity[0] == '#') {
      long code = 0;
      bool valid = false;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(std::string(entity.substr(2)).c_str(), nullptr, 16);
        valid = true;
      } else if (entity.size() > 1) {
        code = std::strtol(std::string(entity.substr(1)).c_str(), nullptr, 10);
        valid = true;
      }
      if (valid && code >= 32 && code < 127) {
        out.push_back(static_cast<char>(code));
      } else {
        out.push_back(' ');
      }
    } else {
      // Unknown entity: keep verbatim.
      out.append(text.substr(i, semi - i + 1));
    }
    i = semi + 1;
  }
  return out;
}

std::vector<HtmlEvent> HtmlLexer::Lex(std::string_view html) const {
  std::vector<HtmlEvent> events;
  size_t i = 0;
  const size_t n = html.size();
  auto emit_text = [&](size_t begin, size_t end) {
    if (end > begin) {
      events.push_back(HtmlEvent{HtmlEvent::Kind::kText, "", "",
                                 std::string(html.substr(begin, end - begin)),
                                 begin});
    }
  };
  size_t text_start = 0;
  while (i < n) {
    if (html[i] != '<') {
      ++i;
      continue;
    }
    emit_text(text_start, i);
    size_t tag_start = i;
    // Comment?
    if (html.substr(i).substr(0, 4) == "<!--") {
      size_t close = html.find("-->", i + 4);
      size_t body_end = close == std::string_view::npos ? n : close;
      events.push_back(HtmlEvent{
          HtmlEvent::Kind::kComment, "", "",
          std::string(html.substr(i + 4, body_end - i - 4)), tag_start});
      i = close == std::string_view::npos ? n : close + 3;
      text_start = i;
      continue;
    }
    // Doctype / other declarations.
    if (i + 1 < n && html[i + 1] == '!') {
      size_t close = html.find('>', i);
      size_t end = close == std::string_view::npos ? n : close + 1;
      events.push_back(HtmlEvent{HtmlEvent::Kind::kDoctype, "", "",
                                 std::string(html.substr(i, end - i)),
                                 tag_start});
      i = end;
      text_start = i;
      continue;
    }
    bool closing = (i + 1 < n && html[i + 1] == '/');
    size_t name_begin = i + (closing ? 2 : 1);
    size_t p = name_begin;
    while (p < n && IsTagNameChar(html[p])) ++p;
    if (p == name_begin) {
      // "<" not followed by a tag name: malformed debris, treat '<' as text.
      events.push_back(HtmlEvent{HtmlEvent::Kind::kMalformed, "", "", "<",
                                 tag_start});
      ++i;
      text_start = i;
      continue;
    }
    std::string name = AsciiToLower(html.substr(name_begin, p - name_begin));
    size_t close = html.find('>', p);
    if (close == std::string_view::npos) {
      // Unterminated tag at end of document.
      events.push_back(HtmlEvent{HtmlEvent::Kind::kMalformed, name, "",
                                 std::string(html.substr(i)), tag_start});
      i = n;
      text_start = i;
      break;
    }
    std::string attrs(html.substr(p, close - p));
    bool self_close = !attrs.empty() && attrs.back() == '/';
    if (self_close) attrs.pop_back();
    if (closing) {
      events.push_back(
          HtmlEvent{HtmlEvent::Kind::kEndTag, name, "", "", tag_start});
    } else if (self_close || IsVoidElement(name)) {
      events.push_back(
          HtmlEvent{HtmlEvent::Kind::kSelfClose, name, attrs, "", tag_start});
    } else if (name == "script" || name == "style") {
      // Opaque raw-text elements: consume until the matching end tag.
      std::string end_tag = "</" + name;
      std::string lower(html.substr(close + 1));
      std::string lower_all = AsciiToLower(lower);
      size_t body_end = lower_all.find(end_tag);
      size_t abs_body_end =
          body_end == std::string::npos ? n : close + 1 + body_end;
      HtmlEvent ev{HtmlEvent::Kind::kStartTag, name, attrs,
                   std::string(html.substr(close + 1,
                                           abs_body_end - close - 1)),
                   tag_start};
      events.push_back(std::move(ev));
      // Synthesize the end tag even when the document never closes the
      // raw-text element (a page whose <script> never ends would otherwise
      // swallow everything after it on every re-parse).
      events.push_back(HtmlEvent{HtmlEvent::Kind::kEndTag, name, "", "",
                                 abs_body_end});
      if (body_end == std::string::npos) {
        i = n;
        text_start = i;
        continue;
      }
      size_t end_close = html.find('>', abs_body_end);
      i = end_close == std::string_view::npos ? n : end_close + 1;
      text_start = i;
      continue;
    } else {
      events.push_back(
          HtmlEvent{HtmlEvent::Kind::kStartTag, name, attrs, "", tag_start});
    }
    i = close + 1;
    text_start = i;
  }
  emit_text(text_start, n);
  return events;
}

}  // namespace wsie::html
