#ifndef WSIE_HTML_HTML_PARSER_H_
#define WSIE_HTML_HTML_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsie::html {

/// One lexical event in an HTML document.
struct HtmlEvent {
  enum class Kind {
    kStartTag,   ///< <p ...> ; `name` is lowercase, `attrs` raw attr string
    kEndTag,     ///< </p>
    kSelfClose,  ///< <br/>
    kText,       ///< character data between tags
    kComment,    ///< <!-- ... -->
    kDoctype,    ///< <!DOCTYPE ...>
    kMalformed,  ///< unparseable tag debris (kept for repair accounting)
  };
  Kind kind;
  std::string name;   ///< tag name (lowercase) for tag events
  std::string attrs;  ///< raw attribute text for start tags
  std::string text;   ///< character data / comment body / raw debris
  size_t offset = 0;  ///< byte offset of the event start in the input
};

/// Void elements that never take end tags (subset relevant here).
bool IsVoidElement(std::string_view tag);

/// Block-level elements used for boilerplate segmentation.
bool IsBlockElement(std::string_view tag);

/// Tolerant ("tag soup") HTML lexer.
///
/// Never fails: unparseable constructs are emitted as kMalformed events so
/// downstream repair can count and fix them. Script and style element bodies
/// are consumed as opaque text attached to the start tag's `text`.
class HtmlLexer {
 public:
  /// Lexes `html` into a flat event stream.
  std::vector<HtmlEvent> Lex(std::string_view html) const;
};

/// Extracts the value of attribute `name` (lowercased match) from a raw
/// attribute string; returns "" when absent. Handles quoted and bare values.
std::string ExtractAttribute(std::string_view attrs, std::string_view name);

/// Decodes the common HTML character entities (&amp; &lt; &gt; &quot; &apos;
/// &nbsp; plus decimal/hex numeric references in the ASCII range).
std::string DecodeEntities(std::string_view text);

}  // namespace wsie::html

#endif  // WSIE_HTML_HTML_PARSER_H_
