#include "html/html_repair.h"

#include <vector>

#include "html/html_parser.h"

namespace wsie::html {

Result<RepairedHtml> HtmlRepair::Repair(std::string_view html) const {
  HtmlLexer lexer;
  std::vector<HtmlEvent> events = lexer.Lex(html);
  if (events.size() < options_.min_events) {
    return Status::Aborted("document too small or empty after lexing");
  }
  size_t malformed = 0;
  for (const auto& ev : events) {
    if (ev.kind == HtmlEvent::Kind::kMalformed) ++malformed;
  }
  if (static_cast<double>(malformed) >
      options_.max_malformed_fraction * static_cast<double>(events.size())) {
    return Status::Aborted("markup damaged beyond repair threshold");
  }

  RepairedHtml out;
  out.stats.malformed_tags_dropped = static_cast<int>(malformed);
  std::vector<std::string> open_stack;
  std::string& result = out.html;
  result.reserve(html.size() + 64);

  auto close_top = [&]() {
    result += "</" + open_stack.back() + ">";
    open_stack.pop_back();
  };

  for (const auto& ev : events) {
    switch (ev.kind) {
      case HtmlEvent::Kind::kDoctype:
        result += ev.text;
        break;
      case HtmlEvent::Kind::kComment:
        result += "<!--" + ev.text + "-->";
        break;
      case HtmlEvent::Kind::kText:
        result += ev.text;
        break;
      case HtmlEvent::Kind::kMalformed:
        // Dropped; counted above.
        break;
      case HtmlEvent::Kind::kSelfClose:
        result += "<" + ev.name + ev.attrs + "/>";
        break;
      case HtmlEvent::Kind::kStartTag: {
        // Guard the serialization: attribute debris ending in '/' would
        // re-parse as a self-closing tag and unbalance the output.
        std::string attrs = ev.attrs;
        while (!attrs.empty() && attrs.back() == '/') attrs.pop_back();
        // Opening a block element implicitly closes an open <p>/<li> — the
        // most common unclosed-tag idiom in hand-written HTML. Exception:
        // a nested list (<ul>/<ol>) is legitimate content of an <li>.
        if (IsBlockElement(ev.name) && ev.name != "ul" && ev.name != "ol") {
          while (!open_stack.empty() &&
                 (open_stack.back() == "p" || open_stack.back() == "li")) {
            close_top();
            ++out.stats.unclosed_tags_closed;
          }
        }
        result += "<" + ev.name + attrs + ">";
        if (ev.name == "script" || ev.name == "style") {
          result += ev.text;  // opaque body travels with the start event
        } else {
          open_stack.push_back(ev.name);
        }
        break;
      }
      case HtmlEvent::Kind::kEndTag: {
        if (ev.name == "script" || ev.name == "style") {
          result += "</" + ev.name + ">";
          break;
        }
        // Find the matching open tag.
        int match = -1;
        for (int k = static_cast<int>(open_stack.size()) - 1; k >= 0; --k) {
          if (open_stack[static_cast<size_t>(k)] == ev.name) {
            match = k;
            break;
          }
        }
        if (match < 0) {
          ++out.stats.stray_end_tags_dropped;
          break;
        }
        // Close everything above the match (fixes misnesting), then it.
        while (static_cast<int>(open_stack.size()) - 1 > match) {
          close_top();
          ++out.stats.misnested_tags_fixed;
        }
        close_top();
        break;
      }
    }
  }
  while (!open_stack.empty()) {
    close_top();
    ++out.stats.unclosed_tags_closed;
  }
  return out;
}

}  // namespace wsie::html
