#ifndef WSIE_HTML_BOILERPLATE_H_
#define WSIE_HTML_BOILERPLATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "html/markup_remover.h"

namespace wsie::html {

/// Per-block decision of the boilerplate detector.
struct BlockDecision {
  TextBlock block;
  bool is_content = false;
};

/// Tuning knobs of the shallow-text-feature classifier.
struct BoilerplateOptions {
  /// Blocks with link density above this are boilerplate (navigation).
  double max_link_density = 0.33;
  /// Minimum words for a block to be content on its own.
  size_t min_words = 10;
  /// Short blocks between two content blocks are absorbed as content if they
  /// have at least this many words (headings inside articles).
  size_t min_words_absorbed = 3;
  /// Treat table/list blocks as boilerplate. Boilerpipe's defaults lose many
  /// tables and lists; the paper (Sect. 4.1) found exactly that — "tables and
  /// lists, which often contain valuable facts, are not recognized properly".
  /// Kept true to reproduce the recall loss; set false for the fixed variant.
  bool drop_table_and_list_blocks = true;
};

/// Boilerplate detector using shallow text features, after Kohlschütter et
/// al. [15] (Boilerpipe): classifies each text block as main content or
/// boilerplate from its word count, link density, and the word counts of its
/// neighbouring blocks.
class BoilerplateDetector {
 public:
  explicit BoilerplateDetector(BoilerplateOptions options = {})
      : options_(options) {}

  /// Classifies all blocks of `html`.
  std::vector<BlockDecision> Classify(std::string_view html) const;

  /// The extracted main content ("net text"): content blocks joined by
  /// newlines.
  std::string NetText(std::string_view html) const;

 private:
  BoilerplateOptions options_;
};

}  // namespace wsie::html

#endif  // WSIE_HTML_BOILERPLATE_H_
