#include "html/markup_remover.h"

#include "common/string_util.h"
#include "html/html_parser.h"

namespace wsie::html {

std::vector<TextBlock> MarkupRemover::ExtractBlocks(
    std::string_view html) const {
  HtmlLexer lexer;
  std::vector<HtmlEvent> events = lexer.Lex(html);
  std::vector<TextBlock> blocks;
  TextBlock current;
  int anchor_depth = 0;
  int title_depth = 0;
  std::vector<std::string> block_stack;

  auto flush = [&]() {
    std::string_view stripped = StripAsciiWhitespace(current.text);
    if (!stripped.empty()) {
      TextBlock out = current;
      out.text = std::string(stripped);
      blocks.push_back(std::move(out));
    }
    current = TextBlock{};
    current.enclosing_tag = block_stack.empty() ? "" : block_stack.back();
    current.in_title = title_depth > 0;
  };

  for (const auto& ev : events) {
    switch (ev.kind) {
      case HtmlEvent::Kind::kText: {
        std::string decoded = DecodeEntities(ev.text);
        size_t words = SplitWhitespace(decoded).size();
        current.num_words += words;
        if (anchor_depth > 0) current.num_anchor_words += words;
        // Join inline runs with a single space (no double separators when
        // the surrounding character data already carries whitespace).
        bool needs_separator =
            !current.text.empty() && current.text.back() != ' ' &&
            !decoded.empty() && decoded.front() != ' ';
        if (needs_separator) current.text.push_back(' ');
        current.text += decoded;
        break;
      }
      case HtmlEvent::Kind::kStartTag:
        if (ev.name == "a") ++anchor_depth;
        if (ev.name == "title") ++title_depth;
        if (IsBlockElement(ev.name)) {
          flush();
          block_stack.push_back(ev.name);
          current.enclosing_tag = ev.name;
          current.in_title = title_depth > 0;
        }
        break;
      case HtmlEvent::Kind::kEndTag:
        if (ev.name == "a" && anchor_depth > 0) --anchor_depth;
        if (ev.name == "title" && title_depth > 0) --title_depth;
        if (IsBlockElement(ev.name)) {
          flush();
          if (!block_stack.empty()) block_stack.pop_back();
          current.enclosing_tag =
              block_stack.empty() ? "" : block_stack.back();
        }
        break;
      case HtmlEvent::Kind::kSelfClose:
        if (ev.name == "br" || ev.name == "hr") flush();
        break;
      case HtmlEvent::Kind::kComment:
      case HtmlEvent::Kind::kDoctype:
      case HtmlEvent::Kind::kMalformed:
        break;
    }
  }
  flush();
  return blocks;
}

std::string MarkupRemover::PlainText(std::string_view html) const {
  std::vector<TextBlock> blocks = ExtractBlocks(html);
  std::string out;
  for (const auto& block : blocks) {
    if (!out.empty()) out.push_back('\n');
    out += block.text;
  }
  return out;
}

std::vector<std::string> MarkupRemover::ExtractLinks(
    std::string_view html) const {
  HtmlLexer lexer;
  std::vector<std::string> links;
  for (const auto& ev : lexer.Lex(html)) {
    if ((ev.kind == HtmlEvent::Kind::kStartTag ||
         ev.kind == HtmlEvent::Kind::kSelfClose) &&
        ev.name == "a") {
      std::string href = ExtractAttribute(ev.attrs, "href");
      if (!href.empty()) links.push_back(std::move(href));
    }
  }
  return links;
}

}  // namespace wsie::html
