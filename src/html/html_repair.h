#ifndef WSIE_HTML_HTML_REPAIR_H_
#define WSIE_HTML_HTML_REPAIR_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace wsie::html {

/// Accounting for the repairs applied to one document.
struct RepairStats {
  int unclosed_tags_closed = 0;     ///< missing </p> etc. inserted
  int stray_end_tags_dropped = 0;   ///< </b> with no open <b>
  int malformed_tags_dropped = 0;   ///< unterminated / garbage tags removed
  int misnested_tags_fixed = 0;     ///< <b><i></b></i> style overlap
  bool any() const {
    return unclosed_tags_closed || stray_end_tags_dropped ||
           malformed_tags_dropped || misnested_tags_fixed;
  }
};

/// Result of repairing one document.
struct RepairedHtml {
  std::string html;
  RepairStats stats;
};

/// Options controlling when a document is declared beyond repair.
struct HtmlRepairOptions {
  /// If the fraction of malformed tag events exceeds this, the document is
  /// rejected as non-transcodable. Per [19] (cited in Sect. 5), about 13% of
  /// real pages have issues too severe to transcode; this threshold is what
  /// produces that behaviour on mangled synthetic pages.
  double max_malformed_fraction = 0.2;
  /// Documents with fewer total events than this are rejected outright.
  size_t min_events = 2;
};

/// HTML repair operator (the WA package's "markup repair" of Sect. 3.1).
///
/// Re-serializes the tag-soup event stream with balanced tags: unclosed
/// elements are closed (at block boundaries and end of document), stray end
/// tags are dropped, unterminated tags are removed. Returns an error Status
/// for documents whose markup is damaged beyond the configured threshold.
class HtmlRepair {
 public:
  explicit HtmlRepair(HtmlRepairOptions options = {}) : options_(options) {}

  Result<RepairedHtml> Repair(std::string_view html) const;

 private:
  HtmlRepairOptions options_;
};

}  // namespace wsie::html

#endif  // WSIE_HTML_HTML_REPAIR_H_
