#include "lang/language_id.h"

#include <cctype>
#include <limits>

namespace wsie::lang {
namespace {

// Compiled-in training samples. Function words dominate character-n-gram
// profiles, so short representative paragraphs are sufficient for the
// coarse English / non-English gate the crawler needs.
constexpr const char* kEnglishSample =
    "the quick brown fox jumps over the lazy dog and the patient was treated "
    "with the drug for the disease and the results of the study show that "
    "there is a significant difference between the groups because of the "
    "treatment which was given to the patients in the hospital where they "
    "were observed for several weeks and the doctors reported that most of "
    "them had improved with this therapy and that further research would be "
    "needed to confirm these findings in other populations of people with "
    "the same condition and similar symptoms of their illness";

constexpr const char* kGermanSample =
    "der schnelle braune fuchs springt ueber den faulen hund und der patient "
    "wurde mit dem medikament gegen die krankheit behandelt und die "
    "ergebnisse der studie zeigen dass es einen signifikanten unterschied "
    "zwischen den gruppen gibt wegen der behandlung die den patienten im "
    "krankenhaus gegeben wurde wo sie mehrere wochen beobachtet wurden und "
    "die aerzte berichteten dass sich die meisten von ihnen mit dieser "
    "therapie verbessert haben und dass weitere forschung notwendig waere";

constexpr const char* kFrenchSample =
    "le renard brun rapide saute par dessus le chien paresseux et le patient "
    "a ete traite avec le medicament contre la maladie et les resultats de "
    "cette etude montrent qu il y a une difference significative entre les "
    "groupes en raison du traitement qui a ete donne aux patients dans l "
    "hopital ou ils ont ete observes pendant plusieurs semaines et les "
    "medecins ont rapporte que la plupart d entre eux se sont ameliores avec "
    "cette therapie et que d autres recherches seraient necessaires";

constexpr const char* kSpanishSample =
    "el rapido zorro marron salta sobre el perro perezoso y el paciente fue "
    "tratado con el medicamento para la enfermedad y los resultados del "
    "estudio muestran que hay una diferencia significativa entre los grupos "
    "debido al tratamiento que se dio a los pacientes en el hospital donde "
    "fueron observados durante varias semanas y los medicos informaron que "
    "la mayoria de ellos mejoraron con esta terapia y que se necesitaria mas "
    "investigacion para confirmar estos hallazgos en otras poblaciones";

size_t CountLetters(std::string_view text) {
  size_t letters = 0;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) ++letters;
  }
  return letters;
}

}  // namespace

LanguageIdentifier::LanguageIdentifier() {
  TrainProfile("en", kEnglishSample);
  TrainProfile("de", kGermanSample);
  TrainProfile("fr", kFrenchSample);
  TrainProfile("es", kSpanishSample);
}

void LanguageIdentifier::TrainProfile(const std::string& language,
                                      std::string_view sample) {
  text::CharNgramProfile profile(3);
  profile.Add(sample);
  for (auto& p : profiles_) {
    if (p.language == language) {
      p.top_grams = profile.TopK(kProfileSize);
      return;
    }
  }
  profiles_.push_back(Profile{language, profile.TopK(kProfileSize)});
}

LanguageGuess LanguageIdentifier::Identify(std::string_view text) const {
  if (CountLetters(text) < kMinLetters || profiles_.empty()) {
    return LanguageGuess{"xx", std::numeric_limits<double>::max()};
  }
  text::CharNgramProfile doc_profile(3);
  doc_profile.Add(text);
  std::vector<std::string> doc_top = doc_profile.TopK(kProfileSize);
  LanguageGuess best{"xx", std::numeric_limits<double>::max()};
  for (const auto& p : profiles_) {
    double d = text::CharNgramProfile::RankDistance(doc_top, p.top_grams);
    if (d < best.distance) {
      best.language = p.language;
      best.distance = d;
    }
  }
  return best;
}

bool LanguageIdentifier::IsEnglish(std::string_view text) const {
  return Identify(text).language == "en";
}

std::vector<std::string> LanguageIdentifier::Languages() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& p : profiles_) out.push_back(p.language);
  return out;
}

}  // namespace wsie::lang
