#include "lang/mime.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace wsie::lang {
namespace {

bool HeadContainsIgnoreCase(std::string_view head, std::string_view needle) {
  if (needle.empty() || head.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= head.size(); ++i) {
    if (EqualsIgnoreCase(head.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

bool LooksBinary(std::string_view head) {
  if (head.empty()) return false;
  size_t control = 0;
  size_t sample = std::min<size_t>(head.size(), 256);
  for (size_t i = 0; i < sample; ++i) {
    unsigned char c = static_cast<unsigned char>(head[i]);
    if (c == 0) return true;
    if (c < 0x09) ++control;
  }
  return control * 10 > sample;  // >10% low control bytes.
}

}  // namespace

const char* MimeClassName(MimeClass mime) {
  switch (mime) {
    case MimeClass::kHtml:
      return "text/html";
    case MimeClass::kPlainText:
      return "text/plain";
    case MimeClass::kXml:
      return "text/xml";
    case MimeClass::kPdf:
      return "application/pdf";
    case MimeClass::kImage:
      return "image/*";
    case MimeClass::kArchive:
      return "application/zip";
    case MimeClass::kBinaryOther:
      return "application/octet-stream";
    case MimeClass::kUnknown:
      return "unknown";
  }
  return "unknown";
}

bool MimeDetector::IsTextual(MimeClass mime) {
  return mime == MimeClass::kHtml || mime == MimeClass::kPlainText ||
         mime == MimeClass::kXml;
}

MimeDetection MimeDetector::Detect(std::string_view url,
                                   std::string_view head) const {
  // --- Magic bytes (a handful of common signatures, as Tika's default list).
  if (head.size() >= 5 && head.substr(0, 5) == "%PDF-")
    return {MimeClass::kPdf, true};
  if (head.size() >= 4 && head.substr(0, 4) == "\x89PNG")
    return {MimeClass::kImage, true};
  if (head.size() >= 3 && head.substr(0, 3) == "\xff\xd8\xff")
    return {MimeClass::kImage, true};
  if (head.size() >= 4 && head.substr(0, 4) == "GIF8")
    return {MimeClass::kImage, true};
  if (head.size() >= 2 && head.substr(0, 2) == "PK")
    return {MimeClass::kArchive, true};
  if (HeadContainsIgnoreCase(head.substr(0, std::min<size_t>(head.size(), 256)),
                             "<html") ||
      HeadContainsIgnoreCase(head.substr(0, std::min<size_t>(head.size(), 256)),
                             "<!doctype html"))
    return {MimeClass::kHtml, true};
  if (head.size() >= 5 && head.substr(0, 5) == "<?xml")
    return {MimeClass::kXml, true};

  // --- Extension fallback.
  std::string path(url);
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  size_t dot = path.rfind('.');
  size_t slash = path.rfind('/');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    std::string ext = AsciiToLower(std::string_view(path).substr(dot + 1));
    if (ext == "html" || ext == "htm" || ext == "php" || ext == "asp")
      return {MimeClass::kHtml, false};
    if (ext == "txt" || ext == "text") return {MimeClass::kPlainText, false};
    if (ext == "xml" || ext == "rss") return {MimeClass::kXml, false};
    if (ext == "pdf") return {MimeClass::kPdf, false};
    if (ext == "png" || ext == "jpg" || ext == "jpeg" || ext == "gif")
      return {MimeClass::kImage, false};
    if (ext == "zip" || ext == "gz" || ext == "tar")
      return {MimeClass::kArchive, false};
    if (ext == "exe" || ext == "bin" || ext == "iso")
      return {MimeClass::kBinaryOther, false};
    // Unknown extensions fall through to the content heuristic.
  }

  if (LooksBinary(head)) return {MimeClass::kBinaryOther, false};
  if (!head.empty()) return {MimeClass::kPlainText, false};
  return {MimeClass::kUnknown, false};
}

}  // namespace wsie::lang
