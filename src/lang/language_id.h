#ifndef WSIE_LANG_LANGUAGE_ID_H_
#define WSIE_LANG_LANGUAGE_ID_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/ngram.h"

namespace wsie::lang {

/// A scored language guess.
struct LanguageGuess {
  std::string language;  ///< ISO-ish code: "en", "de", "fr", "es", "xx".
  double distance = 0.0; ///< Rank distance; lower = better match.
};

/// Character-n-gram language identifier (Cavnar & Trenkle style), used as
/// the crawler's language filter (Sect. 2.1): pages not identified as
/// English are dropped because the downstream IE tools are
/// language-sensitive.
class LanguageIdentifier {
 public:
  /// Builds with compiled-in trigram profiles for en/de/fr/es.
  LanguageIdentifier();

  /// Trains (or replaces) the profile for `language` from sample text.
  void TrainProfile(const std::string& language, std::string_view sample);

  /// Identifies the best-matching language of `text`. Returns "xx" with a
  /// large distance if `text` has too few letters to classify.
  LanguageGuess Identify(std::string_view text) const;

  /// Convenience: true if Identify(text).language == "en".
  bool IsEnglish(std::string_view text) const;

  /// Languages with a trained profile.
  std::vector<std::string> Languages() const;

 private:
  struct Profile {
    std::string language;
    std::vector<std::string> top_grams;
  };

  static constexpr size_t kProfileSize = 300;
  static constexpr size_t kMinLetters = 20;

  std::vector<Profile> profiles_;
};

}  // namespace wsie::lang

#endif  // WSIE_LANG_LANGUAGE_ID_H_
