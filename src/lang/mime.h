#ifndef WSIE_LANG_MIME_H_
#define WSIE_LANG_MIME_H_

#include <string>
#include <string_view>

namespace wsie::lang {

/// Coarse MIME classes the crawler distinguishes.
enum class MimeClass {
  kHtml,
  kPlainText,
  kXml,
  kPdf,
  kImage,
  kArchive,
  kBinaryOther,
  kUnknown,
};

const char* MimeClassName(MimeClass mime);

/// Detection result: the class plus whether it was decided from magic bytes
/// or only from the URL extension (the weaker signal).
struct MimeDetection {
  MimeClass mime = MimeClass::kUnknown;
  bool from_magic = false;
};

/// Tika-like MIME detector: first-n-bytes magic sniffing plus file-name
/// extension matching, deliberately shipping "only a handful of common
/// MIME-types" (Sect. 5 pitfall: embedded slides/PDFs pass as text when
/// neither signal fires).
class MimeDetector {
 public:
  /// `url` is used for extension matching; `head` should be the first bytes
  /// of the document (any prefix works; 256 bytes is plenty).
  MimeDetection Detect(std::string_view url, std::string_view head) const;

  /// True if the detected class is textual (HTML, plain text, or XML).
  static bool IsTextual(MimeClass mime);
};

}  // namespace wsie::lang

#endif  // WSIE_LANG_MIME_H_
