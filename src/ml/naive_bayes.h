#ifndef WSIE_ML_NAIVE_BAYES_H_
#define WSIE_ML_NAIVE_BAYES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/bag_of_words.h"

namespace wsie::ml {

/// Multinomial Naive Bayes text classifier with Laplace smoothing.
///
/// This is the relevance classifier of the focused crawler (Sect. 2.1). The
/// paper chose Naive Bayes for (a) robustness to class imbalance — there is
/// no rational prior on the fraction of biomedical pages during a crawl —
/// and (b) incremental model updates, which Update() supports.
class NaiveBayesClassifier {
 public:
  /// Creates a classifier over the given class labels (e.g. {"relevant",
  /// "irrelevant"}). `alpha` is the Laplace smoothing pseudo-count.
  explicit NaiveBayesClassifier(std::vector<std::string> labels,
                                double alpha = 1.0);

  /// Adds one training document to class `label_index`. Incremental: can be
  /// called at any time, including after Predict() calls.
  void Update(size_t label_index, const text::TermCounts& features);

  /// Returns per-class posterior probabilities (normalized, sums to 1).
  std::vector<double> PredictProbabilities(
      const text::TermCounts& features) const;

  /// Returns the arg-max class index.
  size_t Predict(const text::TermCounts& features) const;

  /// Returns the posterior of class `label_index`.
  double PosteriorOf(size_t label_index, const text::TermCounts& features) const;

  const std::vector<std::string>& labels() const { return labels_; }
  size_t vocabulary_size() const { return vocabulary_.size(); }
  uint64_t documents_seen() const { return total_docs_; }

  /// Serialized model size estimate in bytes (for the memory accounting of
  /// Sect. 4.2).
  size_t ApproxMemoryBytes() const;

 private:
  struct ClassStats {
    uint64_t doc_count = 0;
    uint64_t token_count = 0;
    std::unordered_map<std::string, uint64_t> term_counts;
  };

  std::vector<std::string> labels_;
  double alpha_;
  std::vector<ClassStats> class_stats_;
  std::unordered_map<std::string, uint32_t> vocabulary_;
  uint64_t total_docs_ = 0;
};

}  // namespace wsie::ml

#endif  // WSIE_ML_NAIVE_BAYES_H_
