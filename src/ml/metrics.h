#ifndef WSIE_ML_METRICS_H_
#define WSIE_ML_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsie::ml {

/// Binary classification counts and the derived quality measures the paper
/// reports for the crawl classifier and the boilerplate detector (Sect. 4.1).
struct BinaryConfusion {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  void Add(bool predicted_positive, bool actually_positive) {
    if (predicted_positive && actually_positive) ++true_positives;
    if (predicted_positive && !actually_positive) ++false_positives;
    if (!predicted_positive && !actually_positive) ++true_negatives;
    if (!predicted_positive && actually_positive) ++false_negatives;
  }

  uint64_t total() const {
    return true_positives + false_positives + true_negatives + false_negatives;
  }

  double Precision() const {
    uint64_t denom = true_positives + false_positives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double Recall() const {
    uint64_t denom = true_positives + false_negatives;
    return denom == 0 ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(denom);
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double Accuracy() const {
    uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(true_positives + true_negatives) /
                        static_cast<double>(t);
  }
};

/// Splits `num_items` indices into `k` folds (as equal as possible) and
/// returns, for each fold, the item indices held out for testing. Items are
/// assigned round-robin for determinism.
std::vector<std::vector<size_t>> KFoldSplits(size_t num_items, size_t k);

/// Mean of per-fold precision/recall (the "10-fold cross validation"
/// protocol of Sect. 4.1).
struct CrossValidationResult {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  std::vector<BinaryConfusion> fold_confusions;
};

CrossValidationResult SummarizeFolds(std::vector<BinaryConfusion> folds);

}  // namespace wsie::ml

#endif  // WSIE_ML_METRICS_H_
