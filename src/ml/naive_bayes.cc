#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace wsie::ml {

NaiveBayesClassifier::NaiveBayesClassifier(std::vector<std::string> labels,
                                           double alpha)
    : labels_(std::move(labels)), alpha_(alpha), class_stats_(labels_.size()) {}

void NaiveBayesClassifier::Update(size_t label_index,
                                  const text::TermCounts& features) {
  ClassStats& stats = class_stats_[label_index];
  ++stats.doc_count;
  ++total_docs_;
  for (const auto& [term, count] : features) {
    stats.term_counts[term] += count;
    stats.token_count += count;
    ++vocabulary_[term];
  }
}

std::vector<double> NaiveBayesClassifier::PredictProbabilities(
    const text::TermCounts& features) const {
  const size_t num_classes = labels_.size();
  std::vector<double> log_probs(num_classes, 0.0);
  const double vocab = static_cast<double>(
      std::max<size_t>(vocabulary_.size(), 1));
  for (size_t c = 0; c < num_classes; ++c) {
    const ClassStats& stats = class_stats_[c];
    // Log prior with smoothing so an empty class does not produce -inf.
    double prior = (static_cast<double>(stats.doc_count) + alpha_) /
                   (static_cast<double>(total_docs_) +
                    alpha_ * static_cast<double>(num_classes));
    double lp = std::log(prior);
    double denom = static_cast<double>(stats.token_count) + alpha_ * vocab;
    for (const auto& [term, count] : features) {
      auto it = stats.term_counts.find(term);
      double term_count = it == stats.term_counts.end()
                              ? 0.0
                              : static_cast<double>(it->second);
      lp += static_cast<double>(count) *
            std::log((term_count + alpha_) / denom);
    }
    log_probs[c] = lp;
  }
  // Normalize via log-sum-exp.
  double max_lp = *std::max_element(log_probs.begin(), log_probs.end());
  double sum = 0.0;
  for (double& lp : log_probs) {
    lp = std::exp(lp - max_lp);
    sum += lp;
  }
  for (double& lp : log_probs) lp /= sum;
  return log_probs;
}

size_t NaiveBayesClassifier::Predict(const text::TermCounts& features) const {
  std::vector<double> probs = PredictProbabilities(features);
  return static_cast<size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

double NaiveBayesClassifier::PosteriorOf(
    size_t label_index, const text::TermCounts& features) const {
  return PredictProbabilities(features)[label_index];
}

size_t NaiveBayesClassifier::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& stats : class_stats_) {
    for (const auto& [term, count] : stats.term_counts) {
      bytes += term.size() + sizeof(count) + 32;  // node + bucket overhead
    }
  }
  for (const auto& [term, count] : vocabulary_) {
    bytes += term.size() + sizeof(count) + 32;
  }
  return bytes;
}

}  // namespace wsie::ml
