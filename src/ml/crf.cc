#include "ml/crf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace wsie::ml {
namespace {

double LogSumExp(const std::vector<double>& xs) {
  double max_x = -std::numeric_limits<double>::infinity();
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

}  // namespace

uint64_t HashFeature(std::string_view feature) {
  return HashFeatureSeed(kFnvOffsetBasis, feature);
}

LinearChainCrf::LinearChainCrf(int num_labels, size_t feature_dim)
    : num_labels_(num_labels),
      feature_dim_(feature_dim),
      state_weights_(feature_dim * num_labels, 0.0),
      transition_weights_(static_cast<size_t>(num_labels) * num_labels, 0.0) {}

void LinearChainCrf::StateScores(const PositionFeatures& feats,
                                 std::vector<double>& out) const {
  out.assign(num_labels_, 0.0);
  for (uint64_t f : feats) {
    size_t base = (f % feature_dim_) * num_labels_;
    for (int l = 0; l < num_labels_; ++l) out[l] += state_weights_[base + l];
  }
}

void LinearChainCrf::StateScoresInto(const uint64_t* feats, size_t count,
                                     double* out) const {
  // Identical summation order to StateScores, so scores (and therefore
  // decoded labels) match the vector path bit for bit.
  std::fill(out, out + num_labels_, 0.0);
  for (size_t i = 0; i < count; ++i) {
    size_t base = (feats[i] % feature_dim_) * num_labels_;
    for (int l = 0; l < num_labels_; ++l) out[l] += state_weights_[base + l];
  }
}

double LinearChainCrf::ForwardBackward(
    const std::vector<PositionFeatures>& features,
    std::vector<std::vector<double>>& alpha,
    std::vector<std::vector<double>>& beta) const {
  const size_t n = features.size();
  const int L = num_labels_;
  alpha.assign(n, std::vector<double>(L, 0.0));
  beta.assign(n, std::vector<double>(L, 0.0));
  std::vector<double> scores;
  std::vector<double> tmp(L);

  // Forward.
  StateScores(features[0], scores);
  for (int l = 0; l < L; ++l) alpha[0][l] = scores[l];
  for (size_t i = 1; i < n; ++i) {
    StateScores(features[i], scores);
    for (int cur = 0; cur < L; ++cur) {
      for (int prev = 0; prev < L; ++prev) {
        tmp[prev] = alpha[i - 1][prev] +
                    transition_weights_[static_cast<size_t>(prev) * L + cur];
      }
      alpha[i][cur] = LogSumExp(tmp) + scores[cur];
    }
  }
  // Backward.
  for (int l = 0; l < L; ++l) beta[n - 1][l] = 0.0;
  for (size_t i = n - 1; i > 0; --i) {
    StateScores(features[i], scores);
    for (int prev = 0; prev < L; ++prev) {
      for (int cur = 0; cur < L; ++cur) {
        tmp[cur] = transition_weights_[static_cast<size_t>(prev) * L + cur] +
                   scores[cur] + beta[i][cur];
      }
      beta[i - 1][prev] = LogSumExp(tmp);
    }
  }
  return LogSumExp(alpha[n - 1]);
}

void LinearChainCrf::AccumulateGradient(const CrfInstance& instance,
                                        double scale,
                                        std::vector<double>& state_grad,
                                        std::vector<double>& trans_grad) const {
  const auto& features = instance.features;
  const size_t n = features.size();
  const int L = num_labels_;
  if (n == 0) return;

  std::vector<std::vector<double>> alpha, beta;
  double log_z = ForwardBackward(features, alpha, beta);

  std::vector<double> scores;
  // Empirical minus expected counts.
  for (size_t i = 0; i < n; ++i) {
    // Empirical state features.
    int gold = instance.labels[i];
    for (uint64_t f : features[i]) {
      state_grad[StateIndex(f, gold)] += scale;
    }
    // Expected state features: marginal P(y_i = l).
    for (int l = 0; l < L; ++l) {
      double marginal = std::exp(alpha[i][l] + beta[i][l] - log_z);
      for (uint64_t f : features[i]) {
        state_grad[StateIndex(f, l)] -= scale * marginal;
      }
    }
  }
  for (size_t i = 1; i < n; ++i) {
    int gold_prev = instance.labels[i - 1];
    int gold_cur = instance.labels[i];
    trans_grad[static_cast<size_t>(gold_prev) * L + gold_cur] += scale;
    StateScores(features[i], scores);
    for (int prev = 0; prev < L; ++prev) {
      for (int cur = 0; cur < L; ++cur) {
        double marginal =
            std::exp(alpha[i - 1][prev] +
                     transition_weights_[static_cast<size_t>(prev) * L + cur] +
                     scores[cur] + beta[i][cur] - log_z);
        trans_grad[static_cast<size_t>(prev) * L + cur] -= scale * marginal;
      }
    }
  }
}

void LinearChainCrf::Train(const std::vector<CrfInstance>& data,
                           const CrfTrainOptions& options) {
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(options.shuffle_seed);

  std::vector<double> state_grad(state_weights_.size(), 0.0);
  std::vector<double> trans_grad(transition_weights_.size(), 0.0);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    double lr = options.learning_rate / (1.0 + 0.5 * epoch);
    for (size_t idx : order) {
      const CrfInstance& instance = data[idx];
      if (instance.features.empty()) continue;
      // Sparse gradient: only touched state indices are nonzero, but we use
      // dense accumulation per instance for transitions (small) and a
      // touched-list for states.
      std::fill(trans_grad.begin(), trans_grad.end(), 0.0);
      // Record touched state indices to zero them afterwards.
      std::vector<size_t> touched;
      touched.reserve(instance.features.size() * num_labels_ * 4);
      for (const auto& feats : instance.features) {
        for (uint64_t f : feats) {
          size_t base = (f % feature_dim_) * num_labels_;
          for (int l = 0; l < num_labels_; ++l) touched.push_back(base + l);
        }
      }
      AccumulateGradient(instance, 1.0, state_grad, trans_grad);
      for (size_t sidx : touched) {
        if (state_grad[sidx] != 0.0) {
          state_weights_[sidx] +=
              lr * (state_grad[sidx] - options.l2 * state_weights_[sidx]);
          state_grad[sidx] = 0.0;
        }
      }
      for (size_t t = 0; t < trans_grad.size(); ++t) {
        transition_weights_[t] +=
            lr * (trans_grad[t] - options.l2 * transition_weights_[t]);
      }
    }
  }
}

std::vector<int> LinearChainCrf::Decode(
    const std::vector<PositionFeatures>& features) const {
  const size_t n = features.size();
  if (n == 0) return {};
  const int L = num_labels_;
  std::vector<std::vector<double>> delta(n, std::vector<double>(L, 0.0));
  std::vector<std::vector<int>> backpointer(n, std::vector<int>(L, 0));
  std::vector<double> scores;

  StateScores(features[0], scores);
  for (int l = 0; l < L; ++l) delta[0][l] = scores[l];
  for (size_t i = 1; i < n; ++i) {
    StateScores(features[i], scores);
    for (int cur = 0; cur < L; ++cur) {
      double best = -std::numeric_limits<double>::infinity();
      int best_prev = 0;
      for (int prev = 0; prev < L; ++prev) {
        double s = delta[i - 1][prev] +
                   transition_weights_[static_cast<size_t>(prev) * L + cur];
        if (s > best) {
          best = s;
          best_prev = prev;
        }
      }
      delta[i][cur] = best + scores[cur];
      backpointer[i][cur] = best_prev;
    }
  }
  std::vector<int> labels(n);
  int best_last = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (int l = 0; l < L; ++l) {
    if (delta[n - 1][l] > best_score) {
      best_score = delta[n - 1][l];
      best_last = l;
    }
  }
  labels[n - 1] = best_last;
  for (size_t i = n - 1; i > 0; --i) {
    labels[i - 1] = backpointer[i][labels[i]];
  }
  return labels;
}

void LinearChainCrf::Decode(const HashedFeatureMatrix& features,
                            DecodeScratch* scratch,
                            std::vector<int>* labels) const {
  const size_t n = features.num_positions();
  labels->clear();
  if (n == 0) return;
  const int L = num_labels_;
  // Flat [n][L] tables out of the reusable scratch — steady-state decoding
  // allocates nothing.
  scratch->delta.resize(n * static_cast<size_t>(L));
  scratch->backpointer.resize(n * static_cast<size_t>(L));
  scratch->scores.resize(L);
  double* delta = scratch->delta.data();
  int* backpointer = scratch->backpointer.data();
  double* scores = scratch->scores.data();

  StateScoresInto(features.position_data(0), features.position_size(0),
                  scores);
  for (int l = 0; l < L; ++l) delta[l] = scores[l];
  for (size_t i = 1; i < n; ++i) {
    StateScoresInto(features.position_data(i), features.position_size(i),
                    scores);
    const double* delta_prev = delta + (i - 1) * L;
    double* delta_cur = delta + i * L;
    int* bp = backpointer + i * L;
    for (int cur = 0; cur < L; ++cur) {
      double best = -std::numeric_limits<double>::infinity();
      int best_prev = 0;
      for (int prev = 0; prev < L; ++prev) {
        double s = delta_prev[prev] +
                   transition_weights_[static_cast<size_t>(prev) * L + cur];
        if (s > best) {
          best = s;
          best_prev = prev;
        }
      }
      delta_cur[cur] = best + scores[cur];
      bp[cur] = best_prev;
    }
  }
  labels->resize(n);
  int best_last = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  const double* delta_last = delta + (n - 1) * L;
  for (int l = 0; l < L; ++l) {
    if (delta_last[l] > best_score) {
      best_score = delta_last[l];
      best_last = l;
    }
  }
  (*labels)[n - 1] = best_last;
  for (size_t i = n - 1; i > 0; --i) {
    (*labels)[i - 1] = backpointer[i * L + (*labels)[i]];
  }
}

double LinearChainCrf::LogLikelihood(const CrfInstance& instance) const {
  const auto& features = instance.features;
  const size_t n = features.size();
  if (n == 0) return 0.0;
  std::vector<std::vector<double>> alpha, beta;
  double log_z = ForwardBackward(features, alpha, beta);
  double gold = 0.0;
  std::vector<double> scores;
  for (size_t i = 0; i < n; ++i) {
    StateScores(features[i], scores);
    gold += scores[instance.labels[i]];
    if (i > 0) {
      gold += transition_weights_[static_cast<size_t>(instance.labels[i - 1]) *
                                      num_labels_ +
                                  instance.labels[i]];
    }
  }
  return gold - log_z;
}

}  // namespace wsie::ml
