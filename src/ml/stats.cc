#include "ml/stats.h"

#include <algorithm>
#include <cmath>

namespace wsie::ml {
namespace {

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double idx = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Standard normal survival function via the complementary error function.
double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

Descriptive Describe(std::vector<double> values) {
  Descriptive d;
  d.n = values.size();
  if (values.empty()) return d;
  std::sort(values.begin(), values.end());
  d.min = values.front();
  d.max = values.back();
  d.median = Percentile(values, 0.5);
  d.p25 = Percentile(values, 0.25);
  d.p75 = Percentile(values, 0.75);
  double sum = 0.0;
  for (double v : values) sum += v;
  d.mean = sum / static_cast<double>(d.n);
  double ss = 0.0;
  for (double v : values) ss += (v - d.mean) * (v - d.mean);
  d.stddev = d.n > 1 ? std::sqrt(ss / static_cast<double>(d.n - 1)) : 0.0;
  return d;
}

MannWhitneyResult MannWhitneyU(const std::vector<double>& a,
                               const std::vector<double>& b) {
  MannWhitneyResult result;
  const size_t n1 = a.size(), n2 = b.size();
  if (n1 == 0 || n2 == 0) return result;

  // Pool, rank with midranks for ties.
  struct Item {
    double value;
    int group;
  };
  std::vector<Item> pooled;
  pooled.reserve(n1 + n2);
  for (double v : a) pooled.push_back({v, 0});
  for (double v : b) pooled.push_back({v, 1});
  std::sort(pooled.begin(), pooled.end(),
            [](const Item& x, const Item& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < pooled.size()) {
    size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    double tie_size = static_cast<double>(j - i);
    if (tie_size > 1) tie_correction += tie_size * (tie_size * tie_size - 1.0);
    for (size_t k = i; k < j; ++k) {
      if (pooled[k].group == 0) rank_sum_a += midrank;
    }
    i = j;
  }

  double u1 = rank_sum_a - static_cast<double>(n1) *
                               (static_cast<double>(n1) + 1.0) / 2.0;
  double u2 = static_cast<double>(n1) * static_cast<double>(n2) - u1;
  result.u_statistic = std::min(u1, u2);

  double n = static_cast<double>(n1 + n2);
  double mean_u = static_cast<double>(n1) * static_cast<double>(n2) / 2.0;
  double var_u = static_cast<double>(n1) * static_cast<double>(n2) / 12.0 *
                 ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction.
  double z = (u1 - mean_u);
  z += (z < 0) ? 0.5 : -0.5;
  z /= std::sqrt(var_u);
  result.z_score = z;
  result.p_value = 2.0 * NormalSf(std::fabs(z));
  if (result.p_value > 1.0) result.p_value = 1.0;
  return result;
}

Distribution NormalizeCounts(const std::map<std::string, uint64_t>& counts) {
  Distribution dist;
  double total = 0.0;
  for (const auto& [key, count] : counts) total += static_cast<double>(count);
  if (total <= 0.0) return dist;
  for (const auto& [key, count] : counts) {
    dist[key] = static_cast<double>(count) / total;
  }
  return dist;
}

double KlDivergence(const Distribution& p, const Distribution& q,
                    double epsilon) {
  double kl = 0.0;
  for (const auto& [key, pv] : p) {
    if (pv <= 0.0) continue;
    auto it = q.find(key);
    double qv = it == q.end() ? epsilon : std::max(it->second, epsilon);
    kl += pv * std::log2(pv / qv);
  }
  return kl;
}

double JensenShannonDivergence(const Distribution& p, const Distribution& q) {
  // M = (P + Q) / 2 over the union support.
  Distribution m = p;
  for (auto& [key, value] : m) value *= 0.5;
  for (const auto& [key, qv] : q) m[key] += 0.5 * qv;
  double jsd = 0.5 * KlDivergence(p, m) + 0.5 * KlDivergence(q, m);
  // Numerical guards: the epsilon smoothing in KlDivergence can push the
  // result marginally outside the theoretical [0, 1] bounds.
  if (jsd < 0.0) jsd = 0.0;
  if (jsd > 1.0) jsd = 1.0;
  return jsd;
}

}  // namespace wsie::ml
