#ifndef WSIE_ML_CRF_H_
#define WSIE_ML_CRF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsie::ml {

/// Hashed feature vector for one sequence position. Features are strings
/// hashed into a fixed-dimension weight space (feature hashing keeps model
/// memory bounded and configurable — one of the Sect. 5 wishes: "research in
/// more robust NER tools, with configurable memory consumption").
using PositionFeatures = std::vector<uint64_t>;

/// Stable 64-bit FNV-1a string hash used for feature hashing.
uint64_t HashFeature(std::string_view feature);

/// A training instance: per-position features and gold label ids.
struct CrfInstance {
  std::vector<PositionFeatures> features;
  std::vector<int> labels;
};

/// Training options for the linear-chain CRF.
struct CrfTrainOptions {
  int epochs = 8;
  double learning_rate = 0.1;
  double l2 = 1e-6;
  uint64_t shuffle_seed = 42;
};

/// Linear-chain Conditional Random Field.
///
/// The model class behind the paper's ML-based entity taggers (BANNER,
/// ChemSpot, and the in-house disease tagger all build on Mallet CRFs).
/// Implements exact inference: forward-backward for training gradients and
/// Viterbi for decoding. Trained with stochastic gradient descent on the
/// L2-regularized conditional log-likelihood.
class LinearChainCrf {
 public:
  /// `num_labels` output labels; feature weights are hashed into
  /// `feature_dim` buckets per label.
  LinearChainCrf(int num_labels, size_t feature_dim = 1 << 18);

  /// Trains from scratch on `data`.
  void Train(const std::vector<CrfInstance>& data,
             const CrfTrainOptions& options = {});

  /// Viterbi-decodes the best label sequence.
  std::vector<int> Decode(
      const std::vector<PositionFeatures>& features) const;

  /// Per-sequence conditional log-likelihood of `instance` (diagnostics).
  double LogLikelihood(const CrfInstance& instance) const;

  int num_labels() const { return num_labels_; }
  size_t feature_dim() const { return feature_dim_; }

  /// Model memory footprint in bytes (weights only).
  size_t ApproxMemoryBytes() const {
    return (state_weights_.size() + transition_weights_.size()) *
           sizeof(double);
  }

 private:
  /// Unnormalized per-label scores at one position.
  void StateScores(const PositionFeatures& feats,
                   std::vector<double>& out) const;
  /// Forward-backward; returns log partition function. `alpha`/`beta` are
  /// [n][L] matrices in log space.
  double ForwardBackward(const std::vector<PositionFeatures>& features,
                         std::vector<std::vector<double>>& alpha,
                         std::vector<std::vector<double>>& beta) const;
  void AccumulateGradient(const CrfInstance& instance, double scale,
                          std::vector<double>& state_grad,
                          std::vector<double>& trans_grad) const;

  size_t StateIndex(uint64_t hashed_feature, int label) const {
    return (hashed_feature % feature_dim_) * num_labels_ + label;
  }

  int num_labels_;
  size_t feature_dim_;
  std::vector<double> state_weights_;       // [feature_dim_ * num_labels_]
  std::vector<double> transition_weights_;  // [num_labels_ * num_labels_]
};

}  // namespace wsie::ml

#endif  // WSIE_ML_CRF_H_
