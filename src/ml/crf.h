#ifndef WSIE_ML_CRF_H_
#define WSIE_ML_CRF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsie::ml {

/// Hashed feature vector for one sequence position. Features are strings
/// hashed into a fixed-dimension weight space (feature hashing keeps model
/// memory bounded and configurable — one of the Sect. 5 wishes: "research in
/// more robust NER tools, with configurable memory consumption").
using PositionFeatures = std::vector<uint64_t>;

/// FNV-1a constants, exposed so feature extractors can hash templates by
/// STREAMING the pieces through the state instead of concatenating strings.
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Continues an FNV-1a hash over `piece` starting from `seed`. Because
/// FNV-1a folds bytes left-to-right through a single 64-bit state,
///   HashFeature(a + b) == HashFeatureSeed(HashFeatureSeed(kFnvOffsetBasis,
///                                                         a), b)
/// for any split — so a feature template "p1:w=" + token hashes
/// byte-identically from a precomputed prefix seed plus the token bytes,
/// with no string materialization. (Arbitrary substring hashes can NOT be
/// combined — only prefix-seed continuation preserves equality.)
constexpr uint64_t HashFeatureSeed(uint64_t seed, std::string_view piece) {
  for (char c : piece) {
    seed ^= static_cast<unsigned char>(c);
    seed *= kFnvPrime;
  }
  return seed;
}

/// Single-character continuation (hot loops folding one byte at a time).
constexpr uint64_t HashFeatureChar(uint64_t seed, char c) {
  seed ^= static_cast<unsigned char>(c);
  return seed * kFnvPrime;
}

/// Stable 64-bit FNV-1a string hash used for feature hashing. Equivalent to
/// HashFeatureSeed(kFnvOffsetBasis, feature).
uint64_t HashFeature(std::string_view feature);

/// Flat per-sentence hashed-feature storage: all position features live in
/// one contiguous buffer with CSR-style offsets, refilled in place each
/// sentence so the steady state allocates nothing. Replaces
/// `std::vector<PositionFeatures>` (a heap block per position) on the decode
/// hot path; feature ORDER within a position is preserved, which keeps
/// StateScores summation order — and thus decoded output — bit-identical.
class HashedFeatureMatrix {
 public:
  /// Clears all positions; keeps capacity.
  void Reset() {
    hashes_.clear();
    offsets_.clear();
    offsets_.push_back(0);
  }
  /// Appends one hashed feature to the position being built.
  void Add(uint64_t hash) { hashes_.push_back(hash); }
  /// Seals the position being built; subsequent Add()s start the next one.
  void FinishPosition() {
    offsets_.push_back(static_cast<uint32_t>(hashes_.size()));
  }

  size_t num_positions() const { return offsets_.size() - 1; }
  const uint64_t* position_data(size_t pos) const {
    return hashes_.data() + offsets_[pos];
  }
  size_t position_size(size_t pos) const {
    return offsets_[pos + 1] - offsets_[pos];
  }

 private:
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> offsets_ = {0};
};

/// A training instance: per-position features and gold label ids.
struct CrfInstance {
  std::vector<PositionFeatures> features;
  std::vector<int> labels;
};

/// Training options for the linear-chain CRF.
struct CrfTrainOptions {
  int epochs = 8;
  double learning_rate = 0.1;
  double l2 = 1e-6;
  uint64_t shuffle_seed = 42;
};

/// Linear-chain Conditional Random Field.
///
/// The model class behind the paper's ML-based entity taggers (BANNER,
/// ChemSpot, and the in-house disease tagger all build on Mallet CRFs).
/// Implements exact inference: forward-backward for training gradients and
/// Viterbi for decoding. Trained with stochastic gradient descent on the
/// L2-regularized conditional log-likelihood.
class LinearChainCrf {
 public:
  /// Reusable Viterbi work buffers for the allocation-free Decode overload.
  /// One scratch per thread; never shared.
  struct DecodeScratch {
    std::vector<double> delta;
    std::vector<int> backpointer;
    std::vector<double> scores;
  };

  /// `num_labels` output labels; feature weights are hashed into
  /// `feature_dim` buckets per label.
  LinearChainCrf(int num_labels, size_t feature_dim = 1 << 18);

  /// Trains from scratch on `data`.
  void Train(const std::vector<CrfInstance>& data,
             const CrfTrainOptions& options = {});

  /// Viterbi-decodes the best label sequence.
  std::vector<int> Decode(
      const std::vector<PositionFeatures>& features) const;

  /// Allocation-free overload over a flat feature matrix: decodes into
  /// `*labels` reusing `*scratch`. Bit-identical to the vector overload for
  /// the same features in the same per-position order.
  void Decode(const HashedFeatureMatrix& features, DecodeScratch* scratch,
              std::vector<int>* labels) const;

  /// Per-sequence conditional log-likelihood of `instance` (diagnostics).
  double LogLikelihood(const CrfInstance& instance) const;

  int num_labels() const { return num_labels_; }
  size_t feature_dim() const { return feature_dim_; }

  /// Model memory footprint in bytes (weights only).
  size_t ApproxMemoryBytes() const {
    return (state_weights_.size() + transition_weights_.size()) *
           sizeof(double);
  }

 private:
  /// Unnormalized per-label scores at one position.
  void StateScores(const PositionFeatures& feats,
                   std::vector<double>& out) const;
  /// Same scores over a raw hash span, written into out[0..num_labels).
  void StateScoresInto(const uint64_t* feats, size_t count,
                       double* out) const;
  /// Forward-backward; returns log partition function. `alpha`/`beta` are
  /// [n][L] matrices in log space.
  double ForwardBackward(const std::vector<PositionFeatures>& features,
                         std::vector<std::vector<double>>& alpha,
                         std::vector<std::vector<double>>& beta) const;
  void AccumulateGradient(const CrfInstance& instance, double scale,
                          std::vector<double>& state_grad,
                          std::vector<double>& trans_grad) const;

  size_t StateIndex(uint64_t hashed_feature, int label) const {
    return (hashed_feature % feature_dim_) * num_labels_ + label;
  }

  int num_labels_;
  size_t feature_dim_;
  std::vector<double> state_weights_;       // [feature_dim_ * num_labels_]
  std::vector<double> transition_weights_;  // [num_labels_ * num_labels_]
};

}  // namespace wsie::ml

#endif  // WSIE_ML_CRF_H_
