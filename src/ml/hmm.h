#ifndef WSIE_ML_HMM_H_
#define WSIE_ML_HMM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace wsie::ml {

/// A labeled training sequence: parallel observation / state-id vectors.
struct LabeledSequence {
  std::vector<std::string> observations;
  std::vector<int> states;
};

/// Trigram (order-3 in the paper's terminology, as MedPost) Hidden Markov
/// Model for sequence labeling, with suffix-based emission back-off for
/// unknown words.
///
/// Transition model: P(t_i | t_{i-2}, t_{i-1}) with deleted-interpolation
/// smoothing over trigram/bigram/unigram estimates. Emission model:
/// P(w | t) with Laplace smoothing; out-of-vocabulary words back off to a
/// suffix model P(t | suffix) of suffix lengths 1..4 inverted via Bayes.
/// Decoding is exact Viterbi over tag-pair states, which is linear in the
/// sequence length and quadratic-ish in the tag-set size — matching the
/// "in principle linear, with large fluctuations in practice" behaviour of
/// Fig. 3(a).
class TrigramHmm {
 public:
  /// Creates a model over `num_states` hidden states.
  explicit TrigramHmm(int num_states);

  /// Accumulates counts from one labeled sequence. Call Finalize() after all
  /// training data has been added.
  void AddTrainingSequence(const LabeledSequence& seq);

  /// Freezes counts into probability tables. Must be called once before
  /// Decode(); subsequent AddTrainingSequence() calls require re-Finalize().
  void Finalize();

  /// Viterbi-decodes the most likely state sequence for `observations`.
  /// Requires Finalize() to have been called.
  std::vector<int> Decode(const std::vector<std::string>& observations) const;

  int num_states() const { return num_states_; }
  bool finalized() const { return finalized_; }
  size_t vocabulary_size() const { return word_tag_counts_.size(); }

 private:
  /// Table-backed after Finalize(); -1 in t2/t1 selects the lower-order
  /// tables (sequence starts).
  double LogTransition(int t2, int t1, int t0) const;
  /// Direct interpolated computation (used to fill the tables).
  double ComputeLogTransition(int t2, int t1, int t0) const;
  /// Per-tag emission log-probabilities for `word` (uses suffix back-off for
  /// unknown words).
  std::vector<double> EmissionLogProbs(const std::string& word) const;

  int num_states_;
  bool finalized_ = false;

  // Raw counts.
  std::unordered_map<std::string, std::vector<uint32_t>> word_tag_counts_;
  std::vector<uint64_t> tag_counts_;
  std::vector<std::vector<uint64_t>> bigram_counts_;   // [t1][t0]
  std::unordered_map<uint64_t, uint64_t> trigram_counts_;  // key(t2,t1,t0)
  std::unordered_map<std::string, std::vector<uint32_t>> suffix_tag_counts_;
  uint64_t total_tags_ = 0;

  // Interpolation weights (computed in Finalize()).
  double lambda1_ = 0.1, lambda2_ = 0.3, lambda3_ = 0.6;

  // Dense log-probability tables precomputed by Finalize() so that Decode()
  // does no hashing in its inner loop.
  std::vector<double> trans3_;  // [t2][t1][t0]
  std::vector<double> trans2_;  // [t1][t0] (no trigram context)
  std::vector<double> trans1_;  // [t0]

  static uint64_t TrigramKey(int t2, int t1, int t0) {
    return (static_cast<uint64_t>(t2) << 32) |
           (static_cast<uint64_t>(t1) << 16) | static_cast<uint64_t>(t0);
  }
};

}  // namespace wsie::ml

#endif  // WSIE_ML_HMM_H_
