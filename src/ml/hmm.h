#ifndef WSIE_ML_HMM_H_
#define WSIE_ML_HMM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"

namespace wsie::ml {

/// A labeled training sequence: parallel observation / state-id vectors.
struct LabeledSequence {
  std::vector<std::string> observations;
  std::vector<int> states;
};

/// Trigram (order-3 in the paper's terminology, as MedPost) Hidden Markov
/// Model for sequence labeling, with suffix-based emission back-off for
/// unknown words.
///
/// Transition model: P(t_i | t_{i-2}, t_{i-1}) with deleted-interpolation
/// smoothing over trigram/bigram/unigram estimates. Emission model:
/// P(w | t) with Laplace smoothing; out-of-vocabulary words back off to a
/// suffix model P(t | suffix) of suffix lengths 1..4 inverted via Bayes.
/// Decoding is exact Viterbi over tag-pair states, which is linear in the
/// sequence length and quadratic-ish in the tag-set size — matching the
/// "in principle linear, with large fluctuations in practice" behaviour of
/// Fig. 3(a).
///
/// Hot-path layout: Finalize() interns every vocabulary word and suffix into
/// a StringInterner (arena-backed open addressing, common/flat_map.h) and
/// lays the emission / suffix log-probabilities out as dense id-indexed rows.
/// The view-based Decode() then does one open-addressing probe per token
/// (plus at most kMaxSuffix short probes for OOV words) and zero string
/// hashing or heap allocation in the Viterbi inner loop. The flat rows are
/// filled by the SAME expressions the legacy per-call path evaluates, so
/// decoded outputs are bit-identical. A finalized model is immutable and
/// safe to share across decode threads.
class TrigramHmm {
 public:
  /// Reusable Viterbi work buffers. Steady-state decoding allocates nothing:
  /// every buffer is grown once and reused across sentences. One scratch per
  /// thread (stack or thread_local); scratch is never shared.
  struct ViterbiScratch {
    std::vector<double> delta;
    std::vector<double> next;
    std::vector<double> emission;
    std::vector<int> backpointer;
  };

  /// Creates a model over `num_states` hidden states.
  explicit TrigramHmm(int num_states);

  /// Accumulates counts from one labeled sequence. Call Finalize() after all
  /// training data has been added.
  void AddTrainingSequence(const LabeledSequence& seq);

  /// Freezes counts into probability tables (transitions, interned
  /// emission/suffix rows). Must be called once before Decode(); subsequent
  /// AddTrainingSequence() calls require re-Finalize().
  void Finalize();

  /// Viterbi-decodes the most likely state sequence for `observations`.
  /// Requires Finalize() to have been called.
  std::vector<int> Decode(const std::vector<std::string>& observations) const;

  /// Allocation-free overload: decodes into `*states` reusing `*scratch`.
  /// Token views need not outlive the call.
  void Decode(const std::vector<std::string_view>& observations,
              ViterbiScratch* scratch, std::vector<int>* states) const;

  /// The seed (pre-interning) decode path: per-token string-keyed hash-map
  /// lookups and per-position vector allocations. Kept as the reference
  /// implementation for equivalence tests and the bench speedup gate.
  std::vector<int> DecodeLegacy(
      const std::vector<std::string>& observations) const;

  int num_states() const { return num_states_; }
  bool finalized() const { return finalized_; }
  size_t vocabulary_size() const { return word_tag_counts_.size(); }

  /// The interned vocabulary (valid after Finalize()).
  const StringInterner& lexicon() const { return vocab_; }
  /// Resident bytes of the interned lexicon + flat emission/suffix rows.
  size_t lexicon_memory_bytes() const {
    return vocab_.MemoryBytes() + suffixes_.MemoryBytes() +
           (emission_log_.capacity() + suffix_log_.capacity() +
            oov_row_.capacity()) *
               sizeof(double);
  }

 private:
  /// Table-backed after Finalize(); -1 in t2/t1 selects the lower-order
  /// tables (sequence starts).
  double LogTransition(int t2, int t1, int t0) const;
  /// Direct interpolated computation (used to fill the tables).
  double ComputeLogTransition(int t2, int t1, int t0) const;
  /// Per-tag emission log-probabilities for `word` (uses suffix back-off for
  /// unknown words). Legacy per-call path; also fills the flat tables so the
  /// two stay bit-identical by construction.
  std::vector<double> EmissionLogProbs(const std::string& word) const;
  /// Writes the suffix back-off row for `counts` into out[0..num_states).
  /// Returns false when the suffix has no counts (row not written).
  bool ComputeSuffixRow(const std::vector<uint32_t>& counts,
                        double* out) const;
  /// Flat-table emission row for `word` into out[0..num_states).
  void EmissionLogProbsInto(std::string_view word, double* out) const;

  int num_states_;
  bool finalized_ = false;

  // Raw counts.
  std::unordered_map<std::string, std::vector<uint32_t>> word_tag_counts_;
  std::vector<uint64_t> tag_counts_;
  std::vector<std::vector<uint64_t>> bigram_counts_;   // [t1][t0]
  std::unordered_map<uint64_t, uint64_t> trigram_counts_;  // key(t2,t1,t0)
  std::unordered_map<std::string, std::vector<uint32_t>> suffix_tag_counts_;
  uint64_t total_tags_ = 0;

  // Interpolation weights (computed in Finalize()).
  double lambda1_ = 0.1, lambda2_ = 0.3, lambda3_ = 0.6;

  // Dense log-probability tables precomputed by Finalize() so that Decode()
  // does no hashing in its inner loop.
  std::vector<double> trans3_;  // [t2][t1][t0]
  std::vector<double> trans2_;  // [t1][t0] (no trigram context)
  std::vector<double> trans1_;  // [t0]

  // Interned lexicon (built by Finalize()): word id -> flat emission row,
  // suffix id -> flat back-off row, plus the shared uniform OOV row.
  StringInterner vocab_;
  StringInterner suffixes_;
  std::vector<double> emission_log_;  // [word_id * num_states + tag]
  std::vector<double> suffix_log_;    // [suffix_id * num_states + tag]
  std::vector<double> oov_row_;       // [tag]
  bool tables_built_ = false;

  static uint64_t TrigramKey(int t2, int t1, int t0) {
    return (static_cast<uint64_t>(t2) << 32) |
           (static_cast<uint64_t>(t1) << 16) | static_cast<uint64_t>(t0);
  }
};

}  // namespace wsie::ml

#endif  // WSIE_ML_HMM_H_
