#ifndef WSIE_ML_STATS_H_
#define WSIE_ML_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wsie::ml {

/// Descriptive statistics over a sample.
struct Descriptive {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Computes descriptive statistics of `values` (copies and sorts internally).
Descriptive Describe(std::vector<double> values);

/// Result of a two-sample Mann-Whitney-Wilcoxon rank test, the significance
/// test the paper applies to all per-document linguistic measures
/// (Sect. 4.3.1: "Differences in obtained measures were statistically
/// assessed using the Mann-Whitney-Wilcoxon signed rank test").
struct MannWhitneyResult {
  double u_statistic = 0.0;
  double z_score = 0.0;
  double p_value = 1.0;  ///< Two-sided, normal approximation with tie correction.
};

/// Two-sided Mann-Whitney-Wilcoxon U test via the normal approximation
/// (valid for the sample sizes used here; exact enumeration is not needed).
MannWhitneyResult MannWhitneyU(const std::vector<double>& a,
                               const std::vector<double>& b);

/// Discrete probability distribution keyed by item name (e.g. entity name →
/// relative frequency). Normalization is handled by the divergence functions.
using Distribution = std::map<std::string, double>;

/// Kullback-Leibler divergence KL(p || q) in bits over the union support,
/// with q smoothed by `epsilon` mass on items absent from q.
double KlDivergence(const Distribution& p, const Distribution& q,
                    double epsilon = 1e-10);

/// Jensen-Shannon divergence in bits, bounded in [0, 1] (base-2 logs), the
/// measure the paper uses to compare entity-name distributions across
/// corpora (Sect. 4.3.2).
double JensenShannonDivergence(const Distribution& p, const Distribution& q);

/// Builds a normalized Distribution from raw counts.
Distribution NormalizeCounts(const std::map<std::string, uint64_t>& counts);

}  // namespace wsie::ml

#endif  // WSIE_ML_STATS_H_
