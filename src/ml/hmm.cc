#include "ml/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wsie::ml {
namespace {

constexpr double kLogZero = -1e9;
constexpr size_t kMaxSuffix = 4;

}  // namespace

TrigramHmm::TrigramHmm(int num_states)
    : num_states_(num_states),
      tag_counts_(num_states, 0),
      bigram_counts_(num_states, std::vector<uint64_t>(num_states, 0)) {}

void TrigramHmm::AddTrainingSequence(const LabeledSequence& seq) {
  finalized_ = false;
  tables_built_ = false;
  const size_t n = seq.observations.size();
  int t2 = -1, t1 = -1;  // virtual start states folded into bigram/unigram
  for (size_t i = 0; i < n; ++i) {
    int t0 = seq.states[i];
    const std::string& word = seq.observations[i];
    auto& wc = word_tag_counts_[word];
    if (wc.empty()) wc.assign(num_states_, 0);
    ++wc[t0];
    ++tag_counts_[t0];
    ++total_tags_;
    if (t1 >= 0) ++bigram_counts_[t1][t0];
    if (t2 >= 0 && t1 >= 0) ++trigram_counts_[TrigramKey(t2, t1, t0)];
    for (size_t len = 1; len <= kMaxSuffix && len <= word.size(); ++len) {
      auto& sc = suffix_tag_counts_[word.substr(word.size() - len)];
      if (sc.empty()) sc.assign(num_states_, 0);
      ++sc[t0];
    }
    t2 = t1;
    t1 = t0;
  }
}

void TrigramHmm::Finalize() {
  // Deleted-interpolation weight estimation (Brants 2000, TnT): for each
  // trigram, vote for the order whose relative frequency is largest.
  double l1 = 0, l2 = 0, l3 = 0;
  for (const auto& [key, count] : trigram_counts_) {
    int t2 = static_cast<int>(key >> 32);
    int t1 = static_cast<int>((key >> 16) & 0xffff);
    int t0 = static_cast<int>(key & 0xffff);
    double c3 = bigram_counts_[t2][t1] > 1
                    ? (static_cast<double>(count) - 1.0) /
                          (static_cast<double>(bigram_counts_[t2][t1]) - 1.0)
                    : 0.0;
    double c2 = tag_counts_[t1] > 1
                    ? (static_cast<double>(bigram_counts_[t1][t0]) - 1.0) /
                          (static_cast<double>(tag_counts_[t1]) - 1.0)
                    : 0.0;
    double c1 = total_tags_ > 1
                    ? (static_cast<double>(tag_counts_[t0]) - 1.0) /
                          (static_cast<double>(total_tags_) - 1.0)
                    : 0.0;
    double weight = static_cast<double>(count);
    if (c3 >= c2 && c3 >= c1) {
      l3 += weight;
    } else if (c2 >= c1) {
      l2 += weight;
    } else {
      l1 += weight;
    }
  }
  double sum = l1 + l2 + l3;
  if (sum > 0) {
    lambda1_ = l1 / sum;
    lambda2_ = l2 / sum;
    lambda3_ = l3 / sum;
    // Floor to avoid degenerate all-trigram weights on tiny corpora.
    const double floor = 0.01;
    lambda1_ = std::max(lambda1_, floor);
    lambda2_ = std::max(lambda2_, floor);
    lambda3_ = std::max(lambda3_, floor);
    double norm = lambda1_ + lambda2_ + lambda3_;
    lambda1_ /= norm;
    lambda2_ /= norm;
    lambda3_ /= norm;
  }
  // Precompute dense transition tables.
  const int s = num_states_;
  trans1_.resize(s);
  trans2_.resize(static_cast<size_t>(s) * s);
  trans3_.resize(static_cast<size_t>(s) * s * s);
  for (int t0 = 0; t0 < s; ++t0) trans1_[t0] = ComputeLogTransition(-1, -1, t0);
  for (int t1 = 0; t1 < s; ++t1) {
    for (int t0 = 0; t0 < s; ++t0) {
      trans2_[static_cast<size_t>(t1) * s + t0] =
          ComputeLogTransition(-1, t1, t0);
    }
  }
  for (int t2 = 0; t2 < s; ++t2) {
    for (int t1 = 0; t1 < s; ++t1) {
      for (int t0 = 0; t0 < s; ++t0) {
        trans3_[(static_cast<size_t>(t2) * s + t1) * s + t0] =
            ComputeLogTransition(t2, t1, t0);
      }
    }
  }
  // Intern the lexicon and lay the emission model out as dense id-indexed
  // rows. Every row is produced by the SAME code path the legacy per-call
  // lookup evaluates (EmissionLogProbs / ComputeSuffixRow), so the flat
  // tables are bit-identical to the seed computation — only the lookup cost
  // changes. After this, the per-token work in Decode() is one
  // open-addressing probe and a row copy.
  vocab_ = StringInterner();
  suffixes_ = StringInterner();
  emission_log_.assign(word_tag_counts_.size() * static_cast<size_t>(s), 0.0);
  for (const auto& [word, counts] : word_tag_counts_) {
    (void)counts;
    uint32_t id = vocab_.Intern(word);
    std::vector<double> row = EmissionLogProbs(word);  // known-word path
    std::copy(row.begin(), row.end(),
              emission_log_.begin() + static_cast<size_t>(id) * s);
  }
  suffix_log_.assign(suffix_tag_counts_.size() * static_cast<size_t>(s), 0.0);
  size_t interned_suffixes = 0;
  for (const auto& [suffix, counts] : suffix_tag_counts_) {
    std::vector<double> row(s, kLogZero);
    if (!ComputeSuffixRow(counts, row.data())) continue;  // zero-count suffix
    uint32_t id = suffixes_.Intern(suffix);
    std::copy(row.begin(), row.end(),
              suffix_log_.begin() + static_cast<size_t>(id) * s);
    ++interned_suffixes;
  }
  suffix_log_.resize(interned_suffixes * static_cast<size_t>(s));
  oov_row_.assign(s, 0.0);
  for (int t = 0; t < s; ++t) {
    oov_row_[t] = -std::log(static_cast<double>(num_states_)) - 12.0;
  }
  tables_built_ = true;
  finalized_ = true;
}

double TrigramHmm::LogTransition(int t2, int t1, int t0) const {
  if (!trans3_.empty()) {
    const int s = num_states_;
    if (t2 >= 0 && t1 >= 0) {
      return trans3_[(static_cast<size_t>(t2) * s + t1) * s + t0];
    }
    if (t1 >= 0) return trans2_[static_cast<size_t>(t1) * s + t0];
    return trans1_[t0];
  }
  return ComputeLogTransition(t2, t1, t0);
}

double TrigramHmm::ComputeLogTransition(int t2, int t1, int t0) const {
  double p1 = total_tags_ > 0 ? static_cast<double>(tag_counts_[t0]) /
                                    static_cast<double>(total_tags_)
                              : 1.0 / num_states_;
  double p2 = 0.0;
  if (t1 >= 0 && tag_counts_[t1] > 0) {
    p2 = static_cast<double>(bigram_counts_[t1][t0]) /
         static_cast<double>(tag_counts_[t1]);
  }
  double p3 = 0.0;
  if (t2 >= 0 && t1 >= 0 && bigram_counts_[t2][t1] > 0) {
    auto it = trigram_counts_.find(TrigramKey(t2, t1, t0));
    if (it != trigram_counts_.end()) {
      p3 = static_cast<double>(it->second) /
           static_cast<double>(bigram_counts_[t2][t1]);
    }
  }
  double p = lambda1_ * p1 + lambda2_ * p2 + lambda3_ * p3;
  return p > 0 ? std::log(p) : kLogZero;
}

bool TrigramHmm::ComputeSuffixRow(const std::vector<uint32_t>& counts,
                                  double* out) const {
  uint64_t suffix_total = 0;
  for (int t = 0; t < num_states_; ++t) suffix_total += counts[t];
  if (suffix_total == 0) return false;
  for (int t = 0; t < num_states_; ++t) {
    double p_tag_given_suffix =
        (static_cast<double>(counts[t]) + 0.1) /
        (static_cast<double>(suffix_total) + 0.1 * num_states_);
    double p_tag = total_tags_ > 0
                       ? (static_cast<double>(tag_counts_[t]) + 1.0) /
                             (static_cast<double>(total_tags_) + num_states_)
                       : 1.0 / num_states_;
    out[t] = std::log(p_tag_given_suffix) - std::log(p_tag) -
             10.0;  // constant OOV penalty keeps scores comparable
  }
  return true;
}

std::vector<double> TrigramHmm::EmissionLogProbs(
    const std::string& word) const {
  std::vector<double> log_probs(num_states_, kLogZero);
  auto it = word_tag_counts_.find(word);
  if (it != word_tag_counts_.end()) {
    for (int t = 0; t < num_states_; ++t) {
      // P(w|t) with add-one smoothing over the vocabulary.
      double p = (static_cast<double>(it->second[t]) + 1e-6) /
                 (static_cast<double>(tag_counts_[t]) + 1.0);
      log_probs[t] = std::log(p);
    }
    return log_probs;
  }
  // OOV: suffix back-off. P(t|suffix) inverted via Bayes: P(w|t) ∝
  // P(t|suffix)/P(t). Use the longest matching suffix.
  for (size_t len = std::min(kMaxSuffix, word.size()); len >= 1; --len) {
    auto sit = suffix_tag_counts_.find(word.substr(word.size() - len));
    if (sit == suffix_tag_counts_.end()) continue;
    if (!ComputeSuffixRow(sit->second, log_probs.data())) continue;
    return log_probs;
  }
  // No suffix information at all: uniform.
  for (int t = 0; t < num_states_; ++t) {
    log_probs[t] = -std::log(static_cast<double>(num_states_)) - 12.0;
  }
  return log_probs;
}

void TrigramHmm::EmissionLogProbsInto(std::string_view word,
                                      double* out) const {
  const int s = num_states_;
  if (!tables_built_) {
    // Pre-Finalize fallback (legacy semantics): compute per call.
    std::vector<double> row = EmissionLogProbs(std::string(word));
    std::copy(row.begin(), row.end(), out);
    return;
  }
  uint32_t id = vocab_.Find(word);
  if (id != StringInterner::kNotFound) {
    const double* row = emission_log_.data() + static_cast<size_t>(id) * s;
    std::copy(row, row + s, out);
    return;
  }
  // OOV: at most kMaxSuffix short probes, longest suffix first.
  for (size_t len = std::min(kMaxSuffix, word.size()); len >= 1; --len) {
    uint32_t sid = suffixes_.Find(word.substr(word.size() - len));
    if (sid == StringInterner::kNotFound) continue;
    const double* row = suffix_log_.data() + static_cast<size_t>(sid) * s;
    std::copy(row, row + s, out);
    return;
  }
  std::copy(oov_row_.begin(), oov_row_.end(), out);
}

std::vector<int> TrigramHmm::Decode(
    const std::vector<std::string>& observations) const {
  std::vector<std::string_view> views(observations.begin(),
                                      observations.end());
  ViterbiScratch scratch;
  std::vector<int> states;
  Decode(views, &scratch, &states);
  return states;
}

void TrigramHmm::Decode(const std::vector<std::string_view>& observations,
                        ViterbiScratch* scratch,
                        std::vector<int>* states) const {
  const size_t n = observations.size();
  states->clear();
  if (n == 0) return;
  const int s = num_states_;
  const size_t pairs = static_cast<size_t>(s) * s;
  // Viterbi over tag-pair states (prev, cur). delta[(prev, cur)]. All work
  // buffers come from `scratch` and only grow, so steady-state decoding is
  // allocation-free.
  scratch->delta.assign(pairs, kLogZero);
  scratch->next.resize(pairs);
  scratch->emission.resize(s);
  scratch->backpointer.assign(n * pairs, -1);
  double* delta = scratch->delta.data();
  double* next = scratch->next.data();
  double* em = scratch->emission.data();
  int* backpointer = scratch->backpointer.data();

  EmissionLogProbsInto(observations[0], em);
  for (int cur = 0; cur < s; ++cur) {
    double score = LogTransition(-1, -1, cur) + em[cur];
    // Virtual prev state 0; collapse all (prev,cur) onto prev=0 at t=0.
    delta[static_cast<size_t>(0) * s + cur] = score;
  }
  const bool use_tables = !trans3_.empty();
  for (size_t i = 1; i < n; ++i) {
    EmissionLogProbsInto(observations[i], em);
    std::fill(next, next + pairs, kLogZero);
    int* bp = backpointer + i * pairs;
    const bool first_step = i == 1;
    for (int prev = 0; prev < s; ++prev) {
      for (int cur = 0; cur < s; ++cur) {
        double base = delta[static_cast<size_t>(prev) * s + cur];
        if (base <= kLogZero) continue;
        if (use_tables) {
          // The transition row for this (prev, cur) context is contiguous;
          // reading it directly is the same table load LogTransition()
          // performs, minus the per-transition call and branches. Same
          // operands in the same order, so scores stay bit-identical.
          const double* trow =
              first_step
                  ? trans2_.data() + static_cast<size_t>(cur) * s
                  : trans3_.data() +
                        (static_cast<size_t>(prev) * s + cur) * s;
          double* nrow = next + static_cast<size_t>(cur) * s;
          int* brow = bp + static_cast<size_t>(cur) * s;
          for (int nxt = 0; nxt < s; ++nxt) {
            // Branchless select: same adds and the same strict comparison as
            // the guarded-store form (element-wise, so results stay
            // bit-identical), but the compiler can vectorize it.
            double score = base + trow[nxt] + em[nxt];
            const bool better = score > nrow[nxt];
            nrow[nxt] = better ? score : nrow[nxt];
            brow[nxt] = better ? prev : brow[nxt];
          }
        } else {
          // Pre-Finalize fallback: interpolated transitions computed per call.
          for (int nxt = 0; nxt < s; ++nxt) {
            double score =
                base + LogTransition(first_step ? -1 : prev, cur, nxt) +
                em[nxt];
            size_t idx = static_cast<size_t>(cur) * s + nxt;
            if (score > next[idx]) {
              next[idx] = score;
              bp[idx] = prev;
            }
          }
        }
      }
    }
    std::swap(delta, next);
  }
  // Find best final pair.
  size_t best_idx = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t idx = 0; idx < pairs; ++idx) {
    if (delta[idx] > best_score) {
      best_score = delta[idx];
      best_idx = idx;
    }
  }
  states->resize(n);
  int cur = static_cast<int>(best_idx % s);
  int prev = static_cast<int>(best_idx / s);
  (*states)[n - 1] = cur;
  if (n >= 2) (*states)[n - 2] = prev;
  for (size_t i = n - 1; i >= 2; --i) {
    int prev2 = backpointer[i * pairs + static_cast<size_t>(prev) * s + cur];
    if (prev2 < 0) prev2 = 0;
    (*states)[i - 2] = prev2;
    cur = prev;
    prev = prev2;
  }
}

std::vector<int> TrigramHmm::DecodeLegacy(
    const std::vector<std::string>& observations) const {
  const size_t n = observations.size();
  if (n == 0) return {};
  const int s = num_states_;
  // Seed path, kept verbatim: per-token hash-map lookup + fresh vectors per
  // position. Reference implementation for equivalence tests and the
  // seed-vs-view bench gate.
  std::vector<double> delta(static_cast<size_t>(s) * s, kLogZero);
  std::vector<std::vector<int>> backpointer(
      n, std::vector<int>(static_cast<size_t>(s) * s, -1));

  std::vector<double> em0 = EmissionLogProbs(observations[0]);
  for (int cur = 0; cur < s; ++cur) {
    double score = LogTransition(-1, -1, cur) + em0[cur];
    delta[static_cast<size_t>(0) * s + cur] = score;
  }
  for (size_t i = 1; i < n; ++i) {
    std::vector<double> em = EmissionLogProbs(observations[i]);
    std::vector<double> next(static_cast<size_t>(s) * s, kLogZero);
    for (int prev = 0; prev < s; ++prev) {
      for (int cur = 0; cur < s; ++cur) {
        double base = delta[static_cast<size_t>(prev) * s + cur];
        if (base <= kLogZero) continue;
        for (int nxt = 0; nxt < s; ++nxt) {
          double score =
              base + LogTransition(i == 1 ? -1 : prev, cur, nxt) + em[nxt];
          size_t idx = static_cast<size_t>(cur) * s + nxt;
          if (score > next[idx]) {
            next[idx] = score;
            backpointer[i][idx] = prev;
          }
        }
      }
    }
    delta.swap(next);
  }
  size_t best_idx = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t idx = 0; idx < delta.size(); ++idx) {
    if (delta[idx] > best_score) {
      best_score = delta[idx];
      best_idx = idx;
    }
  }
  std::vector<int> states(n);
  int cur = static_cast<int>(best_idx % s);
  int prev = static_cast<int>(best_idx / s);
  states[n - 1] = cur;
  if (n >= 2) states[n - 2] = prev;
  for (size_t i = n - 1; i >= 2; --i) {
    int prev2 = backpointer[i][static_cast<size_t>(prev) * s + cur];
    if (prev2 < 0) prev2 = 0;
    states[i - 2] = prev2;
    cur = prev;
    prev = prev2;
  }
  return states;
}

}  // namespace wsie::ml
