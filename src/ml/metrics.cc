#include "ml/metrics.h"

namespace wsie::ml {

std::vector<std::vector<size_t>> KFoldSplits(size_t num_items, size_t k) {
  if (k == 0) k = 1;
  if (k > num_items && num_items > 0) k = num_items;
  std::vector<std::vector<size_t>> folds(k);
  for (size_t i = 0; i < num_items; ++i) {
    folds[i % k].push_back(i);
  }
  return folds;
}

CrossValidationResult SummarizeFolds(std::vector<BinaryConfusion> folds) {
  CrossValidationResult result;
  result.fold_confusions = std::move(folds);
  if (result.fold_confusions.empty()) return result;
  for (const auto& c : result.fold_confusions) {
    result.mean_precision += c.Precision();
    result.mean_recall += c.Recall();
    result.mean_f1 += c.F1();
  }
  double k = static_cast<double>(result.fold_confusions.size());
  result.mean_precision /= k;
  result.mean_recall /= k;
  result.mean_f1 /= k;
  return result;
}

}  // namespace wsie::ml
