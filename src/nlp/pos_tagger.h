#ifndef WSIE_NLP_POS_TAGGER_H_
#define WSIE_NLP_POS_TAGGER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/hmm.h"
#include "nlp/tagset.h"
#include "text/token.h"

namespace wsie::nlp {

/// One POS-annotated sentence (training or output).
struct PosSentence {
  std::vector<std::string> words;
  std::vector<PosTag> tags;
};

/// MedPost-like part-of-speech tagger: an order-3 (trigram) HMM over PosTag
/// with suffix-based handling of unknown words (Sect. 3.2 / Fig. 3a).
///
/// Runtime is linear in sentence length in principle but fluctuates in
/// practice, and pathologically long "sentences" (boilerplate-extraction
/// debris) can exceed the configured hard limit, which reproduces the
/// occasional crashes the paper reports: TagTokens() returns an empty
/// result and sets `overflowed` for such inputs.
class PosTagger {
 public:
  PosTagger();

  /// Trains from POS-annotated sentences and finalizes the model.
  void Train(const std::vector<PosSentence>& sentences);

  /// Convenience: trains on `num_sentences` sentences drawn from the
  /// built-in synthetic treebank (see GenerateTreebank).
  void TrainDefault(uint64_t seed = 7, size_t num_sentences = 4000);

  /// Tags a tokenized sentence. If the sentence exceeds
  /// `max_tokens_per_sentence`, returns an empty vector and sets
  /// *overflowed = true (the caller decides whether to crash, skip, or cap —
  /// the trade-off discussed in Sect. 5).
  std::vector<PosTag> TagTokens(const std::vector<text::Token>& tokens,
                                bool* overflowed = nullptr) const;

  /// Seed reference path (per-token string copies + string-keyed emission
  /// lookups + per-position Viterbi allocations). Same outputs as
  /// TagTokens(); kept for equivalence tests and the seed-vs-view bench gate.
  std::vector<PosTag> TagTokensLegacy(const std::vector<text::Token>& tokens,
                                      bool* overflowed = nullptr) const;

  /// The underlying HMM (e.g. for lexicon stats in benches/tests).
  const ml::TrigramHmm& hmm() const { return hmm_; }

  /// Hard token limit per sentence (0 = unlimited).
  void set_max_tokens_per_sentence(size_t limit) { max_tokens_ = limit; }
  size_t max_tokens_per_sentence() const { return max_tokens_; }

  bool trained() const { return trained_; }

  /// Generates a deterministic synthetic treebank: template-expanded
  /// sentences with per-word gold tags. Shared by the tagger's default
  /// training and by tests.
  static std::vector<PosSentence> GenerateTreebank(Rng& rng,
                                                   size_t num_sentences);

 private:
  ml::TrigramHmm hmm_;
  bool trained_ = false;
  size_t max_tokens_ = 1000;
};

}  // namespace wsie::nlp

#endif  // WSIE_NLP_POS_TAGGER_H_
