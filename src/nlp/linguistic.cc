#include "nlp/linguistic.h"

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wsie::nlp {
namespace {

using ::wsie::ie::Annotation;
using ::wsie::ie::AnnotationMethod;

struct PronounEntry {
  const char* word;
  PronounClass cls;
};

constexpr PronounEntry kPronouns[] = {
    // Personal subject.
    {"i", PronounClass::kPersonalSubject},
    {"he", PronounClass::kPersonalSubject},
    {"she", PronounClass::kPersonalSubject},
    {"we", PronounClass::kPersonalSubject},
    {"they", PronounClass::kPersonalSubject},
    {"it", PronounClass::kPersonalSubject},
    {"you", PronounClass::kPersonalSubject},
    // Object.
    {"me", PronounClass::kObject},
    {"him", PronounClass::kObject},
    {"us", PronounClass::kObject},
    {"them", PronounClass::kObject},
    // Possessive.
    {"my", PronounClass::kPossessive},
    {"his", PronounClass::kPossessive},
    {"its", PronounClass::kPossessive},
    {"our", PronounClass::kPossessive},
    {"their", PronounClass::kPossessive},
    {"mine", PronounClass::kPossessive},
    {"theirs", PronounClass::kPossessive},
    {"hers", PronounClass::kPossessive},
    // Demonstrative.
    {"this", PronounClass::kDemonstrative},
    {"that", PronounClass::kDemonstrative},
    {"these", PronounClass::kDemonstrative},
    {"those", PronounClass::kDemonstrative},
    // Relative.
    {"who", PronounClass::kRelative},
    {"whom", PronounClass::kRelative},
    {"whose", PronounClass::kRelative},
    {"which", PronounClass::kRelative},
    // Reflexive.
    {"myself", PronounClass::kReflexive},
    {"himself", PronounClass::kReflexive},
    {"herself", PronounClass::kReflexive},
    {"itself", PronounClass::kReflexive},
    {"ourselves", PronounClass::kReflexive},
    {"themselves", PronounClass::kReflexive},
};

// "her" is ambiguous (object/possessive); counted as object per the paper's
// emphasis on object pronouns for co-reference.
constexpr PronounEntry kHer = {"her", PronounClass::kObject};

Annotation MakeAnnotation(uint64_t doc_id, uint32_t sentence_id, size_t begin,
                          size_t end, std::string surface,
                          std::string category) {
  Annotation a;
  a.doc_id = doc_id;
  a.sentence_id = sentence_id;
  a.begin = static_cast<uint32_t>(begin);
  a.end = static_cast<uint32_t>(end);
  a.method = AnnotationMethod::kRegex;
  a.surface = std::move(surface);
  a.category = std::move(category);
  return a;
}

}  // namespace

const char* PronounClassName(PronounClass cls) {
  switch (cls) {
    case PronounClass::kPersonalSubject:
      return "personal";
    case PronounClass::kObject:
      return "object";
    case PronounClass::kPossessive:
      return "possessive";
    case PronounClass::kDemonstrative:
      return "demonstrative";
    case PronounClass::kRelative:
      return "relative";
    case PronounClass::kReflexive:
      return "reflexive";
    case PronounClass::kNumClasses:
      return "none";
  }
  return "none";
}

LinguisticExtractor::LinguisticExtractor() = default;

PronounClass LinguisticExtractor::ClassifyPronoun(
    std::string_view lowercase_token) const {
  if (lowercase_token == kHer.word) return kHer.cls;
  for (const auto& entry : kPronouns) {
    if (lowercase_token == entry.word) return entry.cls;
  }
  return PronounClass::kNumClasses;
}

PronounClass LinguisticExtractor::ClassifyPronounToken(
    std::string_view token) const {
  // Same lookup order as ClassifyPronoun ("her" first, then the table), with
  // case folded during comparison instead of into a temporary string.
  if (EqualsIgnoreCase(token, kHer.word)) return kHer.cls;
  for (const auto& entry : kPronouns) {
    if (EqualsIgnoreCase(token, entry.word)) return entry.cls;
  }
  return PronounClass::kNumClasses;
}

std::vector<Annotation> LinguisticExtractor::FindNegations(
    uint64_t doc_id, uint32_t sentence_id, std::string_view sentence,
    size_t base_offset) const {
  static const text::Tokenizer kTokenizer;
  return FindNegations(doc_id, sentence_id,
                       kTokenizer.Tokenize(sentence, base_offset));
}

std::vector<Annotation> LinguisticExtractor::FindNegations(
    uint64_t doc_id, uint32_t sentence_id,
    const std::vector<text::Token>& tokens) const {
  std::vector<Annotation> out;
  for (const auto& tok : tokens) {
    if (EqualsIgnoreCase(tok.text, "not") || EqualsIgnoreCase(tok.text, "nor") ||
        EqualsIgnoreCase(tok.text, "neither")) {
      out.push_back(MakeAnnotation(doc_id, sentence_id, tok.begin, tok.end,
                                   std::string(tok.text), "negation"));
    }
  }
  return out;
}

std::vector<Annotation> LinguisticExtractor::FindPronouns(
    uint64_t doc_id, uint32_t sentence_id, std::string_view sentence,
    size_t base_offset) const {
  static const text::Tokenizer kTokenizer;
  return FindPronouns(doc_id, sentence_id,
                      kTokenizer.Tokenize(sentence, base_offset));
}

std::vector<Annotation> LinguisticExtractor::FindPronouns(
    uint64_t doc_id, uint32_t sentence_id,
    const std::vector<text::Token>& tokens) const {
  std::vector<Annotation> out;
  for (const auto& tok : tokens) {
    PronounClass cls = ClassifyPronounToken(tok.text);
    if (cls == PronounClass::kNumClasses) continue;
    out.push_back(MakeAnnotation(
        doc_id, sentence_id, tok.begin, tok.end, std::string(tok.text),
        std::string("pronoun/") + PronounClassName(cls)));
  }
  return out;
}

std::vector<Annotation> LinguisticExtractor::FindParentheses(
    uint64_t doc_id, uint32_t sentence_id, std::string_view sentence,
    size_t base_offset) const {
  std::vector<Annotation> out;
  std::vector<size_t> stack;
  for (size_t i = 0; i < sentence.size(); ++i) {
    if (sentence[i] == '(') {
      stack.push_back(i);
    } else if (sentence[i] == ')' && !stack.empty()) {
      size_t open = stack.back();
      stack.pop_back();
      out.push_back(MakeAnnotation(
          doc_id, sentence_id, base_offset + open, base_offset + i + 1,
          std::string(sentence.substr(open, i - open + 1)), "parenthesis"));
    }
  }
  // Unclosed parentheses run to the end of the sentence.
  for (size_t open : stack) {
    out.push_back(MakeAnnotation(
        doc_id, sentence_id, base_offset + open, base_offset + sentence.size(),
        std::string(sentence.substr(open)), "parenthesis"));
  }
  return out;
}

}  // namespace wsie::nlp
