#include "nlp/abbreviation.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace wsie::nlp {
namespace {

bool IsLetter(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)); }

char Lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

bool AbbreviationDetector::IsValidShortForm(std::string_view text) {
  if (text.size() < 2 || text.size() > 10) return false;
  if (!IsAlnum(text.front())) return false;
  size_t words = 1, letters = 0;
  for (char c : text) {
    if (c == ' ') ++words;
    if (IsLetter(c)) ++letters;
  }
  return words <= 2 && letters >= 1;
}

size_t AbbreviationDetector::MatchLongForm(std::string_view candidate_span,
                                           std::string_view short_form) {
  // Schwartz-Hearst: scan the short form right-to-left; for each character
  // (skipping non-alphanumerics) find its rightmost occurrence in the
  // candidate span to the left of the previous match. The first short-form
  // character must additionally sit at the start of a long-form word.
  if (short_form.empty() || candidate_span.empty()) return std::string::npos;
  long long s_index = static_cast<long long>(short_form.size()) - 1;
  long long l_index = static_cast<long long>(candidate_span.size()) - 1;
  while (s_index >= 0) {
    char c = Lower(short_form[static_cast<size_t>(s_index)]);
    if (!IsAlnum(short_form[static_cast<size_t>(s_index)])) {
      --s_index;
      continue;
    }
    bool is_first = true;
    for (long long k = s_index - 1; k >= 0; --k) {
      if (IsAlnum(short_form[static_cast<size_t>(k)])) {
        is_first = false;
        break;
      }
    }
    // Find the character in the candidate span, right to left; the first
    // character of the short form must begin a word.
    while (l_index >= 0 &&
           (Lower(candidate_span[static_cast<size_t>(l_index)]) != c ||
            (is_first && l_index > 0 &&
             IsAlnum(candidate_span[static_cast<size_t>(l_index) - 1])))) {
      --l_index;
    }
    if (l_index < 0) return std::string::npos;
    --l_index;
    --s_index;
  }
  // The long form starts at the word containing the last matched character.
  size_t start = static_cast<size_t>(l_index + 1);
  while (start > 0 && IsAlnum(candidate_span[start - 1])) --start;
  return start;
}

std::vector<AbbreviationDefinition> AbbreviationDetector::Find(
    std::string_view sentence) const {
  std::vector<AbbreviationDefinition> definitions;
  for (size_t open = sentence.find('('); open != std::string_view::npos;
       open = sentence.find('(', open + 1)) {
    size_t close = sentence.find(')', open + 1);
    if (close == std::string_view::npos) break;
    std::string_view inner = sentence.substr(open + 1, close - open - 1);
    std::string_view short_form(StripAsciiWhitespace(inner));
    if (!IsValidShortForm(short_form)) continue;

    // Candidate long form: up to min(|SF|+5, 2*|SF|) words before '('.
    size_t max_words = std::min(short_form.size() + 5, 2 * short_form.size());
    size_t span_end = open;
    while (span_end > 0 &&
           std::isspace(static_cast<unsigned char>(sentence[span_end - 1])))
      --span_end;
    size_t span_begin = span_end;
    size_t words = 0;
    while (span_begin > 0 && words < max_words) {
      // Step over one word (plus preceding whitespace).
      while (span_begin > 0 &&
             !std::isspace(static_cast<unsigned char>(sentence[span_begin - 1])))
        --span_begin;
      ++words;
      if (span_begin == 0 || words >= max_words) break;
      while (span_begin > 0 &&
             std::isspace(static_cast<unsigned char>(sentence[span_begin - 1])))
        --span_begin;
    }
    std::string_view candidate =
        sentence.substr(span_begin, span_end - span_begin);
    size_t long_start = MatchLongForm(candidate, short_form);
    if (long_start == std::string::npos) continue;
    // Require the long form to be longer than the short form (otherwise it
    // is not an abbreviation definition).
    size_t long_begin = span_begin + long_start;
    if (span_end - long_begin <= short_form.size()) continue;

    AbbreviationDefinition def;
    def.short_form = std::string(short_form);
    def.long_form = std::string(sentence.substr(long_begin, span_end - long_begin));
    // Short-form offsets exclude the parentheses.
    size_t sf_begin = open + 1;
    while (sf_begin < close &&
           std::isspace(static_cast<unsigned char>(sentence[sf_begin])))
      ++sf_begin;
    def.short_begin = sf_begin;
    def.short_end = sf_begin + short_form.size();
    def.long_begin = long_begin;
    def.long_end = span_end;
    definitions.push_back(std::move(def));
  }
  return definitions;
}

std::vector<ie::Annotation> AbbreviationDetector::FindAsAnnotations(
    uint64_t doc_id, uint32_t sentence_id, std::string_view sentence,
    size_t base_offset) const {
  std::vector<ie::Annotation> annotations;
  for (const AbbreviationDefinition& def : Find(sentence)) {
    ie::Annotation a;
    a.doc_id = doc_id;
    a.sentence_id = sentence_id;
    a.begin = static_cast<uint32_t>(base_offset + def.long_begin);
    a.end = static_cast<uint32_t>(base_offset + def.short_end + 1);  // ')'
    a.method = ie::AnnotationMethod::kRegex;
    a.category = "abbreviation";
    a.surface = def.short_form + "=" + def.long_form;
    annotations.push_back(std::move(a));
  }
  return annotations;
}

}  // namespace wsie::nlp
