#ifndef WSIE_NLP_ABBREVIATION_H_
#define WSIE_NLP_ABBREVIATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ie/annotation.h"

namespace wsie::nlp {

/// A detected abbreviation definition: "long form (SF)".
struct AbbreviationDefinition {
  std::string short_form;
  std::string long_form;
  size_t short_begin = 0;  ///< offsets of the short form (excl. parens)
  size_t short_end = 0;
  size_t long_begin = 0;
  size_t long_end = 0;
};

/// Schwartz-Hearst abbreviation detector.
///
/// The abstract lists abbreviation usage among the linguistically motivated
/// properties compared across the corpora, and Sect. 4.3.1 notes that
/// parentheses "can hint to abbreviations". This implements the classic
/// Schwartz & Hearst (PSB 2003) algorithm: a parenthesized candidate short
/// form is matched against the words preceding the parenthesis by scanning
/// the short form right-to-left and requiring its first character to start
/// a word of the long form.
class AbbreviationDetector {
 public:
  /// Finds abbreviation definitions in one sentence.
  std::vector<AbbreviationDefinition> Find(std::string_view sentence) const;

  /// Finds definitions and renders them as annotations (category
  /// "abbreviation", surface "SF=long form") with document offsets.
  std::vector<ie::Annotation> FindAsAnnotations(uint64_t doc_id,
                                                uint32_t sentence_id,
                                                std::string_view sentence,
                                                size_t base_offset = 0) const;

  /// True if `text` is a plausible short form: 2-10 chars, at most two
  /// words, starts alphanumeric, contains at least one letter.
  static bool IsValidShortForm(std::string_view text);

  /// Core matcher: returns the start offset of the long form inside
  /// `candidate_span` (the text preceding the parenthesis), or npos when
  /// `short_form` cannot be aligned per the Schwartz-Hearst rules.
  static size_t MatchLongForm(std::string_view candidate_span,
                              std::string_view short_form);
};

}  // namespace wsie::nlp

#endif  // WSIE_NLP_ABBREVIATION_H_
