#include "nlp/tagset.h"

namespace wsie::nlp {
namespace {

constexpr const char* kNames[] = {
    "NN", "NNS", "NNP", "VB",  "VBD", "VBZ", "VBG", "VBN", "JJ",    "RB",
    "DT", "IN",  "CC",  "PRP", "TO",  "CD",  "MD",  "SYM", "PUNCT",
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<size_t>(PosTag::kNumTags),
              "tag name table out of sync with PosTag");

}  // namespace

const char* PosTagName(PosTag tag) {
  int idx = static_cast<int>(tag);
  if (idx < 0 || idx >= kNumPosTags) return "??";
  return kNames[idx];
}

PosTag PosTagFromName(std::string_view name) {
  for (int i = 0; i < kNumPosTags; ++i) {
    if (name == kNames[i]) return static_cast<PosTag>(i);
  }
  return PosTag::kNumTags;
}

bool IsNounTag(PosTag tag) {
  return tag == PosTag::kNN || tag == PosTag::kNNS || tag == PosTag::kNNP;
}

bool IsVerbTag(PosTag tag) {
  return tag == PosTag::kVB || tag == PosTag::kVBD || tag == PosTag::kVBZ ||
         tag == PosTag::kVBG || tag == PosTag::kVBN || tag == PosTag::kMD;
}

}  // namespace wsie::nlp
