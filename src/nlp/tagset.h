#ifndef WSIE_NLP_TAGSET_H_
#define WSIE_NLP_TAGSET_H_

#include <string>
#include <string_view>

namespace wsie::nlp {

/// Simplified Penn-Treebank-style part-of-speech tagset used by the POS
/// tagger (MedPost uses a comparable tagset over Medline).
enum class PosTag : int {
  kNN = 0,   ///< singular noun
  kNNS,      ///< plural noun
  kNNP,      ///< proper noun
  kVB,       ///< verb, base
  kVBD,      ///< verb, past
  kVBZ,      ///< verb, 3rd person singular present
  kVBG,      ///< verb, gerund
  kVBN,      ///< verb, past participle
  kJJ,       ///< adjective
  kRB,       ///< adverb
  kDT,       ///< determiner
  kIN,       ///< preposition / subordinating conjunction
  kCC,       ///< coordinating conjunction
  kPRP,      ///< pronoun
  kTO,       ///< "to"
  kCD,       ///< cardinal number
  kMD,       ///< modal
  kSYM,      ///< symbol / formula
  kPUNCT,    ///< punctuation
  kNumTags,  ///< sentinel; keep last
};

inline constexpr int kNumPosTags = static_cast<int>(PosTag::kNumTags);

/// Stable tag name ("NN", "VBZ", ...).
const char* PosTagName(PosTag tag);

/// Inverse of PosTagName; returns kNumTags for unknown names.
PosTag PosTagFromName(std::string_view name);

/// True for the noun tags (NN, NNS, NNP).
bool IsNounTag(PosTag tag);

/// True for the verb tags (VB*, MD).
bool IsVerbTag(PosTag tag);

}  // namespace wsie::nlp

#endif  // WSIE_NLP_TAGSET_H_
