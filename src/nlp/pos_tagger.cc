#include "nlp/pos_tagger.h"

#include <cstdio>

namespace wsie::nlp {
namespace {

struct TagVocab {
  PosTag tag;
  std::vector<const char*> words;
};

// Word pools per tag for the synthetic treebank. Biomedical flavour mirrors
// the Medline-abstract register the paper's tools were trained on.
const std::vector<TagVocab>& Vocab() {
  static const std::vector<TagVocab>* kVocab = new std::vector<TagVocab>{
      {PosTag::kNN,
       {"patient", "treatment", "protein", "gene", "disease", "therapy",
        "study", "expression", "cancer", "cell", "drug", "receptor", "dose",
        "response", "tumor", "mutation", "pathway", "risk", "trial",
        "infection", "syndrome", "diagnosis", "tissue", "sample"}},
      {PosTag::kNNS,
       {"patients", "treatments", "proteins", "genes", "diseases", "studies",
        "cells", "drugs", "receptors", "doses", "responses", "tumors",
        "mutations", "pathways", "trials", "results", "effects", "levels"}},
      {PosTag::kNNP,
       {"BRCA1", "TP53", "Aspirin", "Medline", "Berlin", "FDA", "KRAS",
        "Cactin", "Tamoxifen", "EGFR", "IL6", "PubMed"}},
      {PosTag::kVB, {"treat", "inhibit", "reduce", "induce", "examine",
                     "analyze", "compare", "measure", "assess", "evaluate"}},
      {PosTag::kVBD,
       {"treated", "inhibited", "reduced", "induced", "examined", "analyzed",
        "compared", "measured", "observed", "reported", "showed"}},
      {PosTag::kVBZ,
       {"treats", "inhibits", "reduces", "induces", "regulates", "encodes",
        "suggests", "indicates", "remains", "shows", "affects"}},
      {PosTag::kVBG,
       {"treating", "inhibiting", "reducing", "signaling", "increasing",
        "comparing", "encoding", "targeting"}},
      {PosTag::kVBN,
       {"associated", "expressed", "observed", "activated", "identified",
        "characterized", "linked", "implicated"}},
      {PosTag::kJJ,
       {"clinical", "significant", "chronic", "malignant", "molecular",
        "genetic", "acute", "severe", "novel", "effective", "human",
        "cellular", "therapeutic", "abnormal"}},
      {PosTag::kRB,
       {"significantly", "strongly", "rapidly", "highly", "frequently",
        "rarely", "previously", "often", "usually"}},
      {PosTag::kDT, {"the", "a", "an", "this", "these", "that", "each"}},
      {PosTag::kIN,
       {"in", "of", "with", "for", "on", "by", "after", "during", "between",
        "against", "from"}},
      {PosTag::kCC, {"and", "or", "but"}},
      {PosTag::kPRP, {"it", "they", "we", "he", "she"}},
      {PosTag::kTO, {"to"}},
      {PosTag::kCD, {"12", "3", "50", "two", "100", "0.05", "five"}},
      {PosTag::kMD, {"may", "can", "could", "should", "might"}},
      {PosTag::kSYM, {"%", "+", "=", "/"}},
      {PosTag::kPUNCT, {".", ",", "(", ")", ";", ":"}},
  };
  return *kVocab;
}

const std::vector<const char*>& WordsFor(PosTag tag) {
  for (const auto& entry : Vocab()) {
    if (entry.tag == tag) return entry.words;
  }
  static const std::vector<const char*> kEmpty;
  return kEmpty;
}

// Sentence templates as tag sequences.
const std::vector<std::vector<PosTag>>& Templates() {
  using T = PosTag;
  static const std::vector<std::vector<PosTag>>* kTemplates =
      new std::vector<std::vector<PosTag>>{
          {T::kDT, T::kJJ, T::kNN, T::kVBZ, T::kDT, T::kNN, T::kPUNCT},
          {T::kDT, T::kNN, T::kVBD, T::kVBN, T::kIN, T::kDT, T::kJJ, T::kNN,
           T::kPUNCT},
          {T::kNNP, T::kVBZ, T::kDT, T::kJJ, T::kNN, T::kIN, T::kNNS,
           T::kPUNCT},
          {T::kNNS, T::kVBD, T::kRB, T::kJJ, T::kIN, T::kDT, T::kNN,
           T::kPUNCT},
          {T::kPRP, T::kVBD, T::kCD, T::kNNS, T::kIN, T::kDT, T::kNN,
           T::kPUNCT},
          {T::kDT, T::kNN, T::kIN, T::kNNP, T::kVBZ, T::kVBG, T::kNNS,
           T::kPUNCT},
          {T::kJJ, T::kNNS, T::kMD, T::kVB, T::kDT, T::kNN, T::kIN, T::kDT,
           T::kJJ, T::kNN, T::kPUNCT},
          {T::kDT, T::kNN, T::kVBZ, T::kVBN, T::kIN, T::kNNP, T::kCC,
           T::kNNP, T::kPUNCT},
          {T::kIN, T::kDT, T::kJJ, T::kNN, T::kPUNCT, T::kNNS, T::kVBD,
           T::kJJ, T::kPUNCT},
          {T::kNNP, T::kCC, T::kNNP, T::kVBD, T::kDT, T::kNNS, T::kIN,
           T::kCD, T::kNNS, T::kPUNCT},
          {T::kRB, T::kPUNCT, T::kDT, T::kNN, T::kVBZ, T::kRB, T::kVBN,
           T::kIN, T::kDT, T::kNN, T::kPUNCT},
          {T::kDT, T::kNNS, T::kVBD, T::kTO, T::kVB, T::kDT, T::kJJ, T::kNN,
           T::kPUNCT},
      };
  return *kTemplates;
}

}  // namespace

PosTagger::PosTagger() : hmm_(kNumPosTags) {}

std::vector<PosSentence> PosTagger::GenerateTreebank(Rng& rng,
                                                     size_t num_sentences) {
  std::vector<PosSentence> sentences;
  sentences.reserve(num_sentences);
  const auto& templates = Templates();
  for (size_t s = 0; s < num_sentences; ++s) {
    const auto& tmpl = templates[rng.Uniform(templates.size())];
    PosSentence sentence;
    sentence.words.reserve(tmpl.size());
    sentence.tags.reserve(tmpl.size());
    for (PosTag tag : tmpl) {
      const auto& pool = WordsFor(tag);
      sentence.words.push_back(pool[rng.Uniform(pool.size())]);
      sentence.tags.push_back(tag);
    }
    sentences.push_back(std::move(sentence));
  }
  return sentences;
}

void PosTagger::Train(const std::vector<PosSentence>& sentences) {
  for (const PosSentence& sentence : sentences) {
    ml::LabeledSequence seq;
    seq.observations = sentence.words;
    seq.states.reserve(sentence.tags.size());
    for (PosTag tag : sentence.tags) seq.states.push_back(static_cast<int>(tag));
    hmm_.AddTrainingSequence(seq);
  }
  hmm_.Finalize();
  trained_ = true;
}

void PosTagger::TrainDefault(uint64_t seed, size_t num_sentences) {
  Rng rng(seed);
  Train(GenerateTreebank(rng, num_sentences));
}

std::vector<PosTag> PosTagger::TagTokens(
    const std::vector<text::Token>& tokens, bool* overflowed) const {
  if (overflowed != nullptr) *overflowed = false;
  if (max_tokens_ > 0 && tokens.size() > max_tokens_) {
    if (overflowed != nullptr) *overflowed = true;
    return {};
  }
  // Hot path: token views go straight into the interned-lexicon Viterbi with
  // per-thread reusable scratch — no per-token string copies.
  thread_local std::vector<std::string_view> words;
  thread_local ml::TrigramHmm::ViterbiScratch scratch;
  thread_local std::vector<int> states;
  words.clear();
  words.reserve(tokens.size());
  for (const auto& tok : tokens) words.push_back(tok.text);
  hmm_.Decode(words, &scratch, &states);
  std::vector<PosTag> tags;
  tags.reserve(states.size());
  for (int s : states) tags.push_back(static_cast<PosTag>(s));
  return tags;
}

std::vector<PosTag> PosTagger::TagTokensLegacy(
    const std::vector<text::Token>& tokens, bool* overflowed) const {
  if (overflowed != nullptr) *overflowed = false;
  if (max_tokens_ > 0 && tokens.size() > max_tokens_) {
    if (overflowed != nullptr) *overflowed = true;
    return {};
  }
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const auto& tok : tokens) words.emplace_back(tok.text);
  std::vector<int> states = hmm_.DecodeLegacy(words);
  std::vector<PosTag> tags;
  tags.reserve(states.size());
  for (int s : states) tags.push_back(static_cast<PosTag>(s));
  return tags;
}

}  // namespace wsie::nlp
