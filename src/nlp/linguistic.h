#ifndef WSIE_NLP_LINGUISTIC_H_
#define WSIE_NLP_LINGUISTIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ie/annotation.h"
#include "text/token.h"

namespace wsie::nlp {

/// Pronoun classes counted in the corpus comparison. The paper counts six
/// classes and singles out demonstrative, relative, and object pronouns as
/// the classes most relevant for co-reference resolution (Sect. 4.3.1).
enum class PronounClass {
  kPersonalSubject,  ///< I, he, she, we, they, it
  kObject,           ///< me, him, her, us, them
  kPossessive,       ///< my, his, her, its, our, their, mine, theirs
  kDemonstrative,    ///< this, that, these, those
  kRelative,         ///< who, whom, whose, which
  kReflexive,        ///< himself, themselves, ...
  kNumClasses,
};

const char* PronounClassName(PronounClass cls);

/// Linguistic regular-expression extractors of the Fig. 2 data flow: each
/// sentence is scanned for negation, pronouns, and parenthesized text, and
/// each mention becomes an annotation carrying document ID, sentence ID, and
/// start/end positions (Sect. 3.2).
class LinguisticExtractor {
 public:
  LinguisticExtractor();

  /// Finds negation tokens ("not", "nor", "neither"), the paper's "rather
  /// simple method for determining negations" (Sect. 4.3.1). This overload
  /// tokenizes `sentence` itself; prefer the token-vector overload when the
  /// sentence has already been tokenized upstream.
  std::vector<ie::Annotation> FindNegations(uint64_t doc_id,
                                            uint32_t sentence_id,
                                            std::string_view sentence,
                                            size_t base_offset = 0) const;

  /// Token-reusing overload: scans tokens already produced by the shared
  /// sentence tokenization (no re-tokenization, no per-token lowering).
  std::vector<ie::Annotation> FindNegations(
      uint64_t doc_id, uint32_t sentence_id,
      const std::vector<text::Token>& tokens) const;

  /// Finds pronouns of all six classes; the annotation's `category` is
  /// "pronoun/<class>". Tokenizes `sentence` itself; prefer the token-vector
  /// overload when tokens are already available.
  std::vector<ie::Annotation> FindPronouns(uint64_t doc_id,
                                           uint32_t sentence_id,
                                           std::string_view sentence,
                                           size_t base_offset = 0) const;

  /// Token-reusing overload of FindPronouns.
  std::vector<ie::Annotation> FindPronouns(
      uint64_t doc_id, uint32_t sentence_id,
      const std::vector<text::Token>& tokens) const;

  /// Finds parenthesized spans "( ... )", category "parenthesis". Unclosed
  /// parentheses extend to the end of the sentence (web-text tolerance).
  std::vector<ie::Annotation> FindParentheses(uint64_t doc_id,
                                              uint32_t sentence_id,
                                              std::string_view sentence,
                                              size_t base_offset = 0) const;

  /// Classifies a single lowercase token; returns kNumClasses if it is not a
  /// pronoun.
  PronounClass ClassifyPronoun(std::string_view lowercase_token) const;

  /// Case-insensitive classification of a raw token — same results as
  /// lowercasing then ClassifyPronoun, without materializing the lowercase
  /// copy.
  PronounClass ClassifyPronounToken(std::string_view token) const;
};

}  // namespace wsie::nlp

#endif  // WSIE_NLP_LINGUISTIC_H_
