#include "obs/trace_check.h"

#include <map>
#include <utility>

#include "dataflow/json.h"
#include "dataflow/value.h"

namespace wsie::obs {

Status ValidateChromeTrace(std::string_view json, TraceCheckReport* report) {
  Result<dataflow::Value> parsed = dataflow::ParseJson(json);
  if (!parsed.ok()) {
    return Status::InvalidArgument("trace is not valid JSON: " +
                                   parsed.status().ToString());
  }
  const dataflow::Value& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("trace root is not an object");
  }
  const dataflow::Value& events = root.Field("traceEvents");
  if (!events.is_array()) {
    return Status::InvalidArgument("trace has no traceEvents array");
  }

  // Per-(pid,tid) stream state: open-span depth and last timestamp.
  struct StreamState {
    int depth = 0;
    double last_ts = -1.0;
  };
  std::map<std::pair<int64_t, int64_t>, StreamState> streams;
  size_t num_spans = 0;
  size_t index = 0;
  for (const dataflow::Value& event : events.AsArray()) {
    std::string at = " (event " + std::to_string(index++) + ")";
    if (!event.is_object()) {
      return Status::InvalidArgument("trace event is not an object" + at);
    }
    if (!event.HasField("name") || !event.Field("name").is_string()) {
      return Status::InvalidArgument("trace event missing name" + at);
    }
    if (!event.HasField("ts") ||
        (!event.Field("ts").is_double() && !event.Field("ts").is_int())) {
      return Status::InvalidArgument("trace event missing numeric ts" + at);
    }
    if (!event.HasField("pid") || !event.HasField("tid")) {
      return Status::InvalidArgument("trace event missing pid/tid" + at);
    }
    const std::string& phase = event.Field("ph").AsString();
    if (phase != "B" && phase != "E") {
      return Status::InvalidArgument("trace event phase is not B/E: '" +
                                     phase + "'" + at);
    }
    StreamState& stream = streams[{event.Field("pid").AsInt(),
                                   event.Field("tid").AsInt()}];
    double ts = event.Field("ts").AsDouble();
    if (ts < stream.last_ts) {
      return Status::InvalidArgument("trace timestamps regress in thread" + at);
    }
    stream.last_ts = ts;
    if (phase == "B") {
      ++stream.depth;
    } else {
      if (stream.depth == 0) {
        return Status::InvalidArgument("unbalanced 'E' without open 'B'" + at);
      }
      --stream.depth;
      ++num_spans;
    }
  }
  for (const auto& [key, stream] : streams) {
    if (stream.depth != 0) {
      return Status::InvalidArgument(
          "thread " + std::to_string(key.second) + " has " +
          std::to_string(stream.depth) + " unclosed 'B' event(s)");
    }
  }
  if (report != nullptr) {
    report->num_events = events.AsArray().size();
    report->num_threads = streams.size();
    report->num_spans = num_spans;
  }
  return Status::OK();
}

}  // namespace wsie::obs
