#ifndef WSIE_OBS_TRACE_CHECK_H_
#define WSIE_OBS_TRACE_CHECK_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace wsie::obs {

/// Validation summary for a Chrome trace JSON document.
struct TraceCheckReport {
  size_t num_events = 0;
  size_t num_threads = 0;
  size_t num_spans = 0;  ///< matched B/E pairs
};

/// Parses `json` as a Chrome `trace_event` document and verifies the
/// invariants the recorder promises: top-level object with a `traceEvents`
/// array, every event carrying name/ph/ts/pid/tid, phases limited to B/E,
/// per-(pid,tid) streams balanced (no 'E' before a matching 'B', no open
/// 'B' at end of stream), and non-decreasing timestamps per thread.
///
/// Lives in a separate library (wsie_obs_check) because it needs the
/// dataflow JSON parser — wsie_obs itself must stay below wsie_dataflow
/// in the dependency order.
Status ValidateChromeTrace(std::string_view json,
                           TraceCheckReport* report = nullptr);

}  // namespace wsie::obs

#endif  // WSIE_OBS_TRACE_CHECK_H_
