#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wsie::obs {
namespace {

/// Escapes a string for embedding in JSON output (metric names carry
/// embedded label blocks with quotes).
std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits `name{labels}` into its base and label block ("" when unlabeled).
void SplitLabels(std::string_view name, std::string_view* base,
                 std::string_view* labels) {
  size_t brace = name.find('{');
  if (brace == std::string_view::npos) {
    *base = name;
    *labels = {};
    return;
  }
  *base = name.substr(0, brace);
  // Strip the surrounding braces; the tail "}" is re-added by the emitter.
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::vector<double> Ladder125(double lo, double hi) {
  std::vector<double> bounds;
  for (double decade = lo; decade <= hi; decade *= 10.0) {
    bounds.push_back(decade);
    if (decade * 2 <= hi) bounds.push_back(decade * 2);
    if (decade * 5 <= hi) bounds.push_back(decade * 5);
  }
  return bounds;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LogSpacedBuckets(double lo, double hi, size_t count) {
  if (lo <= 0.0) lo = 1e-9;
  if (hi < lo) hi = lo;
  if (count < 2) count = 2;
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = lo;
  for (size_t i = 0; i + 1 < count; ++i) {
    bounds.push_back(v);
    v *= ratio;
  }
  bounds.push_back(hi);  // exact top bound, immune to pow/mul drift
  return bounds;
}

const std::vector<double>& LogLatencyBucketsNs() {
  static const std::vector<double>* bounds =
      new std::vector<double>(LogSpacedBuckets(1e3, 1e11, 121));
  return *bounds;
}

const std::vector<double>& LatencyBucketsNs() {
  static const std::vector<double>* bounds =
      new std::vector<double>(Ladder125(1e3, 1e11));
  return *bounds;
}

const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* bounds =
      new std::vector<double>(Ladder125(0.1, 1e5));
  return *bounds;
}

const std::vector<double>& BytesBuckets() {
  static const std::vector<double>* bounds = [] {
    auto* b = new std::vector<double>();
    for (double v = 64; v <= double(1u << 30); v *= 4) b->push_back(v);
    return b;
  }();
  return *bounds;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (seen > rank) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      uint64_t in_bucket = bucket_counts[i];
      uint64_t below = seen - in_bucket;
      double frac = in_bucket == 0
                        ? 1.0
                        : static_cast<double>(rank - below + 1) /
                              static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterPrefixSum(std::string_view prefix) const {
  uint64_t total = 0;
  for (const CounterSnapshot& c : counters) {
    if (c.name.size() >= prefix.size() &&
        std::string_view(c.name).substr(0, prefix.size()) == prefix) {
      total += c.value;
    }
  }
  return total;
}

std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value) {
  std::string name;
  name.reserve(base.size() + key.size() + value.size() + 5);
  name.append(base).append("{").append(key).append("=\"").append(value).append(
      "\"}");
  return name;
}

std::string WithLabels(std::string_view base, std::string_view key1,
                       std::string_view value1, std::string_view key2,
                       std::string_view value2) {
  std::string name;
  name.append(base).append("{").append(key1).append("=\"").append(value1);
  name.append("\",").append(key2).append("=\"").append(value2).append("\"}");
  return name;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>(bounds);
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = hist->bounds();
    h.bucket_counts = hist->BucketCounts();
    for (uint64_t c : h.bucket_counts) h.count += c;
    h.sum = hist->Sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::string MetricsRegistry::DumpPrometheusText() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const CounterSnapshot& c : snap.counters) {
    out += c.name;
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    out += g.name;
    out += ' ';
    out += FormatDouble(g.value);
    out += '\n';
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::string_view base, labels;
    SplitLabels(h.name, &base, &labels);
    auto series = [&](std::string_view suffix, std::string_view extra_label,
                      const std::string& value) {
      out.append(base).append(suffix);
      if (!labels.empty() || !extra_label.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra_label.empty()) out += ',';
        out += extra_label;
        out += '}';
      }
      out += ' ';
      out += value;
      out += '\n';
    };
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      series("_bucket", "le=\"" + FormatDouble(h.bounds[i]) + "\"",
             std::to_string(cumulative));
    }
    series("_bucket", "le=\"+Inf\"", std::to_string(h.count));
    series("_count", "", std::to_string(h.count));
    series("_sum", "", FormatDouble(h.sum));
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  MetricsSnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const CounterSnapshot& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJson(c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSnapshot& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJson(g.name);
    out += "\":";
    out += FormatDouble(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJson(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += FormatDouble(h.sum);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      out += i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "\"+Inf\"";
      out += ",\"count\":";
      out += std::to_string(h.bucket_counts[i]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace wsie::obs
