#ifndef WSIE_OBS_SCOPED_TIMER_H_
#define WSIE_OBS_SCOPED_TIMER_H_

#include <string_view>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsie::obs {

/// RAII timer feeding both a latency histogram (elapsed ns at destruction)
/// and, when tracing is enabled, a span of the same name. The histogram
/// pointer may be null (span only); lookups should be hoisted by the caller
/// via MetricsRegistry::GetHistogram so construction is allocation-free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, std::string_view span_name = {},
                       std::string_view span_args = {})
      : histogram_(histogram) {
    if (WSIE_OBS >= 2 && !span_name.empty() &&
        TraceRecorder::Global().enabled()) {
      recording_ = true;
      TraceRecorder::Global().Begin(span_name, span_args);
    }
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(watch_.ElapsedNs()));
    }
    if (recording_) TraceRecorder::Global().End();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Elapsed time so far, for callers that also want the raw reading.
  int64_t ElapsedNs() const { return watch_.ElapsedNs(); }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
  bool recording_ = false;
};

}  // namespace wsie::obs

#endif  // WSIE_OBS_SCOPED_TIMER_H_
