#ifndef WSIE_OBS_PROFILER_H_
#define WSIE_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace wsie::obs {

/// Signal-based sampling profiler: SIGPROF at a fixed rate (ITIMER_PROF,
/// so samples land on whichever thread is burning CPU), backtrace() into
/// preallocated slots from the handler (no allocation, no locks — the
/// handler touches only the flat sample arrays and two relaxed atomics),
/// symbolized lazily at Stop time into folded-stack lines
/// ("root;child;leaf count") that flamegraph.pl consumes directly.
///
/// Fork-aware: the interval timer is not inherited across fork() and a
/// pthread_atfork child hook disarms the recorder state, so a forked shard
/// worker neither profiles itself nor double-reports the parent's samples.
/// One process-wide instance (Global()); Start while running is an error.
struct ProfilerOptions {
  int hz = 199;                ///< sample rate (prime avoids lockstep)
  size_t max_samples = 65536;  ///< preallocated sample slots
  int max_depth = 64;          ///< frames kept per sample
};

class Profiler {
 public:
  using Options = ProfilerOptions;

  static Profiler& Global();

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Arms SIGPROF and the interval timer. Primes libgcc's backtrace state
  /// before arming so the handler never takes the lazy-init path.
  Status Start(Options options = Options());

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Samples stay buffered for FoldedStacks()/WriteFolded().
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Samples captured (capped at max_samples) / dropped past the cap.
  uint64_t samples() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Aggregated folded stacks, one "frame;frame;... count\n" line per
  /// distinct stack, root first, sorted by line for determinism.
  std::string FoldedStacks() const;
  Status WriteFolded(const std::string& path) const;

  /// Discards buffered samples (keeps the preallocated slots).
  void Reset();

 private:
  friend void ProfilerSignalHandler(int);

  std::atomic<bool> running_{false};
  std::atomic<bool> armed_{false};  ///< handler gate, cleared before disarm
  std::atomic<size_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  size_t max_samples_ = 0;
  int max_depth_ = 0;
  std::vector<void*> frames_;    ///< max_samples * max_depth slots
  std::vector<uint16_t> depths_;  ///< frames captured per sample
};

}  // namespace wsie::obs

#endif  // WSIE_OBS_PROFILER_H_
