#ifndef WSIE_OBS_REMOTE_H_
#define WSIE_OBS_REMOTE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wsie::obs {

/// One process's observability payload: its full MetricsSnapshot plus its
/// balanced TraceRecorder streams. Shard workers capture one at fragment
/// completion and ship it coordinator-ward over the shard transport's obs
/// control channel (the CollectRemote hop); the coordinator decodes,
/// re-bases clocks, and merges.
struct ObsBundle {
  int shard = -1;
  int os_pid = 0;
  /// Sender-side TraceRecorder::NowNs() at encode time — the clock
  /// re-basing handshake: receiver_offset = receiver_now - now_ns.
  uint64_t now_ns = 0;
  uint64_t trace_dropped = 0;  ///< ring overwrites on the sender
  MetricsSnapshot metrics;
  std::vector<TraceRecorder::ThreadStream> streams;
};

/// Captures this process's bundle from the global registry and recorder.
ObsBundle CaptureObsBundle(int shard);

/// Checksummed wire form, reusing the fault::Checkpoint framing (magic,
/// version, length-prefixed sections, FNV-1a trailer): Decode rejects
/// truncated or bit-flipped input instead of half-loading it, with the
/// same guarantees as the store/checkpoint codecs.
std::string EncodeObsBundle(const ObsBundle& bundle);
Result<ObsBundle> DecodeObsBundle(std::string_view bytes);

/// Shard-wide merge: counters sum exactly; gauges keep per-shard identity
/// via an appended {shard="k"} label (a mean of last-write-wins values is
/// meaningless); histograms with identical bounds add bucket-wise, and a
/// bounds mismatch falls back to the labeled per-shard form rather than
/// guessing. Output is in sorted-name order, so equal inputs merge to
/// byte-equal snapshots.
MetricsSnapshot MergeSnapshots(const std::vector<ObsBundle>& bundles);

/// Appends {key="value"} to a metric name, merging into an existing label
/// block ("a{x=\"1\"}" -> "a{x=\"1\",key=\"value\"}").
std::string AppendMetricLabel(std::string_view name, std::string_view key,
                              std::string_view value);

/// One process's contribution to a stitched trace.
struct ProcessTrace {
  int pid = 1;            ///< Chrome pid (coordinator 1, worker k = 2+k)
  int64_t offset_ns = 0;  ///< added to every timestamp (clock re-base)
  std::vector<TraceRecorder::ThreadStream> streams;
  uint64_t dropped = 0;  ///< ring overwrites in that process
};

struct StitchReport {
  size_t processes = 0;  ///< processes that contributed at least one event
  size_t threads = 0;
  size_t events = 0;
  uint64_t dropped = 0;  ///< merger-visible ring overwrites, summed
};

/// Emits one Chrome trace document with a distinct pid per process and
/// every timestamp re-based by its process's offset — the stitched view
/// ValidateChromeTrace accepts: per-(pid,tid) balanced streams with
/// non-decreasing timestamps (a constant per-process offset preserves the
/// per-thread order the recorder exported).
std::string StitchChromeTrace(const std::vector<ProcessTrace>& processes,
                              StitchReport* report = nullptr);

}  // namespace wsie::obs

#endif  // WSIE_OBS_REMOTE_H_
