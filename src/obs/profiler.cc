#include "obs/profiler.h"

#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/time.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>

#include "obs/metrics.h"

namespace wsie::obs {
namespace {

Profiler* g_active = nullptr;  ///< written only while the timer is disarmed

struct sigaction g_prev_action;

void AtForkChild() {
  // The ITIMER_PROF timer is not inherited, but the handler and the
  // recorder state are; disarm so the child starts clean and a later
  // Start() in the child behaves like a fresh profiler.
  if (g_active != nullptr) {
    g_active->Reset();
    g_active = nullptr;
  }
}

void RegisterAtForkOnce() {
  static const int registered = [] {
    ::pthread_atfork(nullptr, nullptr, AtForkChild);
    return 0;
  }();
  (void)registered;
}

}  // namespace

void ProfilerSignalHandler(int) {
  Profiler* profiler = g_active;
  if (profiler == nullptr ||
      !profiler->armed_.load(std::memory_order_relaxed)) {
    return;
  }
  const size_t slot = profiler->next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= profiler->max_samples_) {
    profiler->next_.store(profiler->max_samples_, std::memory_order_relaxed);
    profiler->dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int n = ::backtrace(
      profiler->frames_.data() +
          slot * static_cast<size_t>(profiler->max_depth_),
      profiler->max_depth_);
  profiler->depths_[slot] = static_cast<uint16_t>(std::max(n, 0));
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

Profiler::Profiler() {
  // Register the sample counters eagerly so they appear in metric dumps
  // (and the manifest check) even before the first Start().
  MetricsRegistry::Global().GetCounter("wsie.obs.profiler.samples");
  MetricsRegistry::Global().GetCounter("wsie.obs.profiler.dropped");
}

Status Profiler::Start(Options options) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("profiler: already running");
  }
  if (options.hz <= 0 || options.hz > 10000) {
    return Status::InvalidArgument("profiler: hz out of range");
  }
  max_samples_ = std::max<size_t>(options.max_samples, 16);
  max_depth_ = std::clamp(options.max_depth, 4, 256);
  frames_.assign(max_samples_ * static_cast<size_t>(max_depth_), nullptr);
  depths_.assign(max_samples_, 0);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  // Prime backtrace() outside the handler: its first call may dlopen
  // libgcc, which is not async-signal-safe.
  void* prime[4];
  ::backtrace(prime, 4);

  RegisterAtForkOnce();
  g_active = this;
  armed_.store(true, std::memory_order_release);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = ProfilerSignalHandler;
  action.sa_flags = SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &g_prev_action) != 0) {
    armed_.store(false, std::memory_order_release);
    g_active = nullptr;
    return Status::Internal("profiler: sigaction failed");
  }

  itimerval timer{};
  const long interval_us = std::max(1000000L / options.hz, 1L);
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    ::sigaction(SIGPROF, &g_prev_action, nullptr);
    armed_.store(false, std::memory_order_release);
    g_active = nullptr;
    return Status::Internal("profiler: setitimer failed");
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Profiler::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  itimerval off{};
  ::setitimer(ITIMER_PROF, &off, nullptr);
  armed_.store(false, std::memory_order_release);
  ::sigaction(SIGPROF, &g_prev_action, nullptr);
  g_active = nullptr;
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("wsie.obs.profiler.samples")->Add(samples());
  registry.GetCounter("wsie.obs.profiler.dropped")
      ->Add(dropped_.load(std::memory_order_relaxed));
}

uint64_t Profiler::samples() const {
  return std::min(next_.load(std::memory_order_relaxed), max_samples_);
}

std::string Profiler::FoldedStacks() const {
  const size_t n = samples();
  // Aggregate identical stacks by raw addresses first — symbolization is
  // by far the expensive step, so do it once per distinct stack.
  std::map<std::vector<void*>, uint64_t> stacks;
  for (size_t s = 0; s < n; ++s) {
    const size_t depth = depths_[s];
    if (depth == 0) continue;
    const void* const* base =
        frames_.data() + s * static_cast<size_t>(max_depth_);
    // backtrace() returns leaf-first; folded stacks want root-first. The
    // leading frames are the signal trampoline + handler; keep them — they
    // fold into one shared leaf and flamegraph renders them harmlessly.
    std::vector<void*> stack(depth);
    for (size_t f = 0; f < depth; ++f) {
      stack[f] = const_cast<void*>(base[depth - 1 - f]);
    }
    ++stacks[std::move(stack)];
  }
  std::map<std::string, uint64_t> folded;  // merge stacks that symbolize alike
  for (const auto& [stack, count] : stacks) {
    char** symbols =
        ::backtrace_symbols(stack.data(), static_cast<int>(stack.size()));
    std::string line;
    for (size_t f = 0; f < stack.size(); ++f) {
      if (f > 0) line += ';';
      std::string frame;
      if (symbols != nullptr && symbols[f] != nullptr) {
        // "binary(function+0x1a) [0xaddr]" — keep the function when the
        // symbol is exported, else fall back to the raw address.
        std::string_view sym(symbols[f]);
        const size_t open = sym.find('(');
        const size_t plus = sym.find('+', open == std::string_view::npos
                                               ? 0
                                               : open);
        if (open != std::string_view::npos && plus != std::string_view::npos &&
            plus > open + 1) {
          frame.assign(sym.substr(open + 1, plus - open - 1));
        }
      }
      if (frame.empty()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%zx",
                      reinterpret_cast<size_t>(stack[f]));
        frame = buf;
      }
      // ';' and ' ' are the folded-format delimiters.
      std::replace(frame.begin(), frame.end(), ';', ':');
      std::replace(frame.begin(), frame.end(), ' ', '_');
      line += frame;
    }
    ::free(symbols);
    folded[line] += count;
  }
  std::string out;
  for (const auto& [line, count] : folded) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Status Profiler::WriteFolded(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::Internal("profiler: cannot open " + path);
  const std::string folded = FoldedStacks();
  file.write(folded.data(), static_cast<std::streamsize>(folded.size()));
  file.flush();
  if (!file) return Status::Internal("profiler: short write to " + path);
  return Status::OK();
}

void Profiler::Reset() {
  armed_.store(false, std::memory_order_release);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  std::fill(depths_.begin(), depths_.end(), 0);
}

}  // namespace wsie::obs
