#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace wsie::obs {
namespace {

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"') {
      *out += "\\\"";
    } else if (c == '\\') {
      *out += "\\\\";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::mutex& ContextMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

TraceContext& ContextSlot() {
  static TraceContext* context = new TraceContext();
  return *context;
}

}  // namespace

TraceContext CurrentTraceContext() {
  std::lock_guard<std::mutex> lock(ContextMutex());
  return ContextSlot();
}

void SetTraceContext(const TraceContext& context) {
  std::lock_guard<std::mutex> lock(ContextMutex());
  ContextSlot() = context;
}

namespace {
uint64_t NewId() {
  static std::atomic<uint64_t> next{1};
  uint64_t id = 0;
  while (id == 0) {
    const uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
    id = SplitMix64(n ^ SplitMix64(static_cast<uint64_t>(::getpid()) ^
                                   (static_cast<uint64_t>(
                                        std::chrono::steady_clock::now()
                                            .time_since_epoch()
                                            .count())
                                    << 20)));
  }
  return id;
}
}  // namespace

uint64_t NewTraceId() { return NewId(); }
uint64_t NewSpanId() { return NewId(); }

std::string TraceContextArgs(const TraceContext& context) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "trace=%llx parent=%llx",
                static_cast<unsigned long long>(context.trace_id),
                static_cast<unsigned long long>(context.span_id));
  return buf;
}

void AppendChromeEvent(std::string* out, bool* first, const TraceEvent& event,
                       int pid, int tid, int64_t offset_ns) {
  if (!*first) *out += ',';
  *first = false;
  *out += "{\"name\":\"";
  AppendEscaped(out, event.name);
  *out += "\",\"cat\":\"wsie\",\"ph\":\"";
  *out += event.phase;
  char buf[80];
  // Chrome trace timestamps are microseconds; keep ns resolution. The
  // offset re-bases a remote recorder's clock into the coordinator's.
  const int64_t ts_ns =
      std::max<int64_t>(0, static_cast<int64_t>(event.ts_ns) + offset_ns);
  std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d",
                static_cast<double>(ts_ns) / 1000.0, pid, tid);
  *out += buf;
  if (event.args[0] != '\0') {
    *out += ",\"args\":{\"detail\":\"";
    AppendEscaped(out, event.args);
    *out += "\"}";
  }
  *out += '}';
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

namespace {
uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TraceRecorder::TraceRecorder()
    : id_(NextRecorderId()),
      dropped_counter_(
          MetricsRegistry::Global().GetCounter("wsie.obs.trace.dropped")),
      epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::SetRingCapacity(size_t events) {
  ring_capacity_.store(std::max<size_t>(events, 16),
                       std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer* TraceRecorder::ThisThreadBuffer() {
  // Per-thread cache of the (recorder id, buffer) pair: one recorder in
  // practice (Global()), so this is an integer compare on the hot path.
  // Keyed by the process-unique id (not the address, which the stack can
  // recycle across short-lived recorders in tests) and holding the buffer
  // by shared_ptr, so a cache hit can never dangle.
  static thread_local uint64_t cached_owner_id = 0;
  static thread_local std::shared_ptr<ThreadBuffer> cached_buffer;
  if (cached_owner_id == id_) return cached_buffer.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto buffer = std::make_shared<ThreadBuffer>(
      ring_capacity_.load(std::memory_order_relaxed), next_tid_++);
  buffers_.push_back(buffer);
  cached_owner_id = id_;
  cached_buffer = buffer;
  return cached_buffer.get();
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Push(char phase, std::string_view name,
                         std::string_view args) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  const uint64_t ts = NowNs();
  std::lock_guard<std::mutex> lock(buffer->mu);
  TraceEvent& event = buffer->ring[buffer->next];
  event.ts_ns = ts;
  event.phase = phase;
  CopyTruncated(event.name, TraceEvent::kNameCap, name);
  CopyTruncated(event.args, TraceEvent::kArgsCap, args);
  buffer->next = (buffer->next + 1) % buffer->ring.size();
  if (buffer->count < buffer->ring.size()) {
    ++buffer->count;
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // overwrote the oldest
    dropped_counter_->Increment();
  }
}

void TraceRecorder::Begin(std::string_view name, std::string_view args) {
  if (!enabled()) return;
  Push('B', name, args);
}

void TraceRecorder::End() {
  Push('E', {}, {});
}

size_t TraceRecorder::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->count;
  }
  return total;
}

std::vector<TraceRecorder::ThreadStream> TraceRecorder::ExportBalanced()
    const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<ThreadStream> streams;
  streams.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    ThreadStream stream;
    stream.tid = buffer->tid;
    stream.events.reserve(buffer->count);
    // Chronological order: the ring holds `count` events ending at `next`.
    size_t start = (buffer->next + buffer->ring.size() - buffer->count) %
                   buffer->ring.size();
    // Re-balance: drop 'E' events whose 'B' was overwritten (depth 0),
    // close still-open 'B' events with synthetic 'E's at the last ts.
    int depth = 0;
    uint64_t last_ts = 0;
    for (size_t i = 0; i < buffer->count; ++i) {
      const TraceEvent& event = buffer->ring[(start + i) % buffer->ring.size()];
      if (event.phase == 'E') {
        if (depth == 0) continue;
        --depth;
      } else {
        ++depth;
      }
      last_ts = std::max(last_ts, event.ts_ns);
      stream.events.push_back(event);
    }
    for (; depth > 0; --depth) {
      TraceEvent closer;
      closer.phase = 'E';
      closer.ts_ns = last_ts;
      stream.events.push_back(closer);
    }
    if (!stream.events.empty()) streams.push_back(std::move(stream));
  }
  return streams;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadStream& stream : ExportBalanced()) {
    for (const TraceEvent& event : stream.events) {
      AppendChromeEvent(&out, &first, event, /*pid=*/1, stream.tid,
                        /*offset_ns=*/0);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::Internal("cannot open trace file " + path);
  std::string json = ToChromeTraceJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return Status::Internal("short write to trace file " + path);
  return Status::OK();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->next = 0;
    buffer->count = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void ResetForkedProcessObs() {
  MetricsRegistry::Global().Reset();
  TraceRecorder::Global().ResetForFork();
}

}  // namespace wsie::obs
