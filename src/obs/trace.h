#ifndef WSIE_OBS_TRACE_H_
#define WSIE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"  // WSIE_OBS level

namespace wsie::obs {

/// One span boundary. Names and args are stored inline (truncated) so a
/// trace event never allocates on the recording path.
struct TraceEvent {
  static constexpr size_t kNameCap = 48;
  static constexpr size_t kArgsCap = 48;
  uint64_t ts_ns = 0;
  char phase = 'B';  ///< 'B' (begin) or 'E' (end)
  char name[kNameCap] = {};
  char args[kArgsCap] = {};
};

// ---------------------------------------------------------------------------
// Distributed trace context. One (trace_id, span_id) pair per process — a
// distributed run has a single coordinator-side root, workers inherit the
// pair across fork or adopt it from the first transport frame they see, and
// root spans embed it in their args so a stitched multi-pid trace keeps the
// causal parent links without needing Chrome flow events (the validator
// accepts only B/E phases).

struct TraceContext {
  uint64_t trace_id = 0;  ///< one id per distributed run, 0 = none
  uint64_t span_id = 0;   ///< the parent span on the other side of the hop
};

/// The process-wide current context (one distributed run at a time).
TraceContext CurrentTraceContext();
void SetTraceContext(const TraceContext& context);

/// Fresh nonzero ids (splitmix of a process counter, the pid, and the
/// clock) — unique within a run's process tree.
uint64_t NewTraceId();
uint64_t NewSpanId();

/// Formats "trace=<hex> parent=<hex>" for embedding in root-span args.
std::string TraceContextArgs(const TraceContext& context);

/// Appends one event as a Chrome trace_event JSON object (comma-separated
/// via `*first`), re-based by `offset_ns` and attributed to (pid, tid) —
/// the shared emitter under ToChromeTraceJson and the multi-process
/// stitcher.
void AppendChromeEvent(std::string* out, bool* first, const TraceEvent& event,
                       int pid, int tid, int64_t offset_ns);

/// Records span begin/end events into per-thread ring buffers and
/// serializes them as Chrome `trace_event` JSON — loadable in
/// `chrome://tracing` or https://ui.perfetto.dev.
///
/// Recording is wait-free against other threads (each thread owns its
/// buffer; a short per-buffer mutex orders the writer against the rare
/// serializer). When a ring fills, the oldest events are overwritten and
/// counted in dropped(); serialization re-balances each thread's stream
/// (orphan 'E' events whose 'B' was overwritten are discarded, still-open
/// 'B' events get a synthetic 'E'), so the emitted JSON always has matched
/// begin/end pairs per thread.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(WSIE_OBS >= 2 && enabled, std::memory_order_relaxed);
  }

  /// Ring capacity, in events per thread (default 65536). Applies to
  /// buffers created after the call.
  void SetRingCapacity(size_t events);

  void Begin(std::string_view name, std::string_view args = {});
  void End();

  /// Events overwritten because a ring wrapped.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Events currently buffered, across threads.
  size_t buffered() const;

  /// Nanoseconds since this recorder's epoch — the timestamp domain of
  /// every recorded event; the clock re-basing handshake ships this.
  uint64_t NowNs() const;

  /// One thread's buffered events, re-balanced (orphan 'E's dropped,
  /// still-open 'B's closed with a synthetic 'E' at the last timestamp)
  /// so every exported stream has matched pairs in timestamp order.
  struct ThreadStream {
    int tid = 0;
    std::vector<TraceEvent> events;
  };
  std::vector<ThreadStream> ExportBalanced() const;

  /// Serializes all buffered events as one Chrome trace JSON object:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Discards all buffered events (buffers stay registered).
  void Clear();

  /// Child-side post-fork reset: discards the rings and drop count the
  /// child inherited from its parent so a forked worker reports only its
  /// own spans. The inherited trace context is kept — it is the causal
  /// link back to the coordinator, not accumulated state.
  void ResetForFork() { Clear(); }

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(size_t cap, int tid_in) : ring(cap), tid(tid_in) {}
    std::mutex mu;
    std::vector<TraceEvent> ring;
    size_t next = 0;    ///< write position
    size_t count = 0;   ///< events held (<= ring.size())
    int tid = 0;
  };

  ThreadBuffer* ThisThreadBuffer();
  void Push(char phase, std::string_view name, std::string_view args);

  const uint64_t id_;  ///< process-unique; keys the per-thread buffer cache
  std::atomic<bool> enabled_{false};
  Counter* dropped_counter_;  ///< wsie.obs.trace.dropped
  std::atomic<uint64_t> dropped_{0};
  std::atomic<size_t> ring_capacity_{65536};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 1;
};

/// RAII span: Begin at construction, End at destruction. The begin decision
/// is latched, so a span that started recording always closes even if
/// tracing is disabled mid-span.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view args = {}) {
    if (WSIE_OBS >= 2 && TraceRecorder::Global().enabled()) {
      recording_ = true;
      TraceRecorder::Global().Begin(name, args);
    }
  }
  ~ScopedSpan() {
    if (recording_) TraceRecorder::Global().End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool recording_ = false;
};

/// Everything a forked worker must shed before doing its own work: the
/// global registry's inherited counts and the global recorder's inherited
/// rings. Called in the child immediately after fork, before any metric or
/// span of its own — the fork-safety contract the multiprocess shard
/// runtime relies on (a parent-side count must never reappear in a
/// worker's shipped snapshot).
void ResetForkedProcessObs();

}  // namespace wsie::obs

/// Span macro: compiled out entirely below trace level.
#if WSIE_OBS >= 2
#define WSIE_OBS_CONCAT_(a, b) a##b
#define WSIE_OBS_CONCAT(a, b) WSIE_OBS_CONCAT_(a, b)
#define WSIE_TRACE_SPAN(...) \
  ::wsie::obs::ScopedSpan WSIE_OBS_CONCAT(wsie_span_, __LINE__)(__VA_ARGS__)
#else
#define WSIE_TRACE_SPAN(...) \
  do {                       \
  } while (0)
#endif

#endif  // WSIE_OBS_TRACE_H_
