#include "obs/remote.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "fault/checkpoint.h"
#include "fault/wire_format.h"

namespace wsie::obs {
namespace {

namespace wire = wsie::fault::wire;

std::string EncodeMeta(const ObsBundle& bundle) {
  std::string out;
  wire::PutU64(&out, static_cast<uint64_t>(static_cast<int64_t>(bundle.shard)));
  wire::PutU64(&out, static_cast<uint64_t>(bundle.os_pid));
  wire::PutU64(&out, bundle.now_ns);
  wire::PutU64(&out, bundle.trace_dropped);
  return out;
}

std::string EncodeCounters(const std::vector<CounterSnapshot>& counters) {
  std::string out;
  wire::PutU64(&out, counters.size());
  for (const CounterSnapshot& c : counters) {
    wire::PutString(&out, c.name);
    wire::PutU64(&out, c.value);
  }
  return out;
}

std::string EncodeGauges(const std::vector<GaugeSnapshot>& gauges) {
  std::string out;
  wire::PutU64(&out, gauges.size());
  for (const GaugeSnapshot& g : gauges) {
    wire::PutString(&out, g.name);
    wire::PutDouble(&out, g.value);
  }
  return out;
}

std::string EncodeHistograms(const std::vector<HistogramSnapshot>& hists) {
  std::string out;
  wire::PutU64(&out, hists.size());
  for (const HistogramSnapshot& h : hists) {
    wire::PutString(&out, h.name);
    wire::PutU64(&out, h.bounds.size());
    for (double b : h.bounds) wire::PutDouble(&out, b);
    for (uint64_t c : h.bucket_counts) wire::PutU64(&out, c);
    wire::PutDouble(&out, h.sum);
  }
  return out;
}

std::string EncodeStreams(
    const std::vector<TraceRecorder::ThreadStream>& streams) {
  std::string out;
  wire::PutU64(&out, streams.size());
  for (const TraceRecorder::ThreadStream& stream : streams) {
    wire::PutU64(&out, static_cast<uint64_t>(stream.tid));
    wire::PutU64(&out, stream.events.size());
    for (const TraceEvent& event : stream.events) {
      wire::PutU64(&out, event.ts_ns);
      wire::PutU64(&out, static_cast<uint64_t>(event.phase));
      wire::PutString(&out, event.name);
      wire::PutString(&out, event.args);
    }
  }
  return out;
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("obs bundle: malformed ") + what);
}

Status DecodeMeta(std::string_view in, ObsBundle* bundle) {
  uint64_t shard = 0, pid = 0;
  if (!wire::GetU64(&in, &shard) || !wire::GetU64(&in, &pid) ||
      !wire::GetU64(&in, &bundle->now_ns) ||
      !wire::GetU64(&in, &bundle->trace_dropped)) {
    return Malformed("meta");
  }
  bundle->shard = static_cast<int>(static_cast<int64_t>(shard));
  bundle->os_pid = static_cast<int>(pid);
  return Status::OK();
}

Status DecodeCounters(std::string_view in,
                      std::vector<CounterSnapshot>* counters) {
  uint64_t n = 0;
  if (!wire::GetU64(&in, &n) || n > (1u << 20)) return Malformed("counters");
  counters->resize(n);
  for (CounterSnapshot& c : *counters) {
    if (!wire::GetString(&in, &c.name) || !wire::GetU64(&in, &c.value)) {
      return Malformed("counter");
    }
  }
  return Status::OK();
}

Status DecodeGauges(std::string_view in, std::vector<GaugeSnapshot>* gauges) {
  uint64_t n = 0;
  if (!wire::GetU64(&in, &n) || n > (1u << 20)) return Malformed("gauges");
  gauges->resize(n);
  for (GaugeSnapshot& g : *gauges) {
    if (!wire::GetString(&in, &g.name) || !wire::GetDouble(&in, &g.value)) {
      return Malformed("gauge");
    }
  }
  return Status::OK();
}

Status DecodeHistograms(std::string_view in,
                        std::vector<HistogramSnapshot>* hists) {
  uint64_t n = 0;
  if (!wire::GetU64(&in, &n) || n > (1u << 20)) return Malformed("histograms");
  hists->resize(n);
  for (HistogramSnapshot& h : *hists) {
    uint64_t bounds = 0;
    if (!wire::GetString(&in, &h.name) || !wire::GetU64(&in, &bounds) ||
        bounds > (1u << 16)) {
      return Malformed("histogram");
    }
    h.bounds.resize(bounds);
    for (double& b : h.bounds) {
      if (!wire::GetDouble(&in, &b)) return Malformed("histogram bound");
    }
    h.bucket_counts.resize(bounds + 1);
    h.count = 0;
    for (uint64_t& c : h.bucket_counts) {
      if (!wire::GetU64(&in, &c)) return Malformed("histogram bucket");
      h.count += c;
    }
    if (!wire::GetDouble(&in, &h.sum)) return Malformed("histogram sum");
  }
  return Status::OK();
}

Status DecodeStreams(std::string_view in,
                     std::vector<TraceRecorder::ThreadStream>* streams) {
  uint64_t n = 0;
  if (!wire::GetU64(&in, &n) || n > (1u << 16)) return Malformed("streams");
  streams->resize(n);
  for (TraceRecorder::ThreadStream& stream : *streams) {
    uint64_t tid = 0, events = 0;
    if (!wire::GetU64(&in, &tid) || !wire::GetU64(&in, &events) ||
        events > (1u << 24)) {
      return Malformed("stream");
    }
    stream.tid = static_cast<int>(tid);
    stream.events.resize(events);
    std::string name, args;
    for (TraceEvent& event : stream.events) {
      uint64_t phase = 0;
      if (!wire::GetU64(&in, &event.ts_ns) || !wire::GetU64(&in, &phase) ||
          !wire::GetString(&in, &name) || !wire::GetString(&in, &args)) {
        return Malformed("event");
      }
      if (phase != 'B' && phase != 'E') return Malformed("event phase");
      event.phase = static_cast<char>(phase);
      const size_t name_n = std::min(name.size(), TraceEvent::kNameCap - 1);
      std::memcpy(event.name, name.data(), name_n);
      event.name[name_n] = '\0';
      const size_t args_n = std::min(args.size(), TraceEvent::kArgsCap - 1);
      std::memcpy(event.args, args.data(), args_n);
      event.args[args_n] = '\0';
    }
  }
  return Status::OK();
}

}  // namespace

ObsBundle CaptureObsBundle(int shard) {
  ObsBundle bundle;
  bundle.shard = shard;
  bundle.os_pid = static_cast<int>(::getpid());
  bundle.metrics = MetricsRegistry::Global().Snapshot();
  const TraceRecorder& recorder = TraceRecorder::Global();
  bundle.streams = recorder.ExportBalanced();
  bundle.trace_dropped = recorder.dropped();
  bundle.now_ns = recorder.NowNs();
  return bundle;
}

std::string EncodeObsBundle(const ObsBundle& bundle) {
  fault::Checkpoint checkpoint;
  checkpoint.SetSection("meta", EncodeMeta(bundle));
  checkpoint.SetSection("counters", EncodeCounters(bundle.metrics.counters));
  checkpoint.SetSection("gauges", EncodeGauges(bundle.metrics.gauges));
  checkpoint.SetSection("histograms",
                        EncodeHistograms(bundle.metrics.histograms));
  checkpoint.SetSection("trace", EncodeStreams(bundle.streams));
  return checkpoint.Serialize();
}

Result<ObsBundle> DecodeObsBundle(std::string_view bytes) {
  WSIE_ASSIGN_OR_RETURN(fault::Checkpoint checkpoint,
                        fault::Checkpoint::Deserialize(bytes));
  ObsBundle bundle;
  const std::string* meta = checkpoint.FindSection("meta");
  const std::string* counters = checkpoint.FindSection("counters");
  const std::string* gauges = checkpoint.FindSection("gauges");
  const std::string* histograms = checkpoint.FindSection("histograms");
  const std::string* trace = checkpoint.FindSection("trace");
  if (meta == nullptr || counters == nullptr || gauges == nullptr ||
      histograms == nullptr || trace == nullptr) {
    return Status::InvalidArgument("obs bundle: missing section");
  }
  WSIE_RETURN_NOT_OK(DecodeMeta(*meta, &bundle));
  WSIE_RETURN_NOT_OK(DecodeCounters(*counters, &bundle.metrics.counters));
  WSIE_RETURN_NOT_OK(DecodeGauges(*gauges, &bundle.metrics.gauges));
  WSIE_RETURN_NOT_OK(
      DecodeHistograms(*histograms, &bundle.metrics.histograms));
  WSIE_RETURN_NOT_OK(DecodeStreams(*trace, &bundle.streams));
  return bundle;
}

std::string AppendMetricLabel(std::string_view name, std::string_view key,
                              std::string_view value) {
  if (!name.empty() && name.back() == '}') {
    std::string out(name.substr(0, name.size() - 1));
    out.append(",").append(key).append("=\"").append(value).append("\"}");
    return out;
  }
  return WithLabel(name, key, value);
}

MetricsSnapshot MergeSnapshots(const std::vector<ObsBundle>& bundles) {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Which histogram names carry the same bounds on every shard? Only those
  // may add bucket-wise; the rest are demoted to labeled per-shard series.
  std::map<std::string, const std::vector<double>*> first_bounds;
  std::set<std::string> inconsistent;
  for (const ObsBundle& bundle : bundles) {
    for (const HistogramSnapshot& h : bundle.metrics.histograms) {
      auto [it, inserted] = first_bounds.try_emplace(h.name, &h.bounds);
      if (!inserted && *it->second != h.bounds) inconsistent.insert(h.name);
    }
  }

  for (const ObsBundle& bundle : bundles) {
    const std::string shard = std::to_string(bundle.shard);
    for (const CounterSnapshot& c : bundle.metrics.counters) {
      counters[c.name] += c.value;
    }
    for (const GaugeSnapshot& g : bundle.metrics.gauges) {
      gauges[AppendMetricLabel(g.name, "shard", shard)] = g.value;
    }
    for (const HistogramSnapshot& h : bundle.metrics.histograms) {
      if (inconsistent.count(h.name) != 0) {
        HistogramSnapshot labeled = h;
        labeled.name = AppendMetricLabel(h.name, "shard", shard);
        histograms[labeled.name] = std::move(labeled);
        continue;
      }
      auto [it, inserted] = histograms.try_emplace(h.name, h);
      if (inserted) continue;
      HistogramSnapshot& merged = it->second;
      for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
        merged.bucket_counts[i] += h.bucket_counts[i];
      }
      merged.count += h.count;
      merged.sum += h.sum;
    }
  }

  MetricsSnapshot merged;
  merged.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    merged.counters.push_back({name, value});
  }
  merged.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) {
    merged.gauges.push_back({name, value});
  }
  merged.histograms.reserve(histograms.size());
  for (auto& [name, h] : histograms) {
    HistogramSnapshot out = std::move(h);
    out.name = name;
    merged.histograms.push_back(std::move(out));
  }
  return merged;
}

std::string StitchChromeTrace(const std::vector<ProcessTrace>& processes,
                              StitchReport* report) {
  StitchReport stats;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const ProcessTrace& process : processes) {
    size_t process_events = 0;
    for (const TraceRecorder::ThreadStream& stream : process.streams) {
      if (stream.events.empty()) continue;
      ++stats.threads;
      process_events += stream.events.size();
      for (const TraceEvent& event : stream.events) {
        AppendChromeEvent(&out, &first, event, process.pid, stream.tid,
                          process.offset_ns);
      }
    }
    if (process_events > 0) ++stats.processes;
    stats.events += process_events;
    stats.dropped += process.dropped;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  if (report != nullptr) *report = stats;
  return out;
}

}  // namespace wsie::obs
