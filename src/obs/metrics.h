#ifndef WSIE_OBS_METRICS_H_
#define WSIE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

/// Compile-time observability level:
///   0 — everything compiled out (all hot-path checks fold to constants),
///   1 — metrics only,
///   2 — metrics + tracing (default).
/// Set via -DWSIE_OBS_LEVEL=<n> at CMake configure time.
#ifndef WSIE_OBS
#define WSIE_OBS 2
#endif

namespace wsie::obs {

// ---------------------------------------------------------------------------
// Runtime enable. The hot-path predicate is one relaxed atomic load plus a
// branch; with WSIE_OBS == 0 it is a compile-time false and every metric
// call site is dead code.

namespace internal {
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

inline bool MetricsEnabled() {
  return WSIE_OBS >= 1 &&
         internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {
/// Per-thread shard index, hashed once per thread. Sharding spreads
/// concurrent writers of one counter across cache lines so a hot counter
/// never becomes a coherence ping-pong point.
inline size_t ThisThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return shard;
}

/// fetch_add for atomic<double> via CAS (portable across libstdc++ versions).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}
}  // namespace internal

// ---------------------------------------------------------------------------
// Metric primitives. All are lock-free on the write path (relaxed atomics)
// and owned by the registry — handles returned by MetricsRegistry are stable
// for the life of the process, so callers hoist the name lookup out of hot
// loops and keep the raw pointer.

/// A monotonically increasing counter, sharded across cache lines.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!MetricsEnabled()) return;
    shards_[internal::ThisThreadShard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over shards. Concurrent Add() calls may or may not be visible —
  /// each shard is read atomically, so the result is never torn.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A last-write-wins instantaneous value (frontier size, harvest rate).
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(double delta) {
    if (!MetricsEnabled()) return;
    internal::AtomicAddDouble(&value_, delta);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i] (Prometheus `le` semantics); one implicit
/// overflow bucket catches v > bounds.back(). The observation count is
/// derived from the buckets at read time, so a snapshot's count always
/// equals the sum of its bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) {
    if (!MetricsEnabled()) return;
    size_t lo = 0, hi = bounds_.size();  // branchless-ish upper_bound
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (value <= bounds_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    counts_[lo].fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(&sum_, value);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (size bounds()+1; last is the overflow bucket).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
};

/// `count` log-spaced (geometric) bucket bounds from `lo` to `hi`, both
/// inclusive. Denser than the 1-2-5 ladder: with ~15 buckets per decade the
/// bucket ratio is ~1.17, so linear interpolation inside a bucket bounds
/// the p50/p99 estimate error below 10% of the exact sample quantile —
/// latency gates built on Quantile() stop being bucket-artifact sensitive.
std::vector<double> LogSpacedBuckets(double lo, double hi, size_t count);

/// Log-spaced latency bounds in nanoseconds, 1 µs .. 100 s, 15 per decade.
const std::vector<double>& LogLatencyBucketsNs();

/// Default latency buckets in nanoseconds: a 1-2-5 ladder from 1 µs to 100 s.
const std::vector<double>& LatencyBucketsNs();
/// Default latency buckets in milliseconds: 1-2-5 ladder, 0.1 ms to 100 s.
const std::vector<double>& LatencyBucketsMs();
/// Default size buckets in bytes: powers of four from 64 B to 1 GiB.
const std::vector<double>& BytesBuckets();

// ---------------------------------------------------------------------------
// Snapshots: a point-in-time copy of every registered metric. Each value is
// read atomically; counters are monotone, so two successive snapshots are
// ordered per metric, and a histogram snapshot's count equals the sum of
// its bucket counts by construction.

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  ///< size bounds+1 (overflow last)
  uint64_t count = 0;
  double sum = 0.0;

  /// Bucket-interpolated quantile estimate, q in [0, 1]. Returns 0 when
  /// empty; overflow-bucket observations report the top bound.
  double Quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of counter `name`, 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  /// Value of gauge `name`, 0.0 when absent.
  double GaugeValue(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  /// Sum of the values of every counter whose name starts with `prefix`.
  uint64_t CounterPrefixSum(std::string_view prefix) const;
};

// ---------------------------------------------------------------------------
// The registry.

/// Formats `base{key="value"}` — the labeled-metric naming convention. The
/// exporters understand the embedded label block and re-emit it in
/// Prometheus exposition syntax.
std::string WithLabel(std::string_view base, std::string_view key,
                      std::string_view value);
std::string WithLabels(std::string_view base, std::string_view key1,
                       std::string_view value1, std::string_view key2,
                       std::string_view value2);

/// Process-wide metric registry. Registration (name lookup) takes a mutex
/// and returns a stable handle; all value mutation is lock-free. Metric
/// names follow `wsie.<subsystem>.<name>`, optionally with a `{k="v"}`
/// label block (see WithLabel).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  /// The returned pointer is valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = LatencyBucketsNs());

  /// Point-in-time copy of every metric, in sorted-name order.
  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition format (histograms as cumulative
  /// `_bucket{le=...}` series plus `_count`/`_sum`).
  std::string DumpPrometheusText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string DumpJson() const;

  /// Zeroes every value; registrations and handles stay valid. For tests
  /// and the overhead microbench.
  void Reset();

  size_t num_metrics() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps dumps and snapshots in deterministic sorted order.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace wsie::obs

#endif  // WSIE_OBS_METRICS_H_
