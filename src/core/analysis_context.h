#ifndef WSIE_CORE_ANALYSIS_CONTEXT_H_
#define WSIE_CORE_ANALYSIS_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "corpus/document.h"
#include "corpus/lexicon.h"
#include "ie/crf_tagger.h"
#include "ie/dictionary_tagger.h"
#include "nlp/abbreviation.h"
#include "nlp/linguistic.h"
#include "nlp/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wsie::core {

/// Tuning for the shared analysis context.
struct AnalysisContextConfig {
  /// Sentences of Medline-register gold data per CRF tagger.
  size_t crf_training_sentences = 1200;
  ml::CrfTrainOptions crf_train_options = {/*epochs=*/6, /*learning_rate=*/0.1,
                                           /*l2=*/1e-6, /*shuffle_seed=*/7};
  size_t pos_training_sentences = 4000;
  /// Hard sentence-length cap for the POS tagger (tokens); 0 = unlimited.
  size_t pos_max_tokens = 1000;
  uint64_t seed = 4242;
  /// Build dictionary taggers lazily in operator Open() (true reproduces
  /// the per-flow start-up cost; false prebuilds at context construction).
  bool lazy_dictionaries = true;
  /// Fraction of each lexicon present in the dictionaries. Dictionaries are
  /// "necessarily incomplete in a field developing as fast as biomedical
  /// research" (Sect. 3.2) — dictionary matching therefore has good
  /// precision but low recall, while ML taggers also find out-of-dictionary
  /// names (and false positives), yielding far more distinct names
  /// (Table 4).
  double dictionary_coverage = 0.55;
};

/// Shared, immutable-after-construction toolbox for the analysis pipeline:
/// lexicons, trained ML taggers, trained POS tagger, and (possibly lazily
/// built) dictionary taggers. One context is shared by all operators of a
/// flow, mirroring the per-job tool instances of the paper's setup.
///
/// The CRF taggers are trained on *Medline-register* gold text only — the
/// paper's central caveat ("all ML-based methods used in this project employ
/// models trained on Medline abstracts since no other training data is
/// available", Sect. 5). In that register, out-of-lexicon acronyms are
/// almost always genes, so the trained gene model aggressively tags TLAs —
/// the exact false-positive pathology the paper hits on web text.
class AnalysisContext {
 public:
  explicit AnalysisContext(AnalysisContextConfig config = {});

  const corpus::EntityLexicons& lexicons() const { return lexicons_; }
  const AnalysisContextConfig& config() const { return config_; }

  const text::SentenceSplitter& splitter() const { return splitter_; }
  const text::Tokenizer& tokenizer() const { return tokenizer_; }
  const nlp::PosTagger& pos_tagger() const { return pos_tagger_; }
  const nlp::LinguisticExtractor& linguistic() const { return linguistic_; }
  const nlp::AbbreviationDetector& abbreviations() const {
    return abbreviations_;
  }

  /// The ML tagger for `type` (BANNER-like gene, ChemSpot-like drug, the
  /// in-house disease tagger).
  const ie::CrfTagger& crf_tagger(ie::EntityType type) const;

  /// Dictionary tagger for `type`; builds it on first use when lazy (the
  /// automaton-construction start-up cost of Sect. 4.2).
  const ie::DictionaryTagger& dictionary_tagger(ie::EntityType type) const;

  /// Forces dictionary construction now (used by benches to time it).
  void BuildDictionaries() const;

  /// Generates Medline-register gold sentences for `type` and trains a CRF
  /// from them. Exposed for tests.
  static std::vector<ie::TaggedSentence> MakeGoldSentences(
      const corpus::EntityLexicons& lexicons, ie::EntityType type,
      size_t num_sentences, uint64_t seed);

 private:
  void TrainCrf(ie::EntityType type);

  AnalysisContextConfig config_;
  corpus::EntityLexicons lexicons_;
  text::SentenceSplitter splitter_;
  text::Tokenizer tokenizer_;
  nlp::PosTagger pos_tagger_;
  nlp::LinguisticExtractor linguistic_;
  nlp::AbbreviationDetector abbreviations_;
  std::vector<std::unique_ptr<ie::CrfTagger>> crf_taggers_;  // by EntityType
  mutable std::vector<std::unique_ptr<ie::DictionaryTagger>> dict_taggers_;
  mutable std::mutex dict_mu_;
};

}  // namespace wsie::core

#endif  // WSIE_CORE_ANALYSIS_CONTEXT_H_
