#ifndef WSIE_CORE_OPERATORS_DC_H_
#define WSIE_CORE_OPERATORS_DC_H_

#include <string>

#include "core/operators_ie.h"
#include "dc/near_duplicate.h"
#include "dataflow/operator.h"

namespace wsie::core {

/// Record field holding extracted relations:
///   "relations": [ { "type": string, "arg1": string, "arg2": string,
///                    "confidence": double, "trigger": string } ]
inline constexpr char kFieldRelations[] = "relations";

/// DC: drops near-duplicate documents (MinHash + LSH over the "text"
/// field). Web crawls are heavily redundant; duplicates distort the
/// frequency statistics of the content analysis.
dataflow::OperatorPtr MakeDeduplicateDocuments(
    dc::NearDuplicateOptions options = {});

/// Strategies for reconciling entity annotations produced by different
/// methods (Sopremo IE package: "merging annotations using different
/// schemes", Sect. 3.1).
enum class MergeStrategy {
  kUnion,      ///< keep everything (default pipeline behaviour)
  kPreferMl,   ///< on span overlap, keep the ML annotation
  kPreferDict, ///< on span overlap, keep the dictionary annotation
  kLongest,    ///< on span overlap, keep the longer mention
};

/// IE: merges the record's entity annotations according to `strategy`.
dataflow::OperatorPtr MakeMergeAnnotations(MergeStrategy strategy);

/// IE: extracts binary relations from each sentence's entity annotations
/// (co-occurrence + trigger patterns + negation damping) into the
/// "relations" field.
dataflow::OperatorPtr MakeExtractRelations(ContextPtr context,
                                           double min_confidence = 0.0);

}  // namespace wsie::core

#endif  // WSIE_CORE_OPERATORS_DC_H_
