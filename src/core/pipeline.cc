#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <span>

#include "common/string_util.h"
#include "core/operators_dc.h"
#include "dataflow/operators_base.h"

namespace wsie::core {

dataflow::Plan BuildAnalysisFlow(ContextPtr context,
                                 const FlowOptions& options) {
  dataflow::Plan plan;
  int docs = plan.AddSource("docs");
  int head = docs;
  if (options.web_preprocessing) {
    head = plan.AddNode(MakeFilterLongDocuments(options.max_doc_chars), {head});
    head = plan.AddNode(MakeRepairMarkup(), {head});
    head = plan.AddNode(MakeRemoveBoilerplate(), {head});
  }
  head = plan.AddNode(MakeAnnotateSentences(context), {head});

  std::vector<int> branch_tails;
  if (options.linguistic_analysis) {
    int ling = plan.AddNode(MakeFindNegation(context), {head});
    ling = plan.AddNode(MakeFindPronouns(context), {ling});
    ling = plan.AddNode(MakeFindParentheses(context), {ling});
    ling = plan.AddNode(MakeFindAbbreviations(context), {ling});
    branch_tails.push_back(ling);
  }
  if (options.entity_annotation) {
    int entity = plan.AddNode(MakeAnnotatePos(context), {head});
    for (ie::EntityType type : options.entity_types) {
      if (options.dictionary_methods) {
        size_t modeled = options.paper_scale_memory
                             ? PaperScaleDictMemoryBytes(type)
                             : 0;
        entity = plan.AddNode(MakeAnnotateEntitiesDict(context, type, modeled),
                              {entity});
      }
      if (options.ml_methods) {
        size_t modeled =
            options.paper_scale_memory ? PaperScaleMlMemoryBytes(type) : 0;
        entity = plan.AddNode(MakeAnnotateEntitiesMl(context, type, modeled),
                              {entity});
      }
    }
    if (options.tla_filter) {
      entity = plan.AddNode(MakeFilterTla(), {entity});
    }
    branch_tails.push_back(entity);
  }

  int tail = head;
  if (branch_tails.size() == 1) {
    tail = branch_tails[0];
  } else if (branch_tails.size() > 1) {
    // Union of the branch outputs (each record appears once per branch with
    // that branch's annotations; analytics merges by document id).
    class UnionOp : public dataflow::Operator {
     public:
      std::string name() const override { return "union_results"; }
      dataflow::OperatorTraits traits() const override {
        dataflow::OperatorTraits t;
        t.record_at_a_time = false;  // multi-input: a pipeline breaker
        return t;
      }
      Status ProcessSpan(std::span<const dataflow::Record> in,
                         dataflow::Dataset* out) const override {
        out->insert(out->end(), in.begin(), in.end());
        return Status::OK();
      }
      Status ProcessOwned(std::span<dataflow::Record> in,
                          dataflow::Dataset* out) const override {
        for (dataflow::Record& r : in) out->push_back(std::move(r));
        return Status::OK();
      }
    };
    tail = plan.AddNode(std::make_shared<UnionOp>(), branch_tails);
  }
  plan.MarkSink(tail, "analyzed");
  return plan;
}

void RegisterPipelineOperators(ContextPtr context,
                               dataflow::OperatorRegistry* registry) {
  using Args = std::map<std::string, std::string>;
  auto parse_type = [](const Args& args) -> Result<ie::EntityType> {
    auto it = args.find("type");
    if (it == args.end()) {
      return Status::InvalidArgument("missing 'type' argument");
    }
    if (it->second == "gene") return ie::EntityType::kGene;
    if (it->second == "drug") return ie::EntityType::kDrug;
    if (it->second == "disease") return ie::EntityType::kDisease;
    return Status::InvalidArgument("unknown entity type '" + it->second + "'");
  };

  registry->Register("filter_long_documents",
                     [](const Args& args) -> Result<dataflow::OperatorPtr> {
                       size_t max_chars = 1u << 20;
                       auto it = args.find("max");
                       if (it != args.end()) {
                         max_chars = static_cast<size_t>(
                             std::strtoull(it->second.c_str(), nullptr, 10));
                       }
                       return MakeFilterLongDocuments(max_chars);
                     });
  registry->Register("repair_markup",
                     [](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeRepairMarkup();
                     });
  registry->Register("remove_boilerplate",
                     [](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeRemoveBoilerplate();
                     });
  registry->Register("annotate_sentences",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeAnnotateSentences(context);
                     });
  registry->Register("annotate_pos",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeAnnotatePos(context);
                     });
  registry->Register("find_negation",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeFindNegation(context);
                     });
  registry->Register("find_pronouns",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeFindPronouns(context);
                     });
  registry->Register("find_parentheses",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeFindParentheses(context);
                     });
  registry->Register("find_abbreviations",
                     [context](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeFindAbbreviations(context);
                     });
  registry->Register(
      "annotate_entities",
      [context, parse_type](const Args& args) -> Result<dataflow::OperatorPtr> {
        auto type = parse_type(args);
        if (!type.ok()) return type.status();
        auto method = args.find("method");
        bool ml = method != args.end() && method->second == "ml";
        if (ml) return MakeAnnotateEntitiesMl(context, type.value());
        return MakeAnnotateEntitiesDict(context, type.value());
      });
  registry->Register("filter_tla",
                     [](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeFilterTla();
                     });
  registry->Register("deduplicate_documents",
                     [](const Args&) -> Result<dataflow::OperatorPtr> {
                       return MakeDeduplicateDocuments();
                     });
  registry->Register(
      "merge_annotations",
      [](const Args& args) -> Result<dataflow::OperatorPtr> {
        auto it = args.find("strategy");
        MergeStrategy strategy = MergeStrategy::kUnion;
        if (it != args.end()) {
          if (it->second == "prefer-ml") {
            strategy = MergeStrategy::kPreferMl;
          } else if (it->second == "prefer-dict") {
            strategy = MergeStrategy::kPreferDict;
          } else if (it->second == "longest") {
            strategy = MergeStrategy::kLongest;
          } else if (it->second != "union") {
            return Status::InvalidArgument("unknown merge strategy '" +
                                           it->second + "'");
          }
        }
        return MakeMergeAnnotations(strategy);
      });
  registry->Register(
      "extract_relations",
      [context](const Args& args) -> Result<dataflow::OperatorPtr> {
        double min_confidence = 0.0;
        auto it = args.find("min_confidence");
        if (it != args.end()) {
          min_confidence = std::strtod(it->second.c_str(), nullptr);
        }
        return MakeExtractRelations(context, min_confidence);
      });
}

dataflow::Dataset DocumentsToRecords(
    const std::vector<corpus::Document>& docs) {
  dataflow::Dataset records;
  records.reserve(docs.size());
  for (const corpus::Document& doc : docs) {
    dataflow::Record r;
    r.SetField(kFieldId, static_cast<int64_t>(doc.id));
    r.SetField(kFieldCorpus, std::string(corpus::CorpusKindName(doc.kind)));
    r.SetField(kFieldText, doc.text);
    records.push_back(std::move(r));
  }
  return records;
}

Status CheckLibraryConflicts(const dataflow::Plan& plan) {
  std::map<std::string, std::string> library_versions;  // lib -> version
  for (const auto& node : plan.nodes()) {
    if (node.is_source()) continue;
    std::string dep = OperatorLibraryDependency(node.op->name());
    if (dep.empty()) continue;
    std::vector<std::string> parts = Split(dep, ':');
    if (parts.size() != 2) continue;
    auto [it, inserted] = library_versions.try_emplace(parts[0], parts[1]);
    if (!inserted && it->second != parts[1]) {
      return Status::FailedPrecondition(
          "operator '" + node.op->name() + "' needs " + dep +
          " but the flow already loads " + parts[0] + ":" + it->second +
          " (the runtime cannot load two versions of one library, Sect. 4.2)");
    }
  }
  return Status::OK();
}

std::vector<FlowOptions> SplitFlowByMemory(const FlowOptions& full,
                                           size_t memory_budget_bytes) {
  // Estimate each candidate part's footprint and emit parts that fit:
  // one linguistic flow plus one flow per entity class (the paper's split).
  std::vector<FlowOptions> parts;
  if (full.linguistic_analysis) {
    FlowOptions ling = full;
    ling.entity_annotation = false;
    parts.push_back(ling);
  }
  if (full.entity_annotation) {
    for (ie::EntityType type : full.entity_types) {
      FlowOptions part = full;
      part.linguistic_analysis = false;
      part.entity_types = {type};
      size_t need = 0;
      if (part.dictionary_methods) {
        need += part.paper_scale_memory ? PaperScaleDictMemoryBytes(type) : 0;
      }
      if (part.ml_methods) {
        need += part.paper_scale_memory ? PaperScaleMlMemoryBytes(type) : 0;
      }
      if (memory_budget_bytes > 0 && need > memory_budget_bytes) {
        // Even the single-entity flow does not fit (the gene case): split
        // dictionary and ML methods into separate runs.
        FlowOptions dict_only = part;
        dict_only.ml_methods = false;
        FlowOptions ml_only = part;
        ml_only.dictionary_methods = false;
        parts.push_back(dict_only);
        parts.push_back(ml_only);
      } else {
        parts.push_back(part);
      }
    }
  }
  return parts;
}

Result<dataflow::ExecutionResult> RunFlow(
    const dataflow::Plan& plan, const std::vector<corpus::Document>& docs,
    const dataflow::ExecutorConfig& executor_config,
    bool check_library_conflicts) {
  if (check_library_conflicts) {
    WSIE_RETURN_NOT_OK(CheckLibraryConflicts(plan));
  }
  dataflow::Executor executor(executor_config);
  std::map<std::string, dataflow::Dataset> sources;
  sources["docs"] = DocumentsToRecords(docs);
  return executor.Run(plan, sources);
}

Result<shard::ShardExecutionResult> RunFlowSharded(
    ContextPtr context, const FlowOptions& options,
    const std::vector<corpus::Document>& docs,
    const shard::ShardOptions& shard_options) {
  shard::ShardRuntime runtime(shard_options);
  std::map<std::string, dataflow::Dataset> sources;
  sources["docs"] = DocumentsToRecords(docs);
  return runtime.Run(
      [&context, &options](int) {
        return BuildAnalysisFlow(context, options);
      },
      sources);
}

}  // namespace wsie::core
