#ifndef WSIE_CORE_RECORD_SENTENCES_H_
#define WSIE_CORE_RECORD_SENTENCES_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/operators_ie.h"
#include "dataflow/value.h"
#include "text/token.h"

namespace wsie::core {

/// Decodes one sentence's token offsets from its record Value into
/// non-owning view tokens over `text`. `*tokens` is cleared first; invalid
/// offsets (out of range or empty) are skipped, matching the pipeline's
/// historical skip semantics. The views alias `text` — they are valid only
/// while the record's text field stays in place.
inline void DecodeSentenceTokens(const std::string& text,
                                 const dataflow::Value& sentence_value,
                                 std::vector<text::Token>* tokens) {
  tokens->clear();
  for (const dataflow::Value& tv : sentence_value.Field("tokens").AsArray()) {
    size_t tb = static_cast<size_t>(tv.Field("b").AsInt());
    size_t te = static_cast<size_t>(tv.Field("e").AsInt());
    if (te > text.size() || tb >= te) continue;
    tokens->push_back(
        text::Token{std::string_view(text.data() + tb, te - tb), tb, te});
  }
}

/// Iterates the record's sentences, decoding each sentence's tokens as
/// string_view slices of the record's text (zero copies, zero per-token
/// allocations). The token vector is a reused thread-local scratch buffer:
/// `fn` must not retain the reference past its own invocation.
///
///   fn(sentence_id, begin, end, const std::vector<text::Token>& tokens)
template <typename Fn>
void ForEachSentenceTokens(const dataflow::Record& doc, Fn&& fn) {
  const std::string& text = doc.Field(kFieldText).AsString();
  thread_local std::vector<text::Token> tokens;
  uint32_t sentence_id = 0;
  for (const dataflow::Value& sv : doc.Field(kFieldSentences).AsArray()) {
    size_t begin = static_cast<size_t>(sv.Field("b").AsInt());
    size_t end = static_cast<size_t>(sv.Field("e").AsInt());
    if (end > text.size() || begin >= end) continue;
    DecodeSentenceTokens(text, sv, &tokens);
    fn(sentence_id, begin, end,
       static_cast<const std::vector<text::Token>&>(tokens));
    ++sentence_id;
  }
}

}  // namespace wsie::core

#endif  // WSIE_CORE_RECORD_SENTENCES_H_
