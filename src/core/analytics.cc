#include "core/analytics.h"

#include <algorithm>
#include <string_view>

#include "common/string_util.h"
#include "core/operators_ie.h"

namespace wsie::core {
namespace {

int TypeIndex(const std::string& type_name) {
  if (type_name == "gene") return 0;
  if (type_name == "drug") return 1;
  if (type_name == "disease") return 2;
  return -1;
}

int MethodIndex(const std::string& method_name) {
  if (method_name == "dict") return 0;
  if (method_name == "ml") return 1;
  return -1;
}

}  // namespace

double CorpusAnalysis::mean_chars() const {
  return per_doc.empty() ? 0.0
                         : static_cast<double>(total_chars) /
                               static_cast<double>(per_doc.size());
}

double CorpusAnalysis::EntitiesPer1000Sentences(size_t type,
                                                size_t method) const {
  if (total_sentences == 0) return 0.0;
  uint64_t total = 0;
  for (const DocMeasures& d : per_doc) total += d.entities[type][method];
  return 1000.0 * static_cast<double>(total) /
         static_cast<double>(total_sentences);
}

double CorpusAnalysis::EntitiesPer1000SentencesAllMethods(size_t type) const {
  return EntitiesPer1000Sentences(type, 0) + EntitiesPer1000Sentences(type, 1);
}

size_t CorpusAnalysis::DistinctNamesAllMethods(size_t type) const {
  size_t distinct = names[type][0].size();
  names[type][1].ForEach([&](std::string_view name, uint64_t) {
    if (!names[type][0].Contains(name)) ++distinct;
  });
  return distinct;
}

size_t CorpusAnalysis::NameTableMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& by_method : names) {
    for (const StringCountMap& table : by_method) bytes += table.MemoryBytes();
  }
  return bytes;
}

std::vector<double> CorpusAnalysis::DocLengths() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) out.push_back(static_cast<double>(d.chars));
  return out;
}

std::vector<double> CorpusAnalysis::MeanSentenceLengths() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    if (d.sentences > 0) out.push_back(d.mean_sentence_chars);
  }
  return out;
}

std::vector<double> CorpusAnalysis::NegationsPerDoc() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc)
    out.push_back(static_cast<double>(d.negations));
  return out;
}

std::vector<double> CorpusAnalysis::NegationsPer100Sentences() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    if (d.sentences == 0) continue;
    out.push_back(100.0 * static_cast<double>(d.negations) /
                  static_cast<double>(d.sentences));
  }
  return out;
}

std::vector<double> CorpusAnalysis::ParenthesesPer100Sentences() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    if (d.sentences == 0) continue;
    out.push_back(100.0 * static_cast<double>(d.parentheses) /
                  static_cast<double>(d.sentences));
  }
  return out;
}

std::vector<double> CorpusAnalysis::AbbreviationsPer100Sentences() const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    if (d.sentences == 0) continue;
    out.push_back(100.0 * static_cast<double>(d.abbreviations) /
                  static_cast<double>(d.sentences));
  }
  return out;
}

std::vector<double> CorpusAnalysis::PronounsPer100Sentences(
    nlp::PronounClass cls) const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    if (d.sentences == 0) continue;
    out.push_back(100.0 *
                  static_cast<double>(d.pronouns[static_cast<size_t>(cls)]) /
                  static_cast<double>(d.sentences));
  }
  return out;
}

std::vector<double> CorpusAnalysis::EntitiesPerDoc(size_t type) const {
  std::vector<double> out;
  out.reserve(per_doc.size());
  for (const DocMeasures& d : per_doc) {
    out.push_back(static_cast<double>(d.entities[type][0] +
                                      d.entities[type][1]));
  }
  return out;
}

CorpusAnalysis AnalyzeRecords(corpus::CorpusKind kind,
                              const dataflow::Dataset& analyzed) {
  CorpusAnalysis analysis;
  analysis.kind = kind;
  std::map<uint64_t, size_t> doc_index;

  for (const dataflow::Record& r : analyzed) {
    uint64_t doc_id = static_cast<uint64_t>(r.Field(kFieldId).AsInt());
    auto [it, inserted] = doc_index.try_emplace(doc_id, analysis.per_doc.size());
    if (inserted) {
      analysis.per_doc.emplace_back();
      DocMeasures& d = analysis.per_doc.back();
      d.doc_id = doc_id;
      d.chars = r.Field(kFieldText).AsString().size();
      const auto& sentences = r.Field(kFieldSentences).AsArray();
      d.sentences = static_cast<uint32_t>(sentences.size());
      double total_sentence_chars = 0.0;
      double total_tokens = 0.0;
      for (const dataflow::Value& sv : sentences) {
        total_sentence_chars += static_cast<double>(sv.Field("e").AsInt() -
                                                    sv.Field("b").AsInt());
        total_tokens += static_cast<double>(sv.Field("tokens").AsArray().size());
      }
      if (d.sentences > 0) {
        d.mean_sentence_chars = total_sentence_chars / d.sentences;
        d.mean_sentence_tokens = total_tokens / d.sentences;
      }
      analysis.total_chars += d.chars;
      analysis.total_sentences += d.sentences;
    }
    DocMeasures& d = analysis.per_doc[it->second];
    if (r.Field(kFieldPosOverflow).AsBool()) d.pos_overflow = true;

    for (const dataflow::Value& lv : r.Field(kFieldLing).AsArray()) {
      const std::string& cat = lv.Field("cat").AsString();
      if (cat == "negation") {
        ++d.negations;
      } else if (cat == "parenthesis") {
        ++d.parentheses;
      } else if (cat == "abbreviation") {
        ++d.abbreviations;
      } else if (StartsWith(cat, "pronoun/")) {
        std::string cls_name = cat.substr(8);
        for (size_t c = 0; c < kNumPronounClasses; ++c) {
          if (cls_name ==
              nlp::PronounClassName(static_cast<nlp::PronounClass>(c))) {
            ++d.pronouns[c];
            break;
          }
        }
      }
    }
    for (const dataflow::Value& ev : r.Field(kFieldEntities).AsArray()) {
      int type = TypeIndex(ev.Field("type").AsString());
      int method = MethodIndex(ev.Field("method").AsString());
      if (type < 0 || method < 0) continue;
      ++d.entities[static_cast<size_t>(type)][static_cast<size_t>(method)];
      std::string name = AsciiToLower(ev.Field("surface").AsString());
      analysis.names[static_cast<size_t>(type)][static_cast<size_t>(method)]
          .Add(name);
    }
  }
  return analysis;
}

namespace {

/// NormalizeCounts over a flat name table: total in sorted-key order, the
/// same accumulation order the std::map-based overload uses.
ml::Distribution NormalizeNameTable(const StringCountMap& table) {
  ml::Distribution dist;
  double total = 0.0;
  auto items = table.SortedItems();
  for (const auto& [name, count] : items) total += static_cast<double>(count);
  if (total <= 0.0) return dist;
  for (const auto& [name, count] : items) {
    dist[name] = static_cast<double>(count) / total;
  }
  return dist;
}

}  // namespace

double EntityDistributionJsd(const CorpusAnalysis& a, const CorpusAnalysis& b,
                             size_t type, size_t method) {
  ml::Distribution pa = NormalizeNameTable(a.names[type][method]);
  ml::Distribution pb = NormalizeNameTable(b.names[type][method]);
  return ml::JensenShannonDivergence(pa, pb);
}

std::vector<VennRegion> ComputeOverlap(
    const std::array<std::set<std::string>, 4>& sets) {
  std::map<std::string, unsigned> membership;
  for (size_t i = 0; i < 4; ++i) {
    for (const std::string& name : sets[i]) {
      membership[name] |= (1u << i);
    }
  }
  std::array<uint64_t, 16> counts{};
  for (const auto& [name, mask] : membership) ++counts[mask];
  uint64_t total = membership.size();
  std::vector<VennRegion> regions;
  for (unsigned mask = 1; mask < 16; ++mask) {
    VennRegion region;
    region.membership = mask;
    region.count = counts[mask];
    region.share = total == 0 ? 0.0
                              : static_cast<double>(counts[mask]) /
                                    static_cast<double>(total);
    regions.push_back(region);
  }
  return regions;
}

std::set<std::string> DistinctNameSet(const CorpusAnalysis& analysis,
                                      size_t type, size_t method) {
  std::set<std::string> names;
  analysis.names[type][method].ForEach(
      [&](std::string_view name, uint64_t) { names.emplace(name); });
  return names;
}

}  // namespace wsie::core
