#ifndef WSIE_CORE_PIPELINE_H_
#define WSIE_CORE_PIPELINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/operators_ie.h"
#include "corpus/document.h"
#include "dataflow/executor.h"
#include "dataflow/meteor.h"
#include "dataflow/plan.h"
#include "shard/runtime.h"

namespace wsie::core {

/// Which sub-flows to include when building an analysis plan.
struct FlowOptions {
  /// Include the web-specific preprocessing (long-doc filter, markup repair,
  /// boilerplate removal). Off for Medline/PMC, which enter as plain text
  /// ("the same pipeline (without the web-related tasks)", Abstract).
  bool web_preprocessing = false;
  bool linguistic_analysis = true;   ///< negation/pronoun/parenthesis flow
  bool entity_annotation = true;     ///< POS + dict + ML entity flow
  bool dictionary_methods = true;
  bool ml_methods = true;
  bool tla_filter = false;           ///< post-hoc TLA cleansing (Sect. 4.3.2)
  /// Restrict entity annotation to one type (the per-entity-class split
  /// flows of the war story); empty = all three types.
  std::vector<ie::EntityType> entity_types = {
      ie::EntityType::kGene, ie::EntityType::kDrug, ie::EntityType::kDisease};
  /// Report modeled paper-scale operator memory (for cluster admission
  /// experiments) instead of actual in-process footprints.
  bool paper_scale_memory = false;
  size_t max_doc_chars = 1u << 20;
};

/// Builds the consolidated analysis flow of Fig. 2 over source "docs" with
/// sink "analyzed". The full flow (all options on) instantiates the
/// complete operator set; Plan::num_operators() reports its size.
dataflow::Plan BuildAnalysisFlow(ContextPtr context, const FlowOptions& options);

/// Registers all domain operators (WA/IE/DC packages) plus the BASE script
/// operators in `registry`, so Meteor scripts can use them. Operators that
/// need the shared context capture `context`.
void RegisterPipelineOperators(ContextPtr context,
                               dataflow::OperatorRegistry* registry);

/// Converts generated documents into pipeline input records.
dataflow::Dataset DocumentsToRecords(const std::vector<corpus::Document>& docs);

/// Checks the plan for conflicting library dependencies (two operators
/// requiring different versions of the same library cannot run in one flow —
/// the OpenNLP 1.4/1.5 war story of Sect. 4.2). OK when compatible.
Status CheckLibraryConflicts(const dataflow::Plan& plan);

/// Splits a flow that exceeds the per-worker memory budget into parts that
/// fit: the paper's remedy ("we created one flow for all linguistic analysis
/// and one flow per entity class"). Returns FlowOptions for each part.
std::vector<FlowOptions> SplitFlowByMemory(const FlowOptions& full,
                                           size_t memory_budget_bytes);

/// Convenience: run `plan` over `docs` at the given executor config. When
/// `check_library_conflicts` is set, the modeled third-party library
/// version matrix is enforced first (reproducing the paper's failure mode);
/// off by default because this repo's own implementations have no such
/// conflict.
Result<dataflow::ExecutionResult> RunFlow(
    const dataflow::Plan& plan, const std::vector<corpus::Document>& docs,
    const dataflow::ExecutorConfig& executor_config,
    bool check_library_conflicts = false);

/// Convenience: run the analysis flow for `options` over `docs` on a
/// shard::ShardRuntime. Each endpoint builds its own BuildAnalysisFlow
/// instance (own operator state, own Open() cache entries); documents are
/// hash-partitioned on "id" unless `shard_options` says otherwise. Sink
/// outputs are byte-identical to RunFlow on the same plan at any shard
/// count.
Result<shard::ShardExecutionResult> RunFlowSharded(
    ContextPtr context, const FlowOptions& options,
    const std::vector<corpus::Document>& docs,
    const shard::ShardOptions& shard_options = {});

}  // namespace wsie::core

#endif  // WSIE_CORE_PIPELINE_H_
