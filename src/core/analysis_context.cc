#include "core/analysis_context.h"

#include <memory>
#include <mutex>

#include "corpus/text_generator.h"
#include "ml/crf.h"

namespace wsie::core {
namespace {

/// Maps gold character spans onto token-index spans.
std::vector<ie::GoldSpan> SpansToTokens(
    const std::vector<text::Token>& tokens,
    const std::vector<const corpus::GoldEntity*>& gold) {
  std::vector<ie::GoldSpan> spans;
  for (const corpus::GoldEntity* g : gold) {
    size_t begin_token = tokens.size(), end_token = 0;
    for (size_t t = 0; t < tokens.size(); ++t) {
      if (tokens[t].begin >= g->begin && tokens[t].end <= g->end) {
        begin_token = std::min(begin_token, t);
        end_token = std::max(end_token, t + 1);
      }
    }
    if (begin_token < end_token) {
      spans.push_back(ie::GoldSpan{begin_token, end_token});
    }
  }
  return spans;
}

}  // namespace

AnalysisContext::AnalysisContext(AnalysisContextConfig config)
    : config_(config),
      splitter_(text::SentenceSplitterOptions{/*max_sentence_chars=*/2000,
                                              /*break_on_newline=*/true}) {
  pos_tagger_.set_max_tokens_per_sentence(config_.pos_max_tokens);
  pos_tagger_.TrainDefault(config_.seed, config_.pos_training_sentences);
  crf_taggers_.resize(3);
  dict_taggers_.resize(3);
  TrainCrf(ie::EntityType::kGene);
  TrainCrf(ie::EntityType::kDrug);
  TrainCrf(ie::EntityType::kDisease);
  if (!config_.lazy_dictionaries) BuildDictionaries();
}

std::vector<ie::TaggedSentence> AnalysisContext::MakeGoldSentences(
    const corpus::EntityLexicons& lexicons, ie::EntityType type,
    size_t num_sentences, uint64_t seed) {
  // Medline-register gold: generate abstracts, keep sentences, and label the
  // target type. TLA noise in Medline counts as a gene mention ("this
  // strategy is correct for the gold standard abstracts used for developing
  // and evaluating the tool", Sect. 4.3.2).
  corpus::CorpusProfile profile = corpus::ProfileFor(corpus::CorpusKind::kMedline);
  corpus::TextGenerator generator(&lexicons, profile, seed);
  text::SentenceSplitter splitter;
  text::Tokenizer tokenizer;

  std::vector<ie::TaggedSentence> sentences;
  uint64_t doc_id = 0;
  while (sentences.size() < num_sentences) {
    corpus::Document doc = generator.GenerateDocument(doc_id++);
    // Pin the document text: tokens are string_views into this buffer, so
    // every TaggedSentence cut from the document shares ownership of it.
    auto buffer = std::make_shared<const std::string>(std::move(doc.text));
    for (const text::SentenceSpan& span : splitter.Split(*buffer)) {
      std::string_view sentence_text =
          std::string_view(*buffer).substr(span.begin, span.length());
      ie::TaggedSentence tagged;
      tagged.buffer = buffer;
      tagged.tokens = tokenizer.Tokenize(sentence_text, span.begin);
      if (tagged.tokens.empty()) continue;
      std::vector<const corpus::GoldEntity*> gold;
      for (const corpus::GoldEntity& g : doc.gold_entities) {
        if (g.begin >= span.begin && g.end <= span.end && g.type == type) {
          bool counts = g.from_lexicon || type == ie::EntityType::kGene;
          if (counts) gold.push_back(&g);
        }
      }
      tagged.spans = SpansToTokens(tagged.tokens, gold);
      sentences.push_back(std::move(tagged));
      if (sentences.size() >= num_sentences) break;
    }
  }
  return sentences;
}

void AnalysisContext::TrainCrf(ie::EntityType type) {
  auto tagger = std::make_unique<ie::CrfTagger>(type);
  std::vector<ie::TaggedSentence> gold =
      MakeGoldSentences(lexicons_, type, config_.crf_training_sentences,
                        config_.seed + static_cast<uint64_t>(type) * 101);
  tagger->Train(gold, config_.crf_train_options);
  crf_taggers_[static_cast<size_t>(type)] = std::move(tagger);
}

const ie::CrfTagger& AnalysisContext::crf_tagger(ie::EntityType type) const {
  return *crf_taggers_[static_cast<size_t>(type)];
}

const ie::DictionaryTagger& AnalysisContext::dictionary_tagger(
    ie::EntityType type) const {
  std::lock_guard<std::mutex> lock(dict_mu_);
  auto& slot = dict_taggers_[static_cast<size_t>(type)];
  if (slot == nullptr) {
    // Incomplete dictionary: a deterministic `dictionary_coverage` subset of
    // the lexicon (name-hash based, so the gap is spread over all frequency
    // ranks and every corpus contains out-of-dictionary mentions).
    const std::vector<std::string>& full = lexicons_.ForType(type);
    std::vector<std::string> known;
    known.reserve(full.size());
    const uint64_t cutoff =
        static_cast<uint64_t>(config_.dictionary_coverage * 10000.0);
    for (const std::string& name : full) {
      if (ml::HashFeature(name) % 10000 < cutoff) known.push_back(name);
    }
    if (known.empty()) known = full;
    slot = std::make_unique<ie::DictionaryTagger>(type, known);
  }
  return *slot;
}

void AnalysisContext::BuildDictionaries() const {
  dictionary_tagger(ie::EntityType::kGene);
  dictionary_tagger(ie::EntityType::kDrug);
  dictionary_tagger(ie::EntityType::kDisease);
}

}  // namespace wsie::core
