#include "core/ie_feedback.h"

#include <algorithm>

namespace wsie::core {

EntityDensitySignal::EntityDensitySignal(
    std::shared_ptr<const AnalysisContext> context,
    double saturation_per_1000_chars)
    : context_(std::move(context)), saturation_(saturation_per_1000_chars) {}

double EntityDensitySignal::Score(std::string_view net_text) const {
  if (net_text.empty()) return 0.0;
  size_t mentions = 0;
  for (ie::EntityType type :
       {ie::EntityType::kGene, ie::EntityType::kDrug,
        ie::EntityType::kDisease}) {
    mentions += context_->dictionary_tagger(type)
                    .Tag(/*doc_id=*/0, net_text)
                    .size();
  }
  double per_1000 = 1000.0 * static_cast<double>(mentions) /
                    static_cast<double>(net_text.size());
  return std::clamp(per_1000 / saturation_, 0.0, 1.0);
}

}  // namespace wsie::core
