#ifndef WSIE_CORE_ANALYTICS_H_
#define WSIE_CORE_ANALYTICS_H_

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "corpus/profile.h"
#include "dataflow/value.h"
#include "ml/stats.h"
#include "nlp/linguistic.h"

namespace wsie::core {

inline constexpr size_t kNumEntityTypes = 3;   // gene, drug, disease
inline constexpr size_t kNumMethods = 2;       // 0 = dict, 1 = ml
inline constexpr size_t kNumPronounClasses =
    static_cast<size_t>(nlp::PronounClass::kNumClasses);

/// Per-document measures extracted from the analyzed records (the
/// quantities behind Figs. 6 and 7).
struct DocMeasures {
  uint64_t doc_id = 0;
  uint64_t chars = 0;
  uint32_t sentences = 0;
  double mean_sentence_chars = 0.0;
  double mean_sentence_tokens = 0.0;
  uint32_t negations = 0;
  std::array<uint32_t, kNumPronounClasses> pronouns{};
  uint32_t parentheses = 0;
  uint32_t abbreviations = 0;  ///< Schwartz-Hearst definitions
  /// entity annotation counts [type][method].
  std::array<std::array<uint32_t, kNumMethods>, kNumEntityTypes> entities{};
  bool pos_overflow = false;
};

/// Aggregated analysis of one corpus.
struct CorpusAnalysis {
  corpus::CorpusKind kind = corpus::CorpusKind::kMedline;
  std::vector<DocMeasures> per_doc;
  uint64_t total_chars = 0;
  uint64_t total_sentences = 0;
  /// Distinct entity names with occurrence counts, [type][method]. An
  /// open-addressing flat map: the node-per-name std::map here was the
  /// dominant memory cost of the Sect. 4.2 analysis (see
  /// sec42_memory_war_story).
  std::array<std::array<StringCountMap, kNumMethods>, kNumEntityTypes> names;

  size_t num_docs() const { return per_doc.size(); }
  double mean_chars() const;
  size_t DistinctNames(size_t type, size_t method) const {
    return names[type][method].size();
  }
  /// Distinct names of `type` across both methods, counting a name found
  /// by both dict and ML once. DistinctNames(t, 0) + DistinctNames(t, 1)
  /// double-counts the overlap — use this for any "all methods" column.
  size_t DistinctNamesAllMethods(size_t type) const;
  /// Resident bytes of all name tables (slot arrays + string payloads).
  size_t NameTableMemoryBytes() const;
  /// Mean annotations of (type, method) per 1000 sentences (Fig. 7 metric).
  double EntitiesPer1000Sentences(size_t type, size_t method) const;
  /// Combined dict+ML per-1000-sentence mean.
  double EntitiesPer1000SentencesAllMethods(size_t type) const;

  // Per-document sample vectors for significance testing (Fig. 6).
  std::vector<double> DocLengths() const;
  std::vector<double> MeanSentenceLengths() const;
  std::vector<double> NegationsPerDoc() const;
  std::vector<double> NegationsPer100Sentences() const;
  std::vector<double> ParenthesesPer100Sentences() const;
  std::vector<double> AbbreviationsPer100Sentences() const;
  std::vector<double> PronounsPer100Sentences(nlp::PronounClass cls) const;
  std::vector<double> EntitiesPerDoc(size_t type) const;
};

/// Folds the "analyzed" sink records of a flow into a CorpusAnalysis.
/// Records sharing a document id (one per branch of the union) are merged.
CorpusAnalysis AnalyzeRecords(corpus::CorpusKind kind,
                              const dataflow::Dataset& analyzed);

/// Jensen-Shannon divergence between two corpora's entity-name
/// distributions for (type, method) (Sect. 4.3.2).
double EntityDistributionJsd(const CorpusAnalysis& a, const CorpusAnalysis& b,
                             size_t type, size_t method);

/// A region of the 4-set Venn diagram of Fig. 8: `membership` is a bitmask
/// over corpora (bit i set = name occurs in corpus i), `share` is the
/// fraction of the union.
struct VennRegion {
  unsigned membership = 0;
  uint64_t count = 0;
  double share = 0.0;
};

/// Computes all 15 non-empty regions over four name sets.
std::vector<VennRegion> ComputeOverlap(
    const std::array<std::set<std::string>, 4>& sets);

/// Names of distinct entities of (type, method) as a set (for overlap).
std::set<std::string> DistinctNameSet(const CorpusAnalysis& analysis,
                                      size_t type, size_t method);

/// Mann-Whitney-Wilcoxon P-value between two per-document sample vectors.
inline double MwwPValue(const std::vector<double>& a,
                        const std::vector<double>& b) {
  return ml::MannWhitneyU(a, b).p_value;
}

}  // namespace wsie::core

#endif  // WSIE_CORE_ANALYTICS_H_
