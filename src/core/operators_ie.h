#ifndef WSIE_CORE_OPERATORS_IE_H_
#define WSIE_CORE_OPERATORS_IE_H_

#include <memory>
#include <string>

#include "core/analysis_context.h"
#include "dataflow/operator.h"

namespace wsie::core {

/// Record schema used by the analysis flows. Documents enter as
///   { "id": int, "corpus": string, "text": string }
/// (web documents carry raw HTML in "text") and operators add annotation
/// fields, growing the record — the data-volume inflation of Sect. 4.2:
///   "sentences": [ { "b": int, "e": int, "tokens": [{"b","e"}],
///                    "tags": [int] } ]
///   "ling":      [ { "cat": string, "b": int, "e": int } ]
///   "entities":  [ { "type": string, "method": string, "b": int,
///                    "e": int, "surface": string } ]
/// Field-name constants:
inline constexpr char kFieldId[] = "id";
inline constexpr char kFieldCorpus[] = "corpus";
inline constexpr char kFieldText[] = "text";
inline constexpr char kFieldSentences[] = "sentences";
inline constexpr char kFieldLing[] = "ling";
inline constexpr char kFieldEntities[] = "entities";
inline constexpr char kFieldPosOverflow[] = "pos_overflow";

/// Shared context handle used by all domain operators.
using ContextPtr = std::shared_ptr<const AnalysisContext>;

/// WA: drops documents whose raw text exceeds `max_chars` ("web pages are
/// first filtered to exclude extremely long documents", Sect. 3.2).
dataflow::OperatorPtr MakeFilterLongDocuments(size_t max_chars = 1u << 20);

/// WA: repairs HTML markup; drops documents damaged beyond repair.
dataflow::OperatorPtr MakeRepairMarkup();

/// WA: replaces "text" with the boilerplate-free net text.
dataflow::OperatorPtr MakeRemoveBoilerplate();

/// IE: annotates sentence boundaries and token boundaries.
dataflow::OperatorPtr MakeAnnotateSentences(ContextPtr context);

/// IE: adds POS tags per sentence (MedPost-style HMM). Sentences exceeding
/// the tagger's token cap are marked with "pos_overflow" instead of crashing
/// the flow (Sect. 5 robustness discussion).
dataflow::OperatorPtr MakeAnnotatePos(ContextPtr context);

/// IE: regular-expression linguistic extractors (one operator each, as in
/// the Fig. 2 flow).
dataflow::OperatorPtr MakeFindNegation(ContextPtr context);
dataflow::OperatorPtr MakeFindPronouns(ContextPtr context);
dataflow::OperatorPtr MakeFindParentheses(ContextPtr context);
/// Schwartz-Hearst abbreviation definitions ("long form (SF)").
dataflow::OperatorPtr MakeFindAbbreviations(ContextPtr context);

/// IE: dictionary-based entity annotation for one type. Open() builds the
/// automaton (start-up cost); MemoryBytesPerWorker() reports the *modeled
/// paper-scale* footprint so cluster admission control reproduces Sect. 4.2
/// (pass 0 to report the actual in-process footprint instead).
dataflow::OperatorPtr MakeAnnotateEntitiesDict(ContextPtr context,
                                               ie::EntityType type,
                                               size_t modeled_memory_bytes = 0);

/// IE: ML (CRF) entity annotation for one type.
dataflow::OperatorPtr MakeAnnotateEntitiesMl(ContextPtr context,
                                             ie::EntityType type,
                                             size_t modeled_memory_bytes = 0);

/// DC: removes three-letter-acronym ML gene annotations (Sect. 4.3.2).
dataflow::OperatorPtr MakeFilterTla();

/// Modeled per-worker memory footprints at paper scale (Sect. 4.2: the
/// dictionary taggers need 6-20 GB each; the complete flow ~60 GB).
size_t PaperScaleDictMemoryBytes(ie::EntityType type);
size_t PaperScaleMlMemoryBytes(ie::EntityType type);

/// Library dependency modeling for the version-conflict war story: returns
/// e.g. "opennlp:1.5" for the sentence annotator and "opennlp:1.4" for the
/// ML disease tagger (Sect. 4.2: the runtime's class loader cannot load two
/// versions of one library).
std::string OperatorLibraryDependency(const std::string& op_name);

}  // namespace wsie::core

#endif  // WSIE_CORE_OPERATORS_IE_H_
