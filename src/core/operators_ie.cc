#include "core/operators_ie.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "common/string_util.h"
#include "core/record_sentences.h"
#include "html/boilerplate.h"
#include "html/html_repair.h"
#include "obs/metrics.h"

namespace wsie::core {
namespace {

using ::wsie::dataflow::Dataset;
using ::wsie::dataflow::OperatorPackage;
using ::wsie::dataflow::OperatorPtr;
using ::wsie::dataflow::OperatorTraits;
using ::wsie::dataflow::Record;
using ::wsie::dataflow::RecordOperator;
using ::wsie::dataflow::Value;

Value AnnotationValue(const ie::Annotation& a) {
  Value v;
  v.SetField("b", static_cast<int64_t>(a.begin));
  v.SetField("e", static_cast<int64_t>(a.end));
  if (a.method == ie::AnnotationMethod::kRegex) {
    v.SetField("cat", a.category);
  } else {
    v.SetField("type", std::string(ie::EntityTypeName(a.entity_type)));
    v.SetField("method", std::string(ie::AnnotationMethodName(a.method)));
    v.SetField("surface", a.surface);
  }
  return v;
}

/// Iterates the record's sentences with zero-copy view tokens (see
/// core/record_sentences.h). Kept as a thin alias so the operator bodies
/// read the same as before the allocation-free rewrite.
template <typename Fn>
void ForEachSentence(const AnalysisContext& context, const Record& doc,
                     Fn&& fn) {
  ForEachSentenceTokens(doc, std::forward<Fn>(fn));
  (void)context;
}

// ---------------------------------------------------------------------------
// All analysis operators are record-at-a-time (Split-Correctness: their
// output per record depends only on that record), so they derive from
// RecordOperator — fused pipeline stages move records through them without
// deep copies.

class FilterLongDocumentsOp : public RecordOperator {
 public:
  explicit FilterLongDocumentsOp(size_t max_chars) : max_chars_(max_chars) {}
  std::string name() const override { return "filter_long_documents"; }
  OperatorPackage package() const override { return OperatorPackage::kWa; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.selectivity = 0.98;
    t.cost_per_record = 0.1;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    if (record.Field(kFieldText).AsString().size() <= max_chars_) {
      out->push_back(std::move(record));
    }
    return Status::OK();
  }

 private:
  size_t max_chars_;
};

class RepairMarkupOp : public RecordOperator {
 public:
  std::string name() const override { return "repair_markup"; }
  OperatorPackage package() const override { return OperatorPackage::kWa; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.writes = {kFieldText};
    t.selectivity = 0.9;  // beyond-repair documents are dropped
    t.cost_per_record = 2.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    auto repaired = repair_.Repair(record.Field(kFieldText).AsString());
    if (!repaired.ok()) return Status::OK();  // non-transcodable page
    record.SetField(kFieldText, std::move(repaired->html));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  html::HtmlRepair repair_;
};

class RemoveBoilerplateOp : public RecordOperator {
 public:
  std::string name() const override { return "remove_boilerplate"; }
  OperatorPackage package() const override { return OperatorPackage::kWa; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.writes = {kFieldText};
    t.cost_per_record = 2.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    record.SetField(kFieldText,
                    detector_.NetText(record.Field(kFieldText).AsString()));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  html::BoilerplateDetector detector_;
};

class AnnotateSentencesOp : public RecordOperator {
 public:
  explicit AnnotateSentencesOp(ContextPtr context)
      : context_(std::move(context)),
        documents_(obs::MetricsRegistry::Global().GetCounter(
            obs::WithLabel("wsie.nlp.documents", "op", "annotate_sentences"))),
        sentences_(obs::MetricsRegistry::Global().GetCounter(
            obs::WithLabel("wsie.nlp.sentences", "op", "annotate_sentences"))),
        tokens_(obs::MetricsRegistry::Global().GetCounter(
            obs::WithLabel("wsie.nlp.tokens", "op", "annotate_sentences"))) {}
  std::string name() const override { return "annotate_sentences"; }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.writes = {kFieldSentences};
    t.cost_per_record = 1.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    const std::string& text = record.Field(kFieldText).AsString();
    Value::Array sentences;
    // Tokenization happens exactly once per sentence here; every downstream
    // operator re-materializes view tokens from the stored offsets instead
    // of re-tokenizing (tentpole dedup). The scratch vector is reused across
    // sentences and records.
    thread_local std::vector<text::Token> token_scratch;
    size_t token_count = 0;
    for (const text::SentenceSpan& span : context_->splitter().Split(text)) {
      Value sv;
      sv.SetField("b", static_cast<int64_t>(span.begin));
      sv.SetField("e", static_cast<int64_t>(span.end));
      context_->tokenizer().TokenizeInto(
          std::string_view(text).substr(span.begin, span.length()), span.begin,
          &token_scratch);
      Value::Array token_array;
      token_array.reserve(token_scratch.size());
      for (const text::Token& tok : token_scratch) {
        Value tv;
        tv.SetField("b", static_cast<int64_t>(tok.begin));
        tv.SetField("e", static_cast<int64_t>(tok.end));
        token_array.push_back(std::move(tv));
      }
      token_count += token_scratch.size();
      sv.SetField("tokens", Value(std::move(token_array)));
      sentences.push_back(std::move(sv));
    }
    documents_->Increment();
    sentences_->Add(sentences.size());
    tokens_->Add(token_count);
    record.SetField(kFieldSentences, Value(std::move(sentences)));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  ContextPtr context_;
  obs::Counter* documents_;
  obs::Counter* sentences_;
  obs::Counter* tokens_;
};

class AnnotatePosOp : public RecordOperator {
 public:
  explicit AnnotatePosOp(ContextPtr context) : context_(std::move(context)) {}
  std::string name() const override { return "annotate_pos"; }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText, kFieldSentences};
    t.writes = {"pos"};
    t.cost_per_record = 12.0;  // POS tagging took 12% of total runtime
    return t;
  }
  size_t MemoryBytesPerWorker() const override { return 64u << 20; }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    bool any_overflow = false;
    Value::Array sentences = record.Field(kFieldSentences).AsArray();
    ForEachSentence(*context_, record,
                    [&](uint32_t sid, size_t, size_t,
                        const std::vector<text::Token>& tokens) {
                      bool overflow = false;
                      std::vector<nlp::PosTag> tags =
                          context_->pos_tagger().TagTokens(tokens, &overflow);
                      if (overflow) {
                        any_overflow = true;
                        return;
                      }
                      Value::Array tag_array;
                      tag_array.reserve(tags.size());
                      for (nlp::PosTag tag : tags) {
                        tag_array.push_back(Value(static_cast<int64_t>(tag)));
                      }
                      if (sid < sentences.size()) {
                        sentences[sid].SetField("tags",
                                                Value(std::move(tag_array)));
                      }
                    });
    record.SetField(kFieldSentences, Value(std::move(sentences)));
    if (any_overflow) record.SetField(kFieldPosOverflow, Value(true));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  ContextPtr context_;
};

/// Common base for the three regex linguistic extractors.
class LinguisticOpBase : public RecordOperator {
 public:
  explicit LinguisticOpBase(ContextPtr context) : context_(std::move(context)) {}
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText, kFieldSentences};
    t.writes = {kFieldLing};
    t.cost_per_record = 1.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    Value::Array ling = record.Field(kFieldLing).AsArray();
    const size_t ling_before = ling.size();
    uint64_t doc_id = static_cast<uint64_t>(record.Field(kFieldId).AsInt());
    const std::string& text = record.Field(kFieldText).AsString();
    ForEachSentence(*context_, record,
                    [&](uint32_t sid, size_t begin, size_t end,
                        const std::vector<text::Token>& tokens) {
                      std::string_view sentence =
                          std::string_view(text).substr(begin, end - begin);
                      for (const ie::Annotation& a :
                           Extract(doc_id, sid, sentence, begin, tokens)) {
                        ling.push_back(AnnotationValue(a));
                      }
                    });
    AnnotationsCounter()->Add(ling.size() - ling_before);
    record.SetField(kFieldLing, Value(std::move(ling)));
    out->push_back(std::move(record));
    return Status::OK();
  }

  /// `tokens` is the shared sentence tokenization (view slices of the
  /// record text); token-driven extractors consume it directly instead of
  /// re-tokenizing, character-driven ones ignore it.
  virtual std::vector<ie::Annotation> Extract(
      uint64_t doc_id, uint32_t sid, std::string_view sentence, size_t base,
      const std::vector<text::Token>& tokens) const = 0;

  /// Lazily resolved (name() is virtual, so the label is not known in the
  /// base constructor); thread-safe via call_once.
  obs::Counter* AnnotationsCounter() const {
    std::call_once(annotations_once_, [this] {
      annotations_ = obs::MetricsRegistry::Global().GetCounter(
          obs::WithLabel("wsie.ie.annotations", "op", name()));
    });
    return annotations_;
  }

  ContextPtr context_;
  mutable std::once_flag annotations_once_;
  mutable obs::Counter* annotations_ = nullptr;
};

class FindNegationOp : public LinguisticOpBase {
 public:
  using LinguisticOpBase::LinguisticOpBase;
  std::string name() const override { return "find_negation"; }

 protected:
  std::vector<ie::Annotation> Extract(
      uint64_t doc_id, uint32_t sid, std::string_view /*sentence*/,
      size_t /*base*/, const std::vector<text::Token>& tokens) const override {
    return context_->linguistic().FindNegations(doc_id, sid, tokens);
  }
};

class FindPronounsOp : public LinguisticOpBase {
 public:
  using LinguisticOpBase::LinguisticOpBase;
  std::string name() const override { return "find_pronouns"; }

 protected:
  std::vector<ie::Annotation> Extract(
      uint64_t doc_id, uint32_t sid, std::string_view /*sentence*/,
      size_t /*base*/, const std::vector<text::Token>& tokens) const override {
    return context_->linguistic().FindPronouns(doc_id, sid, tokens);
  }
};

class FindParenthesesOp : public LinguisticOpBase {
 public:
  using LinguisticOpBase::LinguisticOpBase;
  std::string name() const override { return "find_parentheses"; }

 protected:
  std::vector<ie::Annotation> Extract(
      uint64_t doc_id, uint32_t sid, std::string_view sentence, size_t base,
      const std::vector<text::Token>& /*tokens*/) const override {
    return context_->linguistic().FindParentheses(doc_id, sid, sentence, base);
  }
};

class FindAbbreviationsOp : public LinguisticOpBase {
 public:
  using LinguisticOpBase::LinguisticOpBase;
  std::string name() const override { return "find_abbreviations"; }

 protected:
  std::vector<ie::Annotation> Extract(
      uint64_t doc_id, uint32_t sid, std::string_view sentence, size_t base,
      const std::vector<text::Token>& /*tokens*/) const override {
    return context_->abbreviations().FindAsAnnotations(doc_id, sid, sentence,
                                                       base);
  }
};

class AnnotateEntitiesDictOp : public RecordOperator {
 public:
  AnnotateEntitiesDictOp(ContextPtr context, ie::EntityType type,
                         size_t modeled_memory)
      : context_(std::move(context)), type_(type),
        modeled_memory_(modeled_memory),
        entities_(obs::MetricsRegistry::Global().GetCounter(
            obs::WithLabel("wsie.ie.entities", "op", name()))) {}
  std::string name() const override {
    return std::string("annotate_") + ie::EntityTypeName(type_) + "_dict";
  }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.writes = {kFieldEntities};
    t.cost_per_record = 3.0;  // linear matching
    return t;
  }
  size_t MemoryBytesPerWorker() const override {
    if (modeled_memory_ > 0) return modeled_memory_;
    return context_->dictionary_tagger(type_).build_stats().memory_bytes;
  }
  Status Open() override {
    // Automaton construction: the hard start-up floor of Sect. 4.2.
    context_->dictionary_tagger(type_);
    return Status::OK();
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    const ie::DictionaryTagger& tagger = context_->dictionary_tagger(type_);
    Value::Array entities = record.Field(kFieldEntities).AsArray();
    const std::string& text = record.Field(kFieldText).AsString();
    const size_t entities_before = entities.size();
    // Offset-only hot path: the automaton emits spans over the record text;
    // the surface string is sliced once here, when the record field is
    // built, instead of materializing intermediate Annotation objects.
    thread_local std::vector<ie::AutomatonMatch> spans;
    tagger.TagSpans(text, &spans);
    for (const ie::AutomatonMatch& m : spans) {
      Value v;
      v.SetField("b", static_cast<int64_t>(m.begin));
      v.SetField("e", static_cast<int64_t>(m.end));
      v.SetField("type", std::string(ie::EntityTypeName(type_)));
      v.SetField("method", std::string(ie::AnnotationMethodName(
                               ie::AnnotationMethod::kDictionary)));
      v.SetField("surface", std::string(text, m.begin, m.end - m.begin));
      entities.push_back(std::move(v));
    }
    entities_->Add(entities.size() - entities_before);
    record.SetField(kFieldEntities, Value(std::move(entities)));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  ContextPtr context_;
  ie::EntityType type_;
  size_t modeled_memory_;
  obs::Counter* entities_;
};

class AnnotateEntitiesMlOp : public RecordOperator {
 public:
  AnnotateEntitiesMlOp(ContextPtr context, ie::EntityType type,
                       size_t modeled_memory)
      : context_(std::move(context)), type_(type),
        modeled_memory_(modeled_memory),
        entities_(obs::MetricsRegistry::Global().GetCounter(
            obs::WithLabel("wsie.ie.entities", "op", name()))) {}
  std::string name() const override {
    return std::string("annotate_") + ie::EntityTypeName(type_) + "_ml";
  }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText, kFieldSentences};
    t.writes = {kFieldEntities};
    t.cost_per_record = 100.0;  // CRF decoding dominates (70% of runtime)
    return t;
  }
  size_t MemoryBytesPerWorker() const override {
    if (modeled_memory_ > 0) return modeled_memory_;
    return context_->crf_tagger(type_).model().ApproxMemoryBytes();
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    const ie::CrfTagger& tagger = context_->crf_tagger(type_);
    Value::Array entities = record.Field(kFieldEntities).AsArray();
    uint64_t doc_id = static_cast<uint64_t>(record.Field(kFieldId).AsInt());
    const std::string& text = record.Field(kFieldText).AsString();
    const size_t entities_before = entities.size();
    ForEachSentence(*context_, record,
                    [&](uint32_t sid, size_t, size_t,
                        const std::vector<text::Token>& tokens) {
                      for (const ie::Annotation& a :
                           tagger.TagSentence(doc_id, sid, text, tokens)) {
                        entities.push_back(AnnotationValue(a));
                      }
                    });
    entities_->Add(entities.size() - entities_before);
    record.SetField(kFieldEntities, Value(std::move(entities)));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  ContextPtr context_;
  ie::EntityType type_;
  size_t modeled_memory_;
  obs::Counter* entities_;
};

class FilterTlaOp : public RecordOperator {
 public:
  std::string name() const override { return "filter_tla"; }
  OperatorPackage package() const override { return OperatorPackage::kDc; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldEntities};
    t.writes = {kFieldEntities};
    t.cost_per_record = 0.5;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    Value::Array kept;
    for (const Value& ev : record.Field(kFieldEntities).AsArray()) {
      const std::string& surface = ev.Field("surface").AsString();
      bool is_ml_gene = ev.Field("method").AsString() == "ml" &&
                        ev.Field("type").AsString() == "gene";
      bool is_tla = surface.size() == 3 && IsAllUpper(surface);
      if (is_ml_gene && is_tla) continue;
      kept.push_back(ev);
    }
    record.SetField(kFieldEntities, Value(std::move(kept)));
    out->push_back(std::move(record));
    return Status::OK();
  }
};

}  // namespace

OperatorPtr MakeFilterLongDocuments(size_t max_chars) {
  return std::make_shared<FilterLongDocumentsOp>(max_chars);
}
OperatorPtr MakeRepairMarkup() { return std::make_shared<RepairMarkupOp>(); }
OperatorPtr MakeRemoveBoilerplate() {
  return std::make_shared<RemoveBoilerplateOp>();
}
OperatorPtr MakeAnnotateSentences(ContextPtr context) {
  return std::make_shared<AnnotateSentencesOp>(std::move(context));
}
OperatorPtr MakeAnnotatePos(ContextPtr context) {
  return std::make_shared<AnnotatePosOp>(std::move(context));
}
OperatorPtr MakeFindNegation(ContextPtr context) {
  return std::make_shared<FindNegationOp>(std::move(context));
}
OperatorPtr MakeFindPronouns(ContextPtr context) {
  return std::make_shared<FindPronounsOp>(std::move(context));
}
OperatorPtr MakeFindParentheses(ContextPtr context) {
  return std::make_shared<FindParenthesesOp>(std::move(context));
}
OperatorPtr MakeFindAbbreviations(ContextPtr context) {
  return std::make_shared<FindAbbreviationsOp>(std::move(context));
}
OperatorPtr MakeAnnotateEntitiesDict(ContextPtr context, ie::EntityType type,
                                     size_t modeled_memory_bytes) {
  return std::make_shared<AnnotateEntitiesDictOp>(std::move(context), type,
                                                  modeled_memory_bytes);
}
OperatorPtr MakeAnnotateEntitiesMl(ContextPtr context, ie::EntityType type,
                                   size_t modeled_memory_bytes) {
  return std::make_shared<AnnotateEntitiesMlOp>(std::move(context), type,
                                                modeled_memory_bytes);
}
OperatorPtr MakeFilterTla() { return std::make_shared<FilterTlaOp>(); }

size_t PaperScaleDictMemoryBytes(ie::EntityType type) {
  // Sect. 4.2: dictionary taggers need 6-20 GB per worker; the gene
  // dictionary (700k+ entries) is the largest.
  switch (type) {
    case ie::EntityType::kGene:
      return 20ull << 30;
    case ie::EntityType::kDisease:
      return 8ull << 30;
    case ie::EntityType::kDrug:
      return 6ull << 30;
  }
  return 6ull << 30;
}

size_t PaperScaleMlMemoryBytes(ie::EntityType type) {
  switch (type) {
    case ie::EntityType::kGene:
      return 10ull << 30;  // BANNER
    case ie::EntityType::kDisease:
      return 8ull << 30;
    case ie::EntityType::kDrug:
      return 8ull << 30;  // ChemSpot
  }
  return 8ull << 30;
}

std::string OperatorLibraryDependency(const std::string& op_name) {
  // The disease ML tagger imports its linguistic preprocessing from
  // OpenNLP 1.4; everything else integrated OpenNLP 1.5 (Sect. 4.2).
  if (op_name == "annotate_disease_ml") return "opennlp:1.4";
  if (op_name == "annotate_sentences" || op_name == "annotate_pos") {
    return "opennlp:1.5";
  }
  return "";
}

}  // namespace wsie::core
