#include "core/operators_dc.h"

#include <mutex>
#include <span>

#include "core/record_sentences.h"
#include "ie/relation_extractor.h"

namespace wsie::core {
namespace {

using ::wsie::dataflow::Dataset;
using ::wsie::dataflow::Operator;
using ::wsie::dataflow::OperatorPackage;
using ::wsie::dataflow::OperatorPtr;
using ::wsie::dataflow::OperatorTraits;
using ::wsie::dataflow::Record;
using ::wsie::dataflow::RecordOperator;
using ::wsie::dataflow::Value;

class DeduplicateDocumentsOp : public Operator {
 public:
  explicit DeduplicateDocumentsOp(dc::NearDuplicateOptions options)
      : index_(options) {}

  std::string name() const override { return "deduplicate_documents"; }
  OperatorPackage package() const override { return OperatorPackage::kDc; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText};
    t.selectivity = 0.9;
    t.cost_per_record = 3.0;
    // Stateful across the whole input: the optimizer must not move it.
    t.record_at_a_time = false;
    return t;
  }
  size_t MemoryBytesPerWorker() const override { return 32u << 20; }

  Status ProcessSpan(std::span<const Record> in,
                     Dataset* out) const override {
    // The index is shared across concurrently processed morsels.
    for (const Record& r : in) {
      uint64_t doc_id = static_cast<uint64_t>(r.Field(kFieldId).AsInt());
      const std::string& text = r.Field(kFieldText).AsString();
      dc::MinHashSignature signature = index_.Signature(text);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (index_.FindDuplicateOf(signature) >= 0) continue;
        index_.Add(doc_id, signature);
      }
      out->push_back(r);
    }
    return Status::OK();
  }

 private:
  mutable std::mutex mu_;
  mutable dc::NearDuplicateIndex index_;
};

bool Overlaps(const Value& a, const Value& b) {
  return a.Field("b").AsInt() < b.Field("e").AsInt() &&
         b.Field("b").AsInt() < a.Field("e").AsInt() &&
         a.Field("type").AsString() == b.Field("type").AsString();
}

class MergeAnnotationsOp : public RecordOperator {
 public:
  explicit MergeAnnotationsOp(MergeStrategy strategy) : strategy_(strategy) {}

  std::string name() const override { return "merge_annotations"; }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldEntities};
    t.writes = {kFieldEntities};
    t.cost_per_record = 1.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    record.SetField(kFieldEntities,
                    Value(Merge(record.Field(kFieldEntities).AsArray())));
    out->push_back(std::move(record));
    return Status::OK();
  }

 private:
  /// True if `a` wins over `b` under the strategy.
  bool Wins(const Value& a, const Value& b) const {
    switch (strategy_) {
      case MergeStrategy::kPreferMl:
        return a.Field("method").AsString() == "ml" &&
               b.Field("method").AsString() != "ml";
      case MergeStrategy::kPreferDict:
        return a.Field("method").AsString() == "dict" &&
               b.Field("method").AsString() != "dict";
      case MergeStrategy::kLongest:
        return (a.Field("e").AsInt() - a.Field("b").AsInt()) >
               (b.Field("e").AsInt() - b.Field("b").AsInt());
      case MergeStrategy::kUnion:
        return false;
    }
    return false;
  }

  Value::Array Merge(const Value::Array& entities) const {
    if (strategy_ == MergeStrategy::kUnion) return entities;
    std::vector<bool> dropped(entities.size(), false);
    for (size_t i = 0; i < entities.size(); ++i) {
      if (dropped[i]) continue;
      for (size_t j = 0; j < entities.size(); ++j) {
        if (i == j || dropped[j] || dropped[i]) continue;
        if (!Overlaps(entities[i], entities[j])) continue;
        if (Wins(entities[i], entities[j])) {
          dropped[j] = true;
        } else if (Wins(entities[j], entities[i])) {
          dropped[i] = true;
        } else if (j > i) {
          dropped[j] = true;  // tie: keep the first
        }
      }
    }
    Value::Array merged;
    for (size_t i = 0; i < entities.size(); ++i) {
      if (!dropped[i]) merged.push_back(entities[i]);
    }
    return merged;
  }

  MergeStrategy strategy_;
};

class ExtractRelationsOp : public RecordOperator {
 public:
  ExtractRelationsOp(ContextPtr context, double min_confidence)
      : context_(std::move(context)), min_confidence_(min_confidence) {}

  std::string name() const override { return "extract_relations"; }
  OperatorPackage package() const override { return OperatorPackage::kIe; }
  OperatorTraits traits() const override {
    OperatorTraits t;
    t.reads = {kFieldText, kFieldSentences, kFieldEntities};
    t.writes = {kFieldRelations};
    t.cost_per_record = 5.0;
    return t;
  }

 protected:
  Status TransformRecord(Record record, Dataset* out) const override {
    const std::string& text = record.Field(kFieldText).AsString();
    uint64_t doc_id = static_cast<uint64_t>(record.Field(kFieldId).AsInt());

    // Materialize entity annotations once.
    std::vector<ie::Annotation> entities;
    for (const Value& ev : record.Field(kFieldEntities).AsArray()) {
      ie::Annotation a;
      a.doc_id = doc_id;
      a.begin = static_cast<uint32_t>(ev.Field("b").AsInt());
      a.end = static_cast<uint32_t>(ev.Field("e").AsInt());
      a.surface = ev.Field("surface").AsString();
      const std::string& type = ev.Field("type").AsString();
      a.entity_type = type == "gene"   ? ie::EntityType::kGene
                      : type == "drug" ? ie::EntityType::kDrug
                                       : ie::EntityType::kDisease;
      a.method = ev.Field("method").AsString() == "ml"
                     ? ie::AnnotationMethod::kMl
                     : ie::AnnotationMethod::kDictionary;
      entities.push_back(std::move(a));
    }

    Value::Array relations;
    uint32_t sentence_id = 0;
    thread_local std::vector<text::Token> token_scratch;
    for (const Value& sv : record.Field(kFieldSentences).AsArray()) {
      size_t begin = static_cast<size_t>(sv.Field("b").AsInt());
      size_t end = static_cast<size_t>(sv.Field("e").AsInt());
      if (end > text.size() || begin >= end) continue;
      std::vector<ie::Annotation> in_sentence;
      for (const ie::Annotation& a : entities) {
        if (a.begin >= begin && a.end <= end) in_sentence.push_back(a);
      }
      if (in_sentence.size() >= 2) {
        // Reuse the stored sentence tokenization for the negation check
        // instead of re-tokenizing inside the extractor.
        DecodeSentenceTokens(text, sv, &token_scratch);
        for (ie::Relation& rel : extractor_.ExtractFromSentence(
                 std::string_view(text).substr(begin, end - begin), begin,
                 in_sentence, token_scratch)) {
          if (rel.confidence < min_confidence_) continue;
          Value rv;
          rv.SetField("type", std::string(ie::RelationTypeName(rel.type)));
          rv.SetField("arg1", rel.arg1.surface);
          rv.SetField("arg2", rel.arg2.surface);
          rv.SetField("confidence", rel.confidence);
          rv.SetField("sentence", static_cast<int64_t>(sentence_id));
          if (!rel.trigger.empty()) rv.SetField("trigger", rel.trigger);
          relations.push_back(std::move(rv));
        }
      }
      ++sentence_id;
    }
    record.SetField(kFieldRelations, Value(std::move(relations)));
    out->push_back(std::move(record));
    (void)context_;
    return Status::OK();
  }

 private:
  ContextPtr context_;
  double min_confidence_;
  ie::RelationExtractor extractor_;
};

}  // namespace

OperatorPtr MakeDeduplicateDocuments(dc::NearDuplicateOptions options) {
  return std::make_shared<DeduplicateDocumentsOp>(options);
}

OperatorPtr MakeMergeAnnotations(MergeStrategy strategy) {
  return std::make_shared<MergeAnnotationsOp>(strategy);
}

OperatorPtr MakeExtractRelations(ContextPtr context, double min_confidence) {
  return std::make_shared<ExtractRelationsOp>(std::move(context),
                                              min_confidence);
}

}  // namespace wsie::core
