#ifndef WSIE_CORE_IE_FEEDBACK_H_
#define WSIE_CORE_IE_FEEDBACK_H_

#include <memory>

#include "core/analysis_context.h"
#include "crawler/focused_crawler.h"

namespace wsie::core {

/// The consolidated crawl+IE relevance signal proposed in Sect. 5:
/// dictionary entity taggers run on each candidate page's net text during
/// the crawl, and the density of biomedical entity mentions feeds the
/// relevance decision ("the occurrence of gene names or disease names are
/// strong indicators for biomedical content").
class EntityDensitySignal : public crawler::RelevanceSignal {
 public:
  /// `context` supplies the (incomplete) dictionary taggers; must outlive
  /// this object. `saturation_per_1000_chars` is the mention density at
  /// which the score saturates to 1.
  explicit EntityDensitySignal(std::shared_ptr<const AnalysisContext> context,
                               double saturation_per_1000_chars = 2.0);

  double Score(std::string_view net_text) const override;

 private:
  std::shared_ptr<const AnalysisContext> context_;
  double saturation_;
};

}  // namespace wsie::core

#endif  // WSIE_CORE_IE_FEEDBACK_H_
