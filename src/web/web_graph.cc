#include "web/web_graph.h"

#include <algorithm>

namespace wsie::web {
namespace {

constexpr const char* kBiomedStems[] = {"cancer",  "gene",    "health",
                                        "med",     "bio",     "disease",
                                        "drug",    "clinic",  "patient",
                                        "genome",  "pharma",  "onco"};
constexpr const char* kBiomedSuffixes[] = {"info", "portal", "center",
                                           "wiki", "net",    "base"};
constexpr const char* kResearchStems[] = {"arxiv", "nature", "plos",
                                          "biomedcentral", "sciencedirect",
                                          "pubmedcentral"};
constexpr const char* kLayStems[] = {"blogger", "wordpress", "forum",
                                     "community", "stories", "myjournal",
                                     "slideshare", "answers"};
constexpr const char* kOffStems[] = {"shop",   "sport", "game",  "tech",
                                     "travel", "news",  "movie", "auto",
                                     "fashion", "foodie", "market", "finance"};
constexpr const char* kTlds[] = {".org", ".com", ".net", ".edu", ".gov"};

}  // namespace

const char* HostTopicName(HostTopic topic) {
  switch (topic) {
    case HostTopic::kBiomedResearch:
      return "biomed-research";
    case HostTopic::kBiomedPortal:
      return "biomed-portal";
    case HostTopic::kLayHealth:
      return "lay-health";
    case HostTopic::kOffDomain:
      return "off-domain";
    case HostTopic::kNonEnglish:
      return "non-english";
    case HostTopic::kTrap:
      return "trap";
  }
  return "unknown";
}

SyntheticWeb::SyntheticWeb(WebConfig config) : config_(config) {
  Rng rng(config_.seed);
  GenerateHosts(rng);
  GeneratePages(rng);
  GenerateLinks(rng);
}

void SyntheticWeb::GenerateHosts(Rng& rng) {
  hosts_.reserve(config_.num_hosts);
  host_pages_.resize(config_.num_hosts);
  const size_t n = config_.num_hosts;
  size_t n_research = static_cast<size_t>(config_.frac_biomed_research * n);
  size_t n_portal = static_cast<size_t>(config_.frac_biomed_portal * n);
  size_t n_lay = static_cast<size_t>(config_.frac_lay_health * n);
  size_t n_foreign = static_cast<size_t>(config_.frac_non_english * n);
  size_t n_trap = std::max<size_t>(1, static_cast<size_t>(config_.frac_trap * n));

  auto make_name = [&](HostTopic topic, size_t index) {
    std::string name;
    switch (topic) {
      case HostTopic::kBiomedResearch:
        name = kResearchStems[index % 6];
        if (index >= 6) name += std::to_string(index);
        name += ".org";
        break;
      case HostTopic::kBiomedPortal:
        name = std::string(kBiomedStems[rng.Uniform(12)]) +
               kBiomedSuffixes[rng.Uniform(6)] + std::to_string(index) +
               kTlds[rng.Uniform(5)];
        break;
      case HostTopic::kLayHealth:
        name = std::string(kLayStems[rng.Uniform(8)]) + std::to_string(index) +
               ".com";
        break;
      case HostTopic::kNonEnglish:
        name = "portal" + std::to_string(index) + ".example." +
               (rng.Bernoulli(0.5) ? "de" : "fr");
        break;
      case HostTopic::kTrap:
        name = "calendar" + std::to_string(index) + ".example.com";
        break;
      default:
        name = std::string(kOffStems[rng.Uniform(12)]) +
               std::to_string(index) + kTlds[rng.Uniform(5)];
        break;
    }
    return name;
  };

  size_t created = 0;
  auto add_hosts = [&](HostTopic topic, size_t count) {
    for (size_t i = 0; i < count && created < n; ++i, ++created) {
      HostInfo host;
      host.id = static_cast<uint32_t>(created);
      host.topic = topic;
      host.name = make_name(topic, created);
      host.language = topic == HostTopic::kNonEnglish
                          ? (rng.Bernoulli(0.5) ? "de" : "fr")
                          : "en";
      if (rng.Bernoulli(0.3)) host.robots_disallow_prefix = "/private";
      // Ensure unique names.
      while (name_to_host_.count(host.name) > 0) {
        host.name = "x" + host.name;
      }
      name_to_host_[host.name] = host.id;
      hosts_.push_back(std::move(host));
    }
  };
  add_hosts(HostTopic::kBiomedResearch, n_research);
  add_hosts(HostTopic::kBiomedPortal, n_portal);
  add_hosts(HostTopic::kLayHealth, n_lay);
  add_hosts(HostTopic::kNonEnglish, n_foreign);
  add_hosts(HostTopic::kTrap, n_trap);
  add_hosts(HostTopic::kOffDomain, n - created);
}

void SyntheticWeb::GeneratePages(Rng& rng) {
  for (HostInfo& host : hosts_) {
    if (host.topic == HostTopic::kTrap) continue;  // pages are synthesized
    // Page counts vary by a factor ~4 across hosts. Clamp in the double
    // domain: casting a negative draw to size_t is undefined behaviour.
    double draw =
        rng.Gaussian(static_cast<double>(config_.mean_pages_per_host),
                     static_cast<double>(config_.mean_pages_per_host) * 0.5);
    size_t count = static_cast<size_t>(std::max(3.0, draw));
    for (size_t i = 0; i < count; ++i) {
      PageInfo page;
      page.id = pages_.size();
      page.host_id = host.id;
      page.render_seed = rng.Next();
      if (i == 0) {
        page.path = "/index.html";
        page.mime = lang::MimeClass::kHtml;
      } else if (rng.Bernoulli(config_.nontext_page_frac)) {
        // Non-textual page; MIME filter workload. Some PDFs carry a
        // misleading .html extension (the Sect. 5 Tika pitfall).
        bool misleading = rng.Bernoulli(0.2);
        page.mime =
            rng.Bernoulli(0.6) ? lang::MimeClass::kPdf : lang::MimeClass::kImage;
        page.path = "/file" + std::to_string(i) +
                    (misleading ? ".html"
                     : page.mime == lang::MimeClass::kPdf ? ".pdf"
                                                          : ".png");
      } else {
        page.path = "/page" + std::to_string(i) + ".html";
        page.mime = lang::MimeClass::kHtml;
      }
      if (!host.robots_disallow_prefix.empty() &&
          rng.Bernoulli(config_.robots_disallow_frac) && i != 0) {
        page.path = host.robots_disallow_prefix + page.path;
      }
      // Ground-truth relevance.
      switch (host.topic) {
        case HostTopic::kBiomedResearch:
        case HostTopic::kBiomedPortal:
          page.relevant = rng.Bernoulli(config_.relevance_biomed);
          break;
        case HostTopic::kLayHealth:
          page.relevant = rng.Bernoulli(config_.relevance_lay_health);
          break;
        case HostTopic::kOffDomain:
          page.relevant = rng.Bernoulli(config_.relevance_off_domain);
          break;
        default:
          page.relevant = false;
          break;
      }
      if (page.mime != lang::MimeClass::kHtml) page.relevant = false;
      if (page.relevant) ++num_relevant_;
      host_pages_[host.id].push_back(page.id);
      url_to_page_["http://" + host.name + page.path] = page.id;
      pages_.push_back(std::move(page));
    }
  }
}

void SyntheticWeb::GenerateLinks(Rng& rng) {
  // Collect per-topic host lists for cross linking.
  std::vector<uint32_t> relevant_hosts, other_hosts;
  for (const HostInfo& host : hosts_) {
    if (host.topic == HostTopic::kBiomedResearch ||
        host.topic == HostTopic::kBiomedPortal ||
        host.topic == HostTopic::kLayHealth ||
        host.topic == HostTopic::kNonEnglish) {
      // Non-English health portals are linked from English health sites —
      // that is exactly why the crawler needs its language filter
      // (Sect. 2.1).
      relevant_hosts.push_back(host.id);
    } else {
      other_hosts.push_back(host.id);
    }
  }
  auto random_page_of_host = [&](uint32_t host_id) -> int64_t {
    const auto& plist = host_pages_[host_id];
    if (plist.empty()) return -1;
    return static_cast<int64_t>(plist[rng.Uniform(plist.size())]);
  };

  for (PageInfo& page : pages_) {
    if (page.mime != lang::MimeClass::kHtml) continue;
    const HostInfo& host = hosts_[page.host_id];
    // Navigational links: home page plus random same-host pages.
    const auto& own = host_pages_[page.host_id];
    page.outlinks.push_back(own.front());
    for (size_t i = 1; i < config_.nav_links_per_page && own.size() > 1; ++i) {
      page.outlinks.push_back(own[rng.Uniform(own.size())]);
    }
    // Cross-host content links.
    bool biomed_host = host.topic == HostTopic::kBiomedResearch ||
                       host.topic == HostTopic::kBiomedPortal;
    bool nav_only = biomed_host && rng.Bernoulli(config_.biomed_nav_only_prob);
    if (!nav_only) {
      size_t cross = rng.Uniform(config_.max_cross_links_per_page + 1);
      for (size_t i = 0; i < cross; ++i) {
        bool to_relevant = page.relevant
                               ? rng.Bernoulli(config_.topical_locality)
                               : rng.Bernoulli(1.0 - config_.topical_locality);
        const auto& pool = to_relevant ? relevant_hosts : other_hosts;
        if (pool.empty()) continue;
        int64_t target = random_page_of_host(pool[rng.Uniform(pool.size())]);
        if (target >= 0) page.outlinks.push_back(static_cast<uint64_t>(target));
      }
    }
    // Occasional link into a trap host.
    if (rng.Bernoulli(0.01)) {
      for (const HostInfo& h : hosts_) {
        if (h.topic == HostTopic::kTrap) {
          // Trap URLs are dynamic; mark with a sentinel outlink encoded as
          // page id beyond range — SimulatedWeb renders trap links in HTML
          // directly, so nothing is needed here. (Trap entry links are
          // emitted by the renderer based on this flag.)
          break;
        }
      }
    }
    // De-duplicate and drop self-links.
    std::sort(page.outlinks.begin(), page.outlinks.end());
    page.outlinks.erase(
        std::unique(page.outlinks.begin(), page.outlinks.end()),
        page.outlinks.end());
    page.outlinks.erase(
        std::remove(page.outlinks.begin(), page.outlinks.end(), page.id),
        page.outlinks.end());
  }
}

const PageInfo* SyntheticWeb::FindPage(std::string_view url) const {
  auto it = url_to_page_.find(std::string(url));
  if (it == url_to_page_.end()) return nullptr;
  return &pages_[it->second];
}

const HostInfo* SyntheticWeb::FindHost(std::string_view name) const {
  auto it = name_to_host_.find(std::string(name));
  if (it == name_to_host_.end()) return nullptr;
  return &hosts_[it->second];
}

}  // namespace wsie::web
