#ifndef WSIE_WEB_PAGE_RENDERER_H_
#define WSIE_WEB_PAGE_RENDERER_H_

#include <string>
#include <vector>

#include "corpus/document.h"
#include "corpus/lexicon.h"
#include "web/web_graph.h"

namespace wsie::web {

/// A fully rendered page: HTML plus the generator's ground truth.
struct RenderedPage {
  std::string html;
  std::string net_text;  ///< ground-truth main content (pre-mangling)
  corpus::Document content_doc;  ///< content with gold entities
  bool severely_mangled = false; ///< beyond-repair corruption was applied
  int injected_errors = 0;       ///< number of markup defects injected
};

/// Rendering / mangling parameters.
struct RendererConfig {
  /// Fraction of pages receiving at least one markup defect. Ofuonye et al.
  /// [19] (cited in Sect. 5): 95% of web HTML violates the standards.
  double markup_error_page_frac = 0.95;
  /// Fraction of pages corrupted beyond repair ([19]: 13% could not be
  /// transcoded).
  double severe_error_page_frac = 0.13;
  int max_errors_per_page = 6;
  /// Fraction of content placed into <li>/<td> blocks — the table/list
  /// content the paper's boilerplate detector loses (Sect. 4.1).
  double content_in_list_frac = 0.20;
};

/// Deterministically renders a page's HTML from its metadata.
///
/// Layout: header/navigation boilerplate (link-dense), the main content
/// (corpus::TextGenerator prose with gold entities), a sidebar, and a
/// footer; then markup defects are injected per RendererConfig. The
/// ground-truth net text is captured before mangling, giving the gold
/// standard for boilerplate-detector evaluation.
class PageRenderer {
 public:
  /// `web` and `lexicons` must outlive the renderer.
  PageRenderer(const SyntheticWeb* web, const corpus::EntityLexicons* lexicons,
               RendererConfig config = {});

  /// Renders `page`. Deterministic in page.render_seed.
  RenderedPage Render(const PageInfo& page) const;

 private:
  std::string NonEnglishParagraph(Rng& rng, const std::string& language) const;
  void Mangle(Rng& rng, RenderedPage& page) const;

  const SyntheticWeb* web_;
  const corpus::EntityLexicons* lexicons_;
  RendererConfig config_;
};

}  // namespace wsie::web

#endif  // WSIE_WEB_PAGE_RENDERER_H_
