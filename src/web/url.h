#ifndef WSIE_WEB_URL_H_
#define WSIE_WEB_URL_H_

#include <string>
#include <string_view>

namespace wsie::web {

/// Minimal URL splitter for the "http://host/path" URLs of the simulated
/// web. Relative links are resolved against a base URL's host.
struct Url {
  std::string host;
  std::string path;  ///< always begins with '/'

  std::string ToString() const { return "http://" + host + path; }
};

/// Parses an absolute URL; returns false if it is not http(s)://host/...
bool ParseUrl(std::string_view url, Url* out);

/// Resolves `link` (absolute or site-relative) against `base`. Returns false
/// for unsupported schemes (mailto:, javascript:, fragments).
bool ResolveLink(const Url& base, std::string_view link, Url* out);

/// Returns the registrable domain used for the PageRank-by-domain table
/// (Table 2): the last two labels of the host ("portal.example.org" ->
/// "example.org").
std::string DomainOf(std::string_view host);

}  // namespace wsie::web

#endif  // WSIE_WEB_URL_H_
