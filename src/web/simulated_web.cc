#include "web/simulated_web.h"

#include <cstdlib>

#include "common/string_util.h"

namespace wsie::web {

SimulatedWeb::SimulatedWeb(const SyntheticWeb* web,
                           const corpus::EntityLexicons* lexicons,
                           RendererConfig renderer_config,
                           FetchLatencyModel latency)
    : web_(web),
      renderer_(web, lexicons, renderer_config),
      latency_(latency) {}

std::string SimulatedWeb::RobotsDisallowPrefix(
    std::string_view host_name) const {
  const HostInfo* host = web_->FindHost(host_name);
  if (host == nullptr) return "";
  return host->robots_disallow_prefix;
}

FetchResult SimulatedWeb::RenderTrapPage(const HostInfo& host,
                                         std::string_view path) const {
  // "/day?p=N" -> page linking to p=N+1 and p=N+2: a dynamically generated
  // infinite chain, the classic calendar spider trap (Sect. 2.1).
  FetchResult result;
  result.is_trap = true;
  long n = 0;
  size_t eq = path.rfind("p=");
  if (eq != std::string_view::npos) {
    n = std::strtol(std::string(path.substr(eq + 2)).c_str(), nullptr, 10);
  }
  std::string& body = result.body;
  body = "<!DOCTYPE html>\n<html><head><title>Calendar day " +
         std::to_string(n) + "</title></head><body>\n";
  body += "<p>Events for day " + std::to_string(n) + ": none scheduled.</p>\n";
  body += "<p><a href=\"http://" + host.name + "/day?p=" +
          std::to_string(n + 1) + "\">next day</a> ";
  body += "<a href=\"http://" + host.name + "/day?p=" +
          std::to_string(n + 2) + "\">skip a day</a></p>\n";
  body += "</body></html>\n";
  result.content_type = "text/html";
  return result;
}

FetchResult SimulatedWeb::Fetch(std::string_view url) const {
  uint64_t count = fetch_count_.fetch_add(1);
  Url parsed;
  FetchResult result;
  if (!ParseUrl(url, &parsed)) {
    result.http_status = 404;
    return result;
  }
  const HostInfo* host = web_->FindHost(parsed.host);
  if (host == nullptr) {
    result.http_status = 404;
    return result;
  }
  if (parsed.path == "/robots.txt") {
    result.content_type = "text/plain";
    result.body = "User-agent: *\n";
    if (!host->robots_disallow_prefix.empty()) {
      result.body += "Disallow: " + host->robots_disallow_prefix + "\n";
    }
    return result;
  }
  if (host->topic == HostTopic::kTrap) {
    result = RenderTrapPage(*host, parsed.path);
  } else {
    const PageInfo* page = web_->FindPage(url);
    if (page == nullptr) {
      result.http_status = 404;
      return result;
    }
    RenderedPage rendered = renderer_.Render(*page);
    result.body = std::move(rendered.html);
    result.page = page;
    // Content-type header: servers lie for the misleading-extension pages,
    // reproducing the MIME-detection pitfall (Sect. 5).
    result.content_type = "text/html";
  }
  // Virtual latency: deterministic jitter keyed on the fetch count.
  double jitter =
      latency_.jitter_ms *
      (static_cast<double>((count * 2654435761ULL) % 1000) / 1000.0);
  result.virtual_latency_ms =
      latency_.base_ms +
      latency_.per_kb_ms * (static_cast<double>(result.body.size()) / 1024.0) +
      jitter;
  return result;
}

}  // namespace wsie::web
