#include "web/simulated_web.h"

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"
#include "common/string_util.h"
#include "fault/wire_format.h"
#include "obs/metrics.h"

namespace wsie::web {

SimulatedWeb::SimulatedWeb(const SyntheticWeb* web,
                           const corpus::EntityLexicons* lexicons,
                           RendererConfig renderer_config,
                           FetchLatencyModel latency)
    : web_(web),
      renderer_(web, lexicons, renderer_config),
      latency_(latency) {}

std::string SimulatedWeb::RobotsDisallowPrefix(
    std::string_view host_name) const {
  const HostInfo* host = web_->FindHost(host_name);
  if (host == nullptr) return "";
  return host->robots_disallow_prefix;
}

Result<std::string> SimulatedWeb::CheckedRobotsDisallowPrefix(
    std::string_view host_name, int attempt) const {
  if (fault_plan_ != nullptr &&
      !fault_plan_->RobotsAvailable(host_name, attempt)) {
    return Status::Unavailable("robots.txt flapping for " +
                               std::string(host_name));
  }
  return RobotsDisallowPrefix(host_name);
}

FetchResult SimulatedWeb::RenderTrapPage(const HostInfo& host,
                                         std::string_view path) const {
  // "/day?p=N" -> page linking to p=N+1 and p=N+2: a dynamically generated
  // infinite chain, the classic calendar spider trap (Sect. 2.1).
  FetchResult result;
  result.is_trap = true;
  long n = 0;
  size_t eq = path.rfind("p=");
  if (eq != std::string_view::npos) {
    n = std::strtol(std::string(path.substr(eq + 2)).c_str(), nullptr, 10);
  }
  std::string& body = result.body;
  body = "<!DOCTYPE html>\n<html><head><title>Calendar day " +
         std::to_string(n) + "</title></head><body>\n";
  body += "<p>Events for day " + std::to_string(n) + ": none scheduled.</p>\n";
  body += "<p><a href=\"http://" + host.name + "/day?p=" +
          std::to_string(n + 1) + "\">next day</a> ";
  body += "<a href=\"http://" + host.name + "/day?p=" +
          std::to_string(n + 2) + "\">skip a day</a></p>\n";
  body += "</body></html>\n";
  result.content_type = "text/html";
  return result;
}

void SimulatedWeb::ApplyBodyFault(const fault::FaultDecision& decision,
                                  FetchResult* result) const {
  if (decision.kind == fault::FaultKind::kTruncatedBody) {
    // Connection dropped mid-body: keep a prefix, likely splitting a tag.
    size_t keep = static_cast<size_t>(static_cast<double>(result->body.size()) *
                                      decision.keep_frac);
    result->body.resize(std::min(keep, result->body.size()));
  } else if (decision.kind == fault::FaultKind::kGarbledBody) {
    // Bit rot in flight: overwrite a deterministic sample of bytes.
    Rng rng(decision.mangle_seed);
    size_t n = result->body.size();
    if (n > 0) {
      size_t damaged = std::max<size_t>(1, n / 50);  // ~2% of the bytes
      for (size_t i = 0; i < damaged; ++i) {
        size_t pos = rng.Uniform(n);
        result->body[pos] = static_cast<char>(0x80 + rng.Uniform(0x40));
      }
    }
  }
}

FetchResult SimulatedWeb::Fetch(std::string_view url, int attempt) const {
  fetch_count_.fetch_add(1);
  static obs::Counter* attempts =
      obs::MetricsRegistry::Global().GetCounter("wsie.web.fetch.attempts");
  attempts->Increment();
  Url parsed;
  FetchResult result;
  if (!ParseUrl(url, &parsed)) {
    result.http_status = 404;
    return result;
  }

  // Consult the fault plan before touching the host: DNS errors and
  // time-outs happen before any server-side work.
  fault::FaultDecision fault_decision;
  if (fault_plan_ != nullptr) {
    fault_decision = fault_plan_->Decide(parsed.host, parsed.path, attempt);
    result.injected_fault = fault_decision.kind;
    switch (fault_decision.kind) {
      case fault::FaultKind::kTimeout:
        result.status = Status::Timeout("fetch timed out: " + std::string(url));
        result.http_status = 0;
        result.virtual_latency_ms = fault_decision.extra_latency_ms;
        return result;
      case fault::FaultKind::kDnsError:
        result.status =
            Status::Unavailable("dns resolution failed: " + parsed.host);
        result.http_status = 0;
        result.virtual_latency_ms = fault_decision.extra_latency_ms;
        return result;
      case fault::FaultKind::kHttp5xx:
        result.status =
            Status::Unavailable("server returned 503: " + std::string(url));
        result.http_status = 503;
        result.virtual_latency_ms = latency_.base_ms;
        result.content_type = "text/html";
        result.body = "<html><body><h1>503 Service Unavailable</h1></body></html>";
        return result;
      default:
        break;  // slow/truncate/garble damage the normal response below
    }
  }

  const HostInfo* host = web_->FindHost(parsed.host);
  if (host == nullptr) {
    result.http_status = 404;
    return result;
  }
  if (parsed.path == "/robots.txt") {
    result.content_type = "text/plain";
    result.body = "User-agent: *\n";
    if (!host->robots_disallow_prefix.empty()) {
      result.body += "Disallow: " + host->robots_disallow_prefix + "\n";
    }
    return result;
  }
  if (host->topic == HostTopic::kTrap) {
    result = RenderTrapPage(*host, parsed.path);
    result.injected_fault = fault_decision.kind;
  } else {
    const PageInfo* page = web_->FindPage(url);
    if (page == nullptr) {
      result.http_status = 404;
      return result;
    }
    RenderedPage rendered = renderer_.Render(*page);
    result.body = std::move(rendered.html);
    result.page = page;
    // Content-type header: servers lie for the misleading-extension pages,
    // reproducing the MIME-detection pitfall (Sect. 5).
    result.content_type = "text/html";
  }
  ApplyBodyFault(fault_decision, &result);

  // Virtual latency: deterministic jitter keyed on (url, attempt) — never
  // on shared counters, so latency totals are identical across thread
  // schedules and across a kill/resume boundary.
  uint64_t jitter_key = fault::wire::Mix(fault::wire::Fnv1a(url),
                                         static_cast<uint64_t>(attempt));
  double jitter =
      latency_.jitter_ms * (static_cast<double>(jitter_key % 1000) / 1000.0);
  result.virtual_latency_ms =
      latency_.base_ms +
      latency_.per_kb_ms * (static_cast<double>(result.body.size()) / 1024.0) +
      jitter;
  result.virtual_latency_ms *= fault_decision.slow_factor;
  return result;
}

}  // namespace wsie::web
