#ifndef WSIE_WEB_SIMULATED_WEB_H_
#define WSIE_WEB_SIMULATED_WEB_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "web/page_renderer.h"
#include "web/web_graph.h"

namespace wsie::web {

/// Result of fetching one URL from the simulated web.
struct FetchResult {
  int http_status = 200;       ///< 200, 404
  std::string body;            ///< page bytes
  std::string content_type;    ///< as a (possibly lying) server would send
  double virtual_latency_ms = 0.0;  ///< modeled network+server latency
  const PageInfo* page = nullptr;   ///< metadata; nullptr for dynamic/unknown
  bool is_trap = false;
};

/// Latency model parameters (virtual time; nothing sleeps).
struct FetchLatencyModel {
  double base_ms = 80.0;
  double per_kb_ms = 2.0;
  double jitter_ms = 60.0;
};

/// The fetchable face of the SyntheticWeb: resolves URLs to rendered pages,
/// serves robots.txt, synthesizes spider-trap pages with endless dynamic
/// links, and models latency in virtual time. Thread-safe; fetcher threads
/// call Fetch() concurrently.
class SimulatedWeb {
 public:
  /// `web` and `lexicons` must outlive this object.
  SimulatedWeb(const SyntheticWeb* web, const corpus::EntityLexicons* lexicons,
               RendererConfig renderer_config = {},
               FetchLatencyModel latency = {});

  /// Fetches `url`. Unknown URLs return 404 with an empty body.
  FetchResult Fetch(std::string_view url) const;

  /// Returns the robots.txt Disallow prefix for `host_name` ("" if none or
  /// unknown host). Crawlers must consult this before fetching.
  std::string RobotsDisallowPrefix(std::string_view host_name) const;

  /// Total fetches served (across threads).
  uint64_t fetch_count() const { return fetch_count_.load(); }

  const SyntheticWeb& graph() const { return *web_; }
  const PageRenderer& renderer() const { return renderer_; }

 private:
  FetchResult RenderTrapPage(const HostInfo& host, std::string_view path) const;

  const SyntheticWeb* web_;
  PageRenderer renderer_;
  FetchLatencyModel latency_;
  mutable std::atomic<uint64_t> fetch_count_{0};
};

}  // namespace wsie::web

#endif  // WSIE_WEB_SIMULATED_WEB_H_
