#ifndef WSIE_WEB_SIMULATED_WEB_H_
#define WSIE_WEB_SIMULATED_WEB_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "fault/fault_plan.h"
#include "web/page_renderer.h"
#include "web/web_graph.h"

namespace wsie::web {

/// Result of fetching one URL from the simulated web.
struct FetchResult {
  /// OK for any response the server produced (including 404s); a retryable
  /// error (Timeout/Unavailable) when the injected fault swallowed the
  /// response entirely. Callers with a RetryPolicy branch on
  /// status.IsRetryable().
  Status status;
  int http_status = 200;       ///< 200, 404, 503 (injected 5xx), 0 (no response)
  std::string body;            ///< page bytes (possibly truncated/garbled)
  std::string content_type;    ///< as a (possibly lying) server would send
  double virtual_latency_ms = 0.0;  ///< modeled network+server latency
  const PageInfo* page = nullptr;   ///< metadata; nullptr for dynamic/unknown
  bool is_trap = false;
  fault::FaultKind injected_fault = fault::FaultKind::kNone;
};

/// Latency model parameters (virtual time; nothing sleeps).
struct FetchLatencyModel {
  double base_ms = 80.0;
  double per_kb_ms = 2.0;
  double jitter_ms = 60.0;
};

/// The fetchable face of the SyntheticWeb: resolves URLs to rendered pages,
/// serves robots.txt, synthesizes spider-trap pages with endless dynamic
/// links, and models latency in virtual time. Thread-safe; fetcher threads
/// call Fetch() concurrently.
///
/// When a FaultPlan is attached, every fetch consults it: time-outs, DNS
/// errors, and 5xx responses surface as retryable Status errors; slow
/// responses inflate the modeled latency; truncated/garbled bodies return
/// 200 with deterministically damaged bytes (the unstable-markup failure
/// mode — downstream HTML repair sees them). Latency jitter and all body
/// damage are keyed on (url, attempt), never on shared counters, so
/// concurrent crawls are bit-reproducible and a resumed crawl replays the
/// identical network.
class SimulatedWeb {
 public:
  /// `web` and `lexicons` must outlive this object.
  SimulatedWeb(const SyntheticWeb* web, const corpus::EntityLexicons* lexicons,
               RendererConfig renderer_config = {},
               FetchLatencyModel latency = {});

  /// Attaches a fault-injection plan (not owned; may be nullptr to detach).
  void set_fault_plan(const fault::FaultPlan* plan) { fault_plan_ = plan; }
  const fault::FaultPlan* fault_plan() const { return fault_plan_; }

  /// Fetches `url`; `attempt` is the caller's 0-based retry attempt, which
  /// selects the fault-plan decision. Unknown URLs return 404 with an empty
  /// body (status OK: the server answered).
  FetchResult Fetch(std::string_view url, int attempt = 0) const;

  /// Returns the robots.txt Disallow prefix for `host_name` ("" if none or
  /// unknown host). Crawlers must consult this before fetching. Never
  /// fails — fault injection does not apply (legacy path).
  std::string RobotsDisallowPrefix(std::string_view host_name) const;

  /// Fault-aware robots consultation: Unavailable when the plan says the
  /// host's robots.txt is flapping on this attempt, otherwise the Disallow
  /// prefix as above.
  Result<std::string> CheckedRobotsDisallowPrefix(std::string_view host_name,
                                                  int attempt = 0) const;

  /// Total fetch attempts served (across threads, including faulted ones).
  uint64_t fetch_count() const { return fetch_count_.load(); }

  const SyntheticWeb& graph() const { return *web_; }
  const PageRenderer& renderer() const { return renderer_; }

 private:
  FetchResult RenderTrapPage(const HostInfo& host, std::string_view path) const;
  void ApplyBodyFault(const fault::FaultDecision& decision,
                      FetchResult* result) const;

  const SyntheticWeb* web_;
  PageRenderer renderer_;
  FetchLatencyModel latency_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  mutable std::atomic<uint64_t> fetch_count_{0};
};

}  // namespace wsie::web

#endif  // WSIE_WEB_SIMULATED_WEB_H_
