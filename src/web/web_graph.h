#ifndef WSIE_WEB_WEB_GRAPH_H_
#define WSIE_WEB_WEB_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "lang/mime.h"
#include "web/url.h"

namespace wsie::web {

/// Topic of a simulated host; drives page relevance, language, and linking.
enum class HostTopic {
  kBiomedResearch,  ///< arxiv/nature-like scientific hosts
  kBiomedPortal,    ///< patient portals, disease-information sites
  kLayHealth,       ///< blogs/forums with mixed health content
  kOffDomain,       ///< shopping, sports, tech, news
  kNonEnglish,      ///< non-English content (language filter target)
  kTrap,            ///< spider trap: dynamically generated infinite links
};

const char* HostTopicName(HostTopic topic);

/// A simulated host.
struct HostInfo {
  uint32_t id = 0;
  std::string name;
  HostTopic topic = HostTopic::kOffDomain;
  std::string language = "en";
  /// robots.txt Disallow prefix; empty = everything allowed.
  std::string robots_disallow_prefix;
};

/// Static metadata of one simulated page (content is rendered on fetch).
struct PageInfo {
  uint64_t id = 0;
  uint32_t host_id = 0;
  std::string path;
  bool relevant = false;  ///< ground-truth biomedical relevance
  lang::MimeClass mime = lang::MimeClass::kHtml;
  std::vector<uint64_t> outlinks;  ///< page ids
  uint64_t render_seed = 0;        ///< deterministic per-page content seed
};

/// Synthetic-web generation parameters.
struct WebConfig {
  size_t num_hosts = 220;
  size_t mean_pages_per_host = 40;
  // Host-topic mix (fractions; remainder is off-domain).
  double frac_biomed_research = 0.08;
  double frac_biomed_portal = 0.12;
  double frac_lay_health = 0.15;
  double frac_non_english = 0.12;
  double frac_trap = 0.02;
  // Ground-truth page relevance per topic.
  double relevance_biomed = 0.90;
  double relevance_lay_health = 0.55;
  double relevance_off_domain = 0.03;
  // Linking behaviour. Biomedical sites are "only weakly linked; most often
  // all outgoing links ... navigational leading to pages on the same host"
  // (Sect. 2.2), which this probability reproduces.
  double biomed_nav_only_prob = 0.70;
  double topical_locality = 0.80;  ///< rel page cross-links hit rel hosts w.p.
  size_t nav_links_per_page = 5;
  size_t max_cross_links_per_page = 4;
  // Non-HTML page mix (MIME filter workload; paper: 9.5% filtered).
  double nontext_page_frac = 0.10;
  // Fraction of a host's pages placed under its robots Disallow prefix.
  double robots_disallow_frac = 0.05;
  uint64_t seed = 99;
};

/// The simulated world-wide web: hosts, pages, and the hyperlink graph.
///
/// Everything is generated deterministically from the seed at construction;
/// page *content* is rendered lazily and deterministically from each page's
/// render_seed (see PageRenderer), so the structure stays cheap even for
/// large webs. This class substitutes for the open web the paper crawls
/// (DESIGN.md, substitution table).
class SyntheticWeb {
 public:
  explicit SyntheticWeb(WebConfig config = {});

  const std::vector<HostInfo>& hosts() const { return hosts_; }
  const std::vector<PageInfo>& pages() const { return pages_; }
  const WebConfig& config() const { return config_; }

  const HostInfo& HostOf(const PageInfo& page) const {
    return hosts_[page.host_id];
  }

  /// URL of a page.
  std::string UrlOf(const PageInfo& page) const {
    return "http://" + hosts_[page.host_id].name + page.path;
  }

  /// Looks up a page by URL; returns nullptr for unknown URLs (including
  /// trap URLs, which are synthesized by SimulatedWeb, not stored).
  const PageInfo* FindPage(std::string_view url) const;

  /// Looks up a host by name; nullptr if unknown.
  const HostInfo* FindHost(std::string_view name) const;

  /// Number of ground-truth relevant pages (for harvest-rate evaluation).
  size_t num_relevant_pages() const { return num_relevant_; }

 private:
  void GenerateHosts(Rng& rng);
  void GeneratePages(Rng& rng);
  void GenerateLinks(Rng& rng);

  WebConfig config_;
  std::vector<HostInfo> hosts_;
  std::vector<PageInfo> pages_;
  std::unordered_map<std::string, uint64_t> url_to_page_;
  std::unordered_map<std::string, uint32_t> name_to_host_;
  std::vector<std::vector<uint64_t>> host_pages_;  // host id -> page ids
  size_t num_relevant_ = 0;
};

}  // namespace wsie::web

#endif  // WSIE_WEB_WEB_GRAPH_H_
