#include "web/search_engine.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/bag_of_words.h"

namespace wsie::web {

std::vector<SearchEngineSpec> DefaultEngines() {
  return {
      {"bing", 0.95, {}, 20, 4000},
      {"google", 1.0, {}, 20, 4000},
      {"arxiv", 1.0, {HostTopic::kBiomedResearch}, 15, 3000},
      {"nature", 1.0, {HostTopic::kBiomedResearch}, 15, 3000},
      {"nature-blogs", 1.0, {HostTopic::kLayHealth}, 10, 3000},
  };
}

SearchEngineFederation::SearchEngineFederation(
    const SimulatedWeb* web, std::vector<SearchEngineSpec> engines,
    uint64_t seed)
    : web_(web), engines_(std::move(engines)) {
  queries_used_.assign(engines_.size(), 0);
  index_.resize(engines_.size());
  BuildIndex(*web_, seed);
}

void SearchEngineFederation::BuildIndex(const SimulatedWeb& web,
                                        uint64_t seed) {
  Rng rng(seed);
  const SyntheticWeb& graph = web.graph();
  text::BagOfWords bow;
  // Decide per-engine host coverage once.
  std::vector<std::vector<bool>> host_indexed(
      engines_.size(), std::vector<bool>(graph.hosts().size(), false));
  for (size_t e = 0; e < engines_.size(); ++e) {
    const SearchEngineSpec& spec = engines_[e];
    for (const HostInfo& host : graph.hosts()) {
      if (host.topic == HostTopic::kTrap ||
          host.topic == HostTopic::kNonEnglish) {
        continue;
      }
      if (!spec.topic_whitelist.empty()) {
        bool allowed = std::find(spec.topic_whitelist.begin(),
                                 spec.topic_whitelist.end(),
                                 host.topic) != spec.topic_whitelist.end();
        if (!allowed) continue;
      }
      host_indexed[e][host.id] = rng.Bernoulli(spec.host_coverage);
    }
  }
  // Render and index each HTML page once, fanning postings out to the
  // engines that cover its host.
  for (const PageInfo& page : graph.pages()) {
    if (page.mime != lang::MimeClass::kHtml) continue;
    bool any_engine = false;
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (host_indexed[e][page.host_id]) {
        any_engine = true;
        break;
      }
    }
    if (!any_engine) continue;
    RenderedPage rendered = web.renderer().Render(page);
    text::TermCounts counts = bow.Featurize(rendered.net_text);
    for (size_t e = 0; e < engines_.size(); ++e) {
      if (!host_indexed[e][page.host_id]) continue;
      for (const auto& [term, tf] : counts) {
        index_[e][term].push_back(Posting{page.id, tf});
      }
    }
  }
  // Rank postings by term frequency (desc), page id as tiebreak.
  for (auto& engine_index : index_) {
    for (auto& [term, postings] : engine_index) {
      std::sort(postings.begin(), postings.end(),
                [](const Posting& a, const Posting& b) {
                  if (a.term_frequency != b.term_frequency)
                    return a.term_frequency > b.term_frequency;
                  return a.page_id < b.page_id;
                });
    }
  }
}

Result<std::vector<std::string>> SearchEngineFederation::Query(
    size_t engine_index, std::string_view keyword) {
  if (engine_index >= engines_.size()) {
    return Status::InvalidArgument("no such engine");
  }
  const SearchEngineSpec& spec = engines_[engine_index];
  if (queries_used_[engine_index] >= spec.max_queries) {
    return Status::ResourceExhausted("query budget of " + spec.name +
                                     " exhausted");
  }
  ++queries_used_[engine_index];
  // Multi-word keywords: intersect by scoring the first word's postings and
  // requiring the rest (cheap conjunctive semantics).
  std::vector<std::string> words = SplitWhitespace(AsciiToLower(keyword));
  std::vector<std::string> results;
  if (words.empty()) return results;
  const auto& engine = index_[engine_index];
  auto it = engine.find(words[0]);
  if (it == engine.end()) return results;
  const SyntheticWeb& graph = web_->graph();
  for (const Posting& posting : it->second) {
    bool all_match = true;
    for (size_t w = 1; w < words.size() && all_match; ++w) {
      auto wit = engine.find(words[w]);
      if (wit == engine.end()) {
        all_match = false;
        break;
      }
      all_match = std::any_of(wit->second.begin(), wit->second.end(),
                              [&](const Posting& p) {
                                return p.page_id == posting.page_id;
                              });
    }
    if (!all_match) continue;
    results.push_back(graph.UrlOf(graph.pages()[posting.page_id]));
    if (results.size() >= spec.max_results_per_query) break;
  }
  return results;
}

}  // namespace wsie::web
