#include "web/url.h"

#include "common/string_util.h"

namespace wsie::web {

bool ParseUrl(std::string_view url, Url* out) {
  std::string_view rest = url;
  if (StartsWith(rest, "http://")) {
    rest.remove_prefix(7);
  } else if (StartsWith(rest, "https://")) {
    rest.remove_prefix(8);
  } else {
    return false;
  }
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    out->host = std::string(rest);
    out->path = "/";
  } else {
    out->host = std::string(rest.substr(0, slash));
    out->path = std::string(rest.substr(slash));
  }
  if (out->host.empty()) return false;
  // Strip fragments.
  size_t hash = out->path.find('#');
  if (hash != std::string::npos) out->path.resize(hash);
  if (out->path.empty()) out->path = "/";
  return true;
}

bool ResolveLink(const Url& base, std::string_view link, Url* out) {
  if (link.empty()) return false;
  if (StartsWith(link, "mailto:") || StartsWith(link, "javascript:") ||
      StartsWith(link, "#")) {
    return false;
  }
  if (StartsWith(link, "http://") || StartsWith(link, "https://")) {
    return ParseUrl(link, out);
  }
  out->host = base.host;
  if (link[0] == '/') {
    out->path = std::string(link);
  } else {
    // Relative to the base path's directory.
    size_t dir = base.path.rfind('/');
    out->path = base.path.substr(0, dir + 1) + std::string(link);
  }
  size_t hash = out->path.find('#');
  if (hash != std::string::npos) out->path.resize(hash);
  if (out->path.empty()) out->path = "/";
  return true;
}

std::string DomainOf(std::string_view host) {
  size_t last = host.rfind('.');
  if (last == std::string_view::npos) return std::string(host);
  size_t second = host.rfind('.', last - 1);
  if (second == std::string_view::npos) return std::string(host);
  return std::string(host.substr(second + 1));
}

}  // namespace wsie::web
