#ifndef WSIE_WEB_SEARCH_ENGINE_H_
#define WSIE_WEB_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "web/simulated_web.h"
#include "web/web_graph.h"

namespace wsie::web {

/// Per-engine behaviour: coverage bias and API limits (Sect. 2.2: "all
/// search engine APIs restrict the number of allowed queries and limit the
/// number of returned results").
struct SearchEngineSpec {
  std::string name;
  /// Probability a host is in this engine's index (general engines ~1.0).
  double host_coverage = 1.0;
  /// If non-empty, index only hosts of these topics (Arxiv/Nature-style
  /// engines "return results only for content hosted there", Sect. 4.1).
  std::vector<HostTopic> topic_whitelist;
  size_t max_results_per_query = 10;
  size_t max_queries = 5000;
};

/// The default five-engine federation of the paper: Bing, Google, Arxiv,
/// Nature, Nature blogs.
std::vector<SearchEngineSpec> DefaultEngines();

/// A keyword index over the simulated web, partitioned into engines.
///
/// Construction renders every indexable page once and builds a term ->
/// pages inverted index per engine. Query() enforces per-engine query
/// budgets and result caps.
class SearchEngineFederation {
 public:
  SearchEngineFederation(const SimulatedWeb* web,
                         std::vector<SearchEngineSpec> engines = DefaultEngines(),
                         uint64_t seed = 31);

  /// Runs `keyword` against engine `engine_index`. Returns result URLs
  /// (ranked by term frequency, capped), or ResourceExhausted once the
  /// engine's query budget is spent.
  Result<std::vector<std::string>> Query(size_t engine_index,
                                         std::string_view keyword);

  size_t num_engines() const { return engines_.size(); }
  const SearchEngineSpec& engine(size_t i) const { return engines_[i]; }
  size_t queries_used(size_t i) const { return queries_used_[i]; }

 private:
  struct Posting {
    uint64_t page_id;
    uint32_t term_frequency;
  };

  void BuildIndex(const SimulatedWeb& web, uint64_t seed);

  const SimulatedWeb* web_;
  std::vector<SearchEngineSpec> engines_;
  std::vector<size_t> queries_used_;
  /// engine -> term -> postings
  std::vector<std::unordered_map<std::string, std::vector<Posting>>> index_;
};

}  // namespace wsie::web

#endif  // WSIE_WEB_SEARCH_ENGINE_H_
