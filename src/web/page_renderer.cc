#include "web/page_renderer.h"

#include <algorithm>

#include "common/string_util.h"
#include "corpus/text_generator.h"

namespace wsie::web {
namespace {

constexpr const char* kNavWords[] = {"Home",   "About",   "News",  "Contact",
                                     "Login",  "Archive", "Tags",  "Search",
                                     "Topics", "Help",    "Terms", "Sitemap"};

constexpr const char* kGermanWords[] = {
    "der",    "die",     "und",     "nicht",   "mit",     "behandlung",
    "krankheit", "studie", "ergebnisse", "patienten", "wurde", "zwischen",
    "haben",  "werden",  "einer",   "gegen",   "wichtig", "bericht"};
constexpr const char* kFrenchWords[] = {
    "le",      "la",     "les",      "et",      "dans",    "traitement",
    "maladie", "etude",  "resultats", "patients", "entre",  "avec",
    "pour",    "cette",  "sont",     "plus",    "sante",   "rapport"};

std::string SampleWords(Rng& rng, const char* const* pool, size_t pool_size,
                        size_t count) {
  std::string out;
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) out.push_back(' ');
    out += pool[rng.Uniform(pool_size)];
  }
  return out;
}

}  // namespace

PageRenderer::PageRenderer(const SyntheticWeb* web,
                           const corpus::EntityLexicons* lexicons,
                           RendererConfig config)
    : web_(web), lexicons_(lexicons), config_(config) {}

std::string PageRenderer::NonEnglishParagraph(
    Rng& rng, const std::string& language) const {
  size_t words = 40 + rng.Uniform(120);
  if (language == "de") {
    return SampleWords(rng, kGermanWords, 18, words);
  }
  return SampleWords(rng, kFrenchWords, 18, words);
}

RenderedPage PageRenderer::Render(const PageInfo& page) const {
  RenderedPage out;
  Rng rng(page.render_seed);
  const HostInfo& host = web_->HostOf(page);

  // Non-HTML payloads: synthetic binary-ish bodies with magic headers.
  if (page.mime == lang::MimeClass::kPdf) {
    out.html = "%PDF-1.4\n";
    out.html.append(800 + rng.Uniform(4000), '\x07');
    return out;
  }
  if (page.mime == lang::MimeClass::kImage) {
    out.html = "\x89PNG\r\n";
    out.html.append(500 + rng.Uniform(2000), '\x05');
    return out;
  }

  // --- Content generation.
  corpus::CorpusProfile profile =
      corpus::ProfileFor(page.relevant ? corpus::CorpusKind::kRelevantWeb
                                       : corpus::CorpusKind::kIrrelevantWeb);
  std::string content_text;
  if (host.language != "en") {
    content_text = NonEnglishParagraph(rng, host.language);
    out.content_doc.id = page.id;
  } else {
    corpus::TextGenerator generator(lexicons_, profile, rng.Next());
    out.content_doc = generator.GenerateDocument(page.id);
    content_text = out.content_doc.text;
  }
  out.net_text = content_text;

  // --- HTML assembly.
  std::string& html = out.html;
  html.reserve(content_text.size() * 2);
  html += "<!DOCTYPE html>\n<html>\n<head>\n<title>";
  html += host.name + page.path;
  html += "</title>\n<meta charset=\"utf-8\">\n";
  html += "<style>body { font: 12px sans; }</style>\n";
  html += "<script>var tracker = 'not content no nor neither';</script>\n";
  html += "</head>\n<body>\n";

  // Header / navigation boilerplate (link-dense).
  html += "<div class=\"nav\"><ul>\n";
  for (uint64_t target : page.outlinks) {
    const PageInfo& target_page = web_->pages()[target];
    if (target_page.host_id != page.host_id) continue;
    html += "<li><a href=\"" + web_->UrlOf(target_page) + "\">";
    html += kNavWords[rng.Uniform(12)];
    html += "</a></li>\n";
  }
  html += "</ul></div>\n";

  // Trap entry link with small probability (spider-trap workload).
  if (rng.Bernoulli(0.02)) {
    for (const HostInfo& h : web_->hosts()) {
      if (h.topic == HostTopic::kTrap) {
        html += "<div><a href=\"http://" + h.name +
                "/day?p=0\">calendar</a></div>\n";
        break;
      }
    }
  }

  // Main content: paragraphs, with a fraction emitted as list/table items
  // (the content class Boilerpipe-style detection loses, Sect. 4.1).
  std::vector<std::string> paragraphs = Split(content_text, '\n');
  html += "<div class=\"main\">\n";
  bool in_list = false;
  for (const std::string& para : paragraphs) {
    std::string_view trimmed = StripAsciiWhitespace(para);
    if (trimmed.empty()) continue;
    bool as_list = rng.Bernoulli(config_.content_in_list_frac);
    if (as_list && !in_list) {
      html += "<ul>\n";
      in_list = true;
    } else if (!as_list && in_list) {
      html += "</ul>\n";
      in_list = false;
    }
    if (as_list) {
      html += "<li>" + std::string(trimmed) + "</li>\n";
    } else {
      html += "<p>" + std::string(trimmed) + "</p>\n";
    }
  }
  if (in_list) html += "</ul>\n";
  // Cross-host content links inside prose.
  for (uint64_t target : page.outlinks) {
    const PageInfo& target_page = web_->pages()[target];
    if (target_page.host_id == page.host_id) continue;
    html += "<p>See also <a href=\"" + web_->UrlOf(target_page) +
            "\">this related report</a>.</p>\n";
  }
  html += "</div>\n";

  // Sidebar boilerplate: ad-like short link blocks.
  html += "<div class=\"side\">\n";
  size_t ads = 2 + rng.Uniform(4);
  for (size_t i = 0; i < ads; ++i) {
    html += "<p><a href=\"http://ads.example.com/c" + std::to_string(i) +
            "\">" + kNavWords[rng.Uniform(12)] + " " +
            kNavWords[rng.Uniform(12)] + "</a></p>\n";
  }
  html += "</div>\n";

  // Footer boilerplate.
  html += "<div class=\"footer\"><p>Copyright " + host.name +
          " | <a href=\"/terms.html\">Terms</a> | "
          "<a href=\"/privacy.html\">Privacy</a></p></div>\n";
  html += "</body>\n</html>\n";

  Mangle(rng, out);
  return out;
}

void PageRenderer::Mangle(Rng& rng, RenderedPage& page) const {
  if (!rng.Bernoulli(config_.markup_error_page_frac)) return;
  std::string& html = page.html;
  bool severe = rng.Bernoulli(config_.severe_error_page_frac);
  int errors = 1 + static_cast<int>(rng.Uniform(
                       static_cast<uint64_t>(config_.max_errors_per_page)));
  if (severe) {
    // Transcoder-killing damage ([19]: ~13% of pages cannot be transcoded):
    // dense unparseable tag debris throughout the document.
    errors *= 8;
    size_t debris = std::max<size_t>(24, html.size() / 50);
    for (size_t d = 0; d < debris && html.size() > 32; ++d) {
      size_t pos = 16 + rng.Uniform(html.size() - 32);
      html.insert(pos, "< ");
      ++page.injected_errors;
    }
  }
  for (int e = 0; e < errors; ++e) {
    if (html.size() < 32) break;
    size_t pos = 16 + rng.Uniform(html.size() - 32);
    switch (rng.Uniform(severe ? 5 : 4)) {
      case 0: {  // delete a closing tag
        size_t close = html.find("</", pos);
        if (close != std::string::npos) {
          size_t end = html.find('>', close);
          if (end != std::string::npos) html.erase(close, end - close + 1);
        }
        break;
      }
      case 1: {  // strip a '>' (unterminated tag)
        size_t gt = html.find('>', pos);
        if (gt != std::string::npos) html.erase(gt, 1);
        break;
      }
      case 2:  // stray '<' debris
        html.insert(pos, "<");
        break;
      case 3: {  // unquote an attribute
        size_t quote = html.find('"', pos);
        if (quote != std::string::npos) html.erase(quote, 1);
        break;
      }
      default: {  // severe: chop a large random chunk
        size_t chunk = html.size() / 6;
        if (pos + chunk < html.size()) html.erase(pos, chunk);
        break;
      }
    }
    ++page.injected_errors;
  }
  page.severely_mangled = severe;
}

}  // namespace wsie::web
