#ifndef WSIE_COMMON_FLAT_MAP_H_
#define WSIE_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wsie {

/// An open-addressing string -> count map (linear probing, power-of-two
/// capacity, cached hashes, arena-backed keys). Replacement for the
/// `std::map<std::string, uint64_t>` distinct-name tables of the Sect. 4.2
/// memory war story: no per-entry node allocation and no per-key
/// std::string object — every key is an (offset, length) slice of one
/// append-only arena, so a 24-byte slot plus the exact name bytes is the
/// whole cost. Insertion and lookup only (the analytics tables never
/// erase); not thread-safe.
class StringCountMap {
 public:
  StringCountMap() = default;

  /// Adds `delta` to the count for `key`, inserting it at 0 first.
  void Add(std::string_view key, uint64_t delta = 1) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      Grow();
    }
    Slot& slot = *FindSlot(slots_, Hash(key), key);
    if (!slot.used()) {
      slot.hash = Hash(key);
      slot.offset = static_cast<uint32_t>(arena_.size());
      slot.length = static_cast<uint32_t>(key.size());
      arena_.append(key.data(), key.size());
      ++size_;
    }
    slot.count += delta;
  }

  /// Count for `key`; 0 when absent.
  uint64_t Count(std::string_view key) const {
    if (slots_.empty()) return 0;
    const Slot& slot = *FindSlot(slots_, Hash(key), key);
    return slot.used() ? slot.count : 0;
  }

  bool Contains(std::string_view key) const {
    if (slots_.empty()) return false;
    return FindSlot(slots_, Hash(key), key)->used();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (key, count) pair in unspecified (hash) order. The
  /// string_view aliases the arena — valid until the next Add().
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.used()) fn(KeyOf(slot), slot.count);
    }
  }

  /// All entries sorted by key — for deterministic iteration (exports,
  /// distributions) where hash order would leak into output.
  std::vector<std::pair<std::string, uint64_t>> SortedItems() const;

  /// Resident bytes: the slot array plus the key arena. Exact up to vector
  /// growth slack — there are no hidden per-entry heap blocks to estimate.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Slot) + arena_.capacity();
  }

 private:
  struct Slot {
    uint64_t hash = 0;  ///< 0 = empty (Hash() never returns 0)
    uint64_t count = 0;
    uint32_t offset = 0;  ///< key slice of the arena
    uint32_t length = 0;
    bool used() const { return hash != 0; }
  };

  std::string_view KeyOf(const Slot& slot) const {
    return std::string_view(arena_.data() + slot.offset, slot.length);
  }

  static uint64_t Hash(std::string_view key) {
    // FNV-1a, with 0 remapped so it can double as the empty-slot marker.
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : key) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h == 0 ? 1 : h;
  }

  /// First slot matching (hash, key), or the empty slot to insert into.
  const Slot* FindSlot(const std::vector<Slot>& slots, uint64_t hash,
                       std::string_view key) const {
    size_t mask = slots.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots[i].used() &&
           (slots[i].hash != hash || KeyOf(slots[i]) != key)) {
      i = (i + 1) & mask;
    }
    return &slots[i];
  }
  Slot* FindSlot(std::vector<Slot>& slots, uint64_t hash,
                 std::string_view key) {
    return const_cast<Slot*>(
        static_cast<const StringCountMap*>(this)->FindSlot(slots, hash, key));
  }

  void Grow() {
    std::vector<Slot> next(slots_.empty() ? 16 : slots_.size() * 2);
    size_t mask = next.size() - 1;
    for (const Slot& slot : slots_) {
      if (!slot.used()) continue;
      // Keys stay in the arena; only the 24-byte slots rehash, and the
      // cached hash makes that a pure integer probe.
      size_t i = static_cast<size_t>(slot.hash) & mask;
      while (next[i].used()) i = (i + 1) & mask;
      next[i] = slot;
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::string arena_;  ///< concatenated key bytes
  size_t size_ = 0;
};

/// An open-addressing string -> dense-id interner (linear probing,
/// power-of-two capacity, cached hashes, arena-backed keys) — the same slot
/// layout discipline as StringCountMap, but the payload is a `uint32_t` id
/// assigned in first-insertion order. This is the substrate of the tagger
/// `Lexicon`: surface forms are interned once at model-load time, and the
/// hot decode loops thereafter work in dense-id space (flat array indexing,
/// zero string hashing). Lookup on a built interner is const and touches no
/// mutable state, so a finalized instance is safe to share across threads.
class StringInterner {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  StringInterner() = default;

  /// Id for `key`, inserting it with the next dense id when absent.
  uint32_t Intern(std::string_view key) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      Grow();
    }
    Slot& slot = *FindSlot(slots_, Hash(key), key);
    if (!slot.used()) {
      slot.hash = Hash(key);
      slot.id = static_cast<uint32_t>(size_);
      slot.offset = static_cast<uint32_t>(arena_.size());
      slot.length = static_cast<uint32_t>(key.size());
      arena_.append(key.data(), key.size());
      ++size_;
    }
    return slot.id;
  }

  /// Id for `key`, or kNotFound when it was never interned. Read-only.
  uint32_t Find(std::string_view key) const {
    if (slots_.empty()) return kNotFound;
    const Slot& slot = *FindSlot(slots_, Hash(key), key);
    return slot.used() ? slot.id : kNotFound;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Resident bytes: the slot array plus the key arena.
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Slot) + arena_.capacity();
  }

 private:
  struct Slot {
    uint64_t hash = 0;  ///< 0 = empty (Hash() never returns 0)
    uint32_t id = 0;
    uint32_t offset = 0;  ///< key slice of the arena
    uint32_t length = 0;
    bool used() const { return hash != 0; }
  };

  std::string_view KeyOf(const Slot& slot) const {
    return std::string_view(arena_.data() + slot.offset, slot.length);
  }

  static uint64_t Hash(std::string_view key) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : key) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h == 0 ? 1 : h;
  }

  const Slot* FindSlot(const std::vector<Slot>& slots, uint64_t hash,
                       std::string_view key) const {
    size_t mask = slots.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots[i].used() &&
           (slots[i].hash != hash || KeyOf(slots[i]) != key)) {
      i = (i + 1) & mask;
    }
    return &slots[i];
  }
  Slot* FindSlot(std::vector<Slot>& slots, uint64_t hash,
                 std::string_view key) {
    return const_cast<Slot*>(
        static_cast<const StringInterner*>(this)->FindSlot(slots, hash, key));
  }

  void Grow() {
    std::vector<Slot> next(slots_.empty() ? 16 : slots_.size() * 2);
    size_t mask = next.size() - 1;
    for (const Slot& slot : slots_) {
      if (!slot.used()) continue;
      size_t i = static_cast<size_t>(slot.hash) & mask;
      while (next[i].used()) i = (i + 1) & mask;
      next[i] = slot;
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::string arena_;  ///< concatenated key bytes
  size_t size_ = 0;
};

inline std::vector<std::pair<std::string, uint64_t>>
StringCountMap::SortedItems() const {
  std::vector<std::pair<std::string, uint64_t>> items;
  items.reserve(size_);
  ForEach([&](std::string_view key, uint64_t count) {
    items.emplace_back(std::string(key), count);
  });
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace wsie

#endif  // WSIE_COMMON_FLAT_MAP_H_
