#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace wsie {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mu;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load());
}

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line,
          const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load()) return;
  // Basename of the file for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LogLevelName(level),
               static_cast<long long>(millis / 1000),
               static_cast<long long>(millis % 1000), base, line,
               message.c_str());
}

}  // namespace internal_logging
}  // namespace wsie
