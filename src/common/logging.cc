#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace wsie {
namespace {

std::mutex g_emit_mu;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line,
          const std::string& message) {
  // The macro already gated on the level; re-check for direct Emit() callers
  // and for SetMinLogLevel() races between the gate and the destructor.
  if (static_cast<int>(level) < static_cast<int>(MinLogLevel())) return;
  // Basename of the file for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  auto now = std::chrono::system_clock::now().time_since_epoch();
  auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LogLevelName(level),
               static_cast<long long>(millis / 1000),
               static_cast<long long>(millis % 1000), base, line,
               message.c_str());
}

}  // namespace internal_logging
}  // namespace wsie
