#include "common/rng.h"

#include <cmath>

namespace wsie {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF on the continuous approximation of the Zipf distribution;
  // accurate enough for rank-frequency workload generation.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  double max_term = std::pow(static_cast<double>(n), 1.0 - s);
  double x = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / (1.0 - s));
  size_t rank = static_cast<size_t>(x) - 1;
  if (rank >= n) rank = n - 1;
  return rank;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace wsie
