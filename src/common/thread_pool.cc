#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace wsie {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // Chunk indices so that tiny tasks do not drown in queue overhead.
  size_t chunks = threads_.size() * 4;
  if (chunks > n) chunks = n;
  if (chunks == 0) return;
  size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = begin + per_chunk;
    if (end > n) end = n;
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

bool ThreadPool::MorselFor(size_t n, size_t workers,
                           const std::function<bool(size_t)>& fn) {
  if (n == 0) return true;
  if (workers == 0) workers = 1;
  if (workers > n) workers = n;

  // Per-call completion state: MorselFor on a shared pool must not wait on
  // unrelated tasks, so it cannot use the pool-global Wait().
  struct State {
    std::atomic<size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;
    std::condition_variable done;
    size_t active = 0;
  };
  auto state = std::make_shared<State>();
  state->active = workers;

  // Capturing `fn` by reference is safe: this call blocks until every
  // worker task has finished.
  auto worker = [state, n, &fn] {
    for (;;) {
      if (state->cancelled.load(std::memory_order_relaxed)) break;
      size_t i = state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!fn(i)) {
        state->cancelled.store(true, std::memory_order_relaxed);
        break;
      }
    }
    {
      std::unique_lock<std::mutex> lock(state->mu);
      --state->active;
      if (state->active == 0) state->done.notify_all();
    }
  };
  for (size_t w = 0; w < workers; ++w) Submit(worker);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&state] { return state->active == 0; });
  }
  return !state->cancelled.load(std::memory_order_relaxed);
}

bool ThreadPool::MorselForWithCaller(size_t n, size_t workers,
                                     const std::function<bool(size_t)>& fn) {
  if (n == 0) return true;
  if (workers == 0) workers = 1;
  if (workers > n) workers = n;

  struct State {
    std::atomic<size_t> cursor{0};
    std::atomic<bool> cancelled{false};
    std::mutex mu;
    std::condition_variable done;
    size_t active = 0;
  };
  auto state = std::make_shared<State>();
  const size_t helpers = workers - 1;  // the caller is worker zero
  state->active = helpers;

  auto drain = [state, n, &fn] {
    for (;;) {
      if (state->cancelled.load(std::memory_order_relaxed)) break;
      size_t i = state->cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      if (!fn(i)) {
        state->cancelled.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };
  for (size_t w = 0; w < helpers; ++w) {
    Submit([state, drain] {
      drain();
      std::unique_lock<std::mutex> lock(state->mu);
      --state->active;
      if (state->active == 0) state->done.notify_all();
    });
  }
  // The caller drains inline — guaranteed forward progress even when the
  // pool is saturated or this thread is itself a pool worker.
  drain();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&state] { return state->active == 0; });
  }
  return !state->cancelled.load(std::memory_order_relaxed);
}

ThreadPool& SharedThreadPool() {
  // Leaked on purpose: worker threads must stay joinable for the whole
  // process lifetime (background compactors may fire arbitrarily late),
  // and a static-destruction-order join against them would be a shutdown
  // race. The OS reclaims everything at exit.
  static ThreadPool* pool = new ThreadPool(std::thread::hardware_concurrency());
  return *pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace wsie
