#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace wsie {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  // Chunk indices so that tiny tasks do not drown in queue overhead.
  size_t chunks = threads_.size() * 4;
  if (chunks > n) chunks = n;
  if (chunks == 0) return;
  size_t per_chunk = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = c * per_chunk;
    size_t end = begin + per_chunk;
    if (end > n) end = n;
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace wsie
