#ifndef WSIE_COMMON_RNG_H_
#define WSIE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wsie {

/// Deterministic pseudo-random number generator (splitmix64 core).
///
/// All synthetic-data generation in this repository flows through Rng so that
/// every experiment is reproducible bit-for-bit from its seed. The generator
/// is deliberately simple and fast; it is not cryptographic.
class Rng {
 public:
  /// Creates a generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Approximately normal draw (Irwin-Hall sum of 12 uniforms).
  double Gaussian(double mean, double stddev) {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return mean + stddev * (s - 6.0);
  }

  /// Geometric-like draw: number of failures before first success, capped.
  int Geometric(double p, int cap) {
    int n = 0;
    while (n < cap && !Bernoulli(p)) ++n;
    return n;
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` using inverse-CDF over
  /// a precomputed table is avoided; this uses rejection-free approximation
  /// adequate for workload generation.
  size_t Zipf(size_t n, double s);

  /// Samples an index according to (unnormalized) non-negative `weights`.
  /// Returns weights.size() if all weights are zero.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Derives an independent child generator (stable across platforms).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace wsie

#endif  // WSIE_COMMON_RNG_H_
