#ifndef WSIE_COMMON_STATUS_H_
#define WSIE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace wsie {

/// Error codes used across the library. Modeled after the Arrow/RocksDB
/// convention: library code never throws; fallible operations return a
/// Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  ///< e.g., per-worker memory budget exceeded (Sect. 4.2)
  kFailedPrecondition,
  kAborted,            ///< e.g., tool crash on pathological input (Sect. 5)
  kUnimplemented,
  kInternal,
  kTimeout,            ///< e.g., network time-out induced crashes (Sect. 4.2)
  kUnavailable,        ///< transient: 5xx, DNS hiccup, flapping robots.txt
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A cheaply copyable success-or-error value.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factories (Status::InvalidArgument(...) etc.) in new code.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for transient failures that a retry with backoff may cure
  /// (time-outs and unavailability); permanent errors (bad input, missing
  /// data, exhausted budgets) return false. Retry loops must branch on this
  /// instead of ad-hoc code comparisons.
  bool IsRetryable() const {
    return code_ == StatusCode::kTimeout || code_ == StatusCode::kUnavailable;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace wsie

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define WSIE_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::wsie::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // WSIE_COMMON_STATUS_H_
