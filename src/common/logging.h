#ifndef WSIE_COMMON_LOGGING_H_
#define WSIE_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace wsie {

/// Log severities, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

namespace internal_logging {

/// The global minimum level, read on every WSIE_LOG call site before any
/// message construction; inline so the check compiles to one relaxed load.
inline std::atomic<int> g_min_log_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace internal_logging

/// Minimum severity that is emitted (default kInfo). Thread-safe.
inline void SetMinLogLevel(LogLevel level) {
  internal_logging::g_min_log_level.store(static_cast<int>(level),
                                          std::memory_order_relaxed);
}
inline LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      internal_logging::g_min_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

/// Emits one formatted line to stderr ("[LEVEL file:line] message").
/// Exposed for the WSIE_LOG macro; not part of the public API.
void Emit(LogLevel level, const char* file, int line,
          const std::string& message);

/// Stream-collecting helper behind WSIE_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a streamed LogMessage so the ternary in WSIE_LOG has type void
/// in both branches. '&' binds looser than '<<', so the whole chain runs
/// first (glog's voidify idiom).
struct Voidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace wsie

/// Streams a log line at the given severity:
///   WSIE_LOG(kInfo) << "crawled " << pages << " pages";
/// The level check happens *before* the message is constructed: when the
/// severity is below the global minimum, the entire streaming expression —
/// including any function calls in the stream arguments — is never
/// evaluated, so sub-threshold logging costs one atomic load on the hot
/// path.
#define WSIE_LOG(severity)                                                   \
  (static_cast<int>(::wsie::LogLevel::severity) <                            \
   static_cast<int>(::wsie::MinLogLevel()))                                  \
      ? (void)0                                                              \
      : ::wsie::internal_logging::Voidify() &                                \
            ::wsie::internal_logging::LogMessage(::wsie::LogLevel::severity, \
                                                 __FILE__, __LINE__)

#endif  // WSIE_COMMON_LOGGING_H_
