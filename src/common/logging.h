#ifndef WSIE_COMMON_LOGGING_H_
#define WSIE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace wsie {

/// Log severities, in increasing order.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

/// Minimum severity that is emitted (default kInfo). Thread-safe.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

/// Emits one formatted line to stderr ("[LEVEL file:line] message").
/// Exposed for the WSIE_LOG macro; not part of the public API.
void Emit(LogLevel level, const char* file, int line,
          const std::string& message);

/// Stream-collecting helper behind WSIE_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace wsie

/// Streams a log line at the given severity:
///   WSIE_LOG(kInfo) << "crawled " << pages << " pages";
/// Messages below the global minimum level are formatted but not emitted
/// (the level check happens in Emit; keep hot-path logging at kDebug).
#define WSIE_LOG(severity)                                                \
  ::wsie::internal_logging::LogMessage(::wsie::LogLevel::severity,        \
                                       __FILE__, __LINE__)

#endif  // WSIE_COMMON_LOGGING_H_
