#include "common/string_util.h"

#include <cstdio>

#include "common/char_class.h"

namespace wsie {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && IsAsciiSpace(text[i]))
      ++i;
    size_t start = i;
    while (i < text.size() && !IsAsciiSpace(text[i]))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         IsAsciiSpace(text[begin]))
    ++begin;
  size_t end = text.size();
  while (end > begin && IsAsciiSpace(text[end - 1]))
    --end;
  return text.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = AsciiLowerChar(c);
  return out;
}

std::string AsciiToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = AsciiUpperChar(c);
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLowerChar(a[i]) != AsciiLowerChar(b[i])) return false;
  }
  return true;
}

bool IsAllAlpha(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsAsciiAlpha(c)) return false;
  }
  return true;
}

bool IsAllUpper(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsAsciiUpper(c)) return false;
  }
  return true;
}

bool ContainsDigit(std::string_view text) {
  for (char c : text) {
    if (IsAsciiDigit(c)) return true;
  }
  return false;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatWithCommas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    out.push_back(digits[i - 1]);
    if (++count % 3 == 0 && i > 1) out.push_back(',');
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace wsie
