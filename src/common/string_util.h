#ifndef WSIE_COMMON_STRING_UTIL_H_
#define WSIE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsie {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits `text` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view text);

/// ASCII uppercase copy.
std::string AsciiToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if every character is an ASCII letter.
bool IsAllAlpha(std::string_view text);

/// True if every character is an ASCII uppercase letter.
bool IsAllUpper(std::string_view text);

/// True if the token contains at least one digit.
bool ContainsDigit(std::string_view text);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

/// Formats an integer with thousands separators ("4,233,523").
std::string FormatWithCommas(long long value);

}  // namespace wsie

#endif  // WSIE_COMMON_STRING_UTIL_H_
