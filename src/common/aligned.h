#ifndef WSIE_COMMON_ALIGNED_H_
#define WSIE_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace wsie {

/// Minimal allocator that over-aligns every allocation (default: one cache
/// line). The serving-layer index tables and per-segment posting caches
/// use it so sequential scans start on a line boundary and never split a
/// fixed-stride entry across lines.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t kAlignment =
      Alignment > alignof(T) ? Alignment : alignof(T);

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// A std::vector whose buffer starts on a 64-byte (cache line) boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace wsie

#endif  // WSIE_COMMON_ALIGNED_H_
