#ifndef WSIE_COMMON_THREAD_POOL_H_
#define WSIE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsie {

/// A fixed-size worker pool used by the dataflow executor and the crawler's
/// fetcher threads.
///
/// The pool owns its threads; Submit() enqueues a task, Wait() blocks until
/// all submitted tasks have finished. The destructor drains outstanding work.
/// Thread-safe for concurrent Submit() calls.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Convenience for the common parallel-for pattern.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Morsel-driven loop: up to `workers` pool tasks pull indices in [0, n)
  /// from a shared atomic cursor until it is exhausted, so skewed item costs
  /// never straggle a static pre-split. `fn(i)` returns false to cancel the
  /// loop — indices not yet claimed are skipped (already-running calls
  /// finish). Returns true if every index ran, false if cancelled.
  ///
  /// Unlike Wait(), completion is tracked per call, so several threads may
  /// run MorselFor() on one shared pool concurrently without waiting on each
  /// other's unrelated tasks.
  bool MorselFor(size_t n, size_t workers,
                 const std::function<bool(size_t)>& fn);

  /// MorselFor variant where the calling thread drains the shared cursor
  /// alongside up to `workers - 1` pool tasks. Because the caller always
  /// makes progress itself, the loop completes even when every pool worker
  /// is busy — or when the caller *is* a pool worker of this very pool —
  /// so the store's compaction merge and the ANN builder can run on the
  /// shared pool without self-deadlock. Same cancellation contract as
  /// MorselFor.
  bool MorselForWithCaller(size_t n, size_t workers,
                           const std::function<bool(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// The process-wide shared pool (hardware_concurrency threads, lazily
/// constructed, never destroyed before exit). The write path — partitioned
/// compaction merges and morsel-parallel ANN builds — schedules on it so
/// background maintenance and foreground builds share one set of cores
/// instead of each spawning private thread armies. Outputs never depend on
/// its width: every parallel loop scheduled here is a pure per-index
/// function applied in a deterministic order.
ThreadPool& SharedThreadPool();

}  // namespace wsie

#endif  // WSIE_COMMON_THREAD_POOL_H_
