#ifndef WSIE_COMMON_EPOCH_H_
#define WSIE_COMMON_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace wsie {

/// Epoch-based (RCU-style) memory reclamation.
///
/// Writers publish an immutable object with one release store, retire the
/// object it replaced, and advance the global epoch; retired objects are
/// freed only once every active reader has pinned a later epoch. Readers
/// pin by writing the observed global epoch into a slot owned exclusively
/// by their thread — the read path takes no locks and contends on no
/// shared atomic (the global epoch is only loaded; the slot line is
/// written by exactly one thread).
///
/// Pin protocol: a reader stores the observed epoch into its slot and
/// re-loads the global epoch until the two agree (all seq_cst). In the
/// seq_cst total order this guarantees that a reclaimer that advanced the
/// epoch past E either sees the slot pinned at <= E (and keeps everything
/// retired at E alive) or the reader saw the advanced epoch and re-pinned
/// — in which case any pointer it loads afterwards is the newly published
/// one, never the retired one. Reclamation frees a retired object only
/// when min(active pins) is strictly greater than its retire epoch.
///
/// Threads beyond kMaxSlots fall back to a mutex-guarded overflow pin set;
/// only those overflow threads pay for a lock, the first kMaxSlots readers
/// stay lock-free.
class EpochManager {
 public:
  static constexpr uint64_t kIdleEpoch = ~0ull;
  static constexpr size_t kMaxSlots = 256;

  EpochManager() : id_(NextManagerId()) {
    std::lock_guard<std::mutex> lock(LiveMutex());
    LiveMap()[this] = id_;
  }

  /// Frees everything still in the limbo list. By contract no reader may
  /// hold a Guard on this manager when it is destroyed.
  ~EpochManager() {
    {
      std::lock_guard<std::mutex> lock(LiveMutex());
      LiveMap().erase(this);
    }
    std::lock_guard<std::mutex> lock(limbo_mu_);
    for (const Retired& node : limbo_) node.deleter(node.object);
    reclaimed_.fetch_add(limbo_.size(), std::memory_order_relaxed);
    limbo_.clear();
  }

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide manager most callers share.
  static EpochManager& Global() {
    static EpochManager manager;
    return manager;
  }

  /// RAII reader pin. Guards nest: only the outermost pins/unpins, so a
  /// query helper may take a Guard even when its caller already holds one.
  class Guard {
   public:
    explicit Guard(EpochManager& manager = Global()) : manager_(manager) {
      manager_.Pin();
    }
    ~Guard() { manager_.Unpin(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& manager_;
  };

  /// Hands `object` to the limbo list, stamped with the current epoch. The
  /// caller must already have unpublished it (no new reader can reach it).
  void Retire(void* object, void (*deleter)(void*)) {
    const uint64_t epoch = global_.load(std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(limbo_mu_);
    limbo_.push_back(Retired{object, deleter, epoch});
    retired_.fetch_add(1, std::memory_order_relaxed);
  }

  template <typename T>
  void Retire(T* object) {
    Retire(const_cast<void*>(static_cast<const void*>(object)),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Moves the global epoch forward; call after Retire so future pins land
  /// past the retired object's epoch. Returns the new epoch.
  uint64_t AdvanceEpoch() {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Frees every retired object whose epoch is behind all active pins.
  /// Writer-side; cheap no-op when another thread is already reclaiming.
  size_t TryReclaim() {
    std::unique_lock<std::mutex> lock(limbo_mu_, std::try_to_lock);
    if (!lock.owns_lock() || limbo_.empty()) return 0;
    const uint64_t min_active = MinActiveEpoch();
    std::vector<Retired> free_now;
    size_t kept = 0;
    for (Retired& node : limbo_) {
      if (node.epoch < min_active) {
        free_now.push_back(node);
      } else {
        limbo_[kept++] = node;
      }
    }
    limbo_.resize(kept);
    lock.unlock();
    for (const Retired& node : free_now) node.deleter(node.object);
    reclaimed_.fetch_add(free_now.size(), std::memory_order_relaxed);
    return free_now.size();
  }

  uint64_t epoch() const { return global_.load(std::memory_order_seq_cst); }

  /// Smallest epoch pinned by any reader; kIdleEpoch when nobody reads.
  uint64_t MinActiveEpoch() const {
    uint64_t min_active = kIdleEpoch;
    for (const Slot& slot : slots_) {
      if (!slot.claimed.load(std::memory_order_acquire)) continue;
      const uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
      if (pinned < min_active) min_active = pinned;
    }
    std::lock_guard<std::mutex> lock(overflow_mu_);
    if (!overflow_pins_.empty() && *overflow_pins_.begin() < min_active) {
      min_active = *overflow_pins_.begin();
    }
    return min_active;
  }

  uint64_t retired_total() const {
    return retired_.load(std::memory_order_relaxed);
  }
  uint64_t reclaimed_total() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  size_t limbo_size() const {
    std::lock_guard<std::mutex> lock(limbo_mu_);
    return limbo_.size();
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdleEpoch};
    std::atomic<bool> claimed{false};
  };

  struct Retired {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  // Per-thread bookkeeping. One entry per (thread, manager) pair, keyed by
  // (pointer, generation id): a manager address can be reused after a
  // test-scoped manager dies, so the pointer alone would match a stale
  // entry whose slot the reborn manager never handed out. The thread-exit
  // destructor returns claimed slots to managers that are still alive
  // (same (pointer, id) under LiveMutex); a manager that died first is
  // simply skipped.
  struct ThreadEntry {
    EpochManager* manager = nullptr;
    uint64_t manager_id = 0;
    Slot* slot = nullptr;  ///< null => overflow pinning via mutex
    uint32_t depth = 0;
    std::multiset<uint64_t>::iterator overflow_it{};
  };

  struct ThreadState {
    std::vector<ThreadEntry> entries;
    ~ThreadState() {
      std::lock_guard<std::mutex> lock(LiveMutex());
      for (ThreadEntry& entry : entries) {
        auto it = LiveMap().find(entry.manager);
        if (it == LiveMap().end() || it->second != entry.manager_id ||
            entry.slot == nullptr) {
          continue;
        }
        entry.slot->epoch.store(kIdleEpoch, std::memory_order_seq_cst);
        entry.slot->claimed.store(false, std::memory_order_release);
      }
    }
  };

  static std::mutex& LiveMutex() {
    static std::mutex mu;
    return mu;
  }
  static std::map<EpochManager*, uint64_t>& LiveMap() {
    static std::map<EpochManager*, uint64_t> live;
    return live;
  }
  static uint64_t NextManagerId() {
    static std::atomic<uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void InitEntry(ThreadEntry* entry) {
    entry->manager = this;
    entry->manager_id = id_;
    entry->slot = nullptr;
    entry->depth = 0;
    for (Slot& slot : slots_) {
      bool expected = false;
      if (!slot.claimed.load(std::memory_order_relaxed) &&
          slot.claimed.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        entry->slot = &slot;
        break;
      }
    }
  }

  ThreadEntry& EntryForThisThread() {
    static thread_local ThreadState state;
    for (ThreadEntry& entry : state.entries) {
      if (entry.manager != this) continue;
      // Same address but an older generation: the old manager is gone,
      // its slot with it — rebind this entry to the live incarnation.
      if (entry.manager_id != id_) InitEntry(&entry);
      return entry;
    }
    ThreadEntry entry;
    InitEntry(&entry);
    state.entries.push_back(entry);
    return state.entries.back();
  }

  void Pin() {
    ThreadEntry& entry = EntryForThisThread();
    if (entry.depth++ > 0) return;
    if (entry.slot != nullptr) {
      uint64_t epoch = global_.load(std::memory_order_seq_cst);
      for (;;) {
        entry.slot->epoch.store(epoch, std::memory_order_seq_cst);
        const uint64_t now = global_.load(std::memory_order_seq_cst);
        if (now == epoch) break;
        epoch = now;
      }
    } else {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      entry.overflow_it =
          overflow_pins_.insert(global_.load(std::memory_order_seq_cst));
    }
  }

  void Unpin() {
    ThreadEntry& entry = EntryForThisThread();
    if (--entry.depth > 0) return;
    if (entry.slot != nullptr) {
      entry.slot->epoch.store(kIdleEpoch, std::memory_order_seq_cst);
    } else {
      std::lock_guard<std::mutex> lock(overflow_mu_);
      overflow_pins_.erase(entry.overflow_it);
    }
  }

  const uint64_t id_;  ///< generation id distinguishing address reuse
  std::atomic<uint64_t> global_{1};
  std::array<Slot, kMaxSlots> slots_;
  mutable std::mutex limbo_mu_;
  std::vector<Retired> limbo_;
  mutable std::mutex overflow_mu_;
  std::multiset<uint64_t> overflow_pins_;
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace wsie

#endif  // WSIE_COMMON_EPOCH_H_
