#ifndef WSIE_COMMON_CHAR_CLASS_H_
#define WSIE_COMMON_CHAR_CLASS_H_

#include <array>
#include <cstdint>

namespace wsie {

/// Branch-free, locale-independent ASCII character classification.
///
/// The hot loops (tokenizer, word-boundary checks, word-shape features) used
/// to call `std::isspace` / `std::isalnum`, which dispatch through the
/// C-locale table of whatever libc is loaded — a per-character indirect load
/// plus a behavioural dependency on the process locale. These 256-entry
/// constexpr tables are a single L1-resident lookup and classify identically
/// on every libc (bytes >= 0x80 are never word or space characters, matching
/// the "C" locale the pipeline has always assumed).
namespace char_class {

enum : uint8_t {
  kSpace = 1 << 0,  ///< ' ', '\t', '\n', '\v', '\f', '\r'
  kDigit = 1 << 1,  ///< [0-9]
  kUpper = 1 << 2,  ///< [A-Z]
  kLower = 1 << 3,  ///< [a-z]
  kAlpha = kUpper | kLower,
  kAlnum = kAlpha | kDigit,
};

constexpr std::array<uint8_t, 256> BuildTable() {
  std::array<uint8_t, 256> table{};
  for (int c = '0'; c <= '9'; ++c) table[c] = kDigit;
  for (int c = 'A'; c <= 'Z'; ++c) table[c] = kUpper;
  for (int c = 'a'; c <= 'z'; ++c) table[c] = kLower;
  table[' '] = kSpace;
  table['\t'] = kSpace;
  table['\n'] = kSpace;
  table['\v'] = kSpace;
  table['\f'] = kSpace;
  table['\r'] = kSpace;
  return table;
}

inline constexpr std::array<uint8_t, 256> kTable = BuildTable();

}  // namespace char_class

constexpr bool IsAsciiSpace(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kSpace;
}
constexpr bool IsAsciiDigit(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kDigit;
}
constexpr bool IsAsciiUpper(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kUpper;
}
constexpr bool IsAsciiLower(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kLower;
}
constexpr bool IsAsciiAlpha(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kAlpha;
}
constexpr bool IsAsciiAlnum(char c) {
  return char_class::kTable[static_cast<unsigned char>(c)] &
         char_class::kAlnum;
}

/// ASCII lowercase of one character (identity for non-letters).
constexpr char AsciiLowerChar(char c) {
  return IsAsciiUpper(c) ? static_cast<char>(c - 'A' + 'a') : c;
}

/// ASCII uppercase of one character (identity for non-letters).
constexpr char AsciiUpperChar(char c) {
  return IsAsciiLower(c) ? static_cast<char>(c - 'a' + 'A') : c;
}

}  // namespace wsie

#endif  // WSIE_COMMON_CHAR_CLASS_H_
