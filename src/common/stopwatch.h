#ifndef WSIE_COMMON_STOPWATCH_H_
#define WSIE_COMMON_STOPWATCH_H_

#include <chrono>

namespace wsie {

/// Monotonic wall-clock stopwatch used by benchmarks and the executor's
/// per-operator timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }
  /// Alias for Restart(), matching the common stopwatch vocabulary.
  void Reset() { Restart(); }

  /// Elapsed time in integral nanoseconds — the unit the observability
  /// layer's latency histograms record.
  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wsie

#endif  // WSIE_COMMON_STOPWATCH_H_
