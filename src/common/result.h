#ifndef WSIE_COMMON_RESULT_H_
#define WSIE_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace wsie {

/// A value-or-error type in the style of arrow::Result / absl::StatusOr.
///
/// Holds either a T (when status().ok()) or an error Status. Accessing the
/// value of an errored Result aborts the process; call ok() first or use
/// ValueOr().
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Returns the held value; aborts if this result is an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Accessed value of errored Result: "
                << std::get<Status>(repr_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<Status, T> repr_;
};

}  // namespace wsie

/// Assigns the value of `rexpr` (a Result<T> expression) to `lhs`, or returns
/// its error status from the enclosing function.
#define WSIE_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto WSIE_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!WSIE_CONCAT_(_res_, __LINE__).ok())         \
    return WSIE_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(WSIE_CONCAT_(_res_, __LINE__)).value()

#define WSIE_CONCAT_(a, b) WSIE_CONCAT_IMPL_(a, b)
#define WSIE_CONCAT_IMPL_(a, b) a##b

#endif  // WSIE_COMMON_RESULT_H_
