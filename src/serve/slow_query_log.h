#ifndef WSIE_SERVE_SLOW_QUERY_LOG_H_
#define WSIE_SERVE_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/query_engine.h"

namespace wsie::serve {

struct SlowQueryOptions {
  size_t top_k = 32;      ///< entries kept, worst latency wins
  uint64_t floor_ns = 0;  ///< initial admission floor (0 records everything)
};

/// Bounded worst-queries log: keeps the top-k completed requests by
/// latency, with enough of the request (kind, term, filter) to reproduce
/// each one. The hot path is one relaxed atomic load — a request faster
/// than the current floor (the minimum latency among the kept entries)
/// returns without touching the mutex, so at steady state only genuinely
/// slow requests pay for the lock. Exported at /debug/slowlog.
class SlowQueryLog {
 public:
  struct Entry {
    QueryEngine::Request::Kind kind = QueryEngine::Request::Kind::kLookup;
    std::string name;
    std::string name_b;
    int corpus = kAny;
    int type = kAny;
    int method = kAny;
    size_t limit = 0;
    uint64_t latency_ns = 0;
    bool sampled = false;  ///< carried a per-request trace span
    uint64_t seq = 0;      ///< admission order, breaks latency ties
  };

  explicit SlowQueryLog(SlowQueryOptions options = SlowQueryOptions());

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  void Record(const QueryEngine::Request& request, uint64_t latency_ns,
              bool sampled);

  /// Kept entries, worst latency first (seq breaks ties).
  std::vector<Entry> TopByLatency() const;

  /// {"floor_ns":...,"entries":[...]} — the /debug/slowlog body.
  std::string DumpJson() const;

  uint64_t floor_ns() const {
    return floor_ns_.load(std::memory_order_relaxed);
  }
  void Clear();

 private:
  const size_t top_k_;
  const uint64_t initial_floor_ns_;
  std::atomic<uint64_t> floor_ns_;
  std::atomic<uint64_t> next_seq_{0};
  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< unordered; small (top_k)

  obs::Counter* recorded_;    ///< wsie.serve.slowlog.recorded
  obs::Counter* evicted_;     ///< wsie.serve.slowlog.evicted
  obs::Gauge* floor_gauge_;   ///< wsie.serve.slowlog.floor_ns
};

/// Human/tool-readable name of a request kind ("lookup", "prefix", ...).
const char* RequestKindName(QueryEngine::Request::Kind kind);

}  // namespace wsie::serve

#endif  // WSIE_SERVE_SLOW_QUERY_LOG_H_
