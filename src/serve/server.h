#ifndef WSIE_SERVE_SERVER_H_
#define WSIE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/admission_queue.h"

namespace wsie::serve {

/// Minimal HTTP/1.1-style text protocol front end.
///
/// One accept-loop thread parses `GET <path>?<query>` requests, maps them
/// onto QueryEngine::Request, pushes them through the AdmissionQueue
/// (so wire traffic and in-process load generators share one admission
/// path), and writes a plain-text response with Connection: close
/// semantics. Routes:
///
///   /healthz                                   liveness probe
///   /metrics                                   Prometheus exposition dump
///   /debug/slowlog                             top-k slow queries (JSON)
///   /debug/trace                               Chrome trace of this process
///   /lookup?name=&corpus=&type=&method=&max=   point lookup
///   /prefix?p=&limit=                          prefix scan
///   /topk?k=&corpus=&type=&method=             top-k names
///   /freq?corpus=&type=&method=                corpus frequency
///   /cooc?a=&b=&corpus=&type=&method=          co-occurrence
///
/// Unknown routes get 404, malformed requests 400. The server is a
/// debugging/operations surface, not a high-fan-in proxy: per-connection
/// work happens inline in the accept thread.
class Server {
 public:
  struct Options {
    uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
    int backlog = 64;
  };

  Server(std::shared_ptr<AdmissionQueue> queue, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();
  /// Stops accepting and joins the loop. Idempotent.
  void Stop();

  /// The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop(int listen_fd);
  void HandleConnection(int fd);

  std::shared_ptr<AdmissionQueue> queue_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  obs::Counter* requests_;
  obs::Counter* bad_requests_;
  obs::Counter* bytes_out_;
};

}  // namespace wsie::serve

#endif  // WSIE_SERVE_SERVER_H_
