#ifndef WSIE_SERVE_ADMISSION_QUEUE_H_
#define WSIE_SERVE_ADMISSION_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/slow_query_log.h"

namespace wsie::serve {

/// Batched admission in front of the QueryEngine.
///
/// Producers (connection handlers, load-generator clients) enqueue
/// requests onto a bounded lock-free MPMC ring (Vyukov sequence-counter
/// design: one CAS per enqueue/dequeue, no mutex anywhere on the data
/// path); worker threads drain the ring in batches of up to
/// `batch_size` and run each batch under a single epoch pin
/// (QueryEngine::ExecuteBatch), so per-query pin and dispatch overhead is
/// amortized across the batch. Submitters block on a per-request
/// completion flag (futex-backed std::atomic wait/notify) — the queue is
/// closed-loop by construction.
///
/// A full ring applies backpressure: Submit spin-yields until a slot
/// frees or the queue stops. Stop() drains every admitted request before
/// returning, so no submitter is left waiting.
class AdmissionQueue {
 public:
  struct Options {
    size_t capacity = 1024;  ///< ring slots, rounded up to a power of two
    size_t batch_size = 32;  ///< max requests per worker batch
    size_t workers = 1;      ///< executor threads
    /// Deterministic 1-in-N per-request trace sampling keyed on the
    /// request digest (QueryEngine::Digest(r) % N == 0). A sampled
    /// request executes individually under its own trace span instead of
    /// inside the batch call — identical results (Execute and
    /// ExecuteBatch run the same code under the same epoch pin), but its
    /// spans attribute the work to that one request. 0 disables sampling.
    size_t trace_sample_every = 0;
    /// Optional slow-query log; every completed request's latency is
    /// offered to it. Shared so the server can export /debug/slowlog.
    std::shared_ptr<SlowQueryLog> slow_log;
  };

  AdmissionQueue(std::shared_ptr<const QueryEngine> engine, Options options);
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Enqueues and blocks until `*response` is filled. Returns false (and
  /// leaves `*response` untouched) when the queue is stopping. Callers
  /// must not destroy `request`/`response` until Submit returns.
  bool Submit(const QueryEngine::Request& request,
              QueryEngine::Response* response);

  /// Stops the workers after draining every admitted request.
  void Stop();

  size_t capacity() const { return capacity_; }
  size_t batch_size() const { return batch_size_; }
  size_t trace_sample_every() const { return trace_sample_every_; }
  const std::shared_ptr<SlowQueryLog>& slow_log() const { return slow_log_; }

 private:
  struct Work {
    const QueryEngine::Request* request = nullptr;
    QueryEngine::Response* response = nullptr;
    std::atomic<uint32_t>* done = nullptr;
    std::chrono::steady_clock::time_point admitted{};
  };

  struct alignas(64) Cell {
    std::atomic<size_t> sequence{0};
    Work work;
  };

  bool TryEnqueue(const Work& work);
  bool TryDequeue(Work* work);
  void WorkerLoop();
  void RunBatch(const Work* batch, size_t n);

  std::shared_ptr<const QueryEngine> engine_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t batch_size_ = 0;
  size_t trace_sample_every_ = 0;
  std::shared_ptr<SlowQueryLog> slow_log_;
  std::vector<Cell> cells_;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};

  /// Bumped on every enqueue; idle workers wait on it instead of spinning.
  alignas(64) std::atomic<uint64_t> tickets_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> pending_submits_{0};
  std::vector<std::thread> workers_;

  obs::Counter* enqueued_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Counter* sampled_;
  obs::Histogram* batch_size_hist_;
  obs::Gauge* queue_depth_;
  obs::Histogram* request_latency_ns_;
};

}  // namespace wsie::serve

#endif  // WSIE_SERVE_ADMISSION_QUEUE_H_
