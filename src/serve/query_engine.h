#ifndef WSIE_SERVE_QUERY_ENGINE_H_
#define WSIE_SERVE_QUERY_ENGINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "store/annotation_store.h"

namespace wsie::serve {

/// Wildcard for QueryFilter dimensions.
inline constexpr int kAny = -1;

/// Restricts a query to one corpus / entity type / annotation method;
/// kAny leaves the dimension unconstrained.
struct QueryFilter {
  int corpus = kAny;  ///< corpus::CorpusKind index, 0..3
  int type = kAny;    ///< 0 gene, 1 drug, 2 disease
  int method = kAny;  ///< 0 dict, 1 ml
};

/// Concurrent entity query engine over an AnnotationStore.
///
/// Every query pins the store's current epoch at entry
/// (AnnotationStore::PinnedSet — a per-thread slot write plus one acquire
/// load, no locks, no refcount traffic), so a query sees a consistent
/// store state even while appends and compactions land concurrently — and
/// never blocks them. Common shapes (unfiltered lookups, frequency,
/// top-k, prefix scans) are answered from the set's precomputed
/// ServingIndex without touching posting lists; the remaining shapes walk
/// exactly the segments the seed engine walked, in the same order, so
/// every result is bit-identical to the full-walk engine. All entry
/// points are const and thread-safe: per-query scratch is thread_local,
/// and the wsie.serve.* instrumentation (per-kind query counters + one
/// latency histogram) is lock-free.
class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<store::AnnotationStore> annotations);

  /// Point lookup of one (normalized, lowercase) entity name.
  struct LookupResult {
    bool found = false;
    uint64_t count = 0;  ///< postings matching the filter
    uint64_t docs = 0;   ///< distinct (corpus, doc) pairs among them
    std::array<uint64_t, store::kNumCorpora> per_corpus{};
    /// Matching postings, capped at `max_postings` (0 = none returned).
    std::vector<store::Posting> postings;
  };
  LookupResult Lookup(std::string_view name, const QueryFilter& filter = {},
                      size_t max_postings = 0) const;

  /// Entity names starting with `prefix`, sorted, deduplicated across
  /// segments, at most `limit`.
  std::vector<std::string> PrefixScan(std::string_view prefix,
                                      size_t limit = 100) const;

  /// Per-corpus aggregate for (type, method) — the Table 4 / Fig. 7
  /// numbers served from disk. `method == kAny` computes the
  /// combined-distinct union (a name found by both dict and ML counts
  /// once) and sums annotations over both methods.
  struct FrequencyResult {
    uint64_t distinct_names = 0;
    uint64_t annotations = 0;
    uint64_t sentences = 0;  ///< the corpus's sentence total
    /// Fig. 7 incidence. Computed exactly as CorpusAnalysis does — one
    /// division per method, summed for kAny — so reproduced values match
    /// the in-memory analysis bit for bit.
    double per_1000_sentences = 0.0;
  };
  FrequencyResult CorpusFrequency(int corpus, int type,
                                  int method = kAny) const;

  /// Top `k` entity names by posting count under `filter`, ties broken by
  /// name so results are deterministic across runs and segment layouts.
  struct EntityCount {
    std::string name;
    uint64_t count = 0;
  };
  std::vector<EntityCount> TopK(size_t k,
                                const QueryFilter& filter = {}) const;

  /// Documents (and sentences) where both names occur, under `filter`.
  /// Doc ids are namespaced per corpus, so corpus-wildcard queries sum
  /// per-corpus intersections.
  struct CoOccurrenceResult {
    uint64_t docs = 0;
    uint64_t sentences = 0;  ///< (doc, sentence) pairs containing both
  };
  CoOccurrenceResult CoOccurrence(std::string_view a, std::string_view b,
                                  const QueryFilter& filter = {}) const;

  /// Semantic nearest neighbors from the snapshot's vector index. When
  /// `text` is itself an indexed entity its stored embedding is the query
  /// (and the entity is excluded from its own neighbors); otherwise the
  /// text is embedded on the fly. When the snapshot carries an append
  /// delta (terms newer than the last full build), its exact brute-force
  /// results merge with the graph's by (distance, name), so freshly
  /// appended terms rank immediately. Served — like every other kind —
  /// under one epoch pin, so results are consistent with the rest of the
  /// snapshot even while the compactor republishes a rebuilt index.
  struct SimilarResult {
    /// False when no vector index has been published into this snapshot.
    bool index_available = false;
    bool found = false;  ///< the query text is itself an indexed entity
    struct Hit {
      std::string name;
      float distance = 0.0f;  ///< exact squared L2, re-ranked in float
    };
    std::vector<Hit> neighbors;
    uint64_t hops = 0;  ///< graph nodes expanded by the ANN traversal
  };
  SimilarResult Similar(std::string_view text, size_t k = 10,
                        size_t beam = 0) const;

  // ----------------------------------------------------------------- batch

  /// A serialized query — what the admission queue and the text-protocol
  /// server carry. One struct for all kinds; unused fields are ignored.
  struct Request {
    enum class Kind : uint8_t {
      kLookup,
      kPrefix,
      kFrequency,
      kTopK,
      kCoOccurrence,
      kSimilar,
    };
    Kind kind = Kind::kLookup;
    std::string name;    ///< lookup name, prefix, similar text, or co-occurrence A
    std::string name_b;  ///< co-occurrence B
    QueryFilter filter;
    size_t limit = 0;  ///< lookup max_postings / prefix limit / top-k k
    int corpus = 0;    ///< frequency
    int type = 0;      ///< frequency
    int method = kAny; ///< frequency
  };

  /// The matching result; only the field for `kind` is populated.
  struct Response {
    Request::Kind kind = Request::Kind::kLookup;
    LookupResult lookup;
    std::vector<std::string> names;
    FrequencyResult frequency;
    std::vector<EntityCount> topk;
    CoOccurrenceResult cooccurrence;
    SimilarResult similar;
  };

  Response Execute(const Request& request) const;

  /// Executes `n` requests under a single epoch pin — the admission
  /// queue's batch path, amortizing the (already tiny) pin cost and
  /// keeping one generation alive for the whole batch.
  void ExecuteBatch(const Request* requests, Response* responses,
                    size_t n) const;

  /// The store snapshot a fresh query would use (for introspection).
  store::AnnotationStore::Snapshot snapshot() const;

  /// FNV-1a digest over every request field. Deterministic across runs and
  /// processes — the admission queue's 1-in-N trace sampling keys on it, so
  /// replaying a workload samples exactly the same requests.
  static uint64_t Digest(const Request& request);

 private:
  std::shared_ptr<store::AnnotationStore> store_;

  obs::Counter* queries_lookup_;
  obs::Counter* queries_prefix_;
  obs::Counter* queries_frequency_;
  obs::Counter* queries_topk_;
  obs::Counter* queries_cooccurrence_;
  obs::Counter* queries_similar_;
  obs::Histogram* latency_ns_;
  obs::Gauge* snapshot_segments_;

  // wsie.vec.* query-path handles.
  obs::Counter* vec_queries_;
  obs::Counter* vec_queries_missing_index_;
  obs::Counter* vec_queries_delta_;  ///< Similar() calls that scanned a delta
  obs::Histogram* vec_latency_ns_;
  obs::Histogram* vec_hops_;
};

}  // namespace wsie::serve

#endif  // WSIE_SERVE_QUERY_ENGINE_H_
