#include "serve/slow_query_log.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wsie::serve {
namespace {

void AppendJsonString(const std::string& in, std::string* out) {
  out->push_back('"');
  for (char c : in) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* RequestKindName(QueryEngine::Request::Kind kind) {
  using Kind = QueryEngine::Request::Kind;
  switch (kind) {
    case Kind::kLookup:
      return "lookup";
    case Kind::kPrefix:
      return "prefix";
    case Kind::kFrequency:
      return "freq";
    case Kind::kTopK:
      return "topk";
    case Kind::kCoOccurrence:
      return "cooc";
    case Kind::kSimilar:
      return "similar";
  }
  return "unknown";
}

SlowQueryLog::SlowQueryLog(SlowQueryOptions options)
    : top_k_(options.top_k < 1 ? 1 : options.top_k),
      initial_floor_ns_(options.floor_ns),
      floor_ns_(options.floor_ns) {
  entries_.reserve(top_k_);
  auto& registry = obs::MetricsRegistry::Global();
  recorded_ = registry.GetCounter("wsie.serve.slowlog.recorded");
  evicted_ = registry.GetCounter("wsie.serve.slowlog.evicted");
  floor_gauge_ = registry.GetGauge("wsie.serve.slowlog.floor_ns");
  floor_gauge_->Set(static_cast<double>(options.floor_ns));
}

void SlowQueryLog::Record(const QueryEngine::Request& request,
                          uint64_t latency_ns, bool sampled) {
  // Fast reject: the log is full of slower requests than this one.
  if (latency_ns < floor_ns_.load(std::memory_order_relaxed)) return;

  const bool frequency =
      request.kind == QueryEngine::Request::Kind::kFrequency;
  Entry entry;
  entry.kind = request.kind;
  entry.name = request.name;
  entry.name_b = request.name_b;
  entry.corpus = frequency ? request.corpus : request.filter.corpus;
  entry.type = frequency ? request.type : request.filter.type;
  entry.method = frequency ? request.method : request.filter.method;
  entry.limit = request.limit;
  entry.latency_ns = latency_ns;
  entry.sampled = sampled;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() == top_k_) {
    size_t min_i = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].latency_ns < entries_[min_i].latency_ns) min_i = i;
    }
    if (latency_ns <= entries_[min_i].latency_ns) {
      // Raced past the relaxed floor; tighten it and drop the request.
      floor_ns_.store(entries_[min_i].latency_ns, std::memory_order_relaxed);
      return;
    }
    entries_[min_i] = std::move(entry);
    evicted_->Increment();
  } else {
    entries_.push_back(std::move(entry));
  }
  recorded_->Increment();
  if (entries_.size() == top_k_) {
    uint64_t floor = entries_[0].latency_ns;
    for (const Entry& e : entries_) floor = std::min(floor, e.latency_ns);
    floor_ns_.store(floor, std::memory_order_relaxed);
    floor_gauge_->Set(static_cast<double>(floor));
  }
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::TopByLatency() const {
  std::vector<Entry> top;
  {
    std::lock_guard<std::mutex> lock(mu_);
    top = entries_;
  }
  std::sort(top.begin(), top.end(), [](const Entry& a, const Entry& b) {
    if (a.latency_ns != b.latency_ns) return a.latency_ns > b.latency_ns;
    return a.seq < b.seq;
  });
  return top;
}

std::string SlowQueryLog::DumpJson() const {
  const std::vector<Entry> top = TopByLatency();
  std::string out = "{\"floor_ns\":" + std::to_string(floor_ns()) +
                    ",\"entries\":[";
  bool first = true;
  for (const Entry& e : top) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"kind\":\"");
    out.append(RequestKindName(e.kind));
    out.append("\",\"name\":");
    AppendJsonString(e.name, &out);
    out.append(",\"name_b\":");
    AppendJsonString(e.name_b, &out);
    out.append(",\"corpus\":" + std::to_string(e.corpus));
    out.append(",\"type\":" + std::to_string(e.type));
    out.append(",\"method\":" + std::to_string(e.method));
    out.append(",\"limit\":" + std::to_string(e.limit));
    out.append(",\"latency_ns\":" + std::to_string(e.latency_ns));
    out.append(",\"sampled\":");
    out.append(e.sampled ? "true" : "false");
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  floor_ns_.store(initial_floor_ns_, std::memory_order_relaxed);
  floor_gauge_->Set(static_cast<double>(initial_floor_ns_));
}

}  // namespace wsie::serve
