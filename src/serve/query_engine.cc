#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/epoch.h"

namespace wsie::serve {
namespace {

using store::AnnotationStore;
using store::ServingIndex;

/// Records elapsed wall time into the latency histogram on scope exit.
class LatencyScope {
 public:
  explicit LatencyScope(obs::Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~LatencyScope() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

bool GroupMatches(const store::PostingGroup& group, const QueryFilter& filter) {
  if (filter.corpus != kAny && group.corpus != filter.corpus) return false;
  if (filter.type != kAny && group.type != filter.type) return false;
  if (filter.method != kAny && group.method != filter.method) return false;
  return true;
}

bool ComboMatches(const ServingIndex::ComboCount& combo,
                  const QueryFilter& filter) {
  if (filter.corpus != kAny && combo.corpus != filter.corpus) return false;
  if (filter.type != kAny && combo.type != filter.type) return false;
  if (filter.method != kAny && combo.method != filter.method) return false;
  return true;
}

bool IsUnfiltered(const QueryFilter& filter) {
  return filter.corpus == kAny && filter.type == kAny && filter.method == kAny;
}

/// A (corpus, doc, sentence) key for co-occurrence intersection.
struct SentenceKey {
  uint8_t corpus = 0;
  uint64_t doc = 0;
  uint32_t sentence = 0;

  friend auto operator<=>(const SentenceKey&, const SentenceKey&) = default;
};

/// Sorts + dedupes `v` in place, leaving the distinct-key count.
template <typename T>
size_t SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
  return v->size();
}

/// Count of elements present in both sorted-unique vectors.
template <typename T>
uint64_t IntersectCount(const std::vector<T>& a, const std::vector<T>& b) {
  uint64_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

/// Appends every (corpus, doc) / (corpus, doc, sentence) key of `name`'s
/// filter-matching postings, then sort-uniques both.
void CollectOccurrences(const AnnotationStore::SegmentSet& set,
                        std::string_view name, const QueryFilter& filter,
                        std::vector<store::DocKey>* docs,
                        std::vector<SentenceKey>* sentences) {
  const int64_t term = set.index.FindTerm(name);
  if (term >= 0) {
    for (const ServingIndex::TermRef& ref : set.index.Refs(term)) {
      const store::Segment& segment = *set.segments[ref.segment];
      for (const store::PostingGroup& group :
           segment.GroupsForTerm(ref.term_id)) {
        if (!GroupMatches(group, filter)) continue;
        for (const store::Posting& posting : group.postings) {
          docs->push_back(store::DocKey{group.corpus, posting.doc_id});
          sentences->push_back(
              SentenceKey{group.corpus, posting.doc_id, posting.sentence});
        }
      }
    }
  }
  SortUnique(docs);
  SortUnique(sentences);
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<store::AnnotationStore> annotations)
    : store_(std::move(annotations)) {
  auto& registry = obs::MetricsRegistry::Global();
  queries_lookup_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "lookup"));
  queries_prefix_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "prefix"));
  queries_frequency_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "frequency"));
  queries_topk_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "topk"));
  queries_cooccurrence_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "cooccurrence"));
  queries_similar_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "similar"));
  latency_ns_ = registry.GetHistogram("wsie.serve.query.latency_ns");
  snapshot_segments_ = registry.GetGauge("wsie.serve.snapshot.segments");
  vec_queries_ = registry.GetCounter("wsie.vec.queries");
  vec_queries_missing_index_ =
      registry.GetCounter("wsie.vec.queries_missing_index");
  vec_queries_delta_ = registry.GetCounter("wsie.vec.queries_delta");
  vec_latency_ns_ = registry.GetHistogram("wsie.vec.query.latency_ns");
  vec_hops_ = registry.GetHistogram("wsie.vec.query.hops");
}

store::AnnotationStore::Snapshot QueryEngine::snapshot() const {
  store::AnnotationStore::Snapshot snap = store_->snapshot();
  snapshot_segments_->Set(static_cast<double>(snap.segments.size()));
  return snap;
}

QueryEngine::LookupResult QueryEngine::Lookup(std::string_view name,
                                              const QueryFilter& filter,
                                              size_t max_postings) const {
  queries_lookup_->Increment();
  LatencyScope timer(latency_ns_);
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));

  LookupResult result;
  const ServingIndex& index = pin->index;
  const int64_t term = index.FindTerm(name);
  if (term < 0) return result;

  if (IsUnfiltered(filter)) {
    // Fully precomputed: no posting list is touched unless the caller
    // asked for raw postings back.
    result.found = true;
    result.count = index.total_count(term);
    result.docs = index.distinct_docs(term);
    result.per_corpus = index.per_corpus(term);
    for (const ServingIndex::TermRef& ref : index.Refs(term)) {
      if (result.postings.size() >= max_postings) break;
      const store::Segment& segment = *pin->segments[ref.segment];
      for (const store::PostingGroup& group :
           segment.GroupsForTerm(ref.term_id)) {
        for (const store::Posting& posting : group.postings) {
          if (result.postings.size() >= max_postings) break;
          result.postings.push_back(posting);
        }
      }
    }
    return result;
  }

  // Filtered: walk exactly the segments holding the term, in publication
  // order (the same order the full-scan engine visits them).
  thread_local std::vector<store::DocKey> doc_scratch;
  doc_scratch.clear();
  for (const ServingIndex::TermRef& ref : index.Refs(term)) {
    const store::Segment& segment = *pin->segments[ref.segment];
    for (const store::PostingGroup& group :
         segment.GroupsForTerm(ref.term_id)) {
      if (!GroupMatches(group, filter)) continue;
      result.found = true;
      result.count += group.postings.size();
      result.per_corpus[group.corpus] += group.postings.size();
      uint64_t prev_doc = UINT64_MAX;
      for (const store::Posting& posting : group.postings) {
        if (posting.doc_id != prev_doc) {
          doc_scratch.push_back(store::DocKey{group.corpus, posting.doc_id});
          prev_doc = posting.doc_id;
        }
        if (result.postings.size() < max_postings) {
          result.postings.push_back(posting);
        }
      }
    }
  }
  result.docs = SortUnique(&doc_scratch);
  return result;
}

std::vector<std::string> QueryEngine::PrefixScan(std::string_view prefix,
                                                 size_t limit) const {
  queries_prefix_->Increment();
  LatencyScope timer(latency_ns_);
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));

  // The index's term table IS the sorted, deduplicated union of every
  // segment dictionary — the scan is a binary search plus a copy-out.
  auto [first, last] = pin->index.PrefixRange(prefix);
  std::vector<std::string> result;
  result.reserve(std::min(limit, last - first));
  for (size_t i = first; i < last && result.size() < limit; ++i) {
    result.emplace_back(pin->index.term(i));
  }
  return result;
}

QueryEngine::FrequencyResult QueryEngine::CorpusFrequency(int corpus, int type,
                                                          int method) const {
  queries_frequency_->Increment();
  LatencyScope timer(latency_ns_);
  FrequencyResult result;
  if (corpus < 0 || corpus >= static_cast<int>(store::kNumCorpora) ||
      type < 0 || type >= static_cast<int>(store::kNumTypes)) {
    return result;
  }
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));
  const ServingIndex& index = pin->index;

  result.sentences = index.sentences(corpus);
  std::array<uint64_t, store::kNumMethods> per_method{};
  for (size_t m = 0; m < store::kNumMethods; ++m) {
    if (method == kAny || method == static_cast<int>(m)) {
      per_method[m] = index.annotations(corpus, type, m);
    }
  }
  result.distinct_names = index.distinct_names(
      corpus, type,
      method == kAny ? ServingIndex::kMethodUnion
                     : static_cast<size_t>(method));
  for (uint64_t annotations : per_method) result.annotations += annotations;
  // One division per method, then summed for kAny — the same float
  // evaluation order as CorpusAnalysis::EntitiesPer1000Sentences[AllMethods].
  if (result.sentences > 0) {
    for (size_t m = 0; m < store::kNumMethods; ++m) {
      result.per_1000_sentences += 1000.0 * static_cast<double>(per_method[m]) /
                                   static_cast<double>(result.sentences);
    }
  }
  return result;
}

std::vector<QueryEngine::EntityCount> QueryEngine::TopK(
    size_t k, const QueryFilter& filter) const {
  queries_topk_->Increment();
  LatencyScope timer(latency_ns_);
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));
  const ServingIndex& index = pin->index;

  // One pass over the per-term combo table — never the posting lists.
  // Term ids ascend in name order, so (count desc, id asc) reproduces the
  // seed engine's (count desc, name asc) order exactly.
  struct Hit {
    uint64_t count;
    size_t term;
  };
  thread_local std::vector<Hit> hits;
  hits.clear();
  const bool unfiltered = IsUnfiltered(filter);
  for (size_t i = 0; i < index.num_terms(); ++i) {
    uint64_t count = 0;
    if (unfiltered) {
      count = index.total_count(i);
    } else {
      for (const ServingIndex::ComboCount& combo : index.Combos(i)) {
        if (ComboMatches(combo, filter)) count += combo.count;
      }
    }
    if (count > 0) hits.push_back(Hit{count, i});
  }
  const size_t top = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + static_cast<ptrdiff_t>(top),
                    hits.end(), [](const Hit& a, const Hit& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.term < b.term;
                    });
  std::vector<EntityCount> result;
  result.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    result.push_back(
        EntityCount{std::string(index.term(hits[i].term)), hits[i].count});
  }
  return result;
}

QueryEngine::CoOccurrenceResult QueryEngine::CoOccurrence(
    std::string_view a, std::string_view b, const QueryFilter& filter) const {
  queries_cooccurrence_->Increment();
  LatencyScope timer(latency_ns_);
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));

  thread_local std::vector<store::DocKey> docs_a, docs_b;
  thread_local std::vector<SentenceKey> sentences_a, sentences_b;
  docs_a.clear();
  docs_b.clear();
  sentences_a.clear();
  sentences_b.clear();
  CollectOccurrences(*pin, a, filter, &docs_a, &sentences_a);
  CollectOccurrences(*pin, b, filter, &docs_b, &sentences_b);

  CoOccurrenceResult result;
  result.docs = IntersectCount(docs_a, docs_b);
  result.sentences = IntersectCount(sentences_a, sentences_b);
  return result;
}

QueryEngine::SimilarResult QueryEngine::Similar(std::string_view text,
                                                size_t k, size_t beam) const {
  queries_similar_->Increment();
  vec_queries_->Increment();
  LatencyScope timer(latency_ns_);
  LatencyScope vec_timer(vec_latency_ns_);
  AnnotationStore::PinnedSet pin(*store_);
  snapshot_segments_->Set(static_cast<double>(pin->segments.size()));

  SimilarResult result;
  if (pin->vectors == nullptr) {
    vec_queries_missing_index_->Increment();
    return result;
  }
  result.index_available = true;
  const vec::VecIndex& index = *pin->vectors;
  const vec::DeltaIndex* delta = pin->delta.get();
  if (k == 0) k = 10;

  vec::VecIndex::SearchStats stats;
  if (delta == nullptr) {
    // Fast path: the graph covers every live term.
    std::vector<vec::VecIndex::Neighbor> hits;
    const int64_t self = index.FindName(text);
    if (self >= 0) {
      // Entity query: search by the stored embedding and drop the entity
      // from its own neighbor list (over-fetch by one to keep k results).
      result.found = true;
      hits = index.Search(index.vector(static_cast<size_t>(self)), k + 1,
                          beam, &stats);
      std::erase_if(hits, [self](const vec::VecIndex::Neighbor& neighbor) {
        return neighbor.id == static_cast<uint32_t>(self);
      });
      if (hits.size() > k) hits.resize(k);
    } else {
      hits = index.SearchText(text, k, beam, &stats);
    }
    result.neighbors.reserve(hits.size());
    for (const vec::VecIndex::Neighbor& hit : hits) {
      result.neighbors.push_back(
          SimilarResult::Hit{index.name(hit.id), hit.distance});
    }
    result.hops = stats.hops;
    vec_hops_->Observe(static_cast<double>(stats.hops));
    return result;
  }

  // Delta path: terms appended since the last full build live in a small
  // exact side index. Search both and merge by exact (distance, name) —
  // within each index that equals its (distance, id) order (ids are
  // sorted-name positions), and names never repeat across the two (the
  // delta holds exactly the terms the graph lacks), so the merged ranking
  // is a deterministic total order.
  vec_queries_delta_->Increment();
  const int64_t self_main = index.FindName(text);
  const int64_t self_delta = self_main >= 0 ? -1 : delta->FindName(text);
  std::vector<float> query_storage;
  const float* query = nullptr;
  if (self_main >= 0) {
    result.found = true;
    query = index.vector(static_cast<size_t>(self_main));
  } else if (self_delta >= 0) {
    result.found = true;
    query = delta->vector(static_cast<size_t>(self_delta));
  } else {
    query_storage.resize(index.dim());
    index.embedder().Embed(text, query_storage.data());
    query = query_storage.data();
  }

  // Over-fetch by one from each side: at most one of them contains the
  // query entity itself.
  std::vector<vec::VecIndex::Neighbor> main_hits =
      index.Search(query, k + 1, beam, &stats);
  if (self_main >= 0) {
    std::erase_if(main_hits, [self_main](const vec::VecIndex::Neighbor& n) {
      return n.id == static_cast<uint32_t>(self_main);
    });
  }
  std::vector<vec::VecIndex::Neighbor> delta_hits =
      delta->SearchExact(query, k + 1);
  if (self_delta >= 0) {
    std::erase_if(delta_hits, [self_delta](const vec::VecIndex::Neighbor& n) {
      return n.id == static_cast<uint32_t>(self_delta);
    });
  }

  std::vector<SimilarResult::Hit> merged;
  merged.reserve(main_hits.size() + delta_hits.size());
  for (const vec::VecIndex::Neighbor& hit : main_hits) {
    merged.push_back(SimilarResult::Hit{index.name(hit.id), hit.distance});
  }
  for (const vec::VecIndex::Neighbor& hit : delta_hits) {
    merged.push_back(SimilarResult::Hit{delta->name(hit.id), hit.distance});
  }
  std::sort(merged.begin(), merged.end(),
            [](const SimilarResult::Hit& a, const SimilarResult::Hit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.name < b.name;
            });
  if (merged.size() > k) merged.resize(k);
  result.neighbors = std::move(merged);
  result.hops = stats.hops;
  vec_hops_->Observe(static_cast<double>(stats.hops));
  return result;
}

QueryEngine::Response QueryEngine::Execute(const Request& request) const {
  Response response;
  response.kind = request.kind;
  switch (request.kind) {
    case Request::Kind::kLookup:
      response.lookup = Lookup(request.name, request.filter, request.limit);
      break;
    case Request::Kind::kPrefix:
      response.names =
          PrefixScan(request.name, request.limit == 0 ? 100 : request.limit);
      break;
    case Request::Kind::kFrequency:
      response.frequency =
          CorpusFrequency(request.corpus, request.type, request.method);
      break;
    case Request::Kind::kTopK:
      response.topk = TopK(request.limit == 0 ? 10 : request.limit,
                           request.filter);
      break;
    case Request::Kind::kCoOccurrence:
      response.cooccurrence =
          CoOccurrence(request.name, request.name_b, request.filter);
      break;
    case Request::Kind::kSimilar:
      response.similar =
          Similar(request.name, request.limit == 0 ? 10 : request.limit);
      break;
  }
  return response;
}

void QueryEngine::ExecuteBatch(const Request* requests, Response* responses,
                               size_t n) const {
  // Guards nest: this outer pin makes every per-query pin a no-op and
  // holds one epoch for the whole batch.
  EpochManager::Guard guard;
  for (size_t i = 0; i < n; ++i) {
    responses[i] = Execute(requests[i]);
  }
}

uint64_t QueryEngine::Digest(const Request& request) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix_u64 = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<uint8_t>(c));
  };
  mix_byte(static_cast<uint8_t>(request.kind));
  mix_str(request.name);
  mix_str(request.name_b);
  mix_u64(static_cast<uint64_t>(request.filter.corpus));
  mix_u64(static_cast<uint64_t>(request.filter.type));
  mix_u64(static_cast<uint64_t>(request.filter.method));
  mix_u64(request.limit);
  mix_u64(static_cast<uint64_t>(request.corpus));
  mix_u64(static_cast<uint64_t>(request.type));
  mix_u64(static_cast<uint64_t>(request.method));
  return h;
}

}  // namespace wsie::serve
