#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <tuple>
#include <utility>

namespace wsie::serve {
namespace {

/// Records elapsed wall time into the latency histogram on scope exit.
class LatencyScope {
 public:
  explicit LatencyScope(obs::Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~LatencyScope() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

bool GroupMatches(const store::PostingGroup& group, const QueryFilter& filter) {
  if (filter.corpus != kAny && group.corpus != filter.corpus) return false;
  if (filter.type != kAny && group.type != filter.type) return false;
  if (filter.method != kAny && group.method != filter.method) return false;
  return true;
}

}  // namespace

QueryEngine::QueryEngine(std::shared_ptr<store::AnnotationStore> annotations)
    : store_(std::move(annotations)) {
  auto& registry = obs::MetricsRegistry::Global();
  queries_lookup_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "lookup"));
  queries_prefix_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "prefix"));
  queries_frequency_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "frequency"));
  queries_topk_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "topk"));
  queries_cooccurrence_ = registry.GetCounter(
      obs::WithLabel("wsie.serve.queries", "kind", "cooccurrence"));
  latency_ns_ = registry.GetHistogram("wsie.serve.query.latency_ns");
  snapshot_segments_ = registry.GetGauge("wsie.serve.snapshot.segments");
}

store::AnnotationStore::Snapshot QueryEngine::snapshot() const {
  store::AnnotationStore::Snapshot snap = store_->snapshot();
  snapshot_segments_->Set(static_cast<double>(snap.segments.size()));
  return snap;
}

QueryEngine::LookupResult QueryEngine::Lookup(std::string_view name,
                                              const QueryFilter& filter,
                                              size_t max_postings) const {
  queries_lookup_->Increment();
  LatencyScope timer(latency_ns_);
  LookupResult result;
  std::set<std::pair<uint8_t, uint64_t>> seen_docs;
  for (const auto& segment : snapshot().segments) {
    int term_id = segment->FindTerm(name);
    if (term_id < 0) continue;
    for (const store::PostingGroup& group :
         segment->GroupsForTerm(static_cast<uint32_t>(term_id))) {
      if (!GroupMatches(group, filter)) continue;
      result.found = true;
      result.count += group.postings.size();
      result.per_corpus[group.corpus] += group.postings.size();
      for (const store::Posting& posting : group.postings) {
        seen_docs.emplace(group.corpus, posting.doc_id);
        if (result.postings.size() < max_postings) {
          result.postings.push_back(posting);
        }
      }
    }
  }
  result.docs = seen_docs.size();
  return result;
}

std::vector<std::string> QueryEngine::PrefixScan(std::string_view prefix,
                                                 size_t limit) const {
  queries_prefix_->Increment();
  LatencyScope timer(latency_ns_);
  std::set<std::string> names;
  for (const auto& segment : snapshot().segments) {
    auto [first, last] = segment->PrefixRange(prefix);
    for (size_t i = first; i < last; ++i) {
      names.insert(segment->terms()[i]);
    }
  }
  std::vector<std::string> result;
  result.reserve(std::min(limit, names.size()));
  for (const std::string& name : names) {
    if (result.size() >= limit) break;
    result.push_back(name);
  }
  return result;
}

QueryEngine::FrequencyResult QueryEngine::CorpusFrequency(int corpus, int type,
                                                          int method) const {
  queries_frequency_->Increment();
  LatencyScope timer(latency_ns_);
  FrequencyResult result;
  if (corpus < 0 || corpus >= static_cast<int>(store::kNumCorpora) ||
      type < 0 || type >= static_cast<int>(store::kNumTypes)) {
    return result;
  }
  std::array<uint64_t, store::kNumMethods> per_method{};
  std::set<std::string_view> distinct;
  store::AnnotationStore::Snapshot snap = snapshot();
  for (const auto& segment : snap.segments) {
    result.sentences += segment->corpus_stats()[corpus].sentences;
    for (const store::PostingGroup& group : segment->groups()) {
      if (group.corpus != corpus || group.type != type) continue;
      if (method != kAny && group.method != method) continue;
      per_method[group.method] += group.postings.size();
      distinct.insert(segment->terms()[group.term_id]);
    }
  }
  result.distinct_names = distinct.size();
  for (uint64_t annotations : per_method) result.annotations += annotations;
  // One division per method, then summed for kAny — the same float
  // evaluation order as CorpusAnalysis::EntitiesPer1000Sentences[AllMethods].
  if (result.sentences > 0) {
    for (size_t m = 0; m < store::kNumMethods; ++m) {
      result.per_1000_sentences += 1000.0 * static_cast<double>(per_method[m]) /
                                   static_cast<double>(result.sentences);
    }
  }
  return result;
}

std::vector<QueryEngine::EntityCount> QueryEngine::TopK(
    size_t k, const QueryFilter& filter) const {
  queries_topk_->Increment();
  LatencyScope timer(latency_ns_);
  std::map<std::string_view, uint64_t> counts;
  store::AnnotationStore::Snapshot snap = snapshot();
  for (const auto& segment : snap.segments) {
    for (const store::PostingGroup& group : segment->groups()) {
      if (!GroupMatches(group, filter)) continue;
      counts[segment->terms()[group.term_id]] += group.postings.size();
    }
  }
  std::vector<EntityCount> all;
  all.reserve(counts.size());
  for (const auto& [name, count] : counts) {
    all.push_back(EntityCount{std::string(name), count});
  }
  std::sort(all.begin(), all.end(),
            [](const EntityCount& a, const EntityCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.name < b.name;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

QueryEngine::CoOccurrenceResult QueryEngine::CoOccurrence(
    std::string_view a, std::string_view b, const QueryFilter& filter) const {
  queries_cooccurrence_->Increment();
  LatencyScope timer(latency_ns_);
  // Doc ids are only unique within a corpus, so occurrence sets are keyed
  // by (corpus, doc) and (corpus, doc, sentence).
  using DocKey = std::pair<uint8_t, uint64_t>;
  using SentenceKey = std::tuple<uint8_t, uint64_t, uint32_t>;
  auto collect = [&](std::string_view name, std::set<DocKey>* docs,
                     std::set<SentenceKey>* sentences,
                     const store::AnnotationStore::Snapshot& snap) {
    for (const auto& segment : snap.segments) {
      int term_id = segment->FindTerm(name);
      if (term_id < 0) continue;
      for (const store::PostingGroup& group :
           segment->GroupsForTerm(static_cast<uint32_t>(term_id))) {
        if (!GroupMatches(group, filter)) continue;
        for (const store::Posting& posting : group.postings) {
          docs->emplace(group.corpus, posting.doc_id);
          sentences->emplace(group.corpus, posting.doc_id, posting.sentence);
        }
      }
    }
  };

  store::AnnotationStore::Snapshot snap = snapshot();
  std::set<DocKey> docs_a, docs_b;
  std::set<SentenceKey> sentences_a, sentences_b;
  collect(a, &docs_a, &sentences_a, snap);
  collect(b, &docs_b, &sentences_b, snap);

  CoOccurrenceResult result;
  for (const DocKey& key : docs_a) {
    if (docs_b.count(key)) ++result.docs;
  }
  for (const SentenceKey& key : sentences_a) {
    if (sentences_b.count(key)) ++result.sentences;
  }
  return result;
}

}  // namespace wsie::serve
