#include "serve/admission_queue.h"

#include <bit>
#include <cstdio>

#include "obs/trace.h"

namespace wsie::serve {

AdmissionQueue::AdmissionQueue(std::shared_ptr<const QueryEngine> engine,
                               Options options)
    : engine_(std::move(engine)),
      capacity_(std::bit_ceil(options.capacity < 2 ? size_t{2}
                                                   : options.capacity)),
      mask_(capacity_ - 1),
      batch_size_(options.batch_size < 1 ? 1 : options.batch_size),
      trace_sample_every_(options.trace_sample_every),
      slow_log_(std::move(options.slow_log)),
      cells_(capacity_) {
  for (size_t i = 0; i < capacity_; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
  auto& registry = obs::MetricsRegistry::Global();
  enqueued_ = registry.GetCounter("wsie.serve.admission.enqueued");
  rejected_ = registry.GetCounter("wsie.serve.admission.rejected");
  batches_ = registry.GetCounter("wsie.serve.admission.batches");
  sampled_ = registry.GetCounter("wsie.serve.sampled");
  batch_size_hist_ = registry.GetHistogram(
      "wsie.serve.admission.batch_size",
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  queue_depth_ = registry.GetGauge("wsie.serve.admission.queue_depth");
  request_latency_ns_ =
      registry.GetHistogram("wsie.serve.request.latency_ns");

  const size_t workers = options.workers < 1 ? 1 : options.workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AdmissionQueue::~AdmissionQueue() { Stop(); }

bool AdmissionQueue::TryEnqueue(const Work& work) {
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Cell* cell;
  for (;;) {
    cell = &cells_[pos & mask_];
    const size_t seq = cell->sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      return false;  // full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->work = work;
  cell->sequence.store(pos + 1, std::memory_order_release);
  return true;
}

bool AdmissionQueue::TryDequeue(Work* work) {
  size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell* cell;
  for (;;) {
    cell = &cells_[pos & mask_];
    const size_t seq = cell->sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
    if (dif == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      return false;  // empty (or the producer has not published yet)
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
  *work = cell->work;
  cell->sequence.store(pos + capacity_, std::memory_order_release);
  return true;
}

bool AdmissionQueue::Submit(const QueryEngine::Request& request,
                            QueryEngine::Response* response) {
  // pending_submits_ makes Stop() wait out in-flight admissions, so an
  // admitted request is always drained even when Stop races with Submit.
  pending_submits_.fetch_add(1, std::memory_order_acq_rel);
  if (stopping_.load(std::memory_order_acquire)) {
    pending_submits_.fetch_sub(1, std::memory_order_release);
    rejected_->Increment();
    return false;
  }

  std::atomic<uint32_t> done{0};
  Work work;
  work.request = &request;
  work.response = response;
  work.done = &done;
  work.admitted = std::chrono::steady_clock::now();
  while (!TryEnqueue(work)) {
    if (stopping_.load(std::memory_order_acquire)) {
      pending_submits_.fetch_sub(1, std::memory_order_release);
      rejected_->Increment();
      return false;
    }
    std::this_thread::yield();  // backpressure: ring full
  }
  enqueued_->Increment();
  tickets_.fetch_add(1, std::memory_order_release);
  tickets_.notify_one();
  pending_submits_.fetch_sub(1, std::memory_order_release);

  while (done.load(std::memory_order_acquire) == 0) {
    done.wait(0, std::memory_order_acquire);
  }
  return true;
}

void AdmissionQueue::RunBatch(const Work* batch, size_t n) {
  // Small fixed stacks would do, but batch sizes are configurable;
  // thread_local scratch keeps the worker allocation-free at steady state.
  thread_local std::vector<QueryEngine::Request> requests;
  thread_local std::vector<QueryEngine::Response> responses;
  thread_local std::vector<uint8_t> is_sampled;
  requests.clear();
  responses.clear();
  is_sampled.assign(n, 0);
  requests.reserve(n);
  if (trace_sample_every_ > 0) {
    for (size_t i = 0; i < n; ++i) {
      is_sampled[i] =
          QueryEngine::Digest(*batch[i].request) % trace_sample_every_ == 0;
    }
  }
  size_t plain = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!is_sampled[i]) requests.push_back(*batch[i].request);
  }
  responses.resize(requests.size());
  if (!requests.empty()) {
    engine_->ExecuteBatch(requests.data(), responses.data(), requests.size());
  }
  for (size_t i = 0; i < n; ++i) {
    if (!is_sampled[i]) *batch[i].response = std::move(responses[plain++]);
  }
  // Sampled requests execute individually under their own span, so the
  // span's duration covers exactly that request's work (same code, same
  // epoch discipline — responses are identical to the batch path).
  for (size_t i = 0; i < n; ++i) {
    if (!is_sampled[i]) continue;
    const QueryEngine::Request& request = *batch[i].request;
    char args[obs::TraceEvent::kArgsCap];
    std::snprintf(args, sizeof(args), "kind=%s digest=%016llx",
                  RequestKindName(request.kind),
                  static_cast<unsigned long long>(
                      QueryEngine::Digest(request)));
    obs::ScopedSpan span("serve.query", args);
    *batch[i].response = engine_->Execute(request);
    sampled_->Increment();
  }
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const auto latency_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now - batch[i].admitted)
            .count());
    request_latency_ns_->Observe(static_cast<double>(latency_ns));
    if (slow_log_) {
      slow_log_->Record(*batch[i].request, latency_ns, is_sampled[i] != 0);
    }
    batch[i].done->store(1, std::memory_order_release);
    batch[i].done->notify_one();
  }
  batches_->Increment();
  batch_size_hist_->Observe(static_cast<double>(n));
}

void AdmissionQueue::WorkerLoop() {
  std::vector<Work> batch(batch_size_);
  for (;;) {
    size_t n = 0;
    while (n < batch_size_ && TryDequeue(&batch[n])) ++n;
    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      const uint64_t seen = tickets_.load(std::memory_order_acquire);
      // Re-check after reading the ticket so a concurrent enqueue between
      // the empty dequeue and the wait cannot be missed.
      if (TryDequeue(&batch[0])) {
        n = 1;
        while (n < batch_size_ && TryDequeue(&batch[n])) ++n;
      } else {
        tickets_.wait(seen, std::memory_order_acquire);
        continue;
      }
    }
    queue_depth_->Set(static_cast<double>(
        enqueue_pos_.load(std::memory_order_relaxed) -
        dequeue_pos_.load(std::memory_order_relaxed)));
    RunBatch(batch.data(), n);
  }
}

void AdmissionQueue::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  // Wait until racing Submit calls have either bailed or fully published
  // their ring slot, then wake the workers; they drain until empty.
  while (pending_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  tickets_.fetch_add(1, std::memory_order_release);
  tickets_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // A worker can observe (empty, stopping) and exit while another slot is
  // being published; complete any stragglers inline so no submitter hangs.
  Work work;
  while (TryDequeue(&work)) {
    RunBatch(&work, 1);
  }
}

}  // namespace wsie::serve
