#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/trace.h"

namespace wsie::serve {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '%' && i + 2 < in.size()) {
      const int hi = HexValue(in[i + 1]), lo = HexValue(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(in[i] == '+' ? ' ' : in[i]);
  }
  return out;
}

std::map<std::string, std::string> ParseQuery(std::string_view query) {
  std::map<std::string, std::string> params;
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      params[UrlDecode(pair)] = "";
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return params;
}

int ParamInt(const std::map<std::string, std::string>& params,
             const std::string& key, int fallback) {
  auto it = params.find(key);
  if (it == params.end() || it->second.empty()) return fallback;
  return std::atoi(it->second.c_str());
}

QueryFilter FilterFromParams(
    const std::map<std::string, std::string>& params) {
  QueryFilter filter;
  filter.corpus = ParamInt(params, "corpus", kAny);
  filter.type = ParamInt(params, "type", kAny);
  filter.method = ParamInt(params, "method", kAny);
  return filter;
}

std::string FormatResponse(const QueryEngine::Response& response) {
  std::ostringstream body;
  using Kind = QueryEngine::Request::Kind;
  switch (response.kind) {
    case Kind::kLookup: {
      const auto& r = response.lookup;
      body << "found=" << (r.found ? 1 : 0) << " count=" << r.count
           << " docs=" << r.docs << " per_corpus=";
      for (size_t c = 0; c < r.per_corpus.size(); ++c) {
        body << (c == 0 ? "" : ",") << r.per_corpus[c];
      }
      body << "\n";
      for (const store::Posting& p : r.postings) {
        body << "posting doc=" << p.doc_id << " sentence=" << p.sentence
             << " begin=" << p.begin << " end=" << p.end << "\n";
      }
      break;
    }
    case Kind::kPrefix:
      for (const std::string& name : response.names) body << name << "\n";
      break;
    case Kind::kFrequency: {
      const auto& r = response.frequency;
      body << "distinct_names=" << r.distinct_names
           << " annotations=" << r.annotations
           << " sentences=" << r.sentences
           << " per_1000_sentences=" << r.per_1000_sentences << "\n";
      break;
    }
    case Kind::kTopK:
      for (const auto& entry : response.topk) {
        body << entry.name << " " << entry.count << "\n";
      }
      break;
    case Kind::kCoOccurrence:
      body << "docs=" << response.cooccurrence.docs
           << " sentences=" << response.cooccurrence.sentences << "\n";
      break;
    case Kind::kSimilar: {
      const auto& r = response.similar;
      body << "index_available=" << (r.index_available ? 1 : 0)
           << " found=" << (r.found ? 1 : 0) << " hops=" << r.hops << "\n";
      for (const auto& hit : r.neighbors) {
        body << hit.name << " " << hit.distance << "\n";
      }
      break;
    }
  }
  return body.str();
}

void WriteAll(int fd, std::string_view data, obs::Counter* bytes_out) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n <= 0) return;
    written += static_cast<size_t>(n);
  }
  bytes_out->Add(data.size());
}

void WriteHttp(int fd, int code, std::string_view reason,
               const std::string& body, obs::Counter* bytes_out) {
  std::ostringstream head;
  head << "HTTP/1.1 " << code << " " << reason << "\r\n"
       << "Content-Type: text/plain\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
  WriteAll(fd, head.str(), bytes_out);
  WriteAll(fd, body, bytes_out);
}

}  // namespace

Server::Server(std::shared_ptr<AdmissionQueue> queue, Options options)
    : queue_(std::move(queue)), options_(options) {
  auto& registry = obs::MetricsRegistry::Global();
  requests_ = registry.GetCounter("wsie.serve.server.requests");
  bad_requests_ = registry.GetCounter("wsie.serve.server.bad_requests");
  bytes_out_ = registry.GetCounter("wsie.serve.server.bytes_out");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("server: socket: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("server: bind: ") +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("server: listen: ") +
                            std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  // The loop gets its own copy of the fd: Stop() writes listen_fd_ from
  // another thread, and accept() on the closed descriptor fails cleanly.
  accept_thread_ = std::thread([this, fd = listen_fd_] { AcceptLoop(fd); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // Shutdown unblocks a pending accept(); close releases the port.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::AcceptLoop(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket gone
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void Server::HandleConnection(int fd) {
  // Read until the header terminator (bodies are not part of the
  // protocol); cap the request at 64 KiB.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  requests_->Increment();

  const size_t line_end = request.find("\r\n");
  std::string_view line(request.data(),
                        line_end == std::string::npos ? request.size()
                                                      : line_end);
  if (line.substr(0, 4) != "GET ") {
    bad_requests_->Increment();
    WriteHttp(fd, 400, "Bad Request", "expected GET\n", bytes_out_);
    return;
  }
  line.remove_prefix(4);
  const size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    bad_requests_->Increment();
    WriteHttp(fd, 400, "Bad Request", "malformed request line\n", bytes_out_);
    return;
  }
  std::string_view target = line.substr(0, space);
  std::string_view path = target;
  std::string_view query;
  if (const size_t qmark = target.find('?');
      qmark != std::string_view::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  if (path == "/healthz") {
    WriteHttp(fd, 200, "OK", "ok\n", bytes_out_);
    return;
  }
  if (path == "/metrics") {
    WriteHttp(fd, 200, "OK",
              obs::MetricsRegistry::Global().DumpPrometheusText(),
              bytes_out_);
    return;
  }
  if (path == "/debug/slowlog") {
    const auto& slow_log = queue_->slow_log();
    if (!slow_log) {
      WriteHttp(fd, 404, "Not Found", "slow-query log disabled\n",
                bytes_out_);
      return;
    }
    WriteHttp(fd, 200, "OK", slow_log->DumpJson(), bytes_out_);
    return;
  }
  if (path == "/debug/trace") {
    WriteHttp(fd, 200, "OK",
              obs::TraceRecorder::Global().ToChromeTraceJson(), bytes_out_);
    return;
  }

  const auto params = ParseQuery(query);
  QueryEngine::Request req;
  using Kind = QueryEngine::Request::Kind;
  if (path == "/lookup") {
    if (!params.count("name") || params.at("name").empty()) {
      bad_requests_->Increment();
      WriteHttp(fd, 400, "Bad Request", "missing name\n", bytes_out_);
      return;
    }
    req.kind = Kind::kLookup;
    req.name = params.at("name");
    req.filter = FilterFromParams(params);
    req.limit = static_cast<size_t>(ParamInt(params, "max", 0));
  } else if (path == "/prefix") {
    req.kind = Kind::kPrefix;
    req.name = params.count("p") ? params.at("p") : "";
    req.limit = static_cast<size_t>(ParamInt(params, "limit", 100));
  } else if (path == "/topk") {
    req.kind = Kind::kTopK;
    req.filter = FilterFromParams(params);
    req.limit = static_cast<size_t>(ParamInt(params, "k", 10));
  } else if (path == "/freq") {
    req.kind = Kind::kFrequency;
    req.corpus = ParamInt(params, "corpus", 0);
    req.type = ParamInt(params, "type", 0);
    req.method = ParamInt(params, "method", kAny);
  } else if (path == "/similar") {
    if (!params.count("q") || params.at("q").empty()) {
      bad_requests_->Increment();
      WriteHttp(fd, 400, "Bad Request", "missing q\n", bytes_out_);
      return;
    }
    req.kind = Kind::kSimilar;
    req.name = params.at("q");
    req.limit = static_cast<size_t>(ParamInt(params, "k", 10));
  } else if (path == "/cooc") {
    if (!params.count("a") || !params.count("b")) {
      bad_requests_->Increment();
      WriteHttp(fd, 400, "Bad Request", "missing a/b\n", bytes_out_);
      return;
    }
    req.kind = Kind::kCoOccurrence;
    req.name = params.at("a");
    req.name_b = params.at("b");
    req.filter = FilterFromParams(params);
  } else {
    bad_requests_->Increment();
    WriteHttp(fd, 404, "Not Found", "unknown route\n", bytes_out_);
    return;
  }

  QueryEngine::Response response;
  if (!queue_->Submit(req, &response)) {
    WriteHttp(fd, 503, "Service Unavailable", "shutting down\n", bytes_out_);
    return;
  }
  WriteHttp(fd, 200, "OK", FormatResponse(response), bytes_out_);
}

}  // namespace wsie::serve
